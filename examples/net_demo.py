#!/usr/bin/env python
"""Net demo: the scheduling service over TCP with multi-process shards.

Brings up the full PR-6 deployment shape in one script:

1. a :class:`~repro.net.procservice.ProcessShardedService` — each output
   fiber's shard lives in one of two **worker OS processes**, chosen by
   consistent-hash placement, each journaling grants write-ahead to its
   own directory;
2. a :class:`~repro.net.server.NetServer` TCP front door speaking the
   versioned binary wire protocol (length+CRC32 frames, HELLO/WELCOME
   handshake, seq-correlated SUBMIT → GRANT/REJECT);
3. a :class:`~repro.net.client.NetClient` driving it like a remote
   client would — then SIGKILLs a worker mid-run and shows journal
   recovery handing back the exact same channel clocks.

Run:  PYTHONPATH=src python examples/net_demo.py
"""

import asyncio
import tempfile

from repro import FirstAvailableScheduler, NonCircularConversion
from repro.core.distributed import SlotRequest
from repro.net import NetClient, NetServer, ProcessShardedService
from repro.net import protocol as proto


async def demo(journal_dir: str) -> None:
    # --- 1. Two shard worker processes behind a TCP front door.
    service = ProcessShardedService(
        4,
        NonCircularConversion(k=3, e=1, f=1),
        FirstAvailableScheduler(),
        n_workers=2,
        journal_dir=journal_dir,
    )
    print(f"shard placement (consistent hash): {service.placement}")

    async with NetServer(service) as server:
        # --- 2. A client connects and negotiates the protocol version.
        client = await NetClient.connect("127.0.0.1", server.port)
        print(
            f"handshake: protocol v{client.version}, "
            f"{client.n_fibers} fibers x {client.k} wavelengths"
        )

        # --- 3. Pipelined submissions over the wire, resolved by a tick.
        futures = [
            client.submit_nowait(SlotRequest(i, i % client.k, i % 2, duration=3))
            for i in range(4)
        ]
        done = await client.tick(1)
        outcomes = await asyncio.gather(*futures)
        grants = sum(1 for o in outcomes if isinstance(o, proto.Grant))
        rejects = sum(1 for o in outcomes if isinstance(o, proto.Reject))
        print(
            f"slot {done.slot}: {grants} granted, {rejects} rejected "
            f"over TCP (conservation: {grants + rejects == len(futures)})"
        )

        # --- 4. Kill a worker process mid-run; journal replay rebuilds
        # its shards' channel clocks bit-exactly on respawn.
        busy_before = service.worker_busy(0)
        victim = service.placement[0]
        service.kill_worker(victim)
        print(f"killed worker {victim} (owns shard 0)")
        busy_after = service.worker_busy(0)
        print(
            f"respawned from journal: busy[] {busy_after} "
            f"matches pre-kill state exactly: {busy_after == busy_before}"
        )

        # --- 5. The clock keeps running: later ticks decay the holds.
        await client.tick(2)
        print(f"after 2 more ticks: busy[] {service.worker_busy(0)}")

        await client.close()
    await service.stop()
    print("clean shutdown: sockets closed, workers stopped")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        asyncio.run(demo(tmp))


if __name__ == "__main__":
    main()
