#!/usr/bin/env python
"""Tour of the analysis toolkit: certificates, closed forms, worst cases.

Shows the verification machinery a user gets alongside the schedulers:

1. ASCII rendering of a request graph and its schedule (Fig. 3/4 style);
2. independent maximality certificates (augmenting-path absence);
3. exact analytical loss models and the Erlang-B check for the
   asynchronous regime;
4. the adversarial family that meets the Theorem-3 bound exactly.

Run:  python examples/analysis_tour.py
"""

from repro import (
    BreakFirstAvailableScheduler,
    CircularConversion,
    FullRangeConversion,
    HopcroftKarpScheduler,
    RequestGraph,
    SingleBreakScheduler,
)
from repro.analysis import (
    assert_maximum_schedule,
    corollary1_bound,
    full_range_loss_probability,
    matching_from_result,
    no_conversion_loss_probability,
    render_request_graph,
    render_schedule,
    tight_single_break_instance,
)
from repro.analysis.analytical import erlang_b
from repro.sim import AsyncWavelengthRouter


def main() -> None:
    # --- 1. Render the paper's running example and its schedule.
    scheme = CircularConversion(k=6, e=1, f=1)
    rg = RequestGraph(scheme, [2, 1, 0, 1, 1, 2])
    result = BreakFirstAvailableScheduler().schedule(rg)
    print(render_request_graph(rg, matching_from_result(rg, result)))
    print()
    print(render_schedule(rg, result))

    # --- 2. Certify maximality independently of the scheduler.
    assert_maximum_schedule(rg, result)
    print("\ncertificate: no augmenting path exists — the schedule is maximum")

    # --- 3. Closed-form loss at the bracketing conversion degrees.
    n_fibers, k, load = 8, 16, 0.9
    print(
        f"\nanalytical per-request loss at N={n_fibers}, k={k}, load {load}:"
        f"\n  no conversion (d=1): "
        f"{no_conversion_loss_probability(n_fibers, load):.4f}"
        f"\n  full range (d=k):    "
        f"{full_range_loss_probability(n_fibers, k, load):.4f}"
    )

    # Asynchronous FCFS at full range is an M/M/k/k queue: measure vs Erlang B.
    erlangs = 12.0
    router = AsyncWavelengthRouter(
        4, FullRangeConversion(k), arrival_rate=erlangs, seed=1
    )
    measured = router.run(2000.0, warmup=200.0).blocking_probability
    print(
        f"\nasynchronous full-range blocking at {erlangs} erlangs/fiber: "
        f"measured {measured:.4f} vs Erlang-B {erlang_b(erlangs, k):.4f}"
    )

    # --- 4. The single-break bound is tight: the adversarial family.
    print("\nadversarial family for the Section-IV-C approximation:")
    hk = HopcroftKarpScheduler()
    for a in (1, 2, 3):
        adv = tight_single_break_instance(a)
        d = adv.scheme.degree
        opt = hk.schedule(adv).n_granted
        got = SingleBreakScheduler("shortest").schedule(adv).n_granted
        print(
            f"  d={d}: optimum {opt}, single-break {got}, deficit {opt - got}"
            f" == Corollary-1 bound {corollary1_bound(d)}"
        )


if __name__ == "__main__":
    main()
