#!/usr/bin/env python
"""Quickstart: schedule one output fiber of a WDM optical interconnect.

Walks through the paper's running example (k = 6 wavelengths, conversion
degree d = 3, request vector [2, 1, 0, 1, 1, 2] — Figs. 2–4) with both
conversion types, then shows the Section-V occupied-channel case.

Run:  python examples/quickstart.py
"""

from repro import (
    BreakFirstAvailableScheduler,
    CircularConversion,
    FirstAvailableScheduler,
    HopcroftKarpScheduler,
    NonCircularConversion,
    RequestGraph,
)


def main() -> None:
    # --- 1. A conversion scheme: 6 wavelengths, each convertible one step
    # up or down (degree d = e + f + 1 = 3), wrapping around the band.
    circular = CircularConversion(k=6, e=1, f=1)
    print("conversion adjacency (circular, Fig. 2a):")
    for w in range(circular.k):
        targets = ", ".join(f"λ{b}" for b in circular.adjacency(w))
        print(f"  λ{w} -> {targets}")

    # --- 2. The requests destined to one output fiber in one slot: two on
    # λ0, one on λ1, one on λ3, one on λ4, two on λ5 (7 requests, 6 channels
    # -> output contention).
    rg = RequestGraph(circular, [2, 1, 0, 1, 1, 2])
    print(f"\n{rg.n_requests} requests for {rg.k} channels")

    # --- 3. Resolve the contention with the paper's O(dk) Break-and-First-
    # Available algorithm; it always finds a largest contention-free group.
    result = BreakFirstAvailableScheduler().schedule(rg)
    print(f"granted {result.n_granted}, dropped {result.n_rejected}:")
    for g in sorted(result.grants, key=lambda g: g.channel):
        print(f"  λ{g.wavelength} -> output channel {g.channel}")

    # The general-purpose Hopcroft-Karp baseline agrees on the size:
    optimal = HopcroftKarpScheduler().schedule(rg).n_granted
    assert result.n_granted == optimal
    print(f"matches the maximum matching size ({optimal})")

    # --- 4. Non-circular conversion uses the O(k) First Available algorithm.
    noncircular = NonCircularConversion(k=6, e=1, f=1)
    rg_nc = RequestGraph(noncircular, [2, 1, 0, 1, 1, 2])
    result_nc = FirstAvailableScheduler().schedule(rg_nc)
    print(f"\nnon-circular (Fig. 2b): granted {result_nc.n_granted}")

    # --- 5. Section V: channels 2 and 3 still occupied by earlier multi-slot
    # connections — pass an availability mask and schedule around them.
    occupied = [True, True, False, False, True, True]
    rg_busy = RequestGraph(circular, [2, 1, 0, 1, 1, 2], available=occupied)
    result_busy = BreakFirstAvailableScheduler().schedule(rg_busy)
    print(
        f"with channels 2,3 occupied: granted {result_busy.n_granted} "
        f"of {rg_busy.n_requests}"
    )
    assert result_busy.n_granted == HopcroftKarpScheduler().schedule(rg_busy).n_granted


if __name__ == "__main__":
    main()
