#!/usr/bin/env python
"""Chaos demo: the scheduling service degrading gracefully under injected
faults — and healing.

Builds the same 4-shard service as ``service_demo.py``, then runs a seeded
fault plan against it: two output channels go dark mid-run, one input
fiber's wavelength converters degrade to fixed-wavelength operation, and
one shard worker is killed outright.  The supervisor restarts the dead
shard from an aged ``busy[]`` checkpoint, its circuit breaker walks
open → half-open → closed, and a retrying client rides out the whole storm.

Everything is seeded, so the run is exactly reproducible.

Run:  PYTHONPATH=src python examples/chaos_demo.py
"""

import asyncio

from repro import BreakFirstAvailableScheduler, CircularConversion
from repro.core.distributed import SlotRequest
from repro.faults import (
    ChannelOutage,
    ConverterDegradation,
    FaultPlan,
    ShardCrash,
)
from repro.service import (
    BreakerConfig,
    RetryPolicy,
    SchedulingClient,
    SchedulingService,
    ServiceGrant,
    SupervisorConfig,
)
from repro.sim.duration import GeometricDuration
from repro.sim.traffic import BernoulliTraffic
from repro.util.rng import make_rng

N, K, SLOTS = 4, 16, 120

#: The storm: 2 dark channels, 1 degraded converter, 1 shard kill.
PLAN = FaultPlan(
    outages=(
        ChannelOutage(fiber=1, wavelength=4, start=20, duration=40),
        ChannelOutage(fiber=3, wavelength=9, start=30, duration=25),
    ),
    degradations=(
        ConverterDegradation(input_fiber=2, start=25, duration=35, e=0, f=0),
    ),
    crashes=(ShardCrash(fiber=1, slot=40),),
)


async def demo() -> None:
    service = SchedulingService(
        N,
        CircularConversion(k=K, e=1, f=1),
        BreakFirstAvailableScheduler(),
        faults=PLAN,
        breaker=BreakerConfig(failure_threshold=2, reset_ticks=5),
        supervisor=SupervisorConfig(restart_delay_ticks=4),
    )
    print(f"fault plan: {PLAN.n_events} events, horizon {PLAN.horizon()} slots")

    # Seeded traffic, one slot per tick; grants bucketed per slot so the
    # degradation and the recovery show up in the printed timeline.
    traffic = BernoulliTraffic(
        N, K, load=0.8, durations=GeometricDuration(2.0)
    )
    rng = make_rng(7)
    futures: list[asyncio.Future] = []
    for slot in range(SLOTS):
        for p in traffic.arrivals(slot, rng):
            futures.append(
                service.submit_nowait(
                    SlotRequest(
                        p.input_fiber,
                        p.wavelength,
                        p.output_fiber,
                        p.duration,
                        p.priority,
                    )
                )
            )
        await service.tick()
        await asyncio.sleep(0)
    await service.drain()
    outcomes = await asyncio.gather(*futures)

    granted_per_phase = {"before": 0, "storm": 0, "after": 0}
    horizon = PLAN.horizon()
    for o in outcomes:
        if isinstance(o, ServiceGrant):
            if o.slot < 20:
                granted_per_phase["before"] += 1
            elif o.slot < horizon:
                granted_per_phase["storm"] += 1
            else:
                granted_per_phase["after"] += 1
    print(
        "grants  before storm: {before}   during: {storm}   "
        "after recovery: {after}".format(**granted_per_phase)
    )

    counters = service.telemetry.snapshot()["counters"]
    print(
        f"faults fired: {counters['faults.outages']} outages, "
        f"{counters['faults.degradations']} degradations, "
        f"{counters['faults.crashes']} crash"
    )
    print(
        f"shard 1: crashed {counters['server.shard_crashes']}x, "
        f"restarted {counters['server.shard_restarts']}x "
        f"(supervisor down list now: {list(service.supervisor.down_shards)})"
    )
    print(
        f"breaker transitions: {counters['breaker.transitions.opened']} "
        f"opened, {counters['breaker.transitions.half_open']} half-open, "
        f"{counters['breaker.transitions.closed']} closed "
        f"(shard 1 now: {service.breakers[1].state.value})"
    )
    print(
        f"fault-path rejections: "
        f"{counters.get('server.rejected.shard_down', 0)} shard_down, "
        f"{counters.get('server.rejected.circuit_open', 0)} circuit_open"
    )

    # A retrying client rides out a fresh kill of shard 2.
    service2 = SchedulingService(
        N,
        CircularConversion(k=K, e=1, f=1),
        BreakFirstAvailableScheduler(),
        faults=FaultPlan(crashes=(ShardCrash(fiber=2, slot=0),)),
        breaker=BreakerConfig(failure_threshold=1, reset_ticks=2),
        supervisor=SupervisorConfig(restart_delay_ticks=2),
    )
    client = SchedulingClient(service2, seed=11)
    task = asyncio.ensure_future(
        client.submit_with_retry(
            SlotRequest(0, 3, 2),
            policy=RetryPolicy(max_attempts=100, base_delay=0.0),
        )
    )
    for _ in range(20):
        await service2.tick()
        await asyncio.sleep(0)
        if task.done():
            break
    outcome = await task
    retries = service2.telemetry.snapshot()["counters"]["client.retries"]
    assert isinstance(outcome, ServiceGrant)
    print(
        f"\nretrying client: granted channel {outcome.channel} in slot "
        f"{outcome.slot} after {retries} retries through the outage"
    )

    # Conservation still holds under chaos: every submission resolved once.
    resolved = sum(
        counters.get(name, 0)
        for name in (
            "server.granted",
            "server.rejected.contention",
            "server.rejected.source_blocked",
            "server.rejected.queue_full",
            "server.dropped",
            "server.timed_out",
            "server.shutdown",
            "server.rejected.shard_down",
            "server.rejected.circuit_open",
        )
    )
    assert counters["server.submitted"] == resolved == len(outcomes)
    print(
        f"conservation check under chaos: {counters['server.submitted']} "
        f"submitted == {resolved} resolved ✓"
    )

    await service.stop()
    await service2.stop()


if __name__ == "__main__":
    asyncio.run(demo())
