#!/usr/bin/env python
"""Hardware walkthrough: registers, cycle counts, and the Fig. 1 datapath.

Demonstrates the full hardware story of the paper:

1. the per-output ``Nk``-bit request register (Section II-B);
2. the First Available unit finishing in exactly k clock cycles;
3. serial vs d-way-parallel Break-and-First-Available units;
4. the scheduled slot physically routed through the Fig. 1 datapath
   (demux → fabric → combiner → converter → mux) with interference checks.

Run:  python examples/hardware_pipeline.py
"""

from repro import CircularConversion, BreakFirstAvailableScheduler, SlotRequest
from repro.core import DistributedScheduler, RoundRobinPolicy
from repro.hardware import (
    BreakFirstAvailableUnit,
    FirstAvailableUnit,
    ParallelBFAUnit,
    RequestRegister,
)
from repro.hardware.timing import CycleReport
from repro.interconnect import WDMInterconnect

N, K, E, F = 4, 8, 1, 1


def main() -> None:
    scheme = CircularConversion(K, E, F)

    # --- 1. Load the request register for output fiber 0: which input
    # channels want it this slot.
    requests = [(0, 1), (1, 1), (1, 2), (2, 2), (3, 2), (3, 4)]
    register = RequestRegister.from_requests(N, K, requests)
    print(f"request register: {register}")
    print(f"  wavelength summary bits: {list(register.wavelength_summary())}")

    # --- 2. One FA pass: k cycles, one output channel matched per cycle.
    fa_grants, fa_cycles = FirstAvailableUnit(K, E, F, fiber_select="round-robin").run(
        RequestRegister.from_requests(N, K, requests)
    )
    print(f"\nFA unit: {fa_cycles} cycles (always exactly k={K})")
    for g in fa_grants:
        print(
            f"  cycle {g.cycle}: channel {g.channel} <- λ{g.wavelength} "
            f"(fiber {g.input_fiber})"
        )

    # --- 3. BFA serial vs parallel: same grants, different latency.
    serial_grants, serial_cycles = BreakFirstAvailableUnit(K, E, F).run(
        RequestRegister.from_requests(N, K, requests)
    )
    par_unit = ParallelBFAUnit(K, E, F)
    par_grants, par_cycles = par_unit.run(
        RequestRegister.from_requests(N, K, requests)
    )
    assert {(g.wavelength, g.channel) for g in serial_grants} == {
        (g.wavelength, g.channel) for g in par_grants
    }
    print(f"\nBFA serial:   {serial_cycles} cycles (1 + d(k-1) + ceil(log2 d))")
    print(
        f"BFA parallel: {par_cycles} cycles with {par_unit.n_units} FA units"
    )
    report = CycleReport("parallel-BFA", K, E + F + 1, par_cycles,
                         hardware_units=par_unit.n_units)
    print(
        f"  at {report.clock_mhz:.0f} MHz: {report.time_us:.3f} µs — fits a "
        f"1 µs optical slot: {report.fits_slot(1.0)}"
    )

    # --- 4. Route a whole slot through the physical datapath.
    slot_requests = [
        SlotRequest(input_fiber=i, wavelength=w, output_fiber=0)
        for i, w in requests
    ] + [SlotRequest(input_fiber=0, wavelength=5, output_fiber=2)]
    ds = DistributedScheduler(
        N, scheme, BreakFirstAvailableScheduler(), RoundRobinPolicy()
    )
    schedule = ds.schedule_slot(slot_requests)
    interconnect = WDMInterconnect(N, scheme)
    routed = interconnect.route_schedule(schedule)
    print(
        f"\ndatapath: {len(routed)} signals routed, "
        f"{schedule.n_rejected} dropped (no buffers)"
    )
    for r in sorted(routed, key=lambda r: (r.output_fiber, r.output_channel)):
        print(
            f"  fiber {r.input_fiber} λ{r.input_wavelength} -> "
            f"fiber {r.output_fiber} channel {r.output_channel}"
        )


if __name__ == "__main__":
    main()
