#!/usr/bin/env python
"""Optical burst switching: multi-slot connections (paper Section V).

Connections here hold their output channel for several slots (geometric
durations).  Two policies from the paper are compared:

* **burst mode** (non-disturb): an ongoing connection cannot be moved —
  new requests see a *reduced* request graph with the occupied channels
  removed (the Section-V construction);
* **disturb mode**: ongoing connections may be reassigned to different
  channels each slot, packing the band better before new requests are fit.

Run:  python examples/burst_switching.py
"""

from repro import BreakFirstAvailableScheduler, CircularConversion
from repro.sim import BernoulliTraffic, GeometricDuration, SlottedSimulator
from repro.util.tables import format_table

N_FIBERS = 6
K = 12
SLOTS = 400
SEED = 42


def run_one(mean_duration: float, disturb: bool) -> dict[str, float]:
    """Loss/utilization for one duration × rescheduling-policy point."""
    scheme = CircularConversion(K, e=1, f=1)
    traffic = BernoulliTraffic(
        N_FIBERS, K, load=0.35, durations=GeometricDuration(mean_duration)
    )
    sim = SlottedSimulator(
        N_FIBERS,
        scheme,
        BreakFirstAvailableScheduler(),
        traffic,
        disturb=disturb,
        seed=SEED,
    )
    return sim.run(SLOTS, warmup=60).summary()


def main() -> None:
    rows = []
    for mean_duration in (1.0, 2.0, 4.0, 8.0, 16.0):
        burst = run_one(mean_duration, disturb=False)
        dist = run_one(mean_duration, disturb=True)
        rows.append(
            (
                mean_duration,
                burst["loss_probability"],
                dist["loss_probability"],
                burst["utilization"],
                dist["utilization"],
            )
        )
    print(
        format_table(
            [
                "mean duration",
                "loss (burst)",
                "loss (disturb)",
                "util (burst)",
                "util (disturb)",
            ],
            rows,
            title=f"Multi-slot connections, {N_FIBERS}×{N_FIBERS}, k={K}, "
            "d=3, load 0.35",
            float_fmt=".4f",
        )
    )
    print(
        "\nReading: with longer connections the band fragments; allowing"
        "\nreassignment (disturb) recovers part of the lost throughput,"
        "\nwhile burst mode (the realistic optical-burst constraint) pays"
        "\nfor immobility."
    )


if __name__ == "__main__":
    main()
