#!/usr/bin/env python
"""Optical packet switching study: how much wavelength conversion is enough?

Simulates an 8×8 WDM packet switch (16 wavelengths per fiber) under uniform
Bernoulli traffic and sweeps the conversion degree.  This regenerates the
paper's motivating story (Section I, via its refs [11][13][14]): a *small*
conversion degree recovers almost all of full range conversion's throughput,
which is why the paper optimizes the limited-range scheduling path.

Run:  python examples/packet_switch_simulation.py
"""

from repro import (
    BreakFirstAvailableScheduler,
    CircularConversion,
    FullRangeConversion,
    FullRangeScheduler,
)
from repro.sim import BernoulliTraffic, SlottedSimulator
from repro.util.tables import format_table

N_FIBERS = 8
K = 16
SLOTS = 400
SEED = 2003


def run_one(degree: int, load: float) -> dict[str, float]:
    """One simulation point: loss/throughput at the given degree and load."""
    if degree >= K:
        scheme, scheduler = FullRangeConversion(K), FullRangeScheduler()
    else:
        e = (degree - 1) // 2
        scheme = CircularConversion(K, e, degree - 1 - e)
        scheduler = BreakFirstAvailableScheduler()
    traffic = BernoulliTraffic(N_FIBERS, K, load)
    sim = SlottedSimulator(N_FIBERS, scheme, scheduler, traffic, seed=SEED)
    return sim.run(SLOTS, warmup=40).summary()


def main() -> None:
    degrees = [1, 2, 3, 5, 7, K]
    loads = [0.6, 0.8, 0.9, 1.0]
    rows = []
    for d in degrees:
        summaries = {load: run_one(d, load) for load in loads}
        rows.append(
            [f"full (d={K})" if d == K else f"d={d}"]
            + [summaries[load]["loss_probability"] for load in loads]
        )
    print(
        format_table(
            ["degree"] + [f"load {load}" for load in loads],
            rows,
            title=f"Packet loss probability, {N_FIBERS}×{N_FIBERS} switch, "
            f"k={K}, uniform Bernoulli traffic ({SLOTS} slots)",
            float_fmt=".4f",
        )
    )
    print(
        "\nReading: d=1 (no conversion) loses heavily to output contention;"
        "\nd=3 already sits within a few tenths of a percent of full range."
    )


if __name__ == "__main__":
    main()
