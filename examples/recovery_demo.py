#!/usr/bin/env python
"""Recovery demo: crash-consistent durability in the scheduling service.

Three short acts, all seeded and exactly reproducible:

1. **Kill and replay.**  Run a seeded workload twice — once untouched,
   once killing *every* shard mid-run and rebuilding each from its
   write-ahead journal anchored on the latest snapshot.  The recovered
   run must be bit-identical: same outcome for every request, same
   ``busy[]`` residuals, same grant-path counters.
2. **Second life.**  The file backend survives process death: a
   brand-new service pointed at the same directory rebuilds the exact
   pre-death state of every shard from the ``.snap`` + ``.wal`` files.
3. **Exactly once.**  Idempotent request ids: a duplicate of an
   in-flight request is refused as ``DUPLICATE``, and a resubmission
   after the grant replays the original grant instead of booking a
   second channel.

Run:  PYTHONPATH=src python examples/recovery_demo.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro import BreakFirstAvailableScheduler, CircularConversion
from repro.core.distributed import SlotRequest
from repro.core.policies import RandomPolicy
from repro.service import (
    DurabilityConfig,
    Rejected,
    RejectReason,
    SchedulingService,
    ServiceGrant,
)
from repro.util.rng import make_rng

N, K, SLOTS = 3, 8, 24
CRASH_AT = 10
SNAPSHOT_INTERVAL = 6

#: Counters that must survive a crash bit-identically.
EQUIV_COUNTERS = (
    "server.submitted",
    "server.granted",
    "server.rejected.contention",
    "server.rejected.source_blocked",
    "server.dropped",
)


def build_schedule(seed=11, load=0.75, max_duration=3):
    """Deterministic traffic, computed once — the baseline and the crash
    run must submit byte-identical requests."""
    rng = make_rng(seed)
    schedule = []
    for _slot in range(SLOTS):
        slot_requests = []
        for i in range(N):
            for w in range(K):
                if rng.random() < load:
                    slot_requests.append(
                        SlotRequest(
                            i,
                            w,
                            int(rng.integers(N)),
                            duration=int(rng.integers(1, max_duration + 1)),
                        )
                    )
        schedule.append(slot_requests)
    return schedule


def make_service(**kwargs):
    kwargs.setdefault(
        "durability", DurabilityConfig(snapshot_interval=SNAPSHOT_INTERVAL)
    )
    return SchedulingService(
        N,
        CircularConversion(k=K, e=1, f=1),
        BreakFirstAvailableScheduler(),
        policy=RandomPolicy(seed=7),
        max_batch_per_tick=3,
        **kwargs,
    )


async def drive(service, schedule, crash_at=None):
    """Run the schedule; optionally kill + recover every shard at one
    tick boundary.  Returns (outcomes, recovery states)."""
    futures, states = [], []
    for slot, slot_requests in enumerate(schedule):
        if slot == crash_at:
            for o in range(N):
                service.shards[o].crash()
            for o in range(N):
                states.append(service.recover_shard(o))
        for r in slot_requests:
            futures.append(service.submit_nowait(r))
        await service.tick()
    await service.drain()
    return list(await asyncio.gather(*futures)), states


def counters_of(service):
    counters = service.telemetry.snapshot()["counters"]
    return {name: counters.get(name, 0) for name in EQUIV_COUNTERS}


async def act_one() -> None:
    print("-- act 1: kill every shard mid-run, replay the journal --")
    schedule = build_schedule()
    n_requests = sum(len(s) for s in schedule)

    baseline = make_service()
    base_outcomes, _ = await drive(baseline, schedule)
    base_busy = [s.busy_snapshot() for s in baseline.shards]
    await baseline.stop()

    crashed = make_service()
    outcomes, states = await drive(crashed, schedule, crash_at=CRASH_AT)
    busy = [s.busy_snapshot() for s in crashed.shards]

    for state in states:
        print(
            f"shard {state.shard}: recovered from {state.source} "
            f"(snapshot tick {state.snapshot_tick}, "
            f"replayed {state.replayed_records} journal records "
            f"-> tick {state.tick}, queue depth {len(state.queue)})"
        )
    same_outcomes = outcomes == base_outcomes
    same_busy = busy == base_busy
    same_counters = counters_of(crashed) == counters_of(baseline)
    assert same_outcomes and same_busy and same_counters
    print(
        f"crash at tick {CRASH_AT} of {SLOTS}: all {n_requests} request "
        f"outcomes bit-identical to the uninterrupted baseline ✓"
    )
    print(
        "busy[] residuals and grant-path counters bit-identical too "
        f"({sum(1 for o in outcomes if isinstance(o, ServiceGrant))} grants)"
    )

    counters = crashed.telemetry.snapshot()["counters"]
    print(
        f"durability: {counters['durability.snapshots']} snapshots, "
        f"{counters['durability.recoveries']} recoveries, "
        f"{counters['durability.journal.records']} journal records "
        f"({counters['durability.journal.bytes']} bytes)"
    )
    await crashed.stop()


async def act_two(directory: Path) -> None:
    print("\n-- act 2: second life over the file backend --")
    schedule = build_schedule(seed=3)[:8]
    config = DurabilityConfig(
        snapshot_interval=SNAPSHOT_INTERVAL, backend="file", directory=directory
    )

    first = make_service(durability=config)
    await drive(first, schedule)
    busy_at_death = [s.busy_snapshot() for s in first.shards]
    slot_at_death = first.slot
    # Process dies: no stop(), just the file handles closing.
    first.durability.close()

    files = sorted(p.name for p in directory.iterdir())
    print(f"first process died at tick {slot_at_death}, leaving: {files}")

    second = make_service(durability=config)
    states = [second.recover_shard(o) for o in range(N)]
    busy = [s.busy_snapshot() for s in second.shards]
    assert busy == busy_at_death
    assert all(s.tick == slot_at_death for s in states)
    print(
        f"fresh process recovered all {N} shards from "
        f"{states[0].source}: busy[] matches the pre-death state exactly ✓"
    )
    await second.stop()


async def act_three() -> None:
    print("\n-- act 3: exactly-once grants via idempotent request ids --")
    service = make_service()
    r = SlotRequest(0, 2, 1, duration=2)

    first = service.submit_nowait(r, request_id="conn-42")
    dup = await service.submit_nowait(r, request_id="conn-42")
    assert isinstance(dup, Rejected) and dup.reason is RejectReason.DUPLICATE
    print("duplicate of an in-flight request: refused as DUPLICATE ✓")

    await service.tick()
    original = await first
    replay = await service.submit_nowait(r, request_id="conn-42")
    assert replay == original
    print(
        f"resubmission after the grant: replayed the original grant "
        f"(channel {replay.channel}, slot {replay.slot}) — not re-booked ✓"
    )

    counters = service.telemetry.snapshot()["counters"]
    resolved = counters["server.granted"] + counters["server.duplicate"]
    assert counters["server.submitted"] == resolved == 3
    print(
        f"conservation with duplicates: {counters['server.submitted']} "
        f"submitted == {counters['server.granted']} granted + "
        f"{counters['server.duplicate']} duplicate ✓"
    )
    await service.stop()


async def demo() -> None:
    await act_one()
    with tempfile.TemporaryDirectory() as tmp:
        await act_two(Path(tmp))
    await act_three()


if __name__ == "__main__":
    asyncio.run(demo())
