#!/usr/bin/env python
"""Service demo: run the sharded asyncio scheduling service under load.

Builds a 4×4 interconnect service (one shard per output fiber, Break-and-
First-Available per shard), drives it with the simulator's Bernoulli traffic
model, then prints the load report and the built-in telemetry snapshot —
queue depths, grant rate, and latency percentiles included.

Run:  PYTHONPATH=src python examples/service_demo.py
"""

import asyncio

from repro import BreakFirstAvailableScheduler, CircularConversion
from repro.core.distributed import SlotRequest
from repro.service import (
    LoadGenerator,
    OverflowPolicy,
    SchedulingClient,
    SchedulingService,
)
from repro.sim.traffic import BernoulliTraffic


async def demo() -> None:
    # --- 1. A service: 4 output-fiber shards, k=16 wavelengths, d=3
    # circular conversion, bounded queues with drop-oldest backpressure.
    service = SchedulingService(
        4,
        CircularConversion(k=16, e=1, f=1),
        BreakFirstAvailableScheduler(),
        queue_capacity=64,
        overflow=OverflowPolicy.DROP_OLDEST,
    )

    # --- 2. One interactive request through the client API: submit, tick,
    # and read the grant (output channel + slot it was scheduled in).
    client = SchedulingClient(service)
    future = service.submit_nowait(SlotRequest(0, 5, 3))
    await service.tick()
    outcome = await future
    print(
        f"interactive request λ5 → output 3: granted channel "
        f"{outcome.channel} in slot {outcome.slot}"
    )

    # --- 3. Sustained load: the simulator's own traffic model drives the
    # service, one traffic slot per tick, 200 slots at 85% offered load.
    generator = LoadGenerator(
        service, BernoulliTraffic(4, 16, load=0.85), seed=20030422
    )
    report = await generator.run(200)
    print(
        f"load run: {report.offered} requests over {report.slots} slots, "
        f"{report.granted} granted (grant rate {report.grant_rate:.3f})"
    )
    print(
        f"sustained {report.requests_per_sec:,.0f} req/s, grant latency "
        f"p50 {report.p50_latency * 1e3:.2f} ms / "
        f"p99 {report.p99_latency * 1e3:.2f} ms"
    )

    # --- 4. Built-in telemetry: every layer (server, shards, queues)
    # reports through one registry.
    print("\ntelemetry snapshot:")
    print(service.telemetry.render())

    await service.stop()

    # The conservation invariant the test suite enforces: every submitted
    # request resolved exactly once.
    counters = service.telemetry.counters("server.")
    resolved = (
        counters["server.granted"]
        + counters["server.rejected.contention"]
        + counters["server.rejected.source_blocked"]
        + counters["server.rejected.queue_full"]
        + counters["server.dropped"]
        + counters["server.timed_out"]
        + counters["server.shutdown"]
    )
    assert counters["server.submitted"] == resolved
    print(f"\nconservation check: {counters['server.submitted']} submitted "
          f"== {resolved} resolved")


def main() -> None:
    asyncio.run(demo())


if __name__ == "__main__":
    main()
