#!/usr/bin/env python
"""Speed/throughput trade-off of the single-break approximation (Sec. IV-C).

Break-and-First-Available tries all d breaks; the approximation tries one.
This example measures, over random saturated request graphs:

* the matching deficit per break-position policy vs the Theorem-3 bound, and
* the wall-clock speedup of trying one break instead of d.

Run:  python examples/approximation_tradeoff.py
"""

import time

import numpy as np

from repro import (
    BreakFirstAvailableScheduler,
    HopcroftKarpScheduler,
    SingleBreakScheduler,
)
from repro.analysis import random_circular_instance
from repro.analysis.bounds import corollary1_bound
from repro.util.rng import make_rng
from repro.util.tables import format_table

TRIALS = 200


def main() -> None:
    rng = make_rng(7)
    hk = HopcroftKarpScheduler()
    rows = []
    for k, e, f in ((16, 1, 1), (16, 2, 2), (32, 3, 3)):
        d = e + f + 1
        instances = [
            random_circular_instance(k, e, f, load=1.0, rng=rng)
            for _ in range(TRIALS)
        ]
        optima = [hk.schedule(rg).n_granted for rg in instances]

        # Exact BFA timing baseline.
        bfa = BreakFirstAvailableScheduler()
        t0 = time.perf_counter()
        for rg in instances:
            bfa.schedule(rg)
        t_exact = time.perf_counter() - t0

        for policy in ("shortest", "minus-end"):
            sched = SingleBreakScheduler(policy)
            t0 = time.perf_counter()
            results = [sched.schedule(rg) for rg in instances]
            t_approx = time.perf_counter() - t0
            gaps = [opt - r.n_granted for opt, r in zip(optima, results)]
            rows.append(
                (
                    k,
                    d,
                    policy,
                    int(np.max(gaps)),
                    float(np.mean(gaps)),
                    corollary1_bound(d) if policy == "shortest" else d - 1,
                    t_exact / t_approx,
                )
            )
    print(
        format_table(
            ["k", "d", "policy", "max deficit", "mean deficit",
             "worst-case bound", "speedup vs BFA"],
            rows,
            title=f"Single-break approximation over {TRIALS} saturated "
            "instances per row",
            float_fmt=".3f",
        )
    )
    print(
        "\nReading: the shortest-edge policy (Corollary 1) rarely loses even"
        "\none match in practice, while running ~d times fewer reduced-graph"
        "\npasses — the paper's suggested trade-off when the time slot is"
        "\ntight or hardware is scarce."
    )


if __name__ == "__main__":
    main()
