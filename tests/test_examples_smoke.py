"""Smoke tests: the fast example scripts run to completion.

The two long-running simulation studies (`packet_switch_simulation.py`,
`burst_switching.py`, `approximation_tradeoff.py`) are exercised by the
equivalent experiments instead; here the quick scripts are executed for
real so the documented entry points cannot rot.
"""

import runpy
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.skipif(not EXAMPLES.exists(), reason="examples directory missing")
class TestExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "granted 6, dropped 1" in out
        assert "matches the maximum matching size (6)" in out

    def test_hardware_pipeline(self, capsys):
        out = _run("hardware_pipeline.py", capsys)
        assert "FA unit: 8 cycles" in out
        assert "BFA parallel" in out or "BFA serial" in out
        assert "datapath:" in out

    def test_analysis_tour(self, capsys):
        out = _run("analysis_tour.py", capsys)
        assert "no augmenting path" in out
        assert "Erlang-B" in out
        assert "Corollary-1 bound" in out

    def test_service_demo(self, capsys):
        out = _run("service_demo.py", capsys)
        assert "interactive request" in out
        assert "grant latency" in out
        assert "conservation check" in out

    def test_chaos_demo(self, capsys):
        out = _run("chaos_demo.py", capsys)
        assert "restarted 1x" in out
        assert "retries through the outage" in out
        assert "conservation check under chaos" in out

    def test_recovery_demo(self, capsys):
        out = _run("recovery_demo.py", capsys)
        assert "recovered from snapshot+journal" in out
        assert "bit-identical to the uninterrupted baseline" in out
        assert "busy[] matches the pre-death state exactly" in out
        assert "refused as DUPLICATE" in out
        assert "replayed the original grant" in out

    def test_net_demo(self, capsys):
        out = _run("net_demo.py", capsys)
        assert "handshake: protocol v4" in out
        assert "over TCP (conservation: True)" in out
        assert "matches pre-kill state exactly: True" in out
        assert "clean shutdown" in out

    def test_all_examples_importable(self):
        """Every example parses (catches syntax rot in the slow ones too)."""
        for script in sorted(EXAMPLES.glob("*.py")):
            source = script.read_text()
            compile(source, str(script), "exec")
        assert len(list(EXAMPLES.glob("*.py"))) >= 6

    def test_examples_do_not_leak_sys_path(self):
        assert str(EXAMPLES) not in sys.path
