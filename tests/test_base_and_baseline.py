"""Tests for schedule validation, ScheduleResult, and baseline schedulers."""

import pytest
from hypothesis import given, settings

from repro.core.base import make_result, validate_schedule
from repro.core.baseline import GloverScheduler, HopcroftKarpScheduler
from repro.core.full_range import FullRangeScheduler
from repro.errors import InvalidParameterError, ScheduleError
from repro.graphs.conversion import CircularConversion, FullRangeConversion
from repro.graphs.request_graph import RequestGraph
from repro.types import Grant
from tests.conftest import fullrange_instances, noncircular_instances


@pytest.fixture
def rg6():
    return RequestGraph(CircularConversion(6, 1, 1), [2, 1, 0, 1, 1, 2])


class TestValidateSchedule:
    def test_valid(self, rg6):
        validate_schedule(rg6, [Grant(0, 0), Grant(0, 1)])

    def test_channel_reuse(self, rg6):
        with pytest.raises(ScheduleError, match="assigned twice"):
            validate_schedule(rg6, [Grant(0, 0), Grant(1, 0)])

    def test_occupied_channel(self):
        rg = RequestGraph(
            CircularConversion(6, 1, 1), [1] * 6, [False] + [True] * 5
        )
        with pytest.raises(ScheduleError, match="occupied"):
            validate_schedule(rg, [Grant(0, 0)])

    def test_conversion_infeasible(self, rg6):
        with pytest.raises(ScheduleError, match="converted"):
            validate_schedule(rg6, [Grant(0, 3)])

    def test_overgranted_wavelength(self, rg6):
        with pytest.raises(ScheduleError, match="only"):
            validate_schedule(rg6, [Grant(1, 0), Grant(1, 1), Grant(1, 2)])

    def test_out_of_range_wavelength(self, rg6):
        with pytest.raises(ScheduleError):
            validate_schedule(rg6, [Grant(9, 0)])

    def test_out_of_range_channel(self, rg6):
        with pytest.raises(ScheduleError):
            validate_schedule(rg6, [Grant(0, 9)])


class TestScheduleResult:
    def test_vectors(self, rg6):
        res = make_result(rg6, [Grant(0, 0), Grant(5, 5)], stats={"x": 1})
        assert res.n_granted == 2
        assert res.n_requested == 7
        assert res.n_rejected == 5
        assert res.granted_vector == (1, 0, 0, 0, 0, 1)
        assert res.rejected_vector == (1, 1, 0, 1, 1, 1)
        assert res.channel_assignment == {0: 0, 5: 5}
        assert res.stats == {"x": 1}

    def test_make_result_validates(self, rg6):
        with pytest.raises(ScheduleError):
            make_result(rg6, [Grant(0, 3)])


class TestHopcroftKarpScheduler:
    def test_works_on_any_scheme(self, rg6, paper_noncircular_rg):
        assert HopcroftKarpScheduler().schedule(rg6).n_granted == 6
        assert HopcroftKarpScheduler().schedule(paper_noncircular_rg).n_granted == 6

    def test_stats(self, rg6):
        res = HopcroftKarpScheduler().schedule(rg6)
        assert res.stats["n_left"] == 7
        assert res.stats["n_edges"] == 21

    def test_empty(self):
        rg = RequestGraph(CircularConversion(4, 1, 1), [0, 0, 0, 0])
        assert HopcroftKarpScheduler().schedule(rg).n_granted == 0


class TestGloverScheduler:
    def test_scheme_gate(self, rg6):
        with pytest.raises(InvalidParameterError):
            GloverScheduler().schedule(rg6)

    @settings(max_examples=80, deadline=None)
    @given(noncircular_instances())
    def test_optimal(self, rg):
        assert (
            GloverScheduler().schedule(rg).n_granted
            == HopcroftKarpScheduler().schedule(rg).n_granted
        )


class TestFullRangeScheduler:
    def test_scheme_gate(self, rg6):
        with pytest.raises(InvalidParameterError, match="full range"):
            FullRangeScheduler().schedule(rg6)

    def test_grant_all_when_under_capacity(self):
        rg = RequestGraph(FullRangeConversion(6), [0, 2, 3, 0, 1, 0])
        assert FullRangeScheduler().schedule(rg).n_granted == 6

    def test_cap_at_k(self):
        rg = RequestGraph(FullRangeConversion(3), [2, 2, 2])
        assert FullRangeScheduler().schedule(rg).n_granted == 3

    def test_cap_at_available(self):
        rg = RequestGraph(
            FullRangeConversion(4), [2, 2, 0, 0], [True, False, False, True]
        )
        res = FullRangeScheduler().schedule(rg)
        assert res.n_granted == 2
        assert {g.channel for g in res.grants} == {0, 3}

    @settings(max_examples=60, deadline=None)
    @given(fullrange_instances())
    def test_always_min_of_requests_and_capacity(self, rg):
        res = FullRangeScheduler().schedule(rg)
        assert res.n_granted == min(rg.n_requests, rg.n_available)
