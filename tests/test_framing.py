"""The shared length+CRC32 frame codec (:mod:`repro.util.framing`).

This is the one envelope under both the write-ahead journal and the wire
protocol, so it carries both decode disciplines' property suites:

* the **tolerant walk** (:func:`decode_frames`, journal recovery) must
  round-trip, survive truncation at *any* byte boundary losing at most
  the torn frame, and never raise on corruption;
* the **strict stream decoder** (:class:`FrameDecoder`, TCP) must
  reassemble frames from arbitrary chunkings and turn corruption into a
  typed :class:`~repro.errors.FramingError` — never a hang, never a bare
  ``struct.error``.
"""

import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FramingError, InvalidParameterError
from repro.util.framing import (
    FRAME_HEADER_SIZE,
    FrameDecoder,
    decode_frames,
    encode_frame,
)

payloads_st = st.lists(st.binary(max_size=64), max_size=10)


def encode_all(payloads):
    return b"".join(encode_frame(p) for p in payloads)


class TestTolerantWalk:
    @given(payloads_st)
    def test_round_trip(self, payloads):
        buf = encode_all(payloads)
        decoded, consumed, torn = decode_frames(buf)
        assert decoded == payloads
        assert consumed == len(buf)
        assert not torn

    @given(payloads_st, st.data())
    @settings(max_examples=200)
    def test_truncation_at_any_boundary_keeps_the_prefix(self, payloads, data):
        buf = encode_all(payloads)
        cut = data.draw(st.integers(min_value=0, max_value=len(buf)))
        decoded, consumed, torn = decode_frames(buf[:cut])
        assert decoded == payloads[: len(decoded)]
        assert consumed <= cut
        boundaries = {0}
        off = 0
        for p in payloads:
            off += FRAME_HEADER_SIZE + len(p)
            boundaries.add(off)
        assert torn == (cut not in boundaries)
        # Everything before the cut frame survived.
        assert len(decoded) >= sum(1 for b in sorted(boundaries) if b <= cut) - 1

    @given(payloads_st, st.data())
    @settings(max_examples=200)
    def test_single_byte_corruption_never_raises(self, payloads, data):
        buf = bytearray(encode_all(payloads))
        if not buf:
            return
        pos = data.draw(st.integers(min_value=0, max_value=len(buf) - 1))
        flip = data.draw(st.integers(min_value=1, max_value=255))
        buf[pos] ^= flip
        decoded, _consumed, _torn = decode_frames(bytes(buf))
        # Frames fully before the corrupted byte decode unchanged.
        intact = 0
        off = 0
        for p in payloads:
            end = off + FRAME_HEADER_SIZE + len(p)
            if end <= pos:
                intact += 1
                off = end
            else:
                break
        assert decoded[:intact] == payloads[:intact]

    def test_absurd_length_header_is_torn_not_a_huge_alloc(self):
        buf = struct.pack("!II", 2**31, 0) + b"xx"
        decoded, consumed, torn = decode_frames(buf)
        assert decoded == [] and consumed == 0 and torn

    def test_bounds_treat_out_of_range_length_as_torn(self):
        small = encode_frame(b"ab")
        decoded, consumed, torn = decode_frames(small, min_payload=3)
        assert decoded == [] and consumed == 0 and torn
        decoded, consumed, torn = decode_frames(small, max_payload=1)
        assert decoded == [] and consumed == 0 and torn
        # In-bounds decodes normally under the same limits.
        big = encode_frame(b"abcd")
        decoded, consumed, torn = decode_frames(
            small + big, min_payload=0, max_payload=4
        )
        assert decoded == [b"ab", b"abcd"] and not torn

    def test_oversized_encode_rejected(self):
        class FakeLen(bytes):
            def __len__(self):
                return 0x1_0000_0000

        with pytest.raises(InvalidParameterError):
            encode_frame(FakeLen())


class TestStrictStream:
    @given(payloads_st, st.data())
    @settings(max_examples=200)
    def test_reassembles_any_chunking(self, payloads, data):
        buf = encode_all(payloads)
        dec = FrameDecoder()
        out = []
        pos = 0
        while pos < len(buf):
            step = data.draw(
                st.integers(min_value=1, max_value=len(buf) - pos)
            )
            out.extend(dec.feed(buf[pos : pos + step]))
            pos += step
        out.extend(dec.feed(b""))
        assert out == payloads
        assert dec.at_boundary

    def test_partial_frame_is_not_at_boundary(self):
        dec = FrameDecoder()
        buf = encode_frame(b"hello")
        assert dec.feed(buf[:-2]) == []
        assert not dec.at_boundary
        assert dec.buffered == len(buf) - 2
        assert dec.feed(buf[-2:]) == [b"hello"]
        assert dec.at_boundary

    def test_crc_mismatch_raises_typed_error_and_poisons(self):
        buf = bytearray(encode_frame(b"payload"))
        buf[-1] ^= 0xFF
        dec = FrameDecoder()
        with pytest.raises(FramingError):
            dec.feed(bytes(buf))
        with pytest.raises(FramingError):
            dec.feed(b"")

    def test_oversized_length_raises_before_buffering(self):
        dec = FrameDecoder(max_payload=16)
        with pytest.raises(FramingError):
            dec.feed(struct.pack("!II", 17, 0))

    @given(st.binary(max_size=256))
    @settings(max_examples=200)
    def test_garbage_never_raises_anything_untyped(self, junk):
        """Arbitrary bytes either decode, buffer, or raise FramingError."""
        dec = FrameDecoder(max_payload=64)
        try:
            dec.feed(junk)
        except FramingError:
            pass

    def test_invalid_max_payload_rejected(self):
        with pytest.raises(InvalidParameterError):
            FrameDecoder(max_payload=0)


class TestJournalReusesCodec:
    def test_journal_envelope_is_the_shared_frame(self):
        """No drift: a journal record *is* a frame around its body."""
        from repro.service.journal import JournalRecord, RecordType, encode_record

        rec = encode_record(JournalRecord(RecordType.ADVANCE, 7, (1, 2)))
        payloads, consumed, torn = decode_frames(rec)
        assert len(payloads) == 1 and consumed == len(rec) and not torn
        body = payloads[0]
        assert rec == encode_frame(body)
        assert zlib.crc32(body) == struct.unpack("!II", rec[:8])[1]
