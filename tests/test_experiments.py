"""Tests for the experiment registry and every registered experiment.

Each paper artifact's reproduction must run and pass its own checks — this
is the executable form of EXPERIMENTS.md.  Heavier experiments run with
reduced trial counts where they accept parameters.
"""

import io

import pytest

import repro.experiments  # noqa: F401  (registers everything)
from repro.errors import InvalidParameterError
from repro.experiments.registry import (
    ExperimentResult,
    all_experiments,
    get_experiment,
    run_experiment,
)
from repro.experiments.report import render_report, run_all


EXPECTED_IDS = {
    "FIG2", "FIG3", "FIG4", "FIG5",
    "TAB1", "TAB2", "TAB3",
    "INTRO", "APPROX",
    "CPLX-K", "CPLX-N", "CPLX-HK",
    "PERF-D", "MULTI", "FAIR", "HW",
    "QOS", "WFQ", "ANALYT", "BATCH", "ASYNC", "ABLATE",
    "PERF-TYPE", "PERF-BURST", "PERF-K",
}


class TestRegistry:
    def test_all_artifacts_registered(self):
        ids = {eid for eid, _ in all_experiments()}
        assert ids == EXPECTED_IDS

    def test_unknown_experiment(self):
        with pytest.raises(InvalidParameterError, match="unknown experiment"):
            get_experiment("FIG99")

    def test_result_render_contains_checks(self):
        res = ExperimentResult(
            "X", "title", ("table",), {"ok": True, "bad": False}, ("n",)
        )
        out = res.render()
        assert "[PASS] ok" in out
        assert "[FAIL] bad" in out
        assert "note: n" in out
        assert not res.passed

    def test_duplicate_registration_rejected(self):
        from repro.experiments.registry import experiment

        with pytest.raises(InvalidParameterError, match="twice"):
            experiment("FIG2", "dup")(lambda: None)


class TestFigureExperiments:
    @pytest.mark.parametrize("eid", ["FIG2", "FIG3", "FIG4", "FIG5", "INTRO"])
    def test_figure_reproductions_pass(self, eid):
        res = run_experiment(eid)
        assert res.passed, res.render()
        assert res.tables


class TestAlgorithmExperiments:
    def test_tab1(self):
        res = run_experiment("TAB1", trials=10)
        assert res.passed, res.render()

    def test_tab2(self):
        res = run_experiment("TAB2", trials=8)
        assert res.passed, res.render()

    def test_tab3(self):
        res = run_experiment("TAB3", trials=8)
        assert res.passed, res.render()

    def test_approx(self):
        res = run_experiment("APPROX", trials=30)
        assert res.passed, res.render()


class TestSimulationExperiments:
    def test_perf_d_small(self):
        res = run_experiment("PERF-D", n_fibers=4, k=8, slots=120)
        assert res.passed, res.render()

    def test_multi_small(self):
        res = run_experiment("MULTI", trials=25, slots=120)
        assert res.passed, res.render()

    def test_fair_small(self):
        res = run_experiment("FAIR", n_fibers=4, k=6, slots=200)
        assert res.passed, res.render()

    def test_wfq_small(self):
        res = run_experiment("WFQ", n_fibers=4, k=6, slots=300)
        assert res.passed, res.render()

    def test_hw(self):
        res = run_experiment("HW")
        assert res.passed, res.render()


class TestExtensionExperiments:
    def test_qos_small(self):
        res = run_experiment("QOS", trials=40)
        assert res.passed, res.render()

    def test_analyt_small(self):
        res = run_experiment("ANALYT", n_fibers=4, k=8, slots=250)
        assert res.passed, res.render()

    def test_batch_small(self):
        # Default sizes: the speedup checks are calibrated to M=256/k=64
        # (FA) and M=1024 (BFA); smaller batches sit near the crossover.
        res = run_experiment("BATCH")
        assert res.passed, res.render()

    def test_async_small(self):
        res = run_experiment(
            "ASYNC", n_fibers=2, k=8, erlangs=6.0, sim_time=1500.0
        )
        assert res.passed, res.render()

    def test_ablate_small(self):
        res = run_experiment("ABLATE", trials=40)
        assert res.passed, res.render()

    def test_perf_type_small(self):
        res = run_experiment("PERF-TYPE", n_fibers=4, k=8, slots=150)
        assert res.passed, res.render()

    def test_perf_burst_small(self):
        res = run_experiment("PERF-BURST", n_fibers=4, k=8, slots=200)
        assert res.passed, res.render()

    def test_perf_k_small(self):
        res = run_experiment("PERF-K", n_fibers=4, slots=250)
        assert res.passed, res.render()


class TestReport:
    def test_run_all_subset_and_render(self):
        results = run_all(["FIG2", "INTRO"])
        buf = io.StringIO()
        ok = render_report(results, buf)
        text = buf.getvalue()
        assert ok
        assert "FIG2" in text and "INTRO" in text
        assert "2/2 experiments passed" in text
