"""Tests for the First Available schedulers (paper Table 2, Theorem 1)."""

import pytest
from hypothesis import given, settings

from repro.analysis.verify import assert_maximum_schedule
from repro.core.baseline import HopcroftKarpScheduler
from repro.core.first_available import (
    FirstAvailableReferenceScheduler,
    FirstAvailableScheduler,
    first_available_fast,
)
from repro.errors import InvalidParameterError
from repro.graphs.conversion import FullRangeConversion, NonCircularConversion
from repro.graphs.request_graph import RequestGraph
from tests.conftest import (
    PAPER_VECTOR,
    fullrange_instances,
    noncircular_instances,
)


class TestFastFunction:
    def test_empty(self):
        assert first_available_fast([0, 0, 0], [True] * 3, 1, 1) == []

    def test_grants_in_channel_order(self):
        grants = first_available_fast([1, 1, 1], [True] * 3, 1, 1)
        assert [g.channel for g in grants] == [0, 1, 2]

    def test_first_vertex_rule(self):
        # Channel 0 window is [0-f, 0+e] = wavelengths {0, 1} (e=f=1):
        # wavelength 0 must win even though 1 also fits.
        grants = first_available_fast([1, 1, 0], [True] * 3, 1, 1)
        assert grants[0].wavelength == 0 and grants[0].channel == 0

    def test_respects_window(self):
        # e = f = 0: identity conversion only.
        grants = first_available_fast([0, 2, 0], [True] * 3, 0, 0)
        assert len(grants) == 1
        assert grants[0] == grants[0].__class__(wavelength=1, channel=1)

    def test_availability_mask(self):
        grants = first_available_fast([1, 1, 1], [False, True, False], 1, 1)
        assert len(grants) == 1
        assert grants[0].channel == 1

    def test_mask_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            first_available_fast([1], [True, True], 0, 0)

    def test_paper_example(self):
        # Fig. 3(b)/4(b): vector [2,1,0,1,1,2], k=6, e=f=1 -> 6 granted.
        grants = first_available_fast(list(PAPER_VECTOR), [True] * 6, 1, 1)
        assert len(grants) == 6

    def test_k_one(self):
        assert len(first_available_fast([3], [True], 0, 0)) == 1


class TestScheduler:
    def test_scheme_gate(self, paper_circular_rg):
        with pytest.raises(InvalidParameterError, match="non-circular"):
            FirstAvailableScheduler().schedule(paper_circular_rg)

    def test_supports(self, paper_circular_rg, paper_noncircular_rg):
        s = FirstAvailableScheduler()
        assert not s.supports(paper_circular_rg)
        assert s.supports(paper_noncircular_rg)

    def test_accepts_full_range(self):
        rg = RequestGraph(FullRangeConversion(4), [2, 0, 1, 0])
        res = FirstAvailableScheduler().schedule(rg)
        assert res.n_granted == 3

    def test_result_consistency(self, paper_noncircular_rg):
        res = FirstAvailableScheduler().schedule(paper_noncircular_rg)
        assert res.n_requested == 7
        assert res.n_granted == 6
        assert res.n_rejected == 1
        assert sum(res.granted_vector) == 6
        assert sum(res.rejected_vector) == 1
        assert res.request_vector == PAPER_VECTOR

    def test_stats_present(self, paper_noncircular_rg):
        res = FirstAvailableScheduler().schedule(paper_noncircular_rg)
        assert res.stats["channels_scanned"] == 6

    @settings(max_examples=120, deadline=None)
    @given(noncircular_instances())
    def test_theorem1_optimality(self, rg):
        """FA cardinality == Hopcroft–Karp on every non-circular instance."""
        res = FirstAvailableScheduler().schedule(rg)
        opt = HopcroftKarpScheduler().schedule(rg)
        assert res.n_granted == opt.n_granted
        assert_maximum_schedule(rg, res)

    @settings(max_examples=120, deadline=None)
    @given(noncircular_instances())
    def test_fast_equals_reference(self, rg):
        fast = FirstAvailableScheduler().schedule(rg)
        ref = FirstAvailableReferenceScheduler().schedule(rg)
        # Identical grants, not just identical cardinality.
        assert sorted((g.wavelength, g.channel) for g in fast.grants) == sorted(
            (g.wavelength, g.channel) for g in ref.grants
        )

    @settings(max_examples=60, deadline=None)
    @given(fullrange_instances())
    def test_full_range_optimality(self, rg):
        res = FirstAvailableScheduler().schedule(rg)
        assert res.n_granted == min(rg.n_requests, rg.n_available)


class TestReferenceScheduler:
    def test_matches_paper_figure4(self, paper_noncircular_rg):
        res = FirstAvailableReferenceScheduler().schedule(paper_noncircular_rg)
        assert res.n_granted == 6

    def test_scheme_gate(self, paper_circular_rg):
        with pytest.raises(InvalidParameterError):
            FirstAvailableReferenceScheduler().schedule(paper_circular_rg)


class TestEdgeConversionShapes:
    @pytest.mark.parametrize("e,f", [(0, 0), (0, 2), (2, 0), (3, 1)])
    def test_asymmetric_reaches_optimal(self, e, f, rng):
        hk = HopcroftKarpScheduler()
        for _ in range(30):
            k = int(rng.integers(max(1, e + f + 1), 10))
            vec = rng.integers(0, 3, size=k).tolist()
            rg = RequestGraph(NonCircularConversion(k, e, f), vec)
            assert (
                FirstAvailableScheduler().schedule(rg).n_granted
                == hk.schedule(rg).n_granted
            )
