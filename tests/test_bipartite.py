"""Tests for the explicit bipartite-graph substrate."""

import pytest

from repro.errors import InvalidGraphError
from repro.graphs.bipartite import BipartiteGraph


@pytest.fixture
def small() -> BipartiteGraph:
    return BipartiteGraph(3, 4, [(0, 0), (0, 1), (1, 1), (2, 3)])


class TestConstruction:
    def test_counts(self, small):
        assert small.n_left == 3
        assert small.n_right == 4
        assert small.n_edges == 4

    def test_empty_graph(self):
        g = BipartiteGraph(0, 0)
        assert g.n_edges == 0

    def test_rejects_out_of_range_left(self):
        with pytest.raises(InvalidGraphError):
            BipartiteGraph(2, 2, [(2, 0)])

    def test_rejects_out_of_range_right(self):
        with pytest.raises(InvalidGraphError):
            BipartiteGraph(2, 2, [(0, 2)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(InvalidGraphError):
            BipartiteGraph(2, 2, [(0, 0), (0, 0)])

    def test_rejects_negative_sizes(self):
        with pytest.raises(Exception):
            BipartiteGraph(-1, 2)


class TestAccessors:
    def test_neighbors_sorted(self):
        g = BipartiteGraph(1, 5, [(0, 4), (0, 1), (0, 3)])
        assert g.neighbors_of_left(0) == (1, 3, 4)

    def test_neighbors_of_right(self, small):
        assert small.neighbors_of_right(1) == (0, 1)
        assert small.neighbors_of_right(2) == ()

    def test_degrees(self, small):
        assert small.degree_left(0) == 2
        assert small.degree_right(3) == 1

    def test_has_edge(self, small):
        assert small.has_edge(0, 0)
        assert not small.has_edge(0, 3)

    def test_iter_edges_sorted(self, small):
        assert list(small.iter_edges_sorted()) == [(0, 0), (0, 1), (1, 1), (2, 3)]

    def test_equality_and_hash(self):
        g1 = BipartiteGraph(2, 2, [(0, 0), (1, 1)])
        g2 = BipartiteGraph(2, 2, [(1, 1), (0, 0)])
        g3 = BipartiteGraph(2, 2, [(0, 1)])
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert g1 != g3
        assert g1 != "not a graph"

    def test_repr(self, small):
        assert "BipartiteGraph" in repr(small)


class TestDerivedGraphs:
    def test_induced_subgraph(self, small):
        sub, left_map, right_map = small.induced_subgraph([0, 2], [1, 3])
        assert left_map == [0, 2]
        assert right_map == [1, 3]
        assert sub.n_left == 2 and sub.n_right == 2
        assert sub.edges() == frozenset({(0, 0), (1, 1)})  # a0-b1, a2-b3

    def test_induced_subgraph_rejects_foreign_vertex(self, small):
        with pytest.raises(InvalidGraphError):
            small.induced_subgraph([5], [0])
        with pytest.raises(InvalidGraphError):
            small.induced_subgraph([0], [9])

    def test_without_edges(self, small):
        g = small.without_edges([(0, 0)])
        assert not g.has_edge(0, 0)
        assert g.n_edges == 3

    def test_without_edges_missing(self, small):
        with pytest.raises(InvalidGraphError):
            small.without_edges([(2, 0)])

    def test_reorder_roundtrip(self, small):
        left_order = [2, 0, 1]
        right_order = [3, 2, 1, 0]
        g = small.reorder(left_order, right_order)
        # edge (2,3) becomes (0,0)
        assert g.has_edge(0, 0)
        assert g.n_edges == small.n_edges

    def test_reorder_rejects_non_permutation(self, small):
        with pytest.raises(InvalidGraphError):
            small.reorder([0, 0, 1], [0, 1, 2, 3])
        with pytest.raises(InvalidGraphError):
            small.reorder([0, 1, 2], [0, 1, 2, 2])
