"""Property suite for :class:`~repro.core.policies.WeightedFairPolicy`.

The QoS contract the service layer builds on, stated as hypothesis
properties instead of example tests:

* **Conservation** — a selection never grants more than the channel count,
  never invents an input fiber, never grants one twice.
* **Weight respect** — from a fresh start, one deficit round (``Σw``
  allocations under full backlog) hands each tenant *exactly* its weight
  in channels; over longer windows shares track ``w_t / Σw``.
* **Starvation-freedom** — a continuously backlogged tenant waits at most
  ``2 · ceil(Σw / w_t)`` allocations between wins, even when the other
  tenants' backlogs come and go arbitrarily.
* **State round-trip** — ``export_state`` → JSON → ``restore_state``
  reproduces the winner sequence decision-for-decision, and operations on
  one output fiber never perturb another's (the property that lets the
  per-shard journals snapshot policy state independently).
"""

from __future__ import annotations

import json
import math

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributed import SlotRequest
from repro.core.policies import WeightedFairPolicy

MAX_TENANTS = 5

#: tenant id -> weight, at least one tenant.
weights_st = st.dictionaries(
    st.integers(min_value=0, max_value=MAX_TENANTS - 1),
    st.integers(min_value=1, max_value=6),
    min_size=1,
    max_size=MAX_TENANTS,
)

#: A contention round: the subset of tenants with backlog (by index into
#: the sorted tenant list) plus how many channels are free.
_round_st = st.tuples(
    st.sets(st.integers(min_value=0, max_value=MAX_TENANTS - 1), min_size=1),
    st.integers(min_value=1, max_value=3),
)


def _requests(tenants):
    """One request per backlogged tenant; input fiber == tenant id keeps
    requesters unique and makes winners attributable to tenants."""
    return [SlotRequest(t, 0, 0, tenant=t) for t in sorted(tenants)]


class TestConservation:
    @given(
        weights_st,
        st.lists(st.integers(min_value=0, max_value=9), unique=True, min_size=1),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=3),
    )
    def test_grants_are_a_subset_without_duplicates(
        self, weights, fibers, n, output
    ):
        policy = WeightedFairPolicy(weights)
        requests = [
            SlotRequest(f, 0, output, tenant=f % MAX_TENANTS) for f in fibers
        ]
        winners = policy.select_requests(output, 0, requests, n)
        assert len(winners) == min(n, len(fibers))
        assert len(set(winners)) == len(winners)
        assert set(winners) <= set(fibers)

    @given(weights_st, st.lists(_round_st, max_size=30))
    def test_conservation_holds_across_arbitrary_rounds(self, weights, rounds):
        policy = WeightedFairPolicy(weights)
        tenants = sorted(weights)
        for subset_idx, n in rounds:
            present = {tenants[i % len(tenants)] for i in subset_idx}
            requests = _requests(present)
            winners = policy.select_requests(0, 0, requests, n)
            assert len(winners) == min(n, len(present))
            assert set(winners) <= present


class TestWeightRespect:
    @given(weights_st)
    def test_one_deficit_round_is_exact(self, weights):
        """From a fresh start, the first ``Σw`` single-channel allocations
        under full backlog give every tenant exactly its weight."""
        policy = WeightedFairPolicy(weights)
        total = sum(weights.values())
        wins = {t: 0 for t in weights}
        for _ in range(total):
            [winner] = policy.select_requests(0, 0, _requests(weights), 1)
            wins[winner] += 1
        assert wins == dict(weights)

    @given(weights_st, st.integers(min_value=1, max_value=5))
    def test_long_run_shares_track_weights(self, weights, rounds):
        policy = WeightedFairPolicy(weights)
        total = sum(weights.values())
        slots = rounds * total
        wins = {t: 0 for t in weights}
        for _ in range(slots):
            [winner] = policy.select_requests(0, 0, _requests(weights), 1)
            wins[winner] += 1
        for t, w in weights.items():
            # O(1) deficit: at most one round's worth of drift, ever.
            assert abs(wins[t] - slots * w / total) <= total


class TestStarvationFreedom:
    @pytest.mark.slow
    @given(weights_st, st.data())
    @settings(max_examples=200)
    def test_backlogged_tenant_always_wins_within_bound(self, weights, data):
        """Tenant ``victim`` stays backlogged while the others flicker
        arbitrarily; its win gap stays within ``2·ceil(Σw / w_victim)``."""
        policy = WeightedFairPolicy(weights)
        tenants = sorted(weights)
        victim = data.draw(st.sampled_from(tenants))
        total = sum(weights.values())
        bound = 2 * math.ceil(total / weights[victim])
        last_win = -1
        for i in range(4 * bound):
            others = data.draw(
                st.sets(st.sampled_from(tenants)) if len(tenants) > 1
                else st.just(set())
            )
            present = others | {victim}
            [winner] = policy.select_requests(0, 0, _requests(present), 1)
            if winner == victim:
                last_win = i
            assert i - last_win <= bound, (
                f"tenant {victim} (w={weights[victim]}) starved for "
                f"{i - last_win} allocations, bound {bound}"
            )


class TestStateRoundTrip:
    @given(weights_st, st.lists(_round_st, max_size=20), st.lists(_round_st, max_size=20))
    def test_json_round_trip_preserves_decisions(
        self, weights, warmup, replay
    ):
        """Export after arbitrary warm-up, push through real JSON, restore
        into a fresh policy: the two must agree decision-for-decision."""
        policy = WeightedFairPolicy(weights)
        tenants = sorted(weights)
        for subset_idx, n in warmup:
            present = {tenants[i % len(tenants)] for i in subset_idx}
            policy.select_requests(0, 0, _requests(present), n)

        clone = WeightedFairPolicy(weights)
        clone.restore_state(json.loads(json.dumps(policy.export_state())))
        for subset_idx, n in replay:
            present = {tenants[i % len(tenants)] for i in subset_idx}
            assert policy.select_requests(
                0, 0, _requests(present), n
            ) == clone.select_requests(0, 0, _requests(present), n)

    @given(weights_st, st.lists(_round_st, max_size=20))
    def test_output_fibers_are_independent(self, weights, rounds):
        """Interleaving traffic on other output fibers never changes the
        winner sequence on fiber 0 — the ``state_partitioned_by_output``
        claim the multi-process shard placement relies on."""
        quiet = WeightedFairPolicy(weights)
        noisy = WeightedFairPolicy(weights)
        tenants = sorted(weights)
        for j, (subset_idx, n) in enumerate(rounds):
            present = {tenants[i % len(tenants)] for i in subset_idx}
            # Noise on fibers 1..3, only for the noisy policy.
            noisy.select_requests(1 + j % 3, 0, _requests(present), n)
            assert quiet.select_requests(
                0, 0, _requests(present), n
            ) == noisy.select_requests(0, 0, _requests(present), n)
