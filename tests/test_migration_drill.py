"""The PR-9 acceptance drill: live resharding under fire.

One seeded run interleaves **three live migrations** with 20 slots of
Bernoulli traffic:

* a plain engine-driven move (``migrate_shard``);
* a move whose destination process is poisoned to die (``os._exit``)
  *mid-handoff*, immediately after journaling the adopted replica — the
  pool's respawn+redeliver machinery must heal it;
* an autoscaler-initiated split under the drill's own queue pressure.

The audit, against a migration-free reference run on identical traffic:

* **bit-identity** — every slot's grant set (winners *and* assigned
  channels) and reject set match the reference exactly;
* **conservation** — ``submitted == granted + every reject reason`` in
  the telemetry counters, and every future resolved exactly once;
* **exactly-once** — a ``request_id`` granted before a migration replays
  the *same* grant when retried after its shard has moved owners.

Everything is seeded; a failure reproduces exactly.
"""

import asyncio

import pytest

pytestmark = [pytest.mark.net, pytest.mark.slow]

from repro.core.distributed import SlotRequest
from repro.core.first_available import FirstAvailableScheduler
from repro.graphs.conversion import NonCircularConversion
from repro.net.procpool import POISON_AFTER_ADOPT
from repro.net.procservice import ProcessShardedService
from repro.service import Rejected, RejectReason, ServiceGrant
from repro.service.autoscaler import Autoscaler, AutoscalerConfig
from repro.sim.duration import DeterministicDuration
from repro.sim.traffic import BernoulliTraffic
from repro.util.rng import spawn_rngs

SEED = 20030422
N_FIBERS = 4
K = 3
N_SLOTS = 20
LOAD = 0.9

PLAIN_MIGRATE_AT = 4
SIGKILL_MIGRATE_AT = 9
AUTOSCALE_AT = 14
PROBE_SLOT = 2


def _traffic():
    return BernoulliTraffic(
        N_FIBERS, K, load=LOAD, durations=DeterministicDuration(2)
    )


def _drive(drill: bool):
    """One full run; ``drill=True`` adds the three migrations."""
    traffic = _traffic()
    traffic_rng, _ = spawn_rngs(SEED, 2)

    async def go():
        service = ProcessShardedService(
            N_FIBERS,
            NonCircularConversion(K, 1, 1),
            FirstAvailableScheduler(),
            n_workers=2,
            dedup_capacity=32,
        )
        scaler = Autoscaler(
            service,
            AutoscalerConfig(
                high_watermark=2,
                low_watermark=1,
                hysteresis_ticks=1,
                cooldown_ticks=0,
                min_workers=1,
                max_workers=3,
            ),
        )
        slots = []
        reports = []
        probe_first = probe_replay = None
        respawned_worker = None
        try:
            for slot in range(N_SLOTS):
                if drill and slot == PLAIN_MIGRATE_AT:
                    destination = 1 - service.placement[0]
                    reports.append(service.migrate_shard(0, destination))
                if drill and slot == SIGKILL_MIGRATE_AT:
                    destination = 1 - service.placement[2]
                    service.pool.call(
                        destination, "poison", POISON_AFTER_ADOPT
                    )
                    reports.append(service.migrate_shard(2, destination))
                    respawned_worker = destination
                pairs = []
                for p in traffic.arrivals(slot, traffic_rng):
                    r = SlotRequest(
                        p.input_fiber,
                        p.wavelength,
                        p.output_fiber,
                        p.duration,
                        p.priority,
                    )
                    pairs.append((r, service.submit_nowait(r)))
                if slot == PROBE_SLOT:
                    # The exactly-once probe rides along in BOTH runs so
                    # the recorded slots stay comparable.
                    probe_first = service.submit_nowait(
                        SlotRequest(0, 0, 0), request_id="drill-probe"
                    )
                if drill and slot == AUTOSCALE_AT:
                    # Queues are deep pre-tick: one observation is enough
                    # for the 1-tick-hysteresis scaler to split.
                    decision = scaler.observe()
                    assert decision is not None
                    assert decision.action == "split"
                    assert decision.new_worker == 2
                    reports.extend(decision.reports)
                await service.tick()
                granted = set()
                rejected = set()
                for r, f in pairs:
                    out = f.result()
                    if isinstance(out, ServiceGrant):
                        granted.add(
                            (
                                r.input_fiber,
                                r.wavelength,
                                r.output_fiber,
                                out.channel,
                            )
                        )
                    else:
                        rejected.add(
                            (
                                r.input_fiber,
                                r.wavelength,
                                r.output_fiber,
                                out.reason.value,
                            )
                        )
                slots.append({"granted": granted, "rejected": rejected})
            # Retry the probe id after every migration has happened: the
            # original grant must replay, not reschedule.
            probe_replay = service.submit_nowait(
                SlotRequest(0, 0, 0), request_id="drill-probe"
            )
            out_first = await asyncio.wait_for(probe_first, 10)
            out_replay = await asyncio.wait_for(probe_replay, 10)
            counters = dict(service.telemetry.counters())
            if respawned_worker is not None:
                respawns = service.pool._workers[respawned_worker].respawns
            else:
                respawns = 0
            placement = dict(service.placement)
            workers = service.active_workers()
        finally:
            await service.stop()
        return {
            "slots": slots,
            "reports": reports,
            "counters": counters,
            "probe": (out_first, out_replay),
            "respawns": respawns,
            "placement": placement,
            "workers": workers,
        }

    return asyncio.run(go())


def _conservation(counters):
    granted = counters.get("server.granted", 0)
    rejected = sum(
        n
        for name, n in counters.items()
        if name.startswith("server.rejected.")
    )
    terminal = sum(
        counters.get(f"server.{name}", 0)
        for name in ("dropped", "timed_out", "shutdown", "duplicate")
    )
    return counters.get("server.submitted", 0), granted + rejected + terminal


def test_migration_drill_is_bit_identical_to_reference():
    reference = _drive(drill=False)
    drilled = _drive(drill=True)

    # Three live migrations actually happened (the split may move more
    # than one shard — each move is its own report).
    assert len(drilled["reports"]) >= 3
    assert {r.shard for r in drilled["reports"][:2]} == {0, 2}
    assert all(not r.resumed for r in drilled["reports"])
    # The poisoned destination died mid-handoff and was respawned.
    assert drilled["respawns"] == 1
    # The split brought worker 2 into the fleet with real ownership.
    assert drilled["workers"] == [0, 1, 2]
    assert 2 in drilled["placement"].values()

    # Bit-identity, slot by slot.
    assert len(drilled["slots"]) == len(reference["slots"]) == N_SLOTS
    for slot, (ref, got) in enumerate(
        zip(reference["slots"], drilled["slots"])
    ):
        assert got["granted"] == ref["granted"], f"slot {slot} grants drifted"
        assert got["rejected"] == ref["rejected"], f"slot {slot} rejects drifted"
    # The workload exercised contention and multi-slot blocking.
    assert sum(len(s["granted"]) for s in reference["slots"]) > 0
    assert any(
        reason == RejectReason.CONTENTION.value
        for s in reference["slots"]
        for (_, _, _, reason) in s["rejected"]
    )

    # Conservation holds on both sides of the drill.
    for run in (reference, drilled):
        submitted, resolved = _conservation(run["counters"])
        assert submitted == resolved
        # Exactly-once: the retried id replayed the original grant.
        first, replay = run["probe"]
        assert isinstance(first, ServiceGrant)
        assert replay is first
        assert run["counters"].get("server.duplicate", 0) == 1


def test_drill_reference_run_makes_no_migrations():
    reference = _drive(drill=False)
    assert reference["reports"] == []
    assert reference["workers"] == [0, 1]
