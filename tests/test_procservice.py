"""The multi-process sharded service: semantics, crashes, recovery.

Worker processes are spawned (not forked), so each service bring-up
costs real time — the tests share stacks where the scenarios allow it.
"""

import asyncio

import pytest

pytestmark = [pytest.mark.net, pytest.mark.slow]

from repro.core.distributed import SlotRequest
from repro.core.first_available import FirstAvailableScheduler
from repro.core.policies import RandomPolicy
from repro.errors import InvalidParameterError, WorkerProcessError
from repro.graphs.conversion import NonCircularConversion
from repro.net.procpool import (
    POISON_AFTER_GRANT,
    POISON_BEFORE_REPLY,
    POISON_STALL,
    ProcessShardPool,
)
from repro.net.procservice import ProcessShardedService
from repro.service.breaker import BreakerConfig
from repro.service.queue import OverflowPolicy
from repro.service.server import Rejected, RejectReason, ServiceGrant

N_FIBERS, K = 4, 3


def _service(**kwargs) -> ProcessShardedService:
    kwargs.setdefault("n_workers", 2)
    return ProcessShardedService(
        N_FIBERS,
        NonCircularConversion(K, 1, 1),
        FirstAvailableScheduler(),
        **kwargs,
    )


def run(coro):
    return asyncio.run(coro)


class TestConstruction:
    def test_stateful_policy_is_accepted(self):
        # Pre-resharding builds refused policies that do not partition by
        # output; stateful mode now threads the canonical policy state
        # through per-shard run_shard calls (see docs/SERVICE.md).
        async def go():
            service = _service(policy=RandomPolicy(seed=1))
            try:
                assert service._stateful
            finally:
                await service.stop()

        run(go())

    def test_placement_covers_every_shard(self):
        async def go():
            service = _service()
            try:
                placement = service.placement
                assert sorted(placement) == list(range(N_FIBERS))
                assert set(placement.values()) <= set(
                    range(service.n_workers)
                )
                # Both workers own shards (bounded-load floor).
                assert len(set(placement.values())) == 2
            finally:
                await service.stop()

        run(go())


class TestTickSemantics:
    def test_grants_contention_and_busy_cross_process(self):
        async def go():
            service = _service()
            try:
                # Three inputs race for output 0 wavelength 0 (reachable
                # channels {0, 1} under (1,1) conversion — some must lose);
                # an independent request on another shard lands too.
                futs = [
                    service.submit_nowait(SlotRequest(i, 0, 0, duration=3))
                    for i in range(3)
                ]
                futs.append(service.submit_nowait(SlotRequest(3, 1, 1)))
                n = await service.tick()
                outcomes = [await f for f in futs]
                grants = [o for o in outcomes if isinstance(o, ServiceGrant)]
                rejects = [o for o in outcomes if isinstance(o, Rejected)]
                assert n == len(grants)
                assert len(grants) + len(rejects) == 4
                # wl 0 reaches 2 channels: the 3-way race grants exactly 2.
                assert sum(
                    1 for g in grants if g.request.output_fiber == 0
                ) == 2
                assert any(g.request.output_fiber == 1 for g in grants)
                assert all(
                    r.reason is RejectReason.CONTENTION for r in rejects
                )
                # The owning worker's busy[] reflects the duration-3 hold
                # (one tick already elapsed at commit).
                busy0 = service.worker_busy(0)
                assert max(busy0) == 2
                # Idle shards' clocks advanced too (no stuck channels).
                assert all(b == 0 for b in service.worker_busy(2))
            finally:
                await service.stop()

        run(go())

    def test_conservation_over_random_load(self):
        async def go():
            import random

            rng = random.Random(42)
            service = _service()
            try:
                futures = []
                for _ in range(60):
                    futures.append(
                        service.submit_nowait(
                            SlotRequest(
                                rng.randrange(N_FIBERS),
                                rng.randrange(K),
                                rng.randrange(N_FIBERS),
                            )
                        )
                    )
                    if rng.random() < 0.3:
                        await service.tick()
                await service.drain()
                # A queue drained at the admission layer can still hold
                # blocked requeues; a few extra ticks settle everything.
                outcomes = await asyncio.wait_for(
                    asyncio.gather(*futures), 30
                )
                granted = sum(
                    1 for o in outcomes if isinstance(o, ServiceGrant)
                )
                rejected = sum(1 for o in outcomes if isinstance(o, Rejected))
                assert granted + rejected == 60
                assert granted > 0
            finally:
                await service.stop()

        run(go())

    def test_dedup_replays_grant_exactly_once(self):
        async def go():
            service = _service(dedup_capacity=16)
            try:
                f1 = service.submit_nowait(
                    SlotRequest(0, 0, 0), request_id="req-1"
                )
                await service.tick()
                out1 = await f1
                assert isinstance(out1, ServiceGrant)
                # Same id again: the original grant replays, nothing is
                # scheduled twice.
                f2 = service.submit_nowait(
                    SlotRequest(0, 0, 0), request_id="req-1"
                )
                out2 = await f2
                assert out2 is out1
                assert service.queue_depth_total == 0
            finally:
                await service.stop()

        run(go())

    def test_queue_overflow_rejects(self):
        async def go():
            service = _service(queue_capacity=2)
            try:
                futs = [
                    service.submit_nowait(SlotRequest(i % N_FIBERS, 0, 0))
                    for i in range(3)
                ]
                out = await futs[2]
                assert isinstance(out, Rejected)
                assert out.reason is RejectReason.QUEUE_FULL
            finally:
                await service.stop()

        run(go())

    def test_stop_flushes_queued_as_shutdown(self):
        async def go():
            service = _service()
            fut = service.submit_nowait(SlotRequest(0, 0, 0))
            await service.stop()
            out = await fut
            assert isinstance(out, Rejected)
            assert out.reason is RejectReason.SHUTDOWN

        run(go())


class TestCrashRecovery:
    def test_kill_worker_respawns_with_busy_intact(self, tmp_path):
        async def go():
            service = _service(journal_dir=tmp_path)
            try:
                fut = service.submit_nowait(SlotRequest(0, 0, 0, duration=5))
                await service.tick()
                assert isinstance(await fut, ServiceGrant)
                busy_before = service.worker_busy(0)
                assert max(busy_before) == 4
                victim = service.placement[0]
                service.kill_worker(victim)
                # The next access respawns the worker; journal replay
                # rebuilds the channel clock exactly.
                assert service.worker_busy(0) == busy_before
                # And ticking still works (clock keeps decaying).
                await service.tick()
                assert max(service.worker_busy(0)) == 3
            finally:
                await service.stop()

        run(go())

    def test_poison_after_grant_redelivery_is_idempotent(self, tmp_path):
        """Worker dies between journaling grants and advancing: the
        parent's retry re-runs the tick on the respawned worker, which
        strips the uncommitted write-ahead and re-schedules — the caller
        sees exactly one grant."""

        async def go():
            service = _service(journal_dir=tmp_path)
            try:
                victim = service.placement[0]
                service.pool.call(victim, "poison", POISON_AFTER_GRANT)
                fut = service.submit_nowait(SlotRequest(0, 0, 0, duration=2))
                n = await service.tick()
                out = await fut
                assert n == 1
                assert isinstance(out, ServiceGrant)
                assert max(service.worker_busy(0)) == 1
                # Exactly one respawn happened.
                assert service.pool._workers[victim].respawns == 1
            finally:
                await service.stop()

        run(go())

    def test_poison_before_reply_answers_from_journal(self, tmp_path):
        """Worker dies after completing the tick but before replying: the
        redelivered tick is behind the recovered clock, so the respawned
        worker answers from the journal — same grants, not re-scheduled
        against the already-advanced busy[]."""

        async def go():
            service = _service(journal_dir=tmp_path)
            try:
                victim = service.placement[0]
                service.pool.call(victim, "poison", POISON_BEFORE_REPLY)
                fut = service.submit_nowait(SlotRequest(0, 0, 0, duration=4))
                n = await service.tick()
                out = await fut
                assert n == 1
                assert isinstance(out, ServiceGrant)
                # The completed tick advanced before the kill; the journal
                # answer must not double-apply the hold or re-advance.
                assert max(service.worker_busy(0)) == 3
            finally:
                await service.stop()

        run(go())


class TestPoolEdges:
    def test_call_after_stop_raises_typed(self):
        pool = ProcessShardPool(
            N_FIBERS,
            NonCircularConversion(K, 1, 1),
            FirstAvailableScheduler(),
            None,
            n_workers=1,
        )
        pool.stop()
        pool.stop()  # idempotent
        with pytest.raises(WorkerProcessError, match="stopped"):
            pool.call(0, "busy")

    def test_unknown_op_is_a_typed_error(self):
        pool = ProcessShardPool(
            N_FIBERS,
            NonCircularConversion(K, 1, 1),
            FirstAvailableScheduler(),
            None,
            n_workers=1,
        )
        try:
            with pytest.raises(WorkerProcessError, match="unknown op"):
                pool.call(0, "no-such-op")
        finally:
            pool.stop()


class TestPartitionUnavailable:
    """Edge↔worker partitions degrade to typed UNAVAILABLE rejects and
    feed the breakers; healing replays missed slots (PR 10)."""

    def test_partition_degrades_then_heals(self):
        async def go():
            service = _service(
                breaker=BreakerConfig(failure_threshold=1, reset_ticks=2)
            )
            try:
                victim = service.placement[0]
                dark = set(service.pool.shards_of(victim))
                healthy_out = next(
                    o for o in range(N_FIBERS) if o not in dark
                )
                service.pool.partition_worker(victim)

                # Slot 0: the dark shard's request degrades UNAVAILABLE;
                # the healthy worker's shard still grants — a partition
                # never blows up the whole tick.
                f_dark = service.submit_nowait(SlotRequest(0, 0, 0))
                f_ok = service.submit_nowait(SlotRequest(1, 0, healthy_out))
                await service.tick()
                out = await f_dark
                assert isinstance(out, Rejected)
                assert out.reason is RejectReason.UNAVAILABLE
                assert isinstance(await f_ok, ServiceGrant)

                # The failure opened shard 0's breaker: the next submit
                # short-circuits CIRCUIT_OPEN without touching the pool.
                out = await service.submit_nowait(SlotRequest(0, 0, 0))
                assert isinstance(out, Rejected)
                assert out.reason is RejectReason.CIRCUIT_OPEN

                # Heal.  The next ticks redeliver the missed slots to the
                # worker (catch-up ADVANCE), and once reset_ticks elapse
                # the half-open probe goes through and closes the breaker.
                service.pool.partition_worker(victim, active=False)
                await service.tick()
                await service.tick()
                f_probe = service.submit_nowait(SlotRequest(0, 0, 0))
                await service.tick()
                assert isinstance(await f_probe, ServiceGrant)

                counters = service.telemetry.snapshot()["counters"]
                assert counters["server.rejected.unavailable"] == 1
                assert counters["server.rejected.circuit_open"] == 1
                # Conservation: every submission resolved exactly once.
                assert counters["server.submitted"] == 4
                assert counters["server.granted"] == 2
                assert (
                    counters["server.granted"]
                    + counters["server.rejected.unavailable"]
                    + counters["server.rejected.circuit_open"]
                    == counters["server.submitted"]
                )
            finally:
                await service.stop()

        run(go())

    def test_partitioned_call_fails_fast_without_respawn(self):
        pool = ProcessShardPool(
            N_FIBERS,
            NonCircularConversion(K, 1, 1),
            FirstAvailableScheduler(),
            None,
            n_workers=1,
        )
        try:
            pool.partition_worker(0)
            with pytest.raises(WorkerProcessError, match="partitioned"):
                pool.call(0, "busy")
            # The process is alive the whole time — a partition is a
            # network condition, not a crash.
            assert pool._workers[0].respawns == 0
            pool.partition_worker(0, active=False)
            pool.call(0, "busy")  # healed: answers again
        finally:
            pool.stop()


class TestUnresponsiveWorker:
    """A wedged (not dead) worker trips the pool's receive timeout and is
    killed + respawned — configurable, observable, fast (PR 10)."""

    def test_stalled_worker_is_replaced_within_timeout(self):
        async def go():
            service = _service(unresponsive_timeout=0.3)
            try:
                victim = service.placement[0]
                # Wedge the worker for far longer than the pool tolerates
                # (but far less than the legacy hardwired 30 s).
                service.pool.call(victim, "poison", POISON_STALL, 2.0)
                loop = asyncio.get_running_loop()
                t0 = loop.time()
                fut = service.submit_nowait(SlotRequest(0, 0, 0))
                n = await service.tick()
                out = await fut
                elapsed = loop.time() - t0
                assert n == 1
                assert isinstance(out, ServiceGrant)
                # One kill + respawn, attributed in telemetry.
                assert service.pool._workers[victim].respawns == 1
                counters = service.telemetry.snapshot()["counters"]
                assert counters["procpool.unresponsive"] >= 1
                # The whole recovery ran on the configured budget, not
                # the old 30-second constant.
                assert elapsed < 10.0
            finally:
                await service.stop()

        run(go())

    def test_unresponsive_timeout_is_validated(self):
        with pytest.raises(InvalidParameterError, match="unresponsive"):
            ProcessShardPool(
                N_FIBERS,
                NonCircularConversion(K, 1, 1),
                FirstAvailableScheduler(),
                None,
                n_workers=1,
                unresponsive_timeout=0.0,
            )
