"""Shared fixtures and hypothesis strategies for the test suite.

Hypothesis profiles (see docs/TESTING.md):

* ``default`` — derandomized, so a local run is reproducible and a
  property that passed yesterday cannot flake today on a new seed.
* ``ci`` — 3× the examples *with* fresh randomness: CI is where new
  counterexamples should be hunted, and a failure there ships a
  reproducing seed in the hypothesis output.
* ``thorough`` — 10× examples for a deep local sweep.

Select with ``HYPOTHESIS_PROFILE=ci pytest`` (the env var loses to an
explicit ``--hypothesis-profile`` flag, which hypothesis applies after
``load_profile``).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st

settings.register_profile("default", deadline=None, derandomize=True)
settings.register_profile("ci", deadline=None, max_examples=300)
settings.register_profile("thorough", deadline=None, max_examples=1000)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

from repro.graphs.conversion import (
    CircularConversion,
    FullRangeConversion,
    NonCircularConversion,
)
from repro.graphs.request_graph import RequestGraph

# The paper's running example: k=6, e=f=1, request vector [2,1,0,1,1,2].
PAPER_K = 6
PAPER_VECTOR = (2, 1, 0, 1, 1, 2)


@pytest.fixture
def paper_circular_scheme() -> CircularConversion:
    return CircularConversion(PAPER_K, 1, 1)


@pytest.fixture
def paper_noncircular_scheme() -> NonCircularConversion:
    return NonCircularConversion(PAPER_K, 1, 1)


@pytest.fixture
def paper_circular_rg(paper_circular_scheme) -> RequestGraph:
    return RequestGraph(paper_circular_scheme, PAPER_VECTOR)


@pytest.fixture
def paper_noncircular_rg(paper_noncircular_scheme) -> RequestGraph:
    return RequestGraph(paper_noncircular_scheme, PAPER_VECTOR)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

@st.composite
def conversion_params(draw, max_k: int = 12, max_reach: int = 4):
    """(k, e, f) with e + f + 1 <= k."""
    k = draw(st.integers(min_value=1, max_value=max_k))
    e = draw(st.integers(min_value=0, max_value=min(max_reach, k - 1)))
    f = draw(st.integers(min_value=0, max_value=min(max_reach, k - 1 - e)))
    return k, e, f


@st.composite
def circular_instances(draw, max_k: int = 12, max_count: int = 3):
    """A random circular-conversion RequestGraph (with availability mask)."""
    k, e, f = draw(conversion_params(max_k=max_k))
    vec = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_count),
            min_size=k,
            max_size=k,
        )
    )
    available = draw(
        st.one_of(
            st.none(),
            st.lists(st.booleans(), min_size=k, max_size=k),
        )
    )
    return RequestGraph(CircularConversion(k, e, f), vec, available)


@st.composite
def noncircular_instances(draw, max_k: int = 12, max_count: int = 3):
    """A random non-circular-conversion RequestGraph."""
    k, e, f = draw(conversion_params(max_k=max_k))
    vec = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_count),
            min_size=k,
            max_size=k,
        )
    )
    available = draw(
        st.one_of(
            st.none(),
            st.lists(st.booleans(), min_size=k, max_size=k),
        )
    )
    return RequestGraph(NonCircularConversion(k, e, f), vec, available)


@st.composite
def fullrange_instances(draw, max_k: int = 10, max_count: int = 3):
    """A random full-range RequestGraph."""
    k = draw(st.integers(min_value=1, max_value=max_k))
    vec = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_count),
            min_size=k,
            max_size=k,
        )
    )
    return RequestGraph(FullRangeConversion(k), vec)
