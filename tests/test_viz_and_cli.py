"""Tests for ASCII rendering, the simulation CLI, the experiments CLI and
the replication harness."""

import pytest

from repro.analysis.viz import render_request_graph, render_schedule
from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.experiments.__main__ import main as experiments_main
from repro.experiments.replication import replicate
from repro.graphs.hopcroft_karp import hopcroft_karp
from repro.graphs.request_graph import RequestGraph
from repro.sim.__main__ import main as sim_main


class TestRenderRequestGraph:
    def test_paper_example(self, paper_circular_rg):
        out = render_request_graph(paper_circular_rg)
        assert "a0 (λ0)" in out
        assert "{b5, b0, b1}" in out or "{b0, b1, b5}" in out

    def test_with_matching(self, paper_circular_rg):
        m = hopcroft_karp(paper_circular_rg.graph)
        out = render_request_graph(paper_circular_rg, m)
        assert "|M| = 6" in out
        assert "matched" in out

    def test_occupied_channels_listed(self, paper_circular_scheme):
        rg = RequestGraph(
            paper_circular_scheme, (2, 1, 0, 1, 1, 2),
            [True, False, True, True, True, True],
        )
        out = render_request_graph(rg)
        assert "occupied channels [1]" in out

    def test_invalid_matching_rejected(self, paper_circular_rg):
        from repro.graphs.matching import Matching

        with pytest.raises(Exception):
            render_request_graph(paper_circular_rg, Matching([(0, 3)]))


class TestRenderSchedule:
    def test_states(self, paper_circular_scheme):
        rg = RequestGraph(
            paper_circular_scheme, (2, 1, 0, 1, 1, 2),
            [True, False, True, True, True, True],
        )
        res = BreakFirstAvailableScheduler().schedule(rg)
        out = render_schedule(rg, res)
        assert "b1: occupied" in out
        assert "<- λ" in out
        assert "dropped:" in out


class TestSimCli:
    def test_single_seed(self, capsys):
        assert sim_main(
            ["--fibers", "2", "--wavelengths", "4", "--slots", "30"]
        ) == 0
        out = capsys.readouterr().out
        assert "loss_probability" in out

    def test_full_range_and_bursty(self, capsys):
        assert sim_main(
            [
                "--fibers", "2", "--wavelengths", "4", "--slots", "30",
                "--degree", "full", "--traffic", "bursty",
            ]
        ) == 0
        assert "utilization" in capsys.readouterr().out

    def test_fast_flag(self, capsys):
        assert sim_main(
            ["--fibers", "4", "--wavelengths", "8", "--slots", "60", "--fast"]
        ) == 0
        assert "loss_probability" in capsys.readouterr().out

    def test_fast_flag_rejects_multislot(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            sim_main(
                ["--slots", "10", "--fast", "--mean-duration", "3"]
            )

    def test_replicated(self, capsys):
        assert sim_main(
            [
                "--fibers", "2", "--wavelengths", "4", "--slots", "30",
                "--seeds", "3", "--mean-duration", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "ci lo" in out


class TestExperimentsCli:
    def test_list(self, capsys):
        assert experiments_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "FIG2" in out and "TAB3" in out

    def test_run_selected(self, capsys):
        assert experiments_main(["FIG2", "INTRO"]) == 0
        out = capsys.readouterr().out
        assert "2/2 experiments passed" in out

    def test_output_file(self, capsys, tmp_path):
        target = tmp_path / "report.txt"
        assert experiments_main(["FIG2", "--output", str(target)]) == 0
        capsys.readouterr()
        text = target.read_text()
        assert "FIG2" in text and "1/1 experiments passed" in text


class TestReplication:
    def _run(self, seed: int):
        from repro.graphs.conversion import CircularConversion
        from repro.sim.engine import SlottedSimulator
        from repro.sim.traffic import BernoulliTraffic

        sim = SlottedSimulator(
            2,
            CircularConversion(4, 1, 1),
            BreakFirstAvailableScheduler(),
            BernoulliTraffic(2, 4, 0.8),
            seed=seed,
        )
        return sim.run(40)

    def test_replicate_count(self):
        report = replicate(self._run, seeds=3)
        assert report["loss_probability"].n_seeds == 3
        assert len(report.results) == 3

    def test_interval_brackets_mean(self):
        report = replicate(self._run, seeds=4)
        m = report["acceptance_ratio"]
        assert m.lo <= m.mean <= m.hi
        assert m.half_width >= 0

    def test_explicit_seeds(self):
        a = replicate(self._run, seeds=[7, 8])
        b = replicate(self._run, seeds=[7, 8])
        assert a["loss_probability"].mean == b["loss_probability"].mean

    def test_rows(self):
        report = replicate(self._run, seeds=2)
        rows = report.rows(["loss_probability", "utilization"])
        assert len(rows) == 2
        assert rows[0][0] == "loss_probability"
