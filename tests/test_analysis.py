"""Tests for the analysis utilities (bounds, certificates, generators)."""

import numpy as np
import pytest

from repro.analysis.bounds import approximation_gap, corollary1_bound
from repro.analysis.instances import (
    random_circular_instance,
    random_noncircular_instance,
    random_request_vector,
)
from repro.analysis.verify import (
    assert_maximum_schedule,
    matching_from_result,
    optimal_cardinality,
)
from repro.core.base import make_result
from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.errors import InvalidParameterError, ScheduleError
from repro.graphs.conversion import CircularConversion, NonCircularConversion
from repro.graphs.request_graph import RequestGraph
from repro.types import Grant


class TestVerify:
    def test_matching_from_result_valid(self, paper_circular_rg):
        res = BreakFirstAvailableScheduler().schedule(paper_circular_rg)
        m = matching_from_result(paper_circular_rg, res)
        assert len(m) == res.n_granted

    def test_matching_from_result_infeasible_grant(self, paper_circular_rg):
        # Hand-built result bypassing make_result's validation is caught.
        from repro.types import ScheduleResult

        bogus = ScheduleResult(
            grants=(Grant(2, 2),),  # λ2 has zero requests
            request_vector=paper_circular_rg.request_vector,
            available=paper_circular_rg.available,
        )
        with pytest.raises(ScheduleError):
            matching_from_result(paper_circular_rg, bogus)

    def test_optimal_cardinality(self, paper_circular_rg):
        assert optimal_cardinality(paper_circular_rg) == 6

    def test_assert_maximum_accepts_optimal(self, paper_circular_rg):
        res = BreakFirstAvailableScheduler().schedule(paper_circular_rg)
        assert_maximum_schedule(paper_circular_rg, res)

    def test_assert_maximum_rejects_submaximal(self, paper_circular_rg):
        res = make_result(paper_circular_rg, [Grant(0, 0)])
        with pytest.raises(ScheduleError, match="augmenting"):
            assert_maximum_schedule(paper_circular_rg, res)


class TestBounds:
    def test_corollary1_rejects_bad_degree(self):
        with pytest.raises(InvalidParameterError):
            corollary1_bound(0)

    def test_approximation_gap_nonnegative(self, paper_circular_rg):
        from repro.core.approx import SingleBreakScheduler

        opt, got, gap = approximation_gap(
            paper_circular_rg, SingleBreakScheduler("plus-end")
        )
        assert gap == opt - got
        assert gap >= 0


class TestInstanceGenerators:
    def test_request_vector_shape(self):
        vec = random_request_vector(8, 16, 0.9, rng=3)
        assert len(vec) == 8
        assert all(isinstance(x, int) and 0 <= x <= 16 for x in vec)

    def test_request_vector_load_scaling(self):
        rng = np.random.default_rng(0)
        light = np.mean(
            [sum(random_request_vector(16, 8, 0.1, rng)) for _ in range(200)]
        )
        heavy = np.mean(
            [sum(random_request_vector(16, 8, 0.9, rng)) for _ in range(200)]
        )
        # Expected totals: k * load.
        assert abs(light - 1.6) < 0.5
        assert abs(heavy - 14.4) < 1.5

    def test_request_vector_validation(self):
        with pytest.raises(InvalidParameterError):
            random_request_vector(0, 8, 0.5)
        with pytest.raises(InvalidParameterError):
            random_request_vector(8, 8, 1.5)

    def test_circular_instance_types(self):
        rg = random_circular_instance(8, 1, 1, rng=1)
        assert isinstance(rg, RequestGraph)
        assert isinstance(rg.scheme, CircularConversion)
        assert all(rg.available)  # default: no occupied channels

    def test_noncircular_instance_types(self):
        rg = random_noncircular_instance(8, 1, 2, rng=1)
        assert isinstance(rg.scheme, NonCircularConversion)

    def test_occupied_fraction(self):
        rng = np.random.default_rng(2)
        occupied = 0
        total = 0
        for _ in range(100):
            rg = random_circular_instance(
                10, 1, 1, occupied_fraction=0.4, rng=rng
            )
            occupied += 10 - rg.n_available
            total += 10
        assert 0.3 < occupied / total < 0.5

    def test_reproducible_with_int_seed(self):
        a = random_circular_instance(8, 1, 1, rng=42)
        b = random_circular_instance(8, 1, 1, rng=42)
        assert a == b
