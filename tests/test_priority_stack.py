"""Tests for full-stack priority scheduling: SlotRequest classes through the
distributed layer, traffic models, engine and per-class metrics."""

import pytest

from repro.core.baseline import HopcroftKarpScheduler
from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.distributed import DistributedScheduler, SlotRequest
from repro.errors import InvalidParameterError
from repro.graphs.conversion import CircularConversion
from repro.graphs.request_graph import RequestGraph
from repro.sim.engine import SlottedSimulator
from repro.sim.traffic import BernoulliTraffic


@pytest.fixture
def scheme():
    return CircularConversion(6, 1, 1)


@pytest.fixture
def ds(scheme):
    return DistributedScheduler(4, scheme, BreakFirstAvailableScheduler())


class TestDistributedPriorities:
    def test_negative_priority_rejected(self, ds):
        with pytest.raises(InvalidParameterError):
            ds.schedule_slot([SlotRequest(0, 0, 0, priority=-1)])

    def test_single_class_unchanged(self, ds):
        reqs = [SlotRequest(i, 2, 0, priority=1) for i in range(4)]
        schedule = ds.schedule_slot(reqs)
        assert schedule.n_granted == 3  # λ2's window is 3 channels

    def test_high_class_preempts_channels(self, ds):
        # Three high-class λ2 requests saturate λ2's window {1,2,3}; one
        # low-class λ2 request must lose.
        reqs = [SlotRequest(i, 2, 0, priority=0) for i in range(3)]
        reqs.append(SlotRequest(3, 2, 0, priority=1))
        schedule = ds.schedule_slot(reqs)
        assert schedule.n_granted == 3
        assert all(g.request.priority == 0 for g in schedule.granted)
        assert schedule.rejected[0].priority == 1

    def test_low_class_gets_leftovers(self, ds):
        reqs = [
            SlotRequest(0, 2, 0, priority=0),
            SlotRequest(1, 2, 0, priority=1),
        ]
        schedule = ds.schedule_slot(reqs)
        assert schedule.n_granted == 2
        channels = {g.request.priority: g.channel for g in schedule.granted}
        assert channels[0] != channels[1]

    def test_per_class_maximality(self, ds, scheme):
        """Class 0 gets a maximum matching as if class 1 did not exist."""
        reqs = [SlotRequest(i, w, 0, priority=0) for i, w in ((0, 0), (1, 0), (2, 1))]
        reqs += [SlotRequest(i, w, 0, priority=1) for i, w in ((3, 0), (0, 1), (1, 5))]
        schedule = ds.schedule_slot(reqs)
        high_vec = [0] * 6
        for r in reqs:
            if r.priority == 0:
                high_vec[r.wavelength] += 1
        opt_high = HopcroftKarpScheduler().schedule(
            RequestGraph(scheme, high_vec)
        )
        granted_high = sum(
            1 for g in schedule.granted if g.request.priority == 0
        )
        assert granted_high == opt_high.n_granted

    def test_combined_result_reported(self, ds):
        reqs = [
            SlotRequest(0, 2, 0, priority=0),
            SlotRequest(1, 2, 0, priority=1),
        ]
        schedule = ds.schedule_slot(reqs)
        result = schedule.per_output[0]
        assert result.stats.get("priority_classes") == 2
        assert result.n_granted == 2

    def test_availability_respected_across_classes(self, ds):
        mask = [False, True, False, True, False, False]
        reqs = [
            SlotRequest(0, 2, 0, priority=0),
            SlotRequest(1, 2, 0, priority=1),
        ]
        schedule = ds.schedule_slot(reqs, availability={0: mask})
        assert schedule.n_granted == 2
        assert {g.channel for g in schedule.granted} == {1, 3}

    def test_three_classes_disjoint_channels(self, ds):
        reqs = [
            SlotRequest(i, w, 0, priority=p)
            for p in range(3)
            for i, w in [(p, 1), ((p + 1) % 4, 2)]
        ]
        schedule = ds.schedule_slot(reqs)
        channels = [g.channel for g in schedule.granted]
        assert len(channels) == len(set(channels))


class TestTrafficPriorities:
    def test_weights_validation(self):
        with pytest.raises(InvalidParameterError):
            BernoulliTraffic(2, 4, 0.5, priority_weights=[])
        with pytest.raises(InvalidParameterError):
            BernoulliTraffic(2, 4, 0.5, priority_weights=[-1.0, 2.0])
        with pytest.raises(InvalidParameterError):
            BernoulliTraffic(2, 4, 0.5, priority_weights=[0.0, 0.0])

    def test_default_single_class(self, rng):
        tr = BernoulliTraffic(2, 4, 1.0)
        assert all(p.priority == 0 for p in tr.arrivals(0, rng))

    def test_class_mix_statistics(self, rng):
        tr = BernoulliTraffic(2, 8, 1.0, priority_weights=[1, 3])
        counts = {0: 0, 1: 0}
        for s in range(100):
            for p in tr.arrivals(s, rng):
                counts[p.priority] += 1
        frac = counts[1] / (counts[0] + counts[1])
        assert 0.70 < frac < 0.80


class TestEnginePriorities:
    def test_per_class_loss_ordering(self):
        scheme = CircularConversion(8, 1, 1)
        tr = BernoulliTraffic(4, 8, load=0.95, priority_weights=[0.3, 0.7])
        sim = SlottedSimulator(
            4, scheme, BreakFirstAvailableScheduler(), tr, seed=3
        )
        res = sim.run(200, warmup=20)
        loss = res.metrics.loss_by_class()
        assert set(loss) == {0, 1}
        assert loss[0] < loss[1]
        assert loss[0] < 0.02  # near-lossless high class at this load

    def test_single_class_traffic_has_one_entry(self):
        scheme = CircularConversion(6, 1, 1)
        sim = SlottedSimulator(
            2,
            scheme,
            BreakFirstAvailableScheduler(),
            BernoulliTraffic(2, 6, 0.8),
            seed=1,
        )
        res = sim.run(30)
        assert set(res.metrics.loss_by_class()) <= {0}
