"""The TCP front door: handshake, submissions, ticks, shutdown hygiene.

The hygiene tests pin the satellite contract of PR 6: cancelled or
abandoned submissions must close their sockets/transports cleanly — no
"Task was destroyed but it is pending" warnings, no leaked file
descriptors under repeated connect/cancel cycles.
"""

import asyncio
import gc
import os
import warnings

import pytest

pytestmark = pytest.mark.net

from repro.core.distributed import SlotRequest
from repro.core.first_available import FirstAvailableScheduler
from repro.core.policies import WeightedFairPolicy
from repro.errors import ProtocolError
from repro.graphs.conversion import NonCircularConversion
from repro.net import protocol as proto
from repro.net.client import NetClient
from repro.net.server import NetServer
from repro.service import OverflowPolicy, SchedulingService, TenantAdmission
from repro.service.server import Rejected, RejectReason
from repro.util.framing import encode_frame

N_FIBERS, K = 4, 3


def _service() -> SchedulingService:
    return SchedulingService(
        N_FIBERS,
        NonCircularConversion(K, 1, 1),
        FirstAvailableScheduler(),
        durability=False,
    )


async def _stack():
    service = _service()
    server = NetServer(service)
    await server.start()
    return service, server


def run(coro):
    return asyncio.run(coro)


class TestHandshake:
    def test_welcome_carries_shape(self):
        async def go():
            service, server = await _stack()
            client = await NetClient.connect("127.0.0.1", server.port)
            try:
                assert client.version == max(proto.PROTOCOL_VERSIONS) == 4
                assert client.n_fibers == N_FIBERS
                assert client.k == K
            finally:
                await client.close()
                await server.stop()
                await service.stop()

        run(go())

    def test_no_common_version_is_refused(self):
        async def go():
            service, server = await _stack()
            try:
                with pytest.raises(ProtocolError, match="handshake refused"):
                    await NetClient.connect(
                        "127.0.0.1", server.port, versions=(99,)
                    )
            finally:
                await server.stop()
                await service.stop()

        run(go())

    def test_message_before_hello_is_refused(self):
        async def go():
            service, server = await _stack()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    encode_frame(proto.encode_message(proto.TickAdvance(1)))
                )
                await writer.drain()
                data = await asyncio.wait_for(reader.read(4096), 5)
                msg = proto.decode_message(data[8:])  # one frame
                assert isinstance(msg, proto.ErrorMsg)
                assert msg.code == proto.ErrorCode.HANDSHAKE_REQUIRED
                assert msg.seq == 0
                # ...and the server closes.
                assert await asyncio.wait_for(reader.read(4096), 5) == b""
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()
                await service.stop()

        run(go())

    def test_corrupt_frame_kills_the_connection(self):
        async def go():
            service, server = await _stack()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                frame = bytearray(
                    encode_frame(proto.encode_message(proto.Hello((1,))))
                )
                frame[-1] ^= 0xFF  # poison the payload: CRC now mismatches
                writer.write(bytes(frame))
                await writer.drain()
                # Server answers (best-effort ERROR) and closes; the reader
                # must see EOF, not hang.
                await asyncio.wait_for(reader.read(65536), 5)
                assert await asyncio.wait_for(reader.read(65536), 5) == b""
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()
                await service.stop()

        run(go())


class TestRequests:
    def test_submit_grant_reject_over_tcp(self):
        async def go():
            service, server = await _stack()
            client = await NetClient.connect("127.0.0.1", server.port)
            try:
                # Two requests race for the same (output, wavelength):
                # k=3 channels but only one converter-reachable channel
                # per wavelength under (1,1) — contention is possible.
                futs = [
                    client.submit_nowait(SlotRequest(i, 0, 0))
                    for i in range(3)
                ]
                done = await client.tick(1)
                outcomes = await asyncio.gather(*futs)
                assert done.slot == 1
                grants = [o for o in outcomes if isinstance(o, proto.Grant)]
                rejects = [o for o in outcomes if isinstance(o, proto.Reject)]
                assert len(grants) + len(rejects) == 3
                assert len(grants) == done.granted
                assert all(r.reason is RejectReason.CONTENTION for r in rejects)
            finally:
                await client.close()
                await server.stop()
                await service.stop()

        run(go())

    def test_bad_submit_gets_typed_error_not_hang(self):
        async def go():
            service, server = await _stack()
            client = await NetClient.connect("127.0.0.1", server.port)
            try:
                fut = client.submit_nowait(
                    SlotRequest(0, K + 5, 0)  # wavelength out of range
                )
                with pytest.raises(ProtocolError, match="BAD_REQUEST|error 3"):
                    await asyncio.wait_for(fut, 5)
            finally:
                await client.close()
                await server.stop()
                await service.stop()

        run(go())

    def test_tick_counts_multiple(self):
        async def go():
            service, server = await _stack()
            client = await NetClient.connect("127.0.0.1", server.port)
            try:
                done = await client.tick(5)
                assert done.slot == 5
            finally:
                await client.close()
                await server.stop()
                await service.stop()

        run(go())

    def test_two_clients_share_one_service(self):
        async def go():
            service, server = await _stack()
            a = await NetClient.connect("127.0.0.1", server.port)
            b = await NetClient.connect("127.0.0.1", server.port)
            try:
                fa = a.submit_nowait(SlotRequest(0, 0, 0))
                fb = b.submit_nowait(SlotRequest(1, 1, 1))
                # Cross-connection ordering is not guaranteed: b's submit
                # may still be in flight when a's first tick runs, so tick
                # until both resolve instead of assuming one is enough.
                for _ in range(20):
                    await a.tick(1)
                    if fa.done() and fb.done():
                        break
                ra, rb = await asyncio.wait_for(
                    asyncio.gather(fa, fb), 5
                )
                assert isinstance(ra, proto.Grant)
                assert isinstance(rb, proto.Grant)
            finally:
                await a.close()
                await b.close()
                await server.stop()
                await service.stop()

        run(go())


class TestProtocolInterop:
    """Wire v1/v2 coexistence: old clients keep working against a v2
    server, tenant-aware messages are fenced off v1 connections, and the
    ADMISSION_SHED reject code degrades to its closest v1 semantic."""

    @staticmethod
    def _qos_service() -> SchedulingService:
        weights = {0: 1}
        return SchedulingService(
            N_FIBERS,
            NonCircularConversion(K, 1, 1),
            FirstAvailableScheduler(),
            policy=WeightedFairPolicy(weights),
            queue_capacity=2,
            overflow=OverflowPolicy.SHED,
            admission=TenantAdmission(weights),
            durability=False,
        )

    def test_v1_only_client_negotiates_v1_and_still_schedules(self):
        async def go():
            service, server = await _stack()
            client = await NetClient.connect(
                "127.0.0.1", server.port, versions=(1,)
            )
            try:
                assert client.version == 1
                fut = client.submit_nowait(SlotRequest(0, 0, 0))
                await client.tick(1)
                outcome = await asyncio.wait_for(fut, 5)
                assert isinstance(outcome, proto.Grant)
            finally:
                await client.close()
                await server.stop()
                await service.stop()

        run(go())

    def test_tenant_submit_on_v1_connection_raises_client_side(self):
        async def go():
            service, server = await _stack()
            client = await NetClient.connect(
                "127.0.0.1", server.port, versions=(1,)
            )
            try:
                with pytest.raises(ProtocolError, match="needs protocol >= 2"):
                    client.submit_nowait(SlotRequest(0, 0, 0, tenant=3))
            finally:
                await client.close()
                await server.stop()
                await service.stop()

        run(go())

    def test_forged_tenant_submit_on_v1_gets_bad_request(self):
        """A peer that negotiates v1 and then ships a SUBMIT2 anyway (a
        buggy or hostile client — ours refuses client-side) gets a typed
        BAD_REQUEST, not a grant and not a dead connection."""

        async def go():
            service, server = await _stack()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    encode_frame(proto.encode_message(proto.Hello((1,))))
                )
                await writer.drain()
                data = await asyncio.wait_for(reader.read(4096), 5)
                welcome = proto.decode_message(data[8:])
                assert isinstance(welcome, proto.Welcome)
                assert welcome.version == 1
                # tenant != 0 forces the SUBMIT2 encoding.
                writer.write(
                    encode_frame(
                        proto.encode_message(
                            proto.Submit(1, 0, 0, 0, tenant=5)
                        )
                    )
                )
                await writer.drain()
                data = await asyncio.wait_for(reader.read(4096), 5)
                msg = proto.decode_message(data[8:])
                assert isinstance(msg, proto.ErrorMsg)
                assert msg.seq == 1
                assert msg.code == proto.ErrorCode.BAD_REQUEST
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()
                await service.stop()

        run(go())

    async def _overflow_rejects(self, versions):
        """Drive a SHED-configured service past queue capacity and return
        the Reject outcomes seen by a client speaking ``versions``."""
        service = self._qos_service()
        server = NetServer(service)
        await server.start()
        client = await NetClient.connect(
            "127.0.0.1", server.port, versions=versions
        )
        try:
            futs = [
                client.submit_nowait(SlotRequest(i % N_FIBERS, 0, 0))
                for i in range(6)
            ]
            await client.tick(1)
            outcomes = await asyncio.wait_for(asyncio.gather(*futs), 5)
            return [o for o in outcomes if isinstance(o, proto.Reject)]
        finally:
            await client.close()
            await server.stop()
            await service.stop()

    def test_admission_shed_downgrades_to_dropped_for_v1(self):
        async def go():
            rejects = await self._overflow_rejects((1,))
            # capacity 2, 6 submissions to one shard: sheds are certain.
            dropped = [
                r for r in rejects if r.reason is RejectReason.DROPPED
            ]
            assert len(dropped) >= 1
            assert all(
                r.reason is not RejectReason.ADMISSION_SHED for r in rejects
            )

        run(go())

    def test_admission_shed_reported_verbatim_on_v2(self):
        async def go():
            rejects = await self._overflow_rejects(proto.PROTOCOL_VERSIONS)
            shed = [
                r
                for r in rejects
                if r.reason is RejectReason.ADMISSION_SHED
            ]
            assert len(shed) >= 1
            assert all(
                r.reason is not RejectReason.DROPPED for r in rejects
            )

        run(go())


class TestShutdownHygiene:
    def test_no_pending_task_warnings_on_close(self):
        """Repeated connect/submit/abandon/close cycles leak nothing."""

        async def one_cycle(port):
            client = await NetClient.connect("127.0.0.1", port)
            # Submit and abandon (never tick, never await the future).
            client.submit_nowait(SlotRequest(0, 0, 0))
            await client.close()

        async def go():
            service, server = await _stack()
            try:
                for _ in range(10):
                    await one_cycle(server.port)
            finally:
                await server.stop()
                await service.stop()

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run(go())
            gc.collect()
        destroyed = [
            w for w in caught if "Task was destroyed" in str(w.message)
        ]
        assert destroyed == []

    def test_cancelled_submit_detaches_cleanly(self):
        async def go():
            service, server = await _stack()
            client = await NetClient.connect("127.0.0.1", server.port)
            try:
                task = asyncio.ensure_future(
                    client.submit(SlotRequest(0, 0, 0))
                )
                await asyncio.sleep(0.01)
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                assert client._pending == {}
                # The connection stays usable after a cancelled submit.
                fut = client.submit_nowait(SlotRequest(1, 1, 1))
                await client.tick(1)
                assert isinstance(await fut, proto.Grant)
            finally:
                await client.close()
                await server.stop()
                await service.stop()

        run(go())

    def test_no_fd_leak_under_connect_cancel_cycles(self):
        fd_dir = f"/proc/{os.getpid()}/fd"
        if not os.path.isdir(fd_dir):  # pragma: no cover - non-Linux
            pytest.skip("needs /proc fd accounting")

        async def go():
            service, server = await _stack()
            try:
                # Warm-up (loop machinery opens a few fds lazily).
                for _ in range(3):
                    c = await NetClient.connect("127.0.0.1", server.port)
                    c.submit_nowait(SlotRequest(0, 0, 0))
                    await c.close()
                before = len(os.listdir(fd_dir))
                for _ in range(20):
                    c = await NetClient.connect("127.0.0.1", server.port)
                    task = asyncio.ensure_future(
                        c.submit(SlotRequest(0, 0, 0))
                    )
                    await asyncio.sleep(0)
                    task.cancel()
                    try:
                        await task
                    except asyncio.CancelledError:
                        pass
                    await c.close()
                # Let the server reap its side of the connections.
                await asyncio.sleep(0.05)
                after = len(os.listdir(fd_dir))
                assert after <= before + 2, (
                    f"fd count grew {before} -> {after}"
                )
            finally:
                await server.stop()
                await service.stop()

        run(go())

    def test_double_close_is_idempotent(self):
        async def go():
            service, server = await _stack()
            client = await NetClient.connect("127.0.0.1", server.port)
            await client.close()
            await client.close()
            with pytest.raises(ProtocolError, match="closed"):
                client.submit_nowait(SlotRequest(0, 0, 0))
            await server.stop()
            await service.stop()

        run(go())

    def test_server_stop_closes_live_connections(self):
        async def go():
            service, server = await _stack()
            client = await NetClient.connect("127.0.0.1", server.port)
            await server.stop()
            # The client notices: new work fails fast (either at submit,
            # once the reader has seen EOF, or via the future), close is
            # clean either way.
            with pytest.raises((ProtocolError, ConnectionError, OSError)):
                fut = client.submit_nowait(SlotRequest(0, 0, 0))
                await asyncio.wait_for(fut, 5)
            await client.close()
            await service.stop()

        run(go())


class TestLiveness:
    """Protocol-v4 liveness: handshake deadline, idle reaping (PR 10)."""

    def test_handshake_deadline_sheds_silent_peers(self):
        async def go():
            service = _service()
            server = NetServer(service, handshake_timeout=0.2)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                # Say nothing: the server must shed us, not hold the fd.
                data = await asyncio.wait_for(reader.read(65536), 5)
                msg = proto.decode_message(data[8:])  # one frame
                assert isinstance(msg, proto.ErrorMsg)
                assert msg.code == proto.ErrorCode.HANDSHAKE_REQUIRED
                assert "handshake deadline" in msg.message
                assert await asyncio.wait_for(reader.read(65536), 5) == b""
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()
                await service.stop()

        run(go())

    def test_handshake_within_deadline_is_unaffected(self):
        async def go():
            service = _service()
            server = NetServer(service, handshake_timeout=5.0)
            await server.start()
            client = await NetClient.connect("127.0.0.1", server.port)
            try:
                assert isinstance(await client.ping(), proto.Pong)
            finally:
                await client.close()
                await server.stop()
                await service.stop()

        run(go())

    def test_idle_timeout_reaps_greeted_connections(self):
        async def go():
            service = _service()
            server = NetServer(service, idle_timeout=0.2)
            await server.start()
            client = await NetClient.connect("127.0.0.1", server.port)
            try:
                # Go quiet after the handshake: the server sends BYE and
                # closes.  The client must observe the loss (retryably) —
                # a reaped connection that still looks healthy would trap
                # a resilient wrapper into submitting down a dead pipe.
                await asyncio.sleep(0.5)
                assert not client.healthy
                with pytest.raises(ProtocolError):
                    client._check_open()
            finally:
                await client.close()
                await server.stop()
                await service.stop()

        run(go())

    def test_heartbeats_keep_an_idle_connection_alive(self):
        async def go():
            service = _service()
            server = NetServer(service, idle_timeout=0.4)
            await server.start()
            client = await NetClient.connect("127.0.0.1", server.port)
            try:
                for _ in range(4):
                    await asyncio.sleep(0.2)
                    await asyncio.wait_for(client.ping(), 5)
                # Still greeted and serving after > idle_timeout of
                # wall time, because PINGs reset the idle clock.
                fut = client.submit_nowait(SlotRequest(0, 0, 0))
                await client.tick(1)
                assert isinstance(await asyncio.wait_for(fut, 5), proto.Grant)
            finally:
                await client.close()
                await server.stop()
                await service.stop()

        run(go())

    def test_invalid_timeouts_are_refused(self):
        from repro.errors import InvalidParameterError

        service = _service()
        try:
            with pytest.raises(InvalidParameterError):
                NetServer(service, handshake_timeout=0.0)
            with pytest.raises(InvalidParameterError):
                NetServer(service, idle_timeout=-1.0)
        finally:
            run(service.stop())


class TestTickDeadlines:
    """``timeout_ticks`` end-to-end over the wire: deterministic slot
    deadlines on both the SUBMIT (tenant 0) and SUBMIT2 (tenant != 0)
    paths (PR 10 satellite)."""

    def _deadline_service(self) -> SchedulingService:
        # One grant per tick: later queue entries are drained on later
        # slots, exceeding their tick deadline without any wall-clock
        # sleeping.
        return SchedulingService(
            N_FIBERS,
            NonCircularConversion(K, 1, 1),
            FirstAvailableScheduler(),
            durability=False,
            max_batch_per_tick=1,
            admission=TenantAdmission(default_weight=1),
        )

    def _run_deadline_drill(self, tenant: int):
        async def go():
            service = self._deadline_service()
            server = NetServer(service)
            await server.start()
            client = await NetClient.connect("127.0.0.1", server.port)
            try:
                # One output fiber: the per-shard batch cap (1) spreads
                # the drains over slots 0, 1, 2 — distinct inputs so
                # source admission never interferes.
                futs = [
                    client.submit_nowait(
                        SlotRequest(i, 0, 0, tenant=tenant),
                        timeout_ticks=1,
                    )
                    for i in range(3)
                ]
                for _ in range(4):
                    await client.tick(1)
                outcomes = await asyncio.wait_for(asyncio.gather(*futs), 5)
            finally:
                await client.close()
                await server.stop()
                await service.stop()
            return outcomes

        outcomes = run(go())
        grants = [o for o in outcomes if isinstance(o, proto.Grant)]
        timed_out = [
            o
            for o in outcomes
            if isinstance(o, proto.Reject)
            and o.reason is RejectReason.TIMED_OUT
        ]
        # Deadline slot is submit slot (0) + 1: the slot-0 drain grants
        # exactly one, the slot-1 drain happens at the deadline and every
        # later drain is past it — all deterministic, no wall clock.
        assert len(grants) == 1
        assert grants[0].slot == 0
        assert len(timed_out) == 2
        assert {o.slot for o in timed_out} <= {1, 2, 3}

    def test_submit_path_expires_on_slot_deadline(self):
        self._run_deadline_drill(tenant=0)

    def test_submit2_path_expires_on_slot_deadline(self):
        self._run_deadline_drill(tenant=7)

    def test_timeout_zero_expires_at_first_drain_after_backlog(self):
        async def go():
            service = self._deadline_service()
            server = NetServer(service)
            await server.start()
            client = await NetClient.connect("127.0.0.1", server.port)
            try:
                blocker = client.submit_nowait(SlotRequest(0, 0, 0))
                doomed = client.submit_nowait(
                    SlotRequest(1, 0, 1), timeout_ticks=0
                )
                await client.tick(2)
                b, d = await asyncio.wait_for(
                    asyncio.gather(blocker, doomed), 5
                )
                assert isinstance(b, proto.Grant)
                assert isinstance(d, proto.Reject)
                assert d.reason is RejectReason.TIMED_OUT
            finally:
                await client.close()
                await server.stop()
                await service.stop()

        run(go())


class TestUnavailableDowngrade:
    """UNAVAILABLE joins the wire vocabulary at v4; older peers get the
    closest pre-v4 semantic (SHARD_DOWN)."""

    class _UnavailableService(SchedulingService):
        def submit_nowait(self, request, timeout=None, **kwargs):
            fut = asyncio.get_running_loop().create_future()
            fut.set_result(
                Rejected(request, RejectReason.UNAVAILABLE, slot=None)
            )
            return fut

    async def _reject_seen_by(self, versions):
        service = self._UnavailableService(
            N_FIBERS,
            NonCircularConversion(K, 1, 1),
            FirstAvailableScheduler(),
            durability=False,
        )
        server = NetServer(service)
        await server.start()
        client = await NetClient.connect(
            "127.0.0.1", server.port, versions=versions
        )
        try:
            reply = await asyncio.wait_for(
                client.submit_nowait(SlotRequest(0, 0, 0)), 5
            )
        finally:
            await client.close()
            await server.stop()
            await service.stop()
        assert isinstance(reply, proto.Reject)
        return reply.reason

    def test_v4_peer_sees_unavailable(self):
        assert (
            run(self._reject_seen_by(proto.PROTOCOL_VERSIONS))
            is RejectReason.UNAVAILABLE
        )

    def test_v3_peer_sees_shard_down(self):
        assert (
            run(self._reject_seen_by((1, 2, 3)))
            is RejectReason.SHARD_DOWN
        )
