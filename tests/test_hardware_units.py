"""Tests for the FA / BFA hardware units: cycle counts and bit-for-bit
equivalence with the software schedulers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.break_first_available import bfa_fast
from repro.core.first_available import first_available_fast
from repro.errors import InvalidParameterError
from repro.hardware.bfa_unit import BreakFirstAvailableUnit, ParallelBFAUnit
from repro.hardware.fa_unit import FirstAvailableUnit
from repro.hardware.registers import RequestRegister
from repro.hardware.timing import CycleReport, estimate_time_us


@st.composite
def hw_instances(draw):
    n = draw(st.integers(1, 5))
    k = draw(st.integers(1, 8))
    e = draw(st.integers(0, min(2, k - 1)))
    f = draw(st.integers(0, min(2, k - 1 - e)))
    requests = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, k - 1)),
            unique=True,
            max_size=n * k,
        )
    )
    available = draw(
        st.one_of(st.none(), st.lists(st.booleans(), min_size=k, max_size=k))
    )
    return n, k, e, f, requests, available


def _vec(k, requests):
    vec = [0] * k
    for _i, w in requests:
        vec[w] += 1
    return vec


class TestFAUnit:
    def test_cycles_always_k(self):
        for k in (1, 4, 9):
            reg = RequestRegister(2, k)
            _grants, cycles = FirstAvailableUnit(k, 0, 0).run(reg)
            assert cycles == k

    def test_bad_params(self):
        with pytest.raises(InvalidParameterError):
            FirstAvailableUnit(2, 1, 1)  # degree 3 > k
        with pytest.raises(InvalidParameterError):
            FirstAvailableUnit(4, 1, 1, fiber_select="lifo")

    def test_register_size_mismatch(self):
        with pytest.raises(InvalidParameterError):
            FirstAvailableUnit(4, 1, 1).run(RequestRegister(2, 5))

    def test_mask_length(self):
        with pytest.raises(InvalidParameterError):
            FirstAvailableUnit(4, 1, 1).run(RequestRegister(2, 4), [True])

    def test_grant_cycles_recorded(self):
        reg = RequestRegister.from_requests(1, 4, [(0, 0), (0, 1)])
        grants, _ = FirstAvailableUnit(4, 1, 1).run(reg)
        assert [g.cycle for g in grants] == sorted(g.cycle for g in grants)

    def test_round_robin_fiber_rotation(self):
        unit = FirstAvailableUnit(2, 0, 0, fiber_select="round-robin")
        winners = []
        for _ in range(4):
            reg = RequestRegister.from_requests(2, 2, [(0, 0), (1, 0)])
            grants, _ = unit.run(reg)
            winners.append(grants[0].input_fiber)
        assert winners == [0, 1, 0, 1]

    @settings(max_examples=100, deadline=None)
    @given(hw_instances())
    def test_equivalent_to_software(self, inst):
        n, k, e, f, requests, available = inst
        reg = RequestRegister.from_requests(n, k, requests)
        grants, cycles = FirstAvailableUnit(k, e, f).run(reg, available)
        sw = first_available_fast(
            _vec(k, requests), available if available else [True] * k, e, f
        )
        assert cycles == k
        assert sorted((g.wavelength, g.channel) for g in grants) == sorted(
            (g.wavelength, g.channel) for g in sw
        )
        # Register bits were consumed for exactly the granted requests.
        assert reg.pending() == len(requests) - len(grants)


class TestBFAUnits:
    @settings(max_examples=100, deadline=None)
    @given(hw_instances())
    def test_serial_and_parallel_equal_software(self, inst):
        n, k, e, f, requests, available = inst
        vec = _vec(k, requests)
        mask = available if available else [True] * k
        sw, _ = bfa_fast(vec, mask, e, f)
        sw_pairs = sorted((g.wavelength, g.channel) for g in sw)
        for unit_cls in (BreakFirstAvailableUnit, ParallelBFAUnit):
            reg = RequestRegister.from_requests(n, k, requests)
            grants, _cycles = unit_cls(k, e, f).run(reg, available)
            assert sorted(
                (g.wavelength, g.channel) for g in grants
            ) == sw_pairs

    def test_cycle_formulas(self):
        k, e, f = 8, 1, 1
        d = e + f + 1
        reg = RequestRegister.from_requests(2, k, [(0, 0), (1, 3)])
        _g, serial = BreakFirstAvailableUnit(k, e, f).run(reg)
        reg2 = RequestRegister.from_requests(2, k, [(0, 0), (1, 3)])
        _g, par = ParallelBFAUnit(k, e, f).run(reg2)
        assert serial == 1 + d * (k - 1) + math.ceil(math.log2(d))
        assert par == 1 + (k - 1) + math.ceil(math.log2(d))

    def test_empty_register_one_setup_cycle(self):
        reg = RequestRegister(2, 4)
        grants, cycles = BreakFirstAvailableUnit(4, 1, 1).run(reg)
        assert grants == []
        assert cycles == 1

    def test_parallel_unit_count(self):
        assert ParallelBFAUnit(8, 2, 1).n_units == 4

    def test_bad_params(self):
        with pytest.raises(InvalidParameterError):
            BreakFirstAvailableUnit(2, 1, 1)
        with pytest.raises(InvalidParameterError):
            ParallelBFAUnit(4, 1, 1, fiber_select="bogus")


class TestTiming:
    def test_estimate(self):
        assert estimate_time_us(200, 200.0) == 1.0

    def test_bad_args(self):
        with pytest.raises(InvalidParameterError):
            estimate_time_us(-1)
        with pytest.raises(InvalidParameterError):
            estimate_time_us(1, 0)

    def test_cycle_report(self):
        rep = CycleReport("fa", k=16, d=3, cycles=16, clock_mhz=100.0)
        assert rep.time_us == pytest.approx(0.16)
        assert rep.fits_slot(1.0)
        assert not rep.fits_slot(0.1)
        with pytest.raises(InvalidParameterError):
            rep.fits_slot(0)
