"""Tests for the single-break approximation (Section IV-C, Thm 3, Cor 1)."""

import pytest
from hypothesis import given, settings

from repro.analysis.bounds import approximation_gap, corollary1_bound, theorem3_bound
from repro.core.approx import SingleBreakScheduler, deficit_bound
from repro.core.baseline import HopcroftKarpScheduler
from repro.errors import InvalidParameterError
from repro.graphs.conversion import CircularConversion
from repro.graphs.request_graph import RequestGraph
from tests.conftest import circular_instances


class TestDeficitBound:
    def test_theorem3_values(self):
        assert deficit_bound(1, 3) == 2
        assert deficit_bound(2, 3) == 1  # shortest edge for d=3
        assert deficit_bound(3, 3) == 2

    def test_corollary1_odd_d(self):
        # (d-1)/2 for odd d: d=3 -> 1, d=5 -> 2, d=7 -> 3.
        assert corollary1_bound(3) == 1
        assert corollary1_bound(5) == 2
        assert corollary1_bound(7) == 3

    def test_corollary1_even_d(self):
        assert corollary1_bound(2) == 1
        assert corollary1_bound(4) == 2

    def test_corollary1_degree_one(self):
        assert corollary1_bound(1) == 0  # single edge: exact

    def test_delta_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            deficit_bound(0, 3)
        with pytest.raises(InvalidParameterError):
            deficit_bound(4, 3)

    def test_theorem3_alias(self):
        assert theorem3_bound(2, 5) == deficit_bound(2, 5)


class TestScheduler:
    def test_unknown_policy(self):
        with pytest.raises(InvalidParameterError):
            SingleBreakScheduler("middle-out")

    def test_scheme_gate(self, paper_noncircular_rg):
        with pytest.raises(InvalidParameterError):
            SingleBreakScheduler().schedule(paper_noncircular_rg)

    def test_name_embeds_policy(self):
        assert "shortest" in SingleBreakScheduler("shortest").name

    def test_stats_expose_delta_and_bound(self, paper_circular_rg):
        res = SingleBreakScheduler("shortest").schedule(paper_circular_rg)
        assert res.stats["delta"] == 2  # middle of a 3-wide window
        assert res.stats["deficit_bound"] == 1

    def test_no_requests(self, paper_circular_scheme):
        rg = RequestGraph(paper_circular_scheme, [0] * 6)
        res = SingleBreakScheduler().schedule(rg)
        assert res.n_granted == 0

    def test_all_occupied(self, paper_circular_scheme):
        rg = RequestGraph(paper_circular_scheme, (2, 1, 0, 1, 1, 2), [False] * 6)
        res = SingleBreakScheduler().schedule(rg)
        assert res.n_granted == 0

    def test_shortest_policy_picks_middle(self):
        scheme = CircularConversion(10, 2, 2)
        rg = RequestGraph(scheme, [1] + [0] * 9)
        res = SingleBreakScheduler("shortest").schedule(rg)
        # With everything free, the pivot λ0 must be matched to channel 0.
        assert res.grants[0].channel == 0

    def test_minus_end_policy(self):
        scheme = CircularConversion(10, 2, 2)
        rg = RequestGraph(scheme, [1] + [0] * 9)
        res = SingleBreakScheduler("minus-end").schedule(rg)
        assert res.grants[0].channel == 8  # (0 - 2) mod 10

    def test_plus_end_policy(self):
        scheme = CircularConversion(10, 2, 2)
        rg = RequestGraph(scheme, [1] + [0] * 9)
        res = SingleBreakScheduler("plus-end").schedule(rg)
        assert res.grants[0].channel == 2

    def test_random_policy_reproducible(self, paper_circular_rg):
        a = SingleBreakScheduler("random", seed=5).schedule(paper_circular_rg)
        b = SingleBreakScheduler("random", seed=5).schedule(paper_circular_rg)
        assert sorted(a.grants, key=lambda g: g.channel) == sorted(
            b.grants, key=lambda g: g.channel
        )

    def test_occupied_fallback_choice(self):
        # Shortest edge (channel 0) occupied: must fall back to an available
        # adjacent channel, not fail.
        scheme = CircularConversion(6, 1, 1)
        rg = RequestGraph(scheme, [1, 0, 0, 0, 0, 0], [False, True] + [True] * 4)
        res = SingleBreakScheduler("shortest").schedule(rg)
        assert res.n_granted == 1
        assert res.grants[0].channel in (1, 5)


class TestTheorem3Property:
    @settings(max_examples=100, deadline=None)
    @given(circular_instances(max_k=10))
    def test_gap_within_bound_every_policy(self, rg):
        for policy in ("shortest", "minus-end", "plus-end"):
            sched = SingleBreakScheduler(policy)
            res = sched.schedule(rg)
            opt = HopcroftKarpScheduler().schedule(rg).n_granted
            gap = opt - res.n_granted
            assert gap >= 0
            if res.n_granted > 0:
                assert gap <= res.stats["deficit_bound"], (
                    policy,
                    rg.request_vector,
                    rg.available,
                )

    @settings(max_examples=80, deadline=None)
    @given(circular_instances(max_k=10))
    def test_shortest_within_corollary1(self, rg):
        res = SingleBreakScheduler("shortest").schedule(rg)
        opt = HopcroftKarpScheduler().schedule(rg).n_granted
        if res.n_granted > 0:
            assert opt - res.n_granted <= corollary1_bound(rg.scheme.degree)


class TestTightness:
    """The adversarial family meets Corollary 1's bound exactly."""

    @pytest.mark.parametrize("a", [1, 2, 3, 4])
    def test_deficit_equals_corollary1_bound(self, a):
        from repro.analysis.adversarial import tight_single_break_instance

        rg = tight_single_break_instance(a)
        d = rg.scheme.degree
        assert d == 2 * a + 1
        opt = HopcroftKarpScheduler().schedule(rg).n_granted
        got = SingleBreakScheduler("shortest").schedule(rg).n_granted
        assert opt == 2 * (a + 1)
        assert got == a + 2
        assert opt - got == corollary1_bound(d)

    @pytest.mark.parametrize("a", [1, 2, 3])
    def test_full_bfa_still_exact_on_adversarial(self, a):
        from repro.analysis.adversarial import tight_single_break_instance
        from repro.core.break_first_available import (
            BreakFirstAvailableScheduler,
        )

        rg = tight_single_break_instance(a)
        assert (
            BreakFirstAvailableScheduler().schedule(rg).n_granted
            == HopcroftKarpScheduler().schedule(rg).n_granted
        )

    def test_reach_validated(self):
        from repro.analysis.adversarial import tight_single_break_instance

        with pytest.raises(InvalidParameterError):
            tight_single_break_instance(0)


class TestApproximationGapHelper:
    def test_returns_triple(self, paper_circular_rg):
        opt, got, gap = approximation_gap(
            paper_circular_rg, SingleBreakScheduler("shortest")
        )
        assert opt == 6
        assert gap == opt - got >= 0
