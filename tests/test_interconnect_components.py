"""Tests for the optical component models (Fig. 1 datapath pieces)."""

import pytest

from repro.errors import HardwareModelError
from repro.graphs.conversion import CircularConversion
from repro.interconnect.components import (
    Combiner,
    Demultiplexer,
    Multiplexer,
    OpticalSignal,
    WavelengthConverter,
)


def sig(w: int, src=(0, 0), payload=None) -> OpticalSignal:
    return OpticalSignal(wavelength=w, source=src, payload=payload)


class TestOpticalSignal:
    def test_retuned_preserves_identity(self):
        s = sig(2, src=(1, 2), payload="pkt")
        r = s.retuned(4)
        assert r.wavelength == 4
        assert r.source == (1, 2)
        assert r.payload == "pkt"


class TestDemultiplexer:
    def test_separates_by_wavelength(self):
        d = Demultiplexer(4)
        out = d.demultiplex([sig(0), sig(2, src=(0, 2))])
        assert out[0].wavelength == 0
        assert out[1] is None
        assert out[2].wavelength == 2

    def test_rejects_wavelength_collision(self):
        d = Demultiplexer(4)
        with pytest.raises(HardwareModelError, match="two signals"):
            d.demultiplex([sig(1), sig(1, src=(0, 9))])

    def test_rejects_out_of_band(self):
        with pytest.raises(HardwareModelError, match="out-of-band"):
            Demultiplexer(4).demultiplex([sig(4)])


class TestCombiner:
    def test_single_active_input(self):
        c = Combiner(3)
        assert c.combine([None, sig(1), None]).wavelength == 1

    def test_no_active_input(self):
        assert Combiner(2).combine([None, None]) is None

    def test_interference_detected(self):
        c = Combiner(3)
        with pytest.raises(HardwareModelError, match="interference"):
            c.combine([sig(0), sig(1, src=(1, 1)), None])

    def test_port_count_enforced(self):
        with pytest.raises(HardwareModelError, match="ports"):
            Combiner(3).combine([None, None])


class TestWavelengthConverter:
    def test_converts_within_range(self):
        conv = WavelengthConverter(CircularConversion(6, 1, 1), target=1)
        out = conv.convert(sig(0))
        assert out.wavelength == 1

    def test_rejects_out_of_range(self):
        conv = WavelengthConverter(CircularConversion(6, 1, 1), target=3)
        with pytest.raises(HardwareModelError, match="cannot accept"):
            conv.convert(sig(0))

    def test_passes_none(self):
        conv = WavelengthConverter(CircularConversion(6, 1, 1), target=0)
        assert conv.convert(None) is None


class TestMultiplexer:
    def test_merges(self):
        m = Multiplexer(3)
        out = m.multiplex([sig(0), None, sig(2)])
        assert [s.wavelength for s in out] == [0, 2]

    def test_rejects_misplaced_signal(self):
        with pytest.raises(HardwareModelError, match="misconfigured"):
            Multiplexer(3).multiplex([sig(1), None, None])

    def test_port_count(self):
        with pytest.raises(HardwareModelError, match="ports"):
            Multiplexer(3).multiplex([None])
