"""Tests for the grant policies (fairness tie-breaking, Section III)."""

import numpy as np
import pytest

from repro.core.policies import (
    FixedPriorityPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    WeightedFairPolicy,
)
from repro.errors import InvalidParameterError


class TestFixedPriority:
    def test_lowest_ids_win(self):
        assert FixedPriorityPolicy().select(0, 0, [3, 1, 2], 2) == [1, 2]

    def test_n_larger_than_requesters(self):
        assert FixedPriorityPolicy().select(0, 0, [5], 3) == [5]

    def test_zero_grants(self):
        assert FixedPriorityPolicy().select(0, 0, [1, 2], 0) == []

    def test_negative_grants_rejected(self):
        with pytest.raises(InvalidParameterError):
            FixedPriorityPolicy().select(0, 0, [1], -1)

    def test_duplicate_requesters_rejected(self):
        with pytest.raises(InvalidParameterError):
            FixedPriorityPolicy().select(0, 0, [1, 1], 1)

    def test_starves_high_ids(self):
        policy = FixedPriorityPolicy()
        wins = {0: 0, 1: 0}
        for _ in range(10):
            for w in policy.select(0, 0, [0, 1], 1):
                wins[w] += 1
        assert wins == {0: 10, 1: 0}


class TestRandomPolicy:
    def test_reproducible(self):
        a = RandomPolicy(7).select(0, 0, list(range(6)), 3)
        b = RandomPolicy(7).select(0, 0, list(range(6)), 3)
        assert a == b

    def test_all_selected_when_enough(self):
        assert set(RandomPolicy(1).select(0, 0, [4, 5], 5)) == {4, 5}

    def test_winners_are_requesters(self):
        winners = RandomPolicy(3).select(0, 0, list(range(10)), 4)
        assert len(winners) == 4
        assert set(winners) <= set(range(10))
        assert len(set(winners)) == 4

    def test_roughly_uniform(self):
        policy = RandomPolicy(42)
        counts = np.zeros(4)
        for _ in range(2000):
            for w in policy.select(0, 0, [0, 1, 2, 3], 1):
                counts[w] += 1
        assert counts.min() > 400  # expectation 500 each


class TestRoundRobin:
    def test_rotates(self):
        policy = RoundRobinPolicy()
        assert policy.select(0, 0, [0, 1, 2], 1) == [0]
        assert policy.select(0, 0, [0, 1, 2], 1) == [1]
        assert policy.select(0, 0, [0, 1, 2], 1) == [2]
        assert policy.select(0, 0, [0, 1, 2], 1) == [0]

    def test_pointer_per_output_and_wavelength(self):
        policy = RoundRobinPolicy()
        assert policy.select(0, 0, [0, 1], 1) == [0]
        # Other output fiber / wavelength: independent pointer.
        assert policy.select(1, 0, [0, 1], 1) == [0]
        assert policy.select(0, 1, [0, 1], 1) == [0]
        assert policy.select(0, 0, [0, 1], 1) == [1]

    def test_skips_absent_requesters(self):
        policy = RoundRobinPolicy()
        assert policy.select(0, 0, [0, 1, 2], 1) == [0]
        # 1 not requesting this slot: pointer moves to the next present id.
        assert policy.select(0, 0, [0, 2], 1) == [2]
        assert policy.select(0, 0, [0, 1, 2], 1) == [0]

    def test_multiple_winners_wrap(self):
        policy = RoundRobinPolicy()
        assert policy.select(0, 0, [0, 1, 2], 2) == [0, 1]
        assert policy.select(0, 0, [0, 1, 2], 2) == [2, 0]

    def test_fair_in_long_run(self):
        policy = RoundRobinPolicy()
        wins = {i: 0 for i in range(3)}
        for _ in range(30):
            for w in policy.select(0, 0, [0, 1, 2], 1):
                wins[w] += 1
        assert all(v == 10 for v in wins.values())

    def test_reset(self):
        policy = RoundRobinPolicy()
        policy.select(0, 0, [0, 1], 1)
        policy.reset()
        assert policy.select(0, 0, [0, 1], 1) == [0]

    def test_zero_grants(self):
        assert RoundRobinPolicy().select(0, 0, [0, 1], 0) == []


class TestWeightedFairIdBased:
    """The GrantPolicy-protocol surface of WeightedFairPolicy: id-based
    ``select`` calls (no tenant information) must degrade to plain
    single-tenant round-robin, and construction must validate weights.
    The weighted/tenanted behavior itself is property-tested in
    tests/test_wfq_properties.py."""

    def test_id_based_select_degrades_to_round_robin(self):
        wfq = WeightedFairPolicy({3: 9})
        rr = RoundRobinPolicy()
        for _ in range(7):
            assert wfq.select(0, 0, [0, 1, 2], 1) == rr.select(
                0, 0, [0, 1, 2], 1
            )

    def test_zero_grants(self):
        assert WeightedFairPolicy().select(0, 0, [0, 1], 0) == []

    def test_reset_restarts_the_decision_sequence(self):
        policy = WeightedFairPolicy({0: 2, 1: 1})
        before = [policy.select(0, 0, [0, 1, 2], 1) for _ in range(4)]
        policy.reset()
        after = [policy.select(0, 0, [0, 1, 2], 1) for _ in range(4)]
        assert before == after

    def test_unknown_tenant_gets_default_weight(self):
        policy = WeightedFairPolicy({0: 4}, default_weight=2)
        assert policy.weight(0) == 4
        assert policy.weight(17) == 2

    def test_invalid_weights_rejected(self):
        with pytest.raises(InvalidParameterError):
            WeightedFairPolicy({0: 0})
        with pytest.raises(InvalidParameterError):
            WeightedFairPolicy(default_weight=0)

    def test_negative_grants_rejected(self):
        with pytest.raises(InvalidParameterError):
            WeightedFairPolicy().select(0, 0, [0, 1], -1)
