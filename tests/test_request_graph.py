"""Tests for request graphs (paper Section II-B, Fig. 3)."""

import numpy as np
import pytest
from hypothesis import given

from repro.errors import InvalidParameterError
from repro.graphs.conversion import CircularConversion, NonCircularConversion
from repro.graphs.request_graph import RequestGraph
from tests.conftest import PAPER_VECTOR, circular_instances


class TestConstruction:
    def test_basic(self, paper_circular_rg):
        assert paper_circular_rg.n_requests == 7
        assert paper_circular_rg.k == 6
        assert paper_circular_rg.request_vector == PAPER_VECTOR

    def test_wrong_vector_length(self, paper_circular_scheme):
        with pytest.raises(InvalidParameterError):
            RequestGraph(paper_circular_scheme, [1, 2, 3])

    def test_negative_count(self, paper_circular_scheme):
        with pytest.raises(InvalidParameterError):
            RequestGraph(paper_circular_scheme, [1, -1, 0, 0, 0, 0])

    def test_non_integer_count(self, paper_circular_scheme):
        with pytest.raises(InvalidParameterError):
            RequestGraph(paper_circular_scheme, [1.5, 0, 0, 0, 0, 0])

    def test_numpy_counts_accepted(self, paper_circular_scheme):
        rg = RequestGraph(paper_circular_scheme, np.array([1, 0, 0, 0, 0, 2]))
        assert rg.n_requests == 3

    def test_wrong_mask_length(self, paper_circular_scheme):
        with pytest.raises(InvalidParameterError):
            RequestGraph(paper_circular_scheme, PAPER_VECTOR, [True])

    def test_from_wavelengths(self, paper_circular_scheme):
        rg = RequestGraph.from_wavelengths(paper_circular_scheme, [0, 0, 5, 1])
        assert rg.request_vector == (2, 1, 0, 0, 0, 1)

    def test_from_wavelengths_out_of_range(self, paper_circular_scheme):
        with pytest.raises(InvalidParameterError):
            RequestGraph.from_wavelengths(paper_circular_scheme, [6])


class TestLeftVertexView:
    def test_paper_w_function(self, paper_circular_rg):
        # "W(0) = W(1) = 0, and W(2) = 1"
        assert paper_circular_rg.wavelength_of(0) == 0
        assert paper_circular_rg.wavelength_of(1) == 0
        assert paper_circular_rg.wavelength_of(2) == 1
        assert paper_circular_rg.left_wavelengths == (0, 0, 1, 3, 4, 5, 5)

    def test_left_wavelengths_sorted(self):
        scheme = CircularConversion(4, 1, 1)
        rg = RequestGraph(scheme, [2, 0, 3, 1])
        assert rg.left_wavelengths == (0, 0, 2, 2, 2, 3)
        assert list(rg.left_wavelengths) == sorted(rg.left_wavelengths)

    def test_adjacency_of_request(self, paper_circular_rg):
        assert paper_circular_rg.adjacency_of_request(0) == (0, 1, 5)

    def test_adjacency_of_request_respects_mask(self, paper_circular_scheme):
        rg = RequestGraph(
            paper_circular_scheme, PAPER_VECTOR,
            [False, True, True, True, True, True],
        )
        assert rg.adjacency_of_request(0) == (1, 5)


class TestGraphView:
    def test_paper_fig3a_edges(self, paper_circular_rg):
        g = paper_circular_rg.graph
        assert g.n_left == 7 and g.n_right == 6
        assert g.neighbors_of_left(0) == (0, 1, 5)  # a0 on λ0
        assert g.neighbors_of_left(3) == (2, 3, 4)  # a3 on λ3

    def test_paper_fig3b_edges(self, paper_noncircular_rg):
        g = paper_noncircular_rg.graph
        assert g.neighbors_of_left(0) == (0, 1)  # a0 on λ0: clipped
        assert g.neighbors_of_left(6) == (4, 5)  # a6 on λ5: clipped

    def test_occupied_channels_have_no_edges(self, paper_circular_scheme):
        rg = RequestGraph(
            paper_circular_scheme, PAPER_VECTOR,
            [True, False, True, True, True, True],
        )
        assert rg.graph.neighbors_of_right(1) == ()
        assert rg.n_available == 5

    def test_empty_vector(self, paper_circular_scheme):
        rg = RequestGraph(paper_circular_scheme, [0] * 6)
        assert rg.n_requests == 0
        assert rg.graph.n_edges == 0

    def test_arrays_are_copies(self, paper_circular_rg):
        arr = paper_circular_rg.request_vector_array()
        arr[0] = 99
        assert paper_circular_rg.request_vector[0] == 2
        mask = paper_circular_rg.available_array()
        mask[0] = False
        assert paper_circular_rg.available[0] is True

    @given(circular_instances())
    def test_edge_count_formula(self, rg):
        # Every request contributes one edge per available adjacent channel.
        expected = sum(
            len(rg.adjacency_of_request(i)) for i in range(rg.n_requests)
        )
        assert rg.graph.n_edges == expected

    @given(circular_instances())
    def test_edges_respect_conversion_and_mask(self, rg):
        for a, b in rg.graph.edges():
            assert rg.scheme.can_convert(rg.wavelength_of(a), b)
            assert rg.available[b]


class TestEquality:
    def test_equal(self, paper_circular_scheme):
        assert RequestGraph(paper_circular_scheme, PAPER_VECTOR) == RequestGraph(
            CircularConversion(6, 1, 1), PAPER_VECTOR
        )

    def test_differs_by_scheme(self, paper_circular_scheme):
        assert RequestGraph(paper_circular_scheme, PAPER_VECTOR) != RequestGraph(
            NonCircularConversion(6, 1, 1), PAPER_VECTOR
        )

    def test_differs_by_mask(self, paper_circular_scheme):
        a = RequestGraph(paper_circular_scheme, PAPER_VECTOR)
        b = RequestGraph(
            paper_circular_scheme, PAPER_VECTOR, [False] + [True] * 5
        )
        assert a != b

    def test_hashable(self, paper_circular_scheme):
        s = {
            RequestGraph(paper_circular_scheme, PAPER_VECTOR),
            RequestGraph(paper_circular_scheme, PAPER_VECTOR),
        }
        assert len(s) == 1

    def test_repr(self, paper_circular_rg):
        assert "RequestGraph" in repr(paper_circular_rg)
