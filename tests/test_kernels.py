"""Kernel backend registry and cross-backend bit-identity tests.

The contract under test (``repro/core/kernels/__init__.py``): every
backend — numba (compiled), numpy (vectorized), python (list-based) —
produces byte-identical assign matrices and identical scheduler-path
grants; selection is loud (a bogus or uninstallable name raises, never a
silent slow fallback); and the ``SCALAR_ROWS`` cutover is one constant
read at call time.

The numba backend's *source* is pinned even on interpreters without
numba: ``repro/core/kernels/_impl.py`` conditionally applies ``@njit``,
so the exact functions CI compiles run here interpreted and are held to
the same bit-identity bar (including ``bfa_row_kernel``'s emission order
and stats).
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.batch import batch_first_available
from repro.core.batch_bfa import batch_break_first_available
from repro.core.break_first_available import bfa_fast
from repro.core.first_available import first_available_fast
from repro.core.kernels import (
    KernelBackend,
    _impl,
    available_backends,
    get_backend,
    python_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.errors import InvalidParameterError

SRC = Path(__file__).resolve().parent.parent / "src"


def _inputs(rows: int, k: int, seed: int):
    rng = np.random.default_rng(seed)
    req = rng.integers(0, 3, size=(rows, k)).astype(np.int64)
    avail = rng.random((rows, k)) > 0.3
    return req, np.ascontiguousarray(avail)


def _fa_oracle(req, avail, e, f):
    """Per-row scalar First Available on the pure-Python loop."""
    with use_backend("python"):
        rows, k = req.shape
        out = np.full((rows, k), -1, dtype=np.int64)
        for m in range(rows):
            for g in first_available_fast(
                req[m].tolist(), avail[m].tolist(), e, f
            ):
                out[m, g.channel] = g.wavelength
    return out


def _bfa_oracle(req, avail, e, f):
    """Per-row scalar BFA on the pure-Python loop."""
    with use_backend("python"):
        rows, k = req.shape
        out = np.full((rows, k), -1, dtype=np.int64)
        for m in range(rows):
            grants, _ = bfa_fast(req[m].tolist(), avail[m].tolist(), e, f)
            for g in grants:
                out[m, g.channel] = g.wavelength
    return out


class TestRegistry:
    def test_python_and_numpy_always_available(self):
        names = available_backends()
        assert "python" in names
        assert "numpy" in names

    def test_bogus_name_raises_clearly(self):
        with pytest.raises(InvalidParameterError) as exc:
            resolve_backend("bogus")
        message = str(exc.value)
        assert "bogus" in message
        assert "numba, numpy, python" in message

    def test_set_backend_bogus_name_raises(self):
        with pytest.raises(InvalidParameterError):
            set_backend("not-a-backend")
        # The active backend survives a failed switch.
        assert get_backend().name in kernels.BACKEND_NAMES

    def test_unavailable_backend_raises_not_degrades(self):
        if "numba" in available_backends():
            pytest.skip("numba installed: the explicit request succeeds")
        with pytest.raises(InvalidParameterError) as exc:
            resolve_backend("numba")
        assert "compiled" in str(exc.value)

    def test_default_resolution_prefers_best_available(self):
        backend = resolve_backend(None)
        if "numba" in available_backends():
            assert backend.name == "numba"
        else:
            assert backend.name == "numpy"

    def test_name_is_normalized(self):
        assert resolve_backend("  PYTHON ").name == "python"

    def test_set_and_use_backend_restore(self):
        original = get_backend().name
        with use_backend("python") as backend:
            assert backend.name == "python"
            assert get_backend().name == "python"
        assert get_backend().name == original

    def test_use_backend_restores_on_error(self):
        original = get_backend().name
        with pytest.raises(RuntimeError):
            with use_backend("python"):
                raise RuntimeError("boom")
        assert get_backend().name == original

    def test_versions_reported(self):
        assert resolve_backend("numpy").version == np.__version__
        assert resolve_backend("python").version is None

    def test_env_var_bogus_fails_import_loudly(self):
        proc = subprocess.run(
            [sys.executable, "-c", "import repro.core.kernels"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC), "REPRO_KERNEL_BACKEND": "turbo"},
        )
        assert proc.returncode != 0
        assert "turbo" in proc.stderr

    def test_env_var_explicit_name_honored(self):
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.core import kernels; "
                "print(kernels.get_backend().name)",
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC), "REPRO_KERNEL_BACKEND": "python"},
        )
        assert proc.returncode == 0
        assert proc.stdout.strip() == "python"


class TestCrossBackendIdentity:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(1, 6),   # rows
        st.integers(1, 8),   # k
        st.integers(0, 2),   # e
        st.integers(0, 2),   # f
        st.integers(0, 2**31 - 1),
    )
    def test_all_backends_bit_identical(self, rows, k, e, f, seed):
        if e + f + 1 > k:
            return
        req, avail = _inputs(rows, k, seed)
        fa_expected = _fa_oracle(req, avail, e, f)
        bfa_expected = _bfa_oracle(req, avail, e, f)
        for name in available_backends():
            with use_backend(name):
                fa = batch_first_available(req, avail, e, f)
                bfa = batch_break_first_available(req, avail, e, f)
            assert fa.tolist() == fa_expected.tolist(), (name, req, avail)
            assert bfa.tolist() == bfa_expected.tolist(), (name, req, avail)

    @pytest.mark.parametrize("rows", [127, 128, 129])
    @pytest.mark.parametrize(
        "kernel", [batch_first_available, batch_break_first_available]
    )
    def test_scalar_cutover_rows_bit_identical(self, rows, kernel):
        """Pin bit-identity at exactly the SCALAR_ROWS boundary.

        128 is the last matrix the numpy backend hands to the python
        sweep, 129 the first it vectorizes itself; 127/128/129 must all
        agree with the python backend byte for byte.
        """
        assert kernels.SCALAR_ROWS == 128
        req, avail = _inputs(rows, 16, seed=rows)
        with use_backend("python"):
            expected = kernel(req, avail, 1, 1)
        for name in available_backends():
            with use_backend(name):
                got = kernel(req, avail, 1, 1)
            assert got.tolist() == expected.tolist(), (name, rows)

    def test_scalar_rows_is_read_at_call_time(self, monkeypatch):
        """The cutover is the single registry constant, not a frozen copy."""
        calls = []
        real = python_backend.fa_rows

        def spy(req, avail, e, f):
            calls.append(req.shape[0])
            return real(req, avail, e, f)

        monkeypatch.setattr(python_backend, "fa_rows", spy)
        req, avail = _inputs(8, 8, seed=1)
        with use_backend("numpy"):
            monkeypatch.setattr(kernels, "SCALAR_ROWS", 8)
            batch_first_available(req, avail, 1, 1)
            assert calls == [8]  # 8 <= 8: delegated to the python sweep
            monkeypatch.setattr(kernels, "SCALAR_ROWS", 7)
            batch_first_available(req, avail, 1, 1)
            assert calls == [8]  # 8 > 7: vectorized, no delegation


def _interpreted_numba_backend() -> KernelBackend:
    """The numba backend's exact wrappers over the (interpreted) _impl
    kernels — what CI runs compiled, runnable without numba."""

    def fa_row(req_row, avail_row, e, f):
        return _impl.fa_rows_kernel(
            req_row.reshape(1, -1), avail_row.reshape(1, -1), int(e), int(f)
        )[0]

    return KernelBackend(
        name="numba",
        fa_rows=lambda req, avail, e, f: _impl.fa_rows_kernel(
            req, avail, int(e), int(f)
        ),
        bfa_rows=lambda req, avail, e, f: _impl.bfa_rows_kernel(
            req, avail, int(e), int(f)
        ),
        fa_row=fa_row,
        bfa_row=lambda req_row, avail_row, e, f: _impl.bfa_row_kernel(
            req_row, avail_row, int(e), int(f)
        ),
        version=None,
    )


class TestImplKernels:
    """The njit-decorated source, held to bit-identity interpreted."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(1, 6),
        st.integers(1, 8),
        st.integers(0, 2),
        st.integers(0, 2),
        st.integers(0, 2**31 - 1),
    )
    def test_impl_rows_match_reference(self, rows, k, e, f, seed):
        if e + f + 1 > k:
            return
        req, avail = _inputs(rows, k, seed)
        fa = _impl.fa_rows_kernel(req, avail, e, f)
        bfa = _impl.bfa_rows_kernel(req, avail, e, f)
        assert fa.tolist() == _fa_oracle(req, avail, e, f).tolist()
        assert bfa.tolist() == _bfa_oracle(req, avail, e, f).tolist()

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(1, 8),
        st.integers(0, 2),
        st.integers(0, 2),
        st.integers(0, 2**31 - 1),
    )
    def test_bfa_row_kernel_order_and_stats(self, k, e, f, seed):
        """Grant pairs in bfa_fast's exact emission order, same counters."""
        if e + f + 1 > k:
            return
        req, avail = _inputs(1, k, seed)
        with use_backend("python"):
            grants, stats = bfa_fast(req[0].tolist(), avail[0].tolist(), e, f)
        wl, ch, n, reduced, skipped = _impl.bfa_row_kernel(
            req[0], avail[0], e, f
        )
        assert n == len(grants)
        assert [(int(wl[i]), int(ch[i])) for i in range(n)] == [
            (g.wavelength, g.channel) for g in grants
        ]
        assert reduced == stats["reduced_graphs"]
        assert skipped == stats["pivots_skipped"]

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(1, 8),
        st.integers(0, 2),
        st.integers(0, 2),
        st.integers(0, 2**31 - 1),
    )
    def test_scheduler_row_fast_path(self, k, e, f, seed):
        """first_available_fast / bfa_fast dispatch through fa_row/bfa_row
        exactly as they run the Python loop (the numba backend's scheduler
        fast path, tested interpreted)."""
        if e + f + 1 > k:
            return
        req, avail = _inputs(1, k, seed)
        with use_backend("python"):
            fa_expected = first_available_fast(
                req[0].tolist(), avail[0].tolist(), e, f
            )
            bfa_expected = bfa_fast(req[0].tolist(), avail[0].tolist(), e, f)
        previous = kernels._active
        kernels._active = _interpreted_numba_backend()
        try:
            fa_got = first_available_fast(
                req[0].tolist(), avail[0].tolist(), e, f
            )
            bfa_got = bfa_fast(req[0].tolist(), avail[0].tolist(), e, f)
        finally:
            kernels._active = previous
        assert fa_got == fa_expected
        assert bfa_got == bfa_expected


class TestBackendVisibility:
    def test_fast_simulator_records_backend(self):
        from repro.graphs.conversion import CircularConversion
        from repro.sim.fast import FastPacketSimulator
        from repro.sim.traffic import BernoulliTraffic

        res = FastPacketSimulator(
            4, CircularConversion(4, 1, 1), BernoulliTraffic(4, 4, 0.5), seed=3
        ).run(5)
        assert res.config["kernel_backend"] == get_backend().name
