"""Tick-window batching: coalesced ADVANCE journaling and burst equivalence.

The contract under test: :meth:`SchedulingService.tick_burst` may run up to
``tick_window`` ticks per event-loop iteration, deferring idle shards'
``ADVANCE`` journal records and coalescing each run into one batched record
(``values = (count,)``) — and none of that may change a single grant,
rejection, busy residual, or recovery outcome.  Per-tick and windowed runs
of the same schedule must be bit-identical, batched records must replay
exactly like the per-tick form (including batches that *span* a snapshot
cutoff, which compaction must retain), and killing every shard at a burst
boundary must recover bit-identically, exactly like the per-tick
kill-at-every-tick gate.
"""

import asyncio

import pytest

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.distributed import SlotRequest
from repro.graphs.conversion import CircularConversion
from repro.service import DurabilityConfig, SchedulingService, ServiceGrant
from repro.service.durability import replay_journal
from repro.service.journal import (
    JournalRecord,
    MemoryJournal,
    RecordType,
    ShardJournal,
)
from repro.service.snapshot import ShardSnapshot
from repro.util.rng import make_rng

N_FIBERS = 3
K = 6


def run(coro):
    return asyncio.run(coro)


def record_types(journal):
    return [(r.type, r.tick, r.values) for r in journal.records()]


class TestDeferAdvance:
    def test_consecutive_run_coalesces_into_one_record(self):
        j = ShardJournal(MemoryJournal())
        for tick in range(3, 8):
            j.defer_advance(tick)
        j.flush_deferred()
        assert record_types(j) == [(RecordType.ADVANCE, 3, (5,))]

    def test_run_of_one_uses_the_historical_form(self):
        j = ShardJournal(MemoryJournal())
        j.defer_advance(4)
        j.flush_deferred()
        assert record_types(j) == [(RecordType.ADVANCE, 4, ())]

    def test_flush_when_empty_is_a_noop(self):
        j = ShardJournal(MemoryJournal())
        j.flush_deferred()
        assert record_types(j) == []

    def test_non_consecutive_tick_starts_a_new_run(self):
        j = ShardJournal(MemoryJournal())
        j.defer_advance(0)
        j.defer_advance(1)
        j.defer_advance(5)  # gap: flushes [0, 2), starts a new run
        j.flush_deferred()
        assert record_types(j) == [
            (RecordType.ADVANCE, 0, (2,)),
            (RecordType.ADVANCE, 5, ()),
        ]

    def test_any_other_append_flushes_the_run_first(self):
        """Write-ahead ordering: a batch may only span idle ticks, so any
        real event forces the pending advances out ahead of it."""
        j = ShardJournal(MemoryJournal())
        j.defer_advance(0)
        j.defer_advance(1)
        j.dequeue(2, 1)
        j.defer_advance(2)
        j.grant(3, 0, 1, 2, 1)
        j.flush_deferred()
        types = [(r.type, r.tick) for r in j.records()]
        assert types == [
            (RecordType.ADVANCE, 0),  # batched (0, 1) flushed by dequeue
            (RecordType.DEQUEUE, 2),
            (RecordType.ADVANCE, 2),  # flushed by grant
            (RecordType.GRANT, 3),
        ]

    def test_reload_and_close_flush_the_run(self):
        backend = MemoryJournal()
        j = ShardJournal(backend)
        j.defer_advance(0)
        j.defer_advance(1)
        records, torn = j.reload()
        assert not torn
        assert [(r.tick, r.values) for r in records] == [(0, (2,))]
        j.defer_advance(2)
        j.close()
        reopened = ShardJournal(MemoryJournal())
        decoded, _ = ShardJournal(backend).reload()
        assert [(r.tick, r.values) for r in decoded] == [(0, (2,)), (2, ())]
        del reopened

    def test_compact_keeps_a_batch_spanning_the_cutoff(self):
        """The mirror keys batched records on their *end* tick: a snapshot
        cutoff inside the run must not drop the ticks past it."""
        j = ShardJournal(MemoryJournal())
        for tick in range(0, 6):
            j.defer_advance(tick)
        j.flush_deferred()  # one record: tick 0, count 6, covers [0, 6)
        j.compact(before_tick=4)
        assert record_types(j) == [(RecordType.ADVANCE, 0, (6,))]
        j.compact(before_tick=6)  # now fully covered: dropped
        assert record_types(j) == []

    def test_reopen_adopts_batched_records_under_end_tick_keys(self):
        backend = MemoryJournal()
        j = ShardJournal(backend)
        for tick in range(0, 4):
            j.defer_advance(tick)
        j.flush_deferred()
        reopened = ShardJournal(backend)
        reopened.compact(before_tick=2)  # spans: must keep the batch
        assert record_types(reopened) == [(RecordType.ADVANCE, 0, (4,))]


class TestBatchedReplay:
    def test_batched_advance_ages_by_count(self):
        busy, queue, tick, replayed = replay_journal(
            [
                JournalRecord(RecordType.GRANT, 0, (0, 1, 2, 5)),
                JournalRecord(RecordType.ADVANCE, 0, (3,)),
            ],
            None,
            K,
        )
        assert busy[2] == 2  # 5 - 3
        assert tick == 3
        assert replayed == 2

    def test_batched_advance_floors_at_zero(self):
        busy, _, tick, _ = replay_journal(
            [
                JournalRecord(RecordType.GRANT, 0, (0, 1, 2, 2)),
                JournalRecord(RecordType.ADVANCE, 0, (4,)),
            ],
            None,
            K,
        )
        assert busy == [0] * K
        assert tick == 4

    def test_batch_spanning_the_snapshot_is_clipped(self):
        """Only the ticks from the snapshot onward are applied; the
        earlier ones are already inside the snapshot's busy[]."""
        snapshot = ShardSnapshot(0, 4, (3, 0, 0, 0, 0, 0), (), None)
        busy, _, tick, replayed = replay_journal(
            [JournalRecord(RecordType.ADVANCE, 2, (4,))],  # covers [2, 6)
            snapshot,
            K,
        )
        assert busy[0] == 1  # 3 - (6 - 4): two effective ticks
        assert tick == 6
        assert replayed == 1

    def test_batch_fully_before_the_snapshot_is_skipped(self):
        snapshot = ShardSnapshot(0, 6, (3, 0, 0, 0, 0, 0), (), None)
        busy, _, tick, replayed = replay_journal(
            [JournalRecord(RecordType.ADVANCE, 2, (4,))],  # covers [2, 6)
            snapshot,
            K,
        )
        assert busy[0] == 3
        assert tick == 6
        assert replayed == 0

    def test_batched_equals_per_tick_replay(self):
        per_tick = [JournalRecord(RecordType.GRANT, 0, (0, 1, 3, 4))] + [
            JournalRecord(RecordType.ADVANCE, t) for t in range(3)
        ]
        batched = [
            JournalRecord(RecordType.GRANT, 0, (0, 1, 3, 4)),
            JournalRecord(RecordType.ADVANCE, 0, (3,)),
        ]
        a = replay_journal(per_tick, None, K)
        b = replay_journal(batched, None, K)
        assert a[0] == b[0] and a[2] == b[2]


def build_schedule(seed=17, n_slots=10, load=0.7, outputs=None):
    """Deterministic request list; ``outputs`` restricts target fibers so
    some shards stay idle (exercising ADVANCE coalescing)."""
    rng = make_rng(seed)
    requests = []
    for _slot in range(n_slots):
        for i in range(N_FIBERS):
            for w in range(K):
                if rng.random() < load:
                    out = (
                        outputs[int(rng.integers(len(outputs)))]
                        if outputs
                        else int(rng.integers(N_FIBERS))
                    )
                    requests.append(
                        SlotRequest(
                            i, w, out, duration=int(rng.integers(1, 4))
                        )
                    )
    return requests


def make_service(**kwargs):
    kwargs.setdefault("durability", DurabilityConfig(snapshot_interval=4))
    return SchedulingService(
        N_FIBERS,
        CircularConversion(K, 1, 1),
        BreakFirstAvailableScheduler(),
        max_batch_per_tick=2,
        **kwargs,
    )


async def drain_with_bursts(service, requests, crash_at_bursts=()):
    """Submit everything, then drain via tick_burst; optionally kill and
    recover every shard at the given burst boundaries."""
    futures = [service.submit_nowait(r) for r in requests]
    bursts = 0
    while service.queue_depth_total > 0:
        if bursts in crash_at_bursts:
            for o in range(N_FIBERS):
                service.shards[o].crash()
            for o in range(N_FIBERS):
                service.recover_shard(o)
        await service.tick_burst()
        bursts += 1
    outcomes = list(await asyncio.gather(*futures))
    return outcomes, bursts


class TestWindowedServiceEquivalence:
    def test_windowed_run_is_bit_identical_to_per_tick(self):
        requests = build_schedule()

        async def go(window):
            service = make_service(tick_window=window)
            outcomes, bursts = await drain_with_bursts(service, requests)
            busy = [s.busy_snapshot() for s in service.shards]
            ticks = service.slot
            await service.stop()
            return outcomes, busy, ticks, bursts

        base_outcomes, base_busy, base_ticks, base_bursts = run(go(1))
        assert any(isinstance(o, ServiceGrant) for o in base_outcomes)
        for window in (2, 4, 16):
            outcomes, busy, ticks, bursts = run(go(window))
            assert outcomes == base_outcomes, f"window={window}"
            assert busy == base_busy, f"window={window}"
            assert ticks == base_ticks, f"window={window}"
        # The window must actually amortize: fewer event-loop iterations.
        _, _, _, bursts16 = run(go(16))
        assert bursts16 < base_bursts

    def test_idle_shards_get_coalesced_advances(self):
        """All traffic to fiber 0: the other shards' journals should carry
        batched ADVANCE records, and replay to the same clock."""
        requests = build_schedule(outputs=[0])

        async def go():
            service = make_service(tick_window=8)
            await drain_with_bursts(service, requests)
            ticks = service.slot
            journals = [
                service.durability.journal(o).records()
                for o in range(N_FIBERS)
            ]
            await service.stop()
            return ticks, journals

        ticks, journals = run(go())
        idle_advances = [
            r
            for r in journals[1]
            if r.type is RecordType.ADVANCE and r.values
        ]
        assert idle_advances, "no coalesced ADVANCE on an idle shard"
        assert any(r.values[0] > 1 for r in idle_advances)
        # The idle shard's journal still accounts for every tick.
        busy, _, tick, _ = replay_journal(journals[1], None, K)
        assert tick == ticks
        assert busy == [0] * K

    def test_burst_always_runs_at_least_one_tick(self):
        async def go():
            service = make_service(tick_window=8)
            await service.tick_burst()  # empty queues: exactly one tick
            slot = service.slot
            await service.stop()
            return slot

        assert run(go()) == 1

    def test_tick_window_validation(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            make_service(tick_window=0)


class TestKillAtBurstBoundary:
    def test_recovery_at_every_burst_boundary_is_bit_identical(self):
        """The windowed analogue of the kill-at-every-tick gate: bursts
        end by flushing every deferred run, so durable state at a burst
        boundary is complete and recovery must be exact."""
        requests = build_schedule(seed=23)

        async def go(crash_at_bursts=()):
            service = make_service(tick_window=4)
            outcomes, bursts = await drain_with_bursts(
                service, requests, crash_at_bursts
            )
            busy = [s.busy_snapshot() for s in service.shards]
            await service.stop()
            return outcomes, busy, bursts

        base_outcomes, base_busy, n_bursts = run(go())
        assert n_bursts >= 3, "schedule too shallow to exercise bursts"
        for crash_burst in range(1, n_bursts):
            outcomes, busy, _ = run(go(crash_at_bursts=(crash_burst,)))
            label = f"crash at burst {crash_burst}"
            assert outcomes == base_outcomes, label
            assert busy == base_busy, label
