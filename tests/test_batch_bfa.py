"""Tests for the vectorized batch Break-and-First-Available scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch_bfa import batch_break_first_available
from repro.core.break_first_available import bfa_fast
from repro.errors import InvalidParameterError
from repro.graphs.conversion import CircularConversion


def _expected_row(req_row, avail_row, e, f):
    grants, _ = bfa_fast(req_row.tolist(), avail_row.tolist(), e, f)
    k = len(req_row)
    expected = [-1] * k
    for g in grants:
        expected[g.channel] = g.wavelength
    return expected


class TestValidation:
    def test_requires_2d(self):
        with pytest.raises(InvalidParameterError):
            batch_break_first_available(np.zeros(4), None, 1, 1)

    def test_negative_counts(self):
        with pytest.raises(InvalidParameterError):
            batch_break_first_available(np.array([[-1, 0, 0]]), None, 1, 1)

    def test_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            batch_break_first_available(
                np.zeros((2, 4), dtype=int), np.ones((2, 3), dtype=bool), 1, 1
            )

    def test_degree_bound(self):
        with pytest.raises(InvalidParameterError):
            batch_break_first_available(np.zeros((1, 2), dtype=int), None, 1, 1)
        with pytest.raises(InvalidParameterError):
            batch_break_first_available(np.zeros((1, 4), dtype=int), None, -1, 0)


class TestSemantics:
    def test_empty(self):
        assign = batch_break_first_available(
            np.zeros((3, 5), dtype=int), None, 1, 1
        )
        assert (assign == -1).all()

    def test_paper_example_row(self):
        req = np.array([[2, 1, 0, 1, 1, 2]])
        assign = batch_break_first_available(req, None, 1, 1)
        assert (assign[0] >= 0).sum() == 6  # Fig. 4: all channels used

    def test_intro_example_row(self):
        req = np.array([[0, 2, 3, 0, 1, 0]])
        assign = batch_break_first_available(req, None, 1, 1)
        assert (assign[0] >= 0).sum() == 5  # Section I: one dropped

    def test_k_one(self):
        assign = batch_break_first_available(np.array([[3]]), None, 0, 0)
        assert assign[0, 0] == 0

    def test_all_occupied_row(self):
        req = np.array([[1, 1, 1]])
        avail = np.zeros((1, 3), dtype=bool)
        assign = batch_break_first_available(req, avail, 1, 1)
        assert (assign == -1).all()

    def test_rows_independent(self):
        req = np.array([[1, 0, 0, 0], [0, 0, 1, 0]])
        assign = batch_break_first_available(req, None, 0, 0)
        assert assign[0].tolist() == [0, -1, -1, -1]
        assert assign[1].tolist() == [-1, -1, 2, -1]

    def test_grants_feasible(self):
        rng = np.random.default_rng(3)
        req = rng.integers(0, 3, size=(8, 10))
        avail = rng.random((8, 10)) > 0.3
        assign = batch_break_first_available(req, avail, 1, 2)
        scheme = CircularConversion(10, 1, 2)
        for m in range(8):
            used = {}
            for b in range(10):
                w = assign[m, b]
                if w < 0:
                    continue
                assert avail[m, b]
                assert scheme.can_convert(int(w), b)
                used[b] = w
            # per-wavelength grant counts within request counts
            for w in range(10):
                granted = sum(1 for v in used.values() if v == w)
                assert granted <= req[m, w]

    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(1, 5),
        st.integers(1, 9),
        st.integers(0, 2),
        st.integers(0, 2),
        st.integers(0, 2**31 - 1),
    )
    def test_bit_identical_to_scalar(self, rows, k, e, f, seed):
        if e + f + 1 > k:
            return
        rng = np.random.default_rng(seed)
        req = rng.integers(0, 3, size=(rows, k))
        avail = rng.random((rows, k)) > 0.3
        assign = batch_break_first_available(req, avail, e, f)
        for m in range(rows):
            assert assign[m].tolist() == _expected_row(
                req[m], avail[m], e, f
            ), (m, req[m].tolist(), avail[m].tolist())

    def test_optimality_spotcheck(self):
        from repro.core.baseline import HopcroftKarpScheduler
        from repro.graphs.request_graph import RequestGraph

        rng = np.random.default_rng(11)
        req = rng.integers(0, 3, size=(20, 8))
        avail = rng.random((20, 8)) > 0.2
        assign = batch_break_first_available(req, avail, 1, 1)
        hk = HopcroftKarpScheduler()
        scheme = CircularConversion(8, 1, 1)
        for m in range(20):
            rg = RequestGraph(scheme, req[m].tolist(), avail[m].tolist())
            assert (assign[m] >= 0).sum() == hk.schedule(rg).n_granted
