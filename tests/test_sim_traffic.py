"""Tests for traffic models, destination models and duration models."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.sim.duration import (
    DeterministicDuration,
    GeometricDuration,
    UniformDuration,
)
from repro.sim.traffic import (
    BernoulliTraffic,
    HotspotDestinations,
    MultiTenantOnOffTraffic,
    OnOffBurstyTraffic,
    TenantSpec,
    UniformDestinations,
)


@pytest.fixture
def gen():
    return np.random.default_rng(77)


class TestDurations:
    def test_deterministic(self, gen):
        d = DeterministicDuration(3)
        assert d.sample(gen) == 3
        assert d.mean == 3.0

    def test_deterministic_default_one(self, gen):
        assert DeterministicDuration().sample(gen) == 1

    def test_geometric_mean(self, gen):
        d = GeometricDuration(4.0)
        samples = [d.sample(gen) for _ in range(4000)]
        assert min(samples) >= 1
        assert abs(np.mean(samples) - 4.0) < 0.3
        assert d.mean == 4.0

    def test_geometric_mean_one_is_constant(self, gen):
        d = GeometricDuration(1.0)
        assert all(d.sample(gen) == 1 for _ in range(50))

    def test_geometric_rejects_sub_one(self):
        with pytest.raises(InvalidParameterError):
            GeometricDuration(0.5)

    def test_uniform(self, gen):
        d = UniformDuration(2, 5)
        samples = {d.sample(gen) for _ in range(300)}
        assert samples == {2, 3, 4, 5}
        assert d.mean == 3.5

    def test_uniform_rejects_inverted(self):
        with pytest.raises(InvalidParameterError):
            UniformDuration(5, 2)


class TestDestinations:
    def test_uniform_covers_all(self, gen):
        d = UniformDestinations(4)
        seen = {d.sample(gen, 0) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_hotspot_bias(self, gen):
        d = HotspotDestinations(8, hot_fiber=2, hot_fraction=0.8)
        hits = sum(d.sample(gen, 0) == 2 for _ in range(2000))
        assert hits > 1500  # expectation: 0.8 + 0.2/8 = 0.825

    def test_hotspot_validation(self):
        with pytest.raises(InvalidParameterError):
            HotspotDestinations(4, hot_fiber=4, hot_fraction=0.5)
        with pytest.raises(InvalidParameterError):
            HotspotDestinations(4, hot_fiber=0, hot_fraction=1.5)


class TestBernoulliTraffic:
    def test_one_packet_per_channel(self, gen):
        tr = BernoulliTraffic(3, 4, load=1.0)
        packets = tr.arrivals(0, gen)
        assert len(packets) == 12
        channels = {(p.input_fiber, p.wavelength) for p in packets}
        assert len(channels) == 12

    def test_zero_load(self, gen):
        assert BernoulliTraffic(3, 4, load=0.0).arrivals(0, gen) == []

    def test_load_statistics(self, gen):
        tr = BernoulliTraffic(4, 8, load=0.3)
        total = sum(len(tr.arrivals(s, gen)) for s in range(200))
        expected = 200 * 32 * 0.3
        assert abs(total - expected) / expected < 0.1

    def test_offered_load_includes_duration(self):
        tr = BernoulliTraffic(2, 2, 0.5, durations=DeterministicDuration(4))
        assert tr.offered_load == 2.0

    def test_packet_ids_unique(self, gen):
        tr = BernoulliTraffic(2, 4, load=0.8)
        ids = [
            p.packet_id for s in range(20) for p in tr.arrivals(s, gen)
        ]
        assert len(ids) == len(set(ids))

    def test_fields_in_range(self, gen):
        tr = BernoulliTraffic(3, 5, load=0.7)
        for p in tr.arrivals(0, gen):
            assert 0 <= p.input_fiber < 3
            assert 0 <= p.wavelength < 5
            assert 0 <= p.output_fiber < 3
            assert p.duration == 1
            assert p.slot == 0


class TestOnOffBurstyTraffic:
    def test_one_packet_per_channel(self, gen):
        tr = OnOffBurstyTraffic(3, 4, load=0.8, burst_length=4.0)
        for s in range(10):
            packets = tr.arrivals(s, gen)
            channels = {(p.input_fiber, p.wavelength) for p in packets}
            assert len(channels) == len(packets)

    def test_long_run_load(self, gen):
        tr = OnOffBurstyTraffic(4, 8, load=0.4, burst_length=5.0)
        total = sum(len(tr.arrivals(s, gen)) for s in range(800))
        expected = 800 * 32 * 0.4
        assert abs(total - expected) / expected < 0.15

    def test_bursts_share_destination(self, gen):
        tr = OnOffBurstyTraffic(2, 2, load=0.5, burst_length=10.0)
        dest_by_channel: dict[tuple, list[int]] = {}
        prev_on: set[tuple] = set()
        for s in range(60):
            now_on = set()
            for p in tr.arrivals(s, gen):
                key = (p.input_fiber, p.wavelength)
                now_on.add(key)
                if key in prev_on:
                    # Continuing burst: same destination as before.
                    assert dest_by_channel[key][-1] == p.output_fiber
                dest_by_channel.setdefault(key, []).append(p.output_fiber)
            prev_on = now_on

    def test_burst_length_validation(self):
        with pytest.raises(InvalidParameterError):
            OnOffBurstyTraffic(2, 2, load=0.5, burst_length=0.5)

    def test_reset(self, gen):
        tr = OnOffBurstyTraffic(2, 2, load=0.5, burst_length=3.0)
        tr.arrivals(0, gen)
        tr.reset()
        assert tr._state is None

    def test_full_load(self, gen):
        tr = OnOffBurstyTraffic(2, 2, load=1.0, burst_length=3.0)
        # Everything permanently on.
        for s in range(5):
            assert len(tr.arrivals(s, gen)) == 4


class TestSampleMany:
    def test_deterministic_batch(self, gen):
        out = DeterministicDuration(3).sample_many(gen, 5)
        assert out.dtype == np.int64 and list(out) == [3] * 5

    def test_geometric_batch_statistics(self, gen):
        out = GeometricDuration(4.0).sample_many(gen, 4000)
        assert out.min() >= 1
        assert abs(out.mean() - 4.0) < 0.3

    def test_geometric_mean_one_batch(self, gen):
        assert list(GeometricDuration(1.0).sample_many(gen, 20)) == [1] * 20

    def test_uniform_batch_covers_range(self, gen):
        out = UniformDuration(2, 5).sample_many(gen, 300)
        assert set(out) == {2, 3, 4, 5}

    def test_uniform_destinations_batch(self, gen):
        d = UniformDestinations(4)
        out = d.sample_many(gen, np.zeros(400, dtype=np.int64))
        assert set(out) == {0, 1, 2, 3}

    def test_hotspot_destinations_batch_bias(self, gen):
        d = HotspotDestinations(8, hot_fiber=2, hot_fraction=0.8)
        out = d.sample_many(gen, np.zeros(2000, dtype=np.int64))
        assert (out == 2).sum() > 1500


class TestArrivalBatchEquality:
    """The Packet-list form must be the materialization of the array form:
    both engines consume one generator identically from one seed."""

    @pytest.mark.parametrize(
        "make",
        [
            lambda: BernoulliTraffic(3, 5, 0.8),
            lambda: BernoulliTraffic(
                3,
                5,
                0.8,
                destinations=HotspotDestinations(3, 1, 0.5),
                durations=UniformDuration(1, 4),
                priority_weights=[2, 1],
            ),
            lambda: OnOffBurstyTraffic(3, 5, load=0.6, burst_length=4.0),
        ],
        ids=["bernoulli-plain", "bernoulli-everything", "onoff"],
    )
    def test_forms_identical_on_same_seed(self, make):
        packets_form, batch_form = make(), make()
        rng_a, rng_b = np.random.default_rng(21), np.random.default_rng(21)
        for slot in range(40):
            packets = packets_form.arrivals(slot, rng_a)
            batch = batch_form.arrivals_batch(slot, rng_b)
            assert batch.slot == slot and batch.n == len(packets)
            assert list(batch.input_fiber) == [p.input_fiber for p in packets]
            assert list(batch.wavelength) == [p.wavelength for p in packets]
            assert list(batch.output_fiber) == [
                p.output_fiber for p in packets
            ]
            assert list(batch.duration) == [p.duration for p in packets]
            assert list(batch.priority) == [p.priority for p in packets]


class TestMultiTenantOnOff:
    SPECS = (
        TenantSpec(0, weight=4, load=0.6, burst_length=4.0),
        TenantSpec(1, weight=2, load=0.4, burst_length=6.0),
        TenantSpec(2, weight=1, load=0.2, burst_length=8.0, priority=2),
    )

    def _traffic(self, n_fibers=4, k=6, **kw):
        return MultiTenantOnOffTraffic(n_fibers, k, self.SPECS, **kw)

    def test_channel_blocks_partition_the_space(self):
        t = self._traffic()
        seen = []
        for spec in self.SPECS:
            block = t.channels_of(spec.tenant)
            assert block  # every tenant owns at least one channel
            seen.extend(block)
        assert sorted(seen) == [(f, w) for f in range(4) for w in range(6)]
        # Contiguous split of 24 channels over 3 tenants: 8 each.
        assert all(len(t.channels_of(s.tenant)) == 8 for s in self.SPECS)

    def test_unknown_tenant_raises(self):
        with pytest.raises(InvalidParameterError):
            self._traffic().channels_of(42)

    def test_per_tenant_conservation(self, gen):
        t = self._traffic()
        emitted = {s.tenant: 0 for s in self.SPECS}
        for slot in range(200):
            for p in t.arrivals(slot, gen):
                emitted[p.tenant] += 1
            backlog = t.backlog()
            generated = t.generated_totals()
            for s in self.SPECS:
                assert (
                    generated[s.tenant]
                    == emitted[s.tenant] + backlog[s.tenant]
                )
        assert sum(generated.values()) > 0

    def test_packets_stay_on_their_tenant_block(self, gen):
        t = self._traffic()
        blocks = {s.tenant: set(t.channels_of(s.tenant)) for s in self.SPECS}
        priorities = {s.tenant: s.priority for s in self.SPECS}
        for slot in range(50):
            for p in t.arrivals(slot, gen):
                assert (p.input_fiber, p.wavelength) in blocks[p.tenant]
                assert p.priority == priorities[p.tenant]

    def test_batch_and_list_forms_agree(self):
        a, b = self._traffic(), self._traffic()
        rng_a = np.random.default_rng(99)
        rng_b = np.random.default_rng(99)
        for slot in range(30):
            batch = a.arrivals_batch(slot, rng_a)
            packets = b.arrivals(slot, rng_b)
            assert len(packets) == len(batch.input_fiber)
            for i, p in enumerate(packets):
                assert p.input_fiber == batch.input_fiber[i]
                assert p.wavelength == batch.wavelength[i]
                assert p.output_fiber == batch.output_fiber[i]
                assert p.tenant == batch.tenant[i]

    def test_offered_load_is_block_weighted_mean(self):
        t = self._traffic()
        # Equal 8-channel blocks: mean of the three per-channel loads.
        assert t.offered_load == pytest.approx((0.6 + 0.4 + 0.2) / 3)

    def test_reset_restores_the_stream(self):
        t = self._traffic()
        rng = np.random.default_rng(7)
        first = [len(t.arrivals(s, rng)) for s in range(20)]
        t.reset()
        assert t.backlog() == {0: 0, 1: 0, 2: 0}
        assert t.generated_totals() == {0: 0, 1: 0, 2: 0}
        rng = np.random.default_rng(7)
        again = [len(t.arrivals(s, rng)) for s in range(20)]
        assert first == again

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            MultiTenantOnOffTraffic(2, 2, ())
        with pytest.raises(InvalidParameterError):
            MultiTenantOnOffTraffic(2, 2, (TenantSpec(0), TenantSpec(0)))
        with pytest.raises(InvalidParameterError):
            MultiTenantOnOffTraffic(1, 1, (TenantSpec(0), TenantSpec(1)))
        with pytest.raises(InvalidParameterError):
            MultiTenantOnOffTraffic(2, 2, (TenantSpec(0, load=0.9),), peak=0.5)
        with pytest.raises(InvalidParameterError):
            MultiTenantOnOffTraffic(2, 2, (TenantSpec(0),), peak=0.0)
        with pytest.raises(InvalidParameterError):
            TenantSpec(0, burst_length=0.5)
        with pytest.raises(InvalidParameterError):
            TenantSpec(0, weight=0)

    def test_saturated_tenant_never_turns_off(self, gen):
        # load == peak pins the chain ON (p_end = 0): generation runs at
        # the full Poisson(block) rate every slot, so long-run emission
        # approaches the 4-channel block ceiling.
        t = MultiTenantOnOffTraffic(2, 2, (TenantSpec(0, load=1.0),))
        counts = [len(t.arrivals(s, gen)) for s in range(300)]
        assert max(counts) == 4  # block-saturating slots do occur
        assert np.mean(counts) > 3.2
