"""Tests for the wavelength-conversion schemes (paper Section II-A, Fig. 2)."""

import pytest
from hypothesis import given

from repro.errors import InvalidParameterError
from repro.graphs.conversion import (
    CircularConversion,
    FullRangeConversion,
    NonCircularConversion,
)
from tests.conftest import conversion_params


class TestCircular:
    def test_paper_fig2a(self):
        # λi -> {(i-1) mod 6, i, (i+1) mod 6}
        scheme = CircularConversion(6, 1, 1)
        for i in range(6):
            assert set(scheme.adjacency(i)) == {(i - 1) % 6, i, (i + 1) % 6}

    def test_degree(self):
        assert CircularConversion(8, 2, 1).degree == 4

    def test_constant_degree_everywhere(self):
        scheme = CircularConversion(10, 2, 3)
        for w in range(10):
            assert len(scheme.adjacency(w)) == 6

    def test_asymmetric_reach(self):
        scheme = CircularConversion(8, 0, 2)
        assert set(scheme.adjacency(7)) == {7, 0, 1}

    def test_identity_only(self):
        scheme = CircularConversion(5, 0, 0)
        for w in range(5):
            assert scheme.adjacency(w) == (w,)

    def test_adjacency_interval(self):
        iv = CircularConversion(6, 1, 1).adjacency_interval(0)
        assert set(iv) == {5, 0, 1}

    def test_can_convert(self):
        scheme = CircularConversion(6, 1, 1)
        assert scheme.can_convert(0, 5)
        assert not scheme.can_convert(0, 3)

    def test_sources_inverse_of_adjacency(self):
        scheme = CircularConversion(7, 1, 2)
        for b in range(7):
            for w in range(7):
                assert (w in scheme.sources(b)) == (b in scheme.adjacency(w))

    def test_degree_exceeds_k_rejected(self):
        with pytest.raises(InvalidParameterError):
            CircularConversion(3, 2, 2)

    def test_out_of_range_wavelength(self):
        with pytest.raises(InvalidParameterError):
            CircularConversion(6, 1, 1).adjacency(6)

    def test_conversion_graph_matches_adjacency(self):
        scheme = CircularConversion(6, 1, 1)
        g = scheme.conversion_graph()
        assert g.n_left == g.n_right == 6
        for w in range(6):
            assert g.neighbors_of_left(w) == scheme.adjacency(w)

    def test_full_range_flag(self):
        assert CircularConversion(5, 2, 2).is_full_range
        assert not CircularConversion(6, 2, 2).is_full_range

    @given(conversion_params())
    def test_circular_symmetry_property(self, params):
        # w can convert to b iff (w + c) can convert to (b + c) for any shift.
        k, e, f = params
        scheme = CircularConversion(k, e, f)
        for w in range(k):
            for b in scheme.adjacency(w):
                assert ((b + 1) % k) in scheme.adjacency((w + 1) % k)


class TestNonCircular:
    def test_paper_fig2b(self):
        scheme = NonCircularConversion(6, 1, 1)
        assert scheme.adjacency(0) == (0, 1)  # λ0 cannot reach λ5
        assert scheme.adjacency(5) == (4, 5)
        assert scheme.adjacency(2) == (1, 2, 3)

    def test_adjacency_bounds(self):
        scheme = NonCircularConversion(6, 1, 1)
        assert scheme.adjacency_bounds(0) == (0, 1)
        assert scheme.adjacency_bounds(3) == (2, 4)

    def test_adjacency_is_contiguous(self):
        scheme = NonCircularConversion(10, 3, 2)
        for w in range(10):
            adj = scheme.adjacency(w)
            assert list(adj) == list(range(adj[0], adj[-1] + 1))

    def test_no_wraparound(self):
        scheme = NonCircularConversion(6, 2, 2)
        assert 5 not in scheme.adjacency(0)
        assert 0 not in scheme.adjacency(5)

    def test_never_full_range(self):
        assert not NonCircularConversion(5, 2, 2).is_full_range


class TestFullRange:
    def test_everything_reachable(self):
        scheme = FullRangeConversion(6)
        for w in range(6):
            assert scheme.adjacency(w) == tuple(range(6))

    def test_degree_is_k(self):
        assert FullRangeConversion(7).degree == 7

    def test_is_full_range(self):
        assert FullRangeConversion(4).is_full_range

    def test_k_one(self):
        scheme = FullRangeConversion(1)
        assert scheme.adjacency(0) == (0,)

    def test_repr(self):
        assert "FullRangeConversion" in repr(FullRangeConversion(4))


class TestEquality:
    def test_same_params_equal(self):
        assert CircularConversion(6, 1, 1) == CircularConversion(6, 1, 1)

    def test_type_distinguishes(self):
        assert CircularConversion(6, 1, 1) != NonCircularConversion(6, 1, 1)

    def test_hashable(self):
        s = {CircularConversion(6, 1, 1), CircularConversion(6, 1, 1)}
        assert len(s) == 1

    def test_full_range_vs_circular(self):
        # Same (k, e, f) but different class: distinct.
        fr = FullRangeConversion(5)
        circ = CircularConversion(5, fr.e, fr.f)
        assert fr != circ
