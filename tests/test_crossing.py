"""Tests for crossing edges (Definition 1) and uncrossing (Lemma 1)."""

import pytest
from hypothesis import given, settings

from repro.errors import InvalidParameterError
from repro.graphs.crossing import (
    crosses,
    crossing_pairs,
    has_crossing_edges,
    uncross_matching,
)
from repro.graphs.hopcroft_karp import hopcroft_karp
from repro.graphs.matching import Matching
from tests.conftest import circular_instances


class TestPaperExamples:
    """The worked examples following Definition 1."""

    def test_a0b1_crosses_a1b0(self, paper_circular_rg):
        assert crosses(paper_circular_rg, (0, 1), (1, 0))
        assert crosses(paper_circular_rg, (1, 0), (0, 1))

    def test_a3b4_crosses_a4b3(self, paper_circular_rg):
        assert crosses(paper_circular_rg, (3, 4), (4, 3))
        assert crosses(paper_circular_rg, (4, 3), (3, 4))

    def test_a0b5_a4b4_do_not_cross(self, paper_circular_rg):
        # "though intersecting with each other in the figure, are not a
        # pair of crossing edges"
        assert not crosses(paper_circular_rg, (0, 5), (4, 4))
        assert not crosses(paper_circular_rg, (4, 4), (0, 5))

    def test_edge_does_not_cross_itself(self, paper_circular_rg):
        assert not crosses(paper_circular_rg, (0, 1), (0, 1))

    def test_same_left_vertex_edges_do_not_cross(self, paper_circular_rg):
        assert not crosses(paper_circular_rg, (0, 0), (0, 1))

    def test_non_edge_rejected(self, paper_circular_rg):
        with pytest.raises(InvalidParameterError):
            crosses(paper_circular_rg, (0, 3), (1, 0))
        with pytest.raises(InvalidParameterError):
            crosses(paper_circular_rg, (0, 1), (1, 3))


class TestCrossingStructure:
    @settings(max_examples=60, deadline=None)
    @given(circular_instances(max_k=8))
    def test_symmetric_on_matchable_pairs(self, rg):
        """For vertex-disjoint edge pairs, crossing is symmetric."""
        edges = sorted(rg.graph.edges())[:12]
        for x in edges:
            for y in edges:
                if x[0] == y[0] or x[1] == y[1]:
                    continue
                assert crosses(rg, x, y) == crosses(rg, y, x), (x, y)

    def test_crossing_pairs_lists_both_directions(self, paper_circular_rg):
        m = Matching([(0, 1), (1, 0)])
        pairs = crossing_pairs(paper_circular_rg, m)
        assert ((0, 1), (1, 0)) in pairs
        assert ((1, 0), (0, 1)) in pairs

    def test_has_crossing_edges(self, paper_circular_rg):
        assert has_crossing_edges(paper_circular_rg, Matching([(0, 1), (1, 0)]))
        assert not has_crossing_edges(paper_circular_rg, Matching([(0, 0), (1, 1)]))


class TestUncrossing:
    def test_paper_swap(self, paper_circular_rg):
        # a0b1 × a1b0  ->  a0b0, a1b1
        m = uncross_matching(paper_circular_rg, Matching([(0, 1), (1, 0)]))
        assert m.pairs == frozenset({(0, 0), (1, 1)})

    def test_second_paper_swap(self, paper_circular_rg):
        # a3b4 × a4b3  ->  a3b3, a4b4
        m = uncross_matching(paper_circular_rg, Matching([(3, 4), (4, 3)]))
        assert m.pairs == frozenset({(3, 3), (4, 4)})

    def test_already_uncrossed_is_identity(self, paper_circular_rg):
        m0 = Matching([(0, 0), (2, 1), (3, 3)])
        assert uncross_matching(paper_circular_rg, m0) == m0

    def test_preserves_cardinality_and_validity(self, paper_circular_rg):
        m0 = Matching([(0, 1), (1, 0), (3, 4), (4, 3), (5, 5)])
        m1 = uncross_matching(paper_circular_rg, m0)
        assert len(m1) == len(m0)
        m1.validate_against(paper_circular_rg.graph)
        assert not has_crossing_edges(paper_circular_rg, m1)

    def test_invalid_matching_rejected(self, paper_circular_rg):
        with pytest.raises(Exception):
            uncross_matching(paper_circular_rg, Matching([(0, 3)]))

    @settings(max_examples=60, deadline=None)
    @given(circular_instances(max_k=8))
    def test_lemma1_on_maximum_matchings(self, rg):
        """Any maximum matching can be uncrossed without losing edges —
        exactly Lemma 1's statement."""
        m = hopcroft_karp(rg.graph)
        un = uncross_matching(rg, m)
        assert len(un) == len(m)
        un.validate_against(rg.graph)
        assert not has_crossing_edges(rg, un)

    @settings(max_examples=40, deadline=None)
    @given(circular_instances(max_k=7))
    def test_lemma4_every_pivot_has_saturating_uncrossed_maximum(self, rg):
        """Lemma 4: for any left vertex with nonempty adjacency there is a
        no-crossing-edge maximum matching using one of its edges."""
        g = rg.graph
        opt = len(hopcroft_karp(g))
        for pivot in range(min(g.n_left, 3)):
            if g.degree_left(pivot) == 0:
                continue
            # Saturate the pivot per the Lemma-4 construction, then uncross.
            m = hopcroft_karp(g)
            if m.right_of(pivot) is None:
                u = g.neighbors_of_left(pivot)[0]
                displaced = m.left_of(u)
                pairs = set(m.pairs)
                if displaced is not None:
                    pairs.discard((displaced, u))
                pairs.add((pivot, u))
                m = Matching(pairs)
            assert len(m) == opt
            un = uncross_matching(rg, m)
            assert len(un) == opt
            assert un.right_of(pivot) is not None
