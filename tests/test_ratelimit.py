"""Per-tenant token-bucket rate limiting (:mod:`repro.service.ratelimit`).

Unit coverage for the bucket mechanics (deterministic tick-driven refill,
fractional rates, per-tenant overrides) plus the service-level contract:
a ``RATE_LIMITED`` request resolves at the edge, participates in the
conservation invariant (aggregate and per tenant), and never touches a
queue or a shard.
"""

import asyncio
from fractions import Fraction

import pytest

from repro.core.distributed import SlotRequest
from repro.core.first_available import FirstAvailableScheduler
from repro.errors import InvalidParameterError
from repro.graphs.conversion import NonCircularConversion
from repro.service.ratelimit import RateLimitConfig, TokenBucketLimiter
from repro.service.server import (
    Rejected,
    RejectReason,
    SchedulingService,
    ServiceGrant,
)
from repro.service.telemetry import Telemetry

N_FIBERS, K = 4, 3


def run(coro):
    return asyncio.run(coro)


def _service(**kwargs) -> SchedulingService:
    return SchedulingService(
        N_FIBERS,
        NonCircularConversion(K, 1, 1),
        FirstAvailableScheduler(),
        **kwargs,
    )


class TestConfig:
    def test_defaults_validate(self):
        cfg = RateLimitConfig()
        assert cfg.limits_for(0) == (Fraction(1), Fraction(1))

    def test_per_tenant_override(self):
        cfg = RateLimitConfig(rate_per_tick=2, burst=4, per_tenant={7: (1, 1)})
        assert cfg.limits_for(0) == (Fraction(2), Fraction(4))
        assert cfg.limits_for(7) == (Fraction(1), Fraction(1))

    def test_fractional_rate_is_exact(self):
        cfg = RateLimitConfig(rate_per_tick=Fraction(1, 3), burst=1)
        assert cfg.limits_for(0)[0] == Fraction(1, 3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_per_tick": -1},
            {"burst": 0},
            {"rate_per_tick": "nope"},
            {"per_tenant": {1: (1,)}},
            {"per_tenant": {1: (1, 0)}},
        ],
    )
    def test_bad_parameters_are_typed(self, kwargs):
        with pytest.raises(InvalidParameterError):
            RateLimitConfig(**kwargs)

    def test_limiter_requires_config(self):
        with pytest.raises(InvalidParameterError):
            TokenBucketLimiter({"rate": 1})


class TestBucketMechanics:
    def test_burst_then_starve_then_refill(self):
        limiter = TokenBucketLimiter(RateLimitConfig(rate_per_tick=1, burst=3))
        assert [limiter.allow(0) for _ in range(5)] == [
            True,
            True,
            True,
            False,
            False,
        ]
        limiter.advance()
        assert limiter.allow(0)
        assert not limiter.allow(0)

    def test_refill_caps_at_burst(self):
        limiter = TokenBucketLimiter(RateLimitConfig(rate_per_tick=5, burst=2))
        for _ in range(10):
            limiter.advance()
        assert limiter.tokens(0) == 2

    def test_fractional_rate_admits_every_nth_tick(self):
        limiter = TokenBucketLimiter(
            RateLimitConfig(rate_per_tick=Fraction(1, 3), burst=1)
        )
        assert limiter.allow(0)  # the initial burst token
        admitted = []
        for _ in range(9):
            limiter.advance()
            admitted.append(limiter.allow(0))
        # Exactly one admit per three ticks — no float drift, ever.
        assert admitted == [False, False, True] * 3

    def test_tenants_are_independent(self):
        limiter = TokenBucketLimiter(
            RateLimitConfig(rate_per_tick=1, burst=1, per_tenant={1: (1, 3)})
        )
        assert limiter.allow(0)
        assert not limiter.allow(0)
        assert [limiter.allow(1) for _ in range(4)] == [True, True, True, False]

    def test_decision_sequence_is_deterministic(self):
        def drive():
            limiter = TokenBucketLimiter(
                RateLimitConfig(rate_per_tick=Fraction(2, 3), burst=2)
            )
            out = []
            for step in range(30):
                out.append(limiter.allow(step % 2))
                if step % 3 == 0:
                    limiter.advance()
            return out

        assert drive() == drive()

    def test_telemetry_counters(self):
        t = Telemetry()
        limiter = TokenBucketLimiter(
            RateLimitConfig(rate_per_tick=1, burst=1), t
        )
        limiter.allow(0)
        limiter.allow(0)
        counters = t.counters("server.rate_limiter")
        assert counters["server.rate_limiter.allowed"] == 1
        assert counters["server.rate_limiter.limited"] == 1


class TestServiceIntegration:
    def test_rate_limited_resolves_at_the_edge(self):
        async def go():
            service = _service(
                rate_limit=RateLimitConfig(rate_per_tick=1, burst=2)
            )
            futures = [
                service.submit_nowait(SlotRequest(o, 0, o)) for o in range(4)
            ]
            assert service.queue_depth_total == 2  # two never queued
            await service.tick()
            outcomes = await asyncio.gather(*futures)
            await service.stop()
            return outcomes, service.telemetry.counters()

        outcomes, counters = run(go())
        granted = [o for o in outcomes if isinstance(o, ServiceGrant)]
        limited = [
            o
            for o in outcomes
            if isinstance(o, Rejected)
            and o.reason is RejectReason.RATE_LIMITED
        ]
        assert len(granted) == 2 and len(limited) == 2
        assert counters["server.rejected.rate_limited"] == 2
        # Conservation: submitted == granted + rate_limited here.
        assert counters["server.submitted"] == 4
        assert counters["server.granted"] == 2

    def test_per_tenant_conservation_holds(self):
        async def go():
            service = _service(
                rate_limit=RateLimitConfig(
                    rate_per_tick=1, burst=1, per_tenant={2: (4, 4)}
                )
            )
            futures = []
            for i in range(3):
                futures.append(
                    service.submit_nowait(SlotRequest(i, 0, 0, tenant=1))
                )
                futures.append(
                    service.submit_nowait(SlotRequest(i, 1, 1, tenant=2))
                )
            await service.tick()
            await asyncio.gather(*futures)
            counters = service.telemetry.counters()
            await service.stop()
            return counters

        counters = run(go())
        # Tenant 1: burst 1 -> one through, two limited.
        assert counters["tenant.1.submitted"] == 3
        assert counters["tenant.1.rejected.rate_limited"] == 2
        assert (
            counters["tenant.1.submitted"]
            == counters["tenant.1.granted"]
            + counters.get("tenant.1.rejected.contention", 0)
            + counters["tenant.1.rejected.rate_limited"]
        )
        # Tenant 2's override admits all three.
        assert counters["tenant.2.submitted"] == 3
        assert "tenant.2.rejected.rate_limited" not in counters

    def test_buckets_refill_across_ticks(self):
        async def go():
            service = _service(
                rate_limit=RateLimitConfig(rate_per_tick=1, burst=1)
            )
            outcomes = []
            for _ in range(3):
                fut = service.submit_nowait(SlotRequest(0, 0, 0))
                await service.tick()
                outcomes.append(await fut)
            await service.stop()
            return outcomes

        outcomes = run(go())
        # One submission per tick never trips a rate of 1/tick.
        assert all(isinstance(o, ServiceGrant) for o in outcomes)

    def test_unlimited_by_default(self):
        async def go():
            service = _service()
            assert service.rate_limiter is None
            futures = [
                service.submit_nowait(SlotRequest(i % N_FIBERS, i // N_FIBERS, 0))
                for i in range(8)
            ]
            await service.tick()
            outcomes = await asyncio.gather(*futures)
            await service.stop()
            return outcomes

        outcomes = run(go())
        assert not any(
            isinstance(o, Rejected) and o.reason is RejectReason.RATE_LIMITED
            for o in outcomes
        )
