"""Failure-injection tests: defective schedulers must be caught, not
propagated into wrong simulation results."""

import numpy as np
import pytest

from repro.core.base import Scheduler, validate_schedule
from repro.core.distributed import DistributedScheduler, SlotRequest
from repro.errors import ScheduleError, SimulationError
from repro.faults import ChannelOutage, FaultPlan
from repro.graphs.conversion import CircularConversion
from repro.graphs.request_graph import RequestGraph
from repro.sim.engine import SlottedSimulator
from repro.sim.fast import FastPacketSimulator
from repro.sim.traffic import BernoulliTraffic
from repro.types import Grant, ScheduleResult


class _EvilScheduler(Scheduler):
    """Produces a hand-crafted (possibly infeasible) result, bypassing
    make_result's validation — simulating an implementation defect."""

    name = "evil"

    def __init__(self, grants_fn):
        self._grants_fn = grants_fn

    def schedule(self, rg: RequestGraph) -> ScheduleResult:
        return ScheduleResult(
            grants=tuple(self._grants_fn(rg)),
            request_vector=rg.request_vector,
            available=rg.available,
        )


@pytest.fixture
def scheme():
    return CircularConversion(6, 1, 1)


@pytest.fixture
def rg(scheme):
    return RequestGraph(scheme, [2, 1, 0, 1, 1, 2])


class TestValidateCatchesEachDefect:
    def test_duplicate_channel(self, rg):
        with pytest.raises(ScheduleError, match="twice"):
            validate_schedule(rg, [Grant(0, 0), Grant(1, 0)])

    def test_out_of_window_conversion(self, rg):
        with pytest.raises(ScheduleError, match="converted"):
            validate_schedule(rg, [Grant(0, 2)])

    def test_phantom_request(self, rg):
        with pytest.raises(ScheduleError, match="arrived"):
            validate_schedule(rg, [Grant(2, 2)])  # λ2 has no requests

    def test_occupied_channel(self, scheme):
        rg = RequestGraph(scheme, [1] * 6, [False] * 6)
        with pytest.raises(ScheduleError, match="occupied"):
            validate_schedule(rg, [Grant(0, 0)])


class TestEngineRejectsEvilSchedulers:
    def _sim(self, scheme, grants_fn, seed=0):
        return SlottedSimulator(
            2,
            scheme,
            _EvilScheduler(grants_fn),
            BernoulliTraffic(2, scheme.k, 1.0),
            seed=seed,
        )

    def test_double_assignment_detected_by_datapath_checks(self, scheme):
        # Grants the same channel to two wavelengths.
        def grants_fn(rg):
            out = []
            wavelengths = [
                w for w, c in enumerate(rg.request_vector) if c > 0
            ]
            for w in wavelengths[:2]:
                out.append(Grant(w, rg.scheme.adjacency(w)[0]))
            return out

        sim = self._sim(scheme, grants_fn)
        # λ0's and λ1's first adjacent channels may coincide (λ5/λ0 windows);
        # whichever way the draw goes, the engine either runs or raises —
        # but it must never silently mis-count.  Force the collision:
        def colliding(rg):
            ws = [w for w, c in enumerate(rg.request_vector) if c > 0]
            if len(ws) < 2:
                return []
            b = rg.scheme.adjacency(ws[0])[-1]
            return [Grant(ws[0], b), Grant(ws[1], b)]

        sim = self._sim(scheme, colliding, seed=1)
        with pytest.raises((SimulationError, ScheduleError, Exception)):
            for _ in range(5):
                sim.step()

    def test_grant_without_request_detected(self, scheme):
        def grants_fn(rg):
            empty = [w for w, c in enumerate(rg.request_vector) if c == 0]
            if not empty:
                return []
            w = empty[0]
            return [Grant(w, rg.scheme.adjacency(w)[0])]

        sim = self._sim(scheme, grants_fn, seed=2)
        with pytest.raises(Exception):
            for _ in range(20):
                sim.step()


class TestDistributedRejectsEvilSchedulers:
    def test_overgrant_detected(self, scheme):
        # Grants the same wavelength more times than requested.
        def grants_fn(rg):
            ws = [w for w, c in enumerate(rg.request_vector) if c > 0]
            if not ws:
                return []
            w = ws[0]
            adj = rg.scheme.adjacency(w)
            return [
                Grant(w, b) for b in adj[: rg.request_vector[w] + 1]
            ]

        ds = DistributedScheduler(2, scheme, _EvilScheduler(grants_fn))
        with pytest.raises(Exception):
            ds.schedule_slot([SlotRequest(0, 0, 0)])


class _EvilFastSimulator(FastPacketSimulator):
    """A fast engine whose batch kernel has an injected defect.

    The kernel's row encoding (``row[b] = wavelength or -1``) cannot even
    express the duplicate-channel defect, so the fast-engine parity of the
    _EvilScheduler tests covers the remaining defect classes: grants on
    masked/dark (unavailable) channels, grants outside the conversion
    window, and per-wavelength overgrants — each must die in
    ``_validate_row``, never flow into the metrics.
    """

    def __init__(self, *args, defect, **kwargs):
        # cache off: validation runs on every row, and the defective rows
        # must never be published to the shared process-wide cache.
        kwargs.setdefault("cache", False)
        super().__init__(*args, **kwargs)
        self._defect = defect

    def _schedule_matrix(self, req, avail):
        assign = super()._schedule_matrix(req, avail)
        return self._defect(assign, req, avail)


class TestFastEngineRejectsEvilKernels:
    def _sim(self, defect, faults=None):
        scheme = CircularConversion(6, 1, 1)
        return _EvilFastSimulator(
            2,
            scheme,
            BernoulliTraffic(2, scheme.k, 1.0),
            seed=3,
            defect=defect,
            faults=faults,
        )

    def _run_expect_raise(self, sim, match):
        with pytest.raises(SimulationError, match=match):
            for _ in range(10):
                sim.step()

    def test_unavailable_channel_grant_detected(self):
        # Force a grant onto a channel the availability mask forbids —
        # with an injected outage, "unavailable" includes dark channels.
        def defect(assign, req, avail):
            if avail is not None:
                rows, cols = np.nonzero(~avail)
                if rows.size:
                    assign = assign.copy()
                    r, b = int(rows[0]), int(cols[0])
                    w = b  # same-wavelength grant: inside the window
                    if req[r, w] > 0:
                        assign[r, b] = w
            return assign

        plan = FaultPlan(
            outages=tuple(
                ChannelOutage(fib, w, start=0, duration=10)
                for fib in range(2)
                for w in range(3)
            )
        )
        sim = self._sim(defect, faults=plan)
        self._run_expect_raise(sim, "unavailable")

    def test_out_of_window_grant_detected(self):
        def defect(assign, req, avail):
            assign = assign.copy()
            for i in range(assign.shape[0]):
                ws = np.nonzero(req[i])[0]
                if ws.size:
                    w = int(ws[0])
                    # e = f = 1: channel w+3 (mod k) is out of reach.
                    assign[i, (w + 3) % req.shape[1]] = w
            return assign

        self._run_expect_raise(self._sim(defect), "window")

    def test_overgrant_detected(self):
        def defect(assign, req, avail):
            assign = assign.copy()
            for i in range(assign.shape[0]):
                ws = np.nonzero(req[i])[0]
                if ws.size:
                    w = int(ws[0])
                    k = req.shape[1]
                    # Grant w's whole window: one more than requested at
                    # full load is an overgrant.
                    for b in ((w - 1) % k, w, (w + 1) % k):
                        if avail is None or avail[i, b]:
                            assign[i, b] = w
            return assign

        self._run_expect_raise(self._sim(defect), "only")
