"""Failure-injection tests: defective schedulers must be caught, not
propagated into wrong simulation results."""

import pytest

from repro.core.base import Scheduler, validate_schedule
from repro.core.distributed import DistributedScheduler, SlotRequest
from repro.errors import ScheduleError, SimulationError
from repro.graphs.conversion import CircularConversion
from repro.graphs.request_graph import RequestGraph
from repro.sim.engine import SlottedSimulator
from repro.sim.traffic import BernoulliTraffic
from repro.types import Grant, ScheduleResult


class _EvilScheduler(Scheduler):
    """Produces a hand-crafted (possibly infeasible) result, bypassing
    make_result's validation — simulating an implementation defect."""

    name = "evil"

    def __init__(self, grants_fn):
        self._grants_fn = grants_fn

    def schedule(self, rg: RequestGraph) -> ScheduleResult:
        return ScheduleResult(
            grants=tuple(self._grants_fn(rg)),
            request_vector=rg.request_vector,
            available=rg.available,
        )


@pytest.fixture
def scheme():
    return CircularConversion(6, 1, 1)


@pytest.fixture
def rg(scheme):
    return RequestGraph(scheme, [2, 1, 0, 1, 1, 2])


class TestValidateCatchesEachDefect:
    def test_duplicate_channel(self, rg):
        with pytest.raises(ScheduleError, match="twice"):
            validate_schedule(rg, [Grant(0, 0), Grant(1, 0)])

    def test_out_of_window_conversion(self, rg):
        with pytest.raises(ScheduleError, match="converted"):
            validate_schedule(rg, [Grant(0, 2)])

    def test_phantom_request(self, rg):
        with pytest.raises(ScheduleError, match="arrived"):
            validate_schedule(rg, [Grant(2, 2)])  # λ2 has no requests

    def test_occupied_channel(self, scheme):
        rg = RequestGraph(scheme, [1] * 6, [False] * 6)
        with pytest.raises(ScheduleError, match="occupied"):
            validate_schedule(rg, [Grant(0, 0)])


class TestEngineRejectsEvilSchedulers:
    def _sim(self, scheme, grants_fn, seed=0):
        return SlottedSimulator(
            2,
            scheme,
            _EvilScheduler(grants_fn),
            BernoulliTraffic(2, scheme.k, 1.0),
            seed=seed,
        )

    def test_double_assignment_detected_by_datapath_checks(self, scheme):
        # Grants the same channel to two wavelengths.
        def grants_fn(rg):
            out = []
            wavelengths = [
                w for w, c in enumerate(rg.request_vector) if c > 0
            ]
            for w in wavelengths[:2]:
                out.append(Grant(w, rg.scheme.adjacency(w)[0]))
            return out

        sim = self._sim(scheme, grants_fn)
        # λ0's and λ1's first adjacent channels may coincide (λ5/λ0 windows);
        # whichever way the draw goes, the engine either runs or raises —
        # but it must never silently mis-count.  Force the collision:
        def colliding(rg):
            ws = [w for w, c in enumerate(rg.request_vector) if c > 0]
            if len(ws) < 2:
                return []
            b = rg.scheme.adjacency(ws[0])[-1]
            return [Grant(ws[0], b), Grant(ws[1], b)]

        sim = self._sim(scheme, colliding, seed=1)
        with pytest.raises((SimulationError, ScheduleError, Exception)):
            for _ in range(5):
                sim.step()

    def test_grant_without_request_detected(self, scheme):
        def grants_fn(rg):
            empty = [w for w, c in enumerate(rg.request_vector) if c == 0]
            if not empty:
                return []
            w = empty[0]
            return [Grant(w, rg.scheme.adjacency(w)[0])]

        sim = self._sim(scheme, grants_fn, seed=2)
        with pytest.raises(Exception):
            for _ in range(20):
                sim.step()


class TestDistributedRejectsEvilSchedulers:
    def test_overgrant_detected(self, scheme):
        # Grants the same wavelength more times than requested.
        def grants_fn(rg):
            ws = [w for w, c in enumerate(rg.request_vector) if c > 0]
            if not ws:
                return []
            w = ws[0]
            adj = rg.scheme.adjacency(w)
            return [
                Grant(w, b) for b in adj[: rg.request_vector[w] + 1]
            ]

        ds = DistributedScheduler(2, scheme, _EvilScheduler(grants_fn))
        with pytest.raises(Exception):
            ds.schedule_slot([SlotRequest(0, 0, 0)])
