"""Multi-process service vs. SlottedSimulator equivalence.

The acceptance bar for the PR-6 subsystem: a run driven through the
multi-process shard workers — and through the TCP front door — must make
*identical grant decisions* to :class:`~repro.sim.engine.SlottedSimulator`
on the same seeded traffic: same winners, same assigned channels, same
contention losses, same blocked-at-source counts, slot by slot, **bit
identical across the process boundary** — including a kill-and-recover
run that SIGKILLs shard workers mid-stream and leans on the PR-5 journal
machinery to resume without drifting a single grant.

Both sides use the stateless :class:`~repro.core.policies.
FixedPriorityPolicy` (the multi-process placement requirement), so the
only random stream is the seeded traffic, mirrored exactly via
``spawn_rngs(seed, 2)`` — the simulator's own construction.
"""

import asyncio

import pytest

pytestmark = [pytest.mark.net, pytest.mark.slow]

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.distributed import SlotRequest
from repro.core.first_available import FirstAvailableScheduler
from repro.core.policies import FixedPriorityPolicy, RandomPolicy
from repro.graphs.conversion import CircularConversion, NonCircularConversion
from repro.net import protocol as proto
from repro.net.client import NetClient
from repro.net.procservice import ProcessShardedService
from repro.net.server import NetServer
from repro.service import Rejected, RejectReason, ServiceGrant
from repro.sim.duration import DeterministicDuration
from repro.sim.engine import SlottedSimulator
from repro.sim.traffic import BernoulliTraffic
from repro.util.rng import spawn_rngs

N_FIBERS = 4
N_SLOTS = 30
SEED = 20030422
LOAD = 0.9


def _run_simulator(scheme, scheduler, traffic, n_slots, policy=None):
    sim = SlottedSimulator(
        N_FIBERS,
        scheme,
        scheduler,
        traffic,
        policy=policy if policy is not None else FixedPriorityPolicy(),
        seed=SEED,
    )
    slots = []
    original = sim.distributed.schedule_slot

    def recording(requests, availability=None):
        schedule = original(requests, availability)
        slots.append(
            {
                "granted": {
                    (
                        g.request.input_fiber,
                        g.request.wavelength,
                        g.request.output_fiber,
                        g.channel,
                    )
                    for g in schedule.granted
                },
                "rejected": {
                    (r.input_fiber, r.wavelength, r.output_fiber)
                    for r in schedule.rejected
                },
            }
        )
        return schedule

    sim.distributed.schedule_slot = recording
    blocked = [sim.step()["blocked_source"] for _ in range(n_slots)]
    return slots, blocked


def _sort_outcomes(pairs):
    """Split (request, outcome) pairs into one slot's decision sets."""
    granted = set()
    rejected = set()
    n_blocked = 0
    for r, outcome in pairs:
        if isinstance(outcome, ServiceGrant):
            granted.add(
                (r.input_fiber, r.wavelength, r.output_fiber, outcome.channel)
            )
        elif isinstance(outcome, proto.Grant):
            granted.add(
                (r.input_fiber, r.wavelength, r.output_fiber, outcome.channel)
            )
        else:
            reason = outcome.reason
            if reason is RejectReason.SOURCE_BLOCKED:
                n_blocked += 1
            else:
                assert reason is RejectReason.CONTENTION, reason
                rejected.add((r.input_fiber, r.wavelength, r.output_fiber))
    return granted, rejected, n_blocked


def _run_proc_service(
    scheme,
    scheduler,
    traffic,
    n_slots,
    *,
    journal_dir=None,
    kill_at=(),
    policy=None,
):
    """Drive ProcessShardedService one tick per traffic slot; optionally
    SIGKILL the worker owning shard ``slot % n_workers`` before the
    given slots (exercising respawn + journal recovery mid-stream)."""
    traffic_rng, _policy_rng = spawn_rngs(SEED, 2)

    async def go():
        service = ProcessShardedService(
            N_FIBERS,
            scheme,
            scheduler,
            n_workers=2,
            journal_dir=journal_dir,
            policy=policy,
        )
        slots = []
        blocked = []
        try:
            for slot in range(n_slots):
                if slot in kill_at:
                    service.kill_worker(slot % service.n_workers)
                pairs = []
                for p in traffic.arrivals(slot, traffic_rng):
                    r = SlotRequest(
                        p.input_fiber,
                        p.wavelength,
                        p.output_fiber,
                        p.duration,
                        p.priority,
                    )
                    pairs.append((r, service.submit_nowait(r)))
                await service.tick()
                granted, rejected, n_blocked = _sort_outcomes(
                    (r, f.result()) for r, f in pairs
                )
                slots.append({"granted": granted, "rejected": rejected})
                blocked.append(n_blocked)
        finally:
            await service.stop()
        return slots, blocked

    return asyncio.run(go())


def _run_over_tcp(scheme, scheduler, traffic, n_slots):
    """Same drive, but through the wire: NetClient → NetServer →
    ProcessShardedService — the full PR-6 stack."""
    traffic_rng, _policy_rng = spawn_rngs(SEED, 2)

    async def go():
        service = ProcessShardedService(
            N_FIBERS, scheme, scheduler, n_workers=2
        )
        server = NetServer(service)
        await server.start()
        client = await NetClient.connect("127.0.0.1", server.port)
        slots = []
        blocked = []
        try:
            for slot in range(n_slots):
                pairs = []
                for p in traffic.arrivals(slot, traffic_rng):
                    r = SlotRequest(
                        p.input_fiber,
                        p.wavelength,
                        p.output_fiber,
                        p.duration,
                        p.priority,
                    )
                    pairs.append((r, client.submit_nowait(r)))
                await client.tick(1)
                outcomes = await asyncio.wait_for(
                    asyncio.gather(*(f for _, f in pairs)), 30
                )
                granted, rejected, n_blocked = _sort_outcomes(
                    (r, o) for (r, _), o in zip(pairs, outcomes)
                )
                slots.append({"granted": granted, "rejected": rejected})
                blocked.append(n_blocked)
        finally:
            await client.close()
            await server.stop()
            await service.stop()
        return slots, blocked

    return asyncio.run(go())


def _assert_identical(sim_slots, sim_blocked, svc_slots, svc_blocked):
    assert len(sim_slots) == len(svc_slots)
    for slot, (sim, svc) in enumerate(zip(sim_slots, svc_slots)):
        assert sim["granted"] == svc["granted"], f"grant mismatch in slot {slot}"
        assert sim["rejected"] == svc["rejected"], (
            f"reject mismatch in slot {slot}"
        )
    assert sim_blocked == svc_blocked
    # Sanity: the workload exercised contention (else the test is vacuous).
    assert sum(len(s["granted"]) for s in sim_slots) > 0
    assert sum(len(s["rejected"]) for s in sim_slots) > 0


CASES = [
    pytest.param(
        CircularConversion(8, 1, 1),
        BreakFirstAvailableScheduler,
        DeterministicDuration(3),
        id="bfa-circular-multi-slot",
    ),
    pytest.param(
        NonCircularConversion(8, 1, 1),
        FirstAvailableScheduler,
        DeterministicDuration(2),
        id="fa-noncircular-multi-slot",
    ),
]


def _traffic(scheme, durations):
    return BernoulliTraffic(N_FIBERS, scheme.k, load=LOAD, durations=durations)


@pytest.mark.parametrize("scheme, scheduler_cls, durations", CASES)
def test_process_boundary_is_bit_identical(scheme, scheduler_cls, durations):
    sim_slots, sim_blocked = _run_simulator(
        scheme, scheduler_cls(), _traffic(scheme, durations), N_SLOTS
    )
    svc_slots, svc_blocked = _run_proc_service(
        scheme, scheduler_cls(), _traffic(scheme, durations), N_SLOTS
    )
    _assert_identical(sim_slots, sim_blocked, svc_slots, svc_blocked)
    if durations.mean > 1:
        assert sum(sim_blocked) > 0


def test_kill_and_recover_does_not_drift_a_grant(tmp_path):
    """SIGKILL both workers at different points mid-run: journal replay
    rebuilds the channel clocks exactly, so the remaining slots' grants
    still match the simulator bit for bit."""
    scheme = NonCircularConversion(8, 1, 1)
    durations = DeterministicDuration(3)
    sim_slots, sim_blocked = _run_simulator(
        scheme, FirstAvailableScheduler(), _traffic(scheme, durations), N_SLOTS
    )
    svc_slots, svc_blocked = _run_proc_service(
        scheme,
        FirstAvailableScheduler(),
        _traffic(scheme, durations),
        N_SLOTS,
        journal_dir=tmp_path,
        kill_at=(8, 17),  # 8 % 2 == 0 kills worker 0; 17 % 2 kills worker 1
    )
    _assert_identical(sim_slots, sim_blocked, svc_slots, svc_blocked)


def test_stateful_random_policy_is_bit_identical():
    """RandomPolicy has one RNG spanning all outputs — the case the
    multi-process service used to refuse.  Stateful mode threads the
    canonical RNG state through serialized per-shard worker calls in
    global fiber order, so every draw lands in the same sequence as the
    simulator's single-process policy."""
    scheme = NonCircularConversion(8, 1, 1)
    durations = DeterministicDuration(2)
    sim_slots, sim_blocked = _run_simulator(
        scheme,
        FirstAvailableScheduler(),
        _traffic(scheme, durations),
        N_SLOTS,
        policy=RandomPolicy(seed=777),
    )
    svc_slots, svc_blocked = _run_proc_service(
        scheme,
        FirstAvailableScheduler(),
        _traffic(scheme, durations),
        N_SLOTS,
        policy=RandomPolicy(seed=777),
    )
    _assert_identical(sim_slots, sim_blocked, svc_slots, svc_blocked)


def test_stateful_kill_and_recover_does_not_drift(tmp_path):
    """SIGKILL workers mid-run under the stateful policy: the respawn
    strips uncommitted write-ahead, the parent's finish_tick re-journals
    lost grants, and the retried per-shard calls re-run with the same
    pre-draw RNG state — no grant drifts."""
    scheme = NonCircularConversion(8, 1, 1)
    durations = DeterministicDuration(3)
    sim_slots, sim_blocked = _run_simulator(
        scheme,
        FirstAvailableScheduler(),
        _traffic(scheme, durations),
        N_SLOTS,
        policy=RandomPolicy(seed=777),
    )
    svc_slots, svc_blocked = _run_proc_service(
        scheme,
        FirstAvailableScheduler(),
        _traffic(scheme, durations),
        N_SLOTS,
        journal_dir=tmp_path,
        kill_at=(8, 17),
        policy=RandomPolicy(seed=777),
    )
    _assert_identical(sim_slots, sim_blocked, svc_slots, svc_blocked)


def test_tcp_front_door_is_bit_identical():
    """The full stack — wire protocol, front door, worker processes —
    changes nothing about the decisions."""
    scheme = CircularConversion(8, 1, 1)
    durations = DeterministicDuration(2)
    sim_slots, sim_blocked = _run_simulator(
        scheme,
        BreakFirstAvailableScheduler(),
        _traffic(scheme, durations),
        N_SLOTS,
    )
    svc_slots, svc_blocked = _run_over_tcp(
        scheme,
        BreakFirstAvailableScheduler(),
        _traffic(scheme, durations),
        N_SLOTS,
    )
    _assert_identical(sim_slots, sim_blocked, svc_slots, svc_blocked)
