"""Run the doctests embedded in public docstrings."""

import doctest

import pytest

import repro
import repro.graphs.conversion
import repro.util.intervals


@pytest.mark.parametrize(
    "module",
    [repro, repro.util.intervals, repro.graphs.conversion],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} has no doctests"
    assert result.failed == 0
