"""Seeded chaos harness for the scheduling service.

One deterministic drill injects the full fault menu — a shard crash, multiple
channel outages, a converter degradation — into a running service and then
audits the wreckage:

* **conservation** — every submitted request resolved exactly once, and the
  telemetry counters add up (``submitted == granted + every reject reason``);
* **feasibility** — every grant the service issued is re-validated from
  scratch against the fault plan: never on a dark channel, always inside the
  (possibly degraded) conversion window, never double-booking an output
  channel still held by an earlier multi-slot grant (this is the check that
  would catch a supervisor restoring a stale or un-aged checkpoint);
* **recovery** — the crashed shard is restarted by the supervisor, its
  breaker closes again, and post-fault throughput returns to the fault-free
  baseline's level.

Everything is seeded; a failure reproduces exactly.
"""

import asyncio

import pytest

pytestmark = pytest.mark.chaos

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.distributed import SlotRequest
from repro.faults import (
    ChannelOutage,
    ConverterDegradation,
    FaultInjector,
    FaultPlan,
    ShardCrash,
)
from repro.graphs.conversion import CircularConversion
from repro.service import (
    BreakerConfig,
    BreakerState,
    DurabilityConfig,
    OverflowPolicy,
    Rejected,
    RejectReason,
    RetryPolicy,
    SchedulingClient,
    SchedulingService,
    ServiceGrant,
    SupervisorConfig,
)
from repro.core.policies import WeightedFairPolicy
from repro.service import SloAccountant, TenantAdmission
from repro.sim.duration import GeometricDuration
from repro.sim.traffic import (
    BernoulliTraffic,
    HotspotDestinations,
    MultiTenantOnOffTraffic,
    TenantSpec,
)
from repro.util.rng import make_rng

N_FIBERS = 4
K = 8
N_SLOTS = 60

#: The drill's fault plan: 1 shard kill, 3 dark channels, 1 degraded
#: converter — all healed well before the run ends.
DRILL_PLAN = FaultPlan(
    outages=(
        ChannelOutage(fiber=0, wavelength=3, start=5, duration=15),
        ChannelOutage(fiber=2, wavelength=5, start=8, duration=10),
        ChannelOutage(fiber=1, wavelength=1, start=12, duration=6),
    ),
    degradations=(
        ConverterDegradation(input_fiber=3, start=6, duration=12, e=0, f=0),
    ),
    crashes=(ShardCrash(fiber=2, slot=10),),
)


def run(coro):
    return asyncio.run(coro)


def make_chaos_service(faults=DRILL_PLAN, **kwargs):
    kwargs.setdefault("breaker", BreakerConfig(failure_threshold=2, reset_ticks=4))
    kwargs.setdefault("supervisor", SupervisorConfig(restart_delay_ticks=3))
    kwargs.setdefault("durability", DurabilityConfig(snapshot_interval=4))
    return SchedulingService(
        N_FIBERS,
        CircularConversion(K, 1, 1),
        BreakFirstAvailableScheduler(),
        faults=faults,
        **kwargs,
    )


async def drive(service, n_slots=N_SLOTS, seed=23, load=0.7):
    """Submit seeded traffic one slot per tick; returns the outcome list."""
    traffic = BernoulliTraffic(
        N_FIBERS, K, load, durations=GeometricDuration(2.0)
    )
    rng = make_rng(seed)
    futures = []
    for slot in range(n_slots):
        for p in traffic.arrivals(slot, rng):
            futures.append(
                service.submit_nowait(
                    SlotRequest(
                        p.input_fiber,
                        p.wavelength,
                        p.output_fiber,
                        p.duration,
                        p.priority,
                    )
                )
            )
        await service.tick()
        await asyncio.sleep(0)
    await service.drain()
    return list(await asyncio.gather(*futures))


class TestChaosDrill:
    @pytest.fixture(scope="class")
    def drill(self):
        """Run the drill once; every test audits the same wreckage."""
        async def go():
            service = make_chaos_service()
            outcomes = await drive(service)
            return service, outcomes

        return run(go())

    def test_every_submission_resolved_exactly_once(self, drill):
        service, outcomes = drill
        counters = service.telemetry.snapshot()["counters"]
        resolved = counters["server.granted"] + sum(
            counters.get(name, 0)
            for name in (
                "server.rejected.contention",
                "server.rejected.source_blocked",
                "server.rejected.queue_full",
                "server.dropped",
                "server.timed_out",
                "server.shutdown",
                "server.rejected.shard_down",
                "server.rejected.circuit_open",
                "server.duplicate",
            )
        )
        assert counters["server.submitted"] == resolved == len(outcomes)

    def test_faults_actually_fired(self, drill):
        service, outcomes = drill
        counters = service.telemetry.snapshot()["counters"]
        assert counters["faults.outages"] == 3
        assert counters["faults.degradations"] == 1
        assert counters["faults.crashes"] == 1
        assert counters["server.shard_crashes"] == 1
        # The kill was visible to callers, not silently absorbed.
        reasons = {
            o.reason for o in outcomes if isinstance(o, Rejected)
        }
        assert RejectReason.SHARD_DOWN in reasons or (
            RejectReason.CIRCUIT_OPEN in reasons
        )

    def test_no_infeasible_grant_ever_issued(self, drill):
        """Re-validate every grant against the plan, from scratch."""
        service, outcomes = drill
        scheme = CircularConversion(K, 1, 1)
        injector = FaultInjector(DRILL_PLAN, N_FIBERS, K)
        # busy_until[(fiber, channel)] = first slot the channel is free again
        busy_until: dict[tuple[int, int], int] = {}
        grants = sorted(
            (o for o in outcomes if isinstance(o, ServiceGrant)),
            key=lambda g: g.slot,
        )
        assert grants, "drill produced no grants at all"
        for g in grants:
            r = g.request
            out = r.output_fiber
            # 1. never on a dark channel
            assert not injector.dark_mask(g.slot)[out, g.channel], (
                f"slot {g.slot}: granted dark channel ({out}, {g.channel})"
            )
            # 2. inside the conversion window, degraded if applicable
            eff = scheme
            deg = injector.degradations_at(g.slot).get(r.input_fiber)
            if deg is not None:
                eff = scheme.degraded(*deg)
            assert eff.can_convert(r.wavelength, g.channel), (
                f"slot {g.slot}: λ{r.wavelength}→{g.channel} outside the "
                f"effective window of input {r.input_fiber}"
            )
            # 3. never double-booked (catches stale checkpoint restores)
            key = (out, g.channel)
            assert busy_until.get(key, 0) <= g.slot, (
                f"slot {g.slot}: channel {key} still held until "
                f"{busy_until[key]}"
            )
            busy_until[key] = g.slot + r.duration

    def test_crashed_shard_recovers(self, drill):
        service, outcomes = drill
        counters = service.telemetry.snapshot()["counters"]
        assert counters["server.shard_restarts"] == 1
        assert service.supervisor.down_shards == ()
        assert not service.shards[2].down
        # The restart was seeded by exact snapshot+journal replay — the
        # chaos drill must never take the cold path (losing busy[] state).
        assert service.supervisor.restore_source(2) == "snapshot+journal"
        assert counters["server.restore.snapshot_journal"] == 1
        assert counters.get("server.restore.cold", 0) == 0
        assert counters["durability.recoveries"] >= 1
        assert counters["durability.snapshots"] >= 1
        # The breaker tripped during the drill and closed again afterwards.
        assert counters["breaker.transitions.opened"] >= 1
        assert service.breakers[2].state is BreakerState.CLOSED
        # Shard 2 grants again after the restart slot (10 + delay 3).
        post = [
            o
            for o in outcomes
            if isinstance(o, ServiceGrant)
            and o.request.output_fiber == 2
            and o.slot >= 13
        ]
        assert post, "no grants on the restarted shard"

    def test_throughput_returns_to_baseline(self, drill):
        """In the post-fault tail the drill grants at the baseline's level."""
        service, outcomes = drill

        async def baseline():
            svc = make_chaos_service(faults=None)
            return await drive(svc)

        base = run(baseline())
        horizon = DRILL_PLAN.horizon()  # last fault effect ends here

        def tail_grants(outs):
            return sum(
                1
                for o in outs
                if isinstance(o, ServiceGrant) and o.slot >= horizon + 5
            )

        chaos_tail, base_tail = tail_grants(outcomes), tail_grants(base)
        assert base_tail > 0
        assert chaos_tail >= 0.9 * base_tail


class TestRetryUnderChaos:
    def test_retry_rides_out_a_crash(self):
        """submit_with_retry keeps trying through SHARD_DOWN / CIRCUIT_OPEN
        and lands a grant once the supervisor has healed the shard."""

        async def go():
            service = make_chaos_service(
                faults=FaultPlan(crashes=(ShardCrash(fiber=0, slot=0),)),
                breaker=BreakerConfig(failure_threshold=1, reset_ticks=2),
                supervisor=SupervisorConfig(restart_delay_ticks=2),
            )
            client = SchedulingClient(service, seed=1)
            policy = RetryPolicy(max_attempts=200, base_delay=0.0)
            task = asyncio.ensure_future(
                client.submit_with_retry(SlotRequest(1, 2, 0), policy=policy)
            )
            for _ in range(30):
                await service.tick()
                await asyncio.sleep(0)
                if task.done():
                    break
            outcome = await task
            return service, outcome

        service, outcome = run(go())
        assert isinstance(outcome, ServiceGrant)
        counters = service.telemetry.snapshot()["counters"]
        assert counters["client.retries"] >= 1
        assert counters["client.retry_exhausted"] == 0
        hist = service.telemetry.snapshot()["histograms"]["client.attempts"]
        assert hist["count"] == 1

    def test_budget_stops_a_retry_storm(self):
        """An exhausted shared budget surfaces the rejection instead of
        hammering a dead shard forever."""
        from repro.service import RetryBudget

        async def go():
            # No supervisor healing within the horizon: crash, never restart
            # (delay far beyond the ticks we run).
            service = make_chaos_service(
                faults=FaultPlan(crashes=(ShardCrash(fiber=0, slot=0),)),
                breaker=None,
                supervisor=SupervisorConfig(restart_delay_ticks=1000),
            )
            client = SchedulingClient(service, seed=2)
            budget = RetryBudget(tokens=3.0, refill_per_success=0.0)
            policy = RetryPolicy(max_attempts=100, base_delay=0.0)
            await service.tick()  # applies the crash
            outcome = await client.submit_with_retry(
                SlotRequest(1, 2, 0), policy=policy, budget=budget
            )
            return service, outcome, budget

        service, outcome, budget = run(go())
        assert isinstance(outcome, Rejected)
        assert outcome.reason is RejectReason.SHARD_DOWN
        assert budget.tokens < 1.0
        counters = service.telemetry.snapshot()["counters"]
        assert counters["client.retry_exhausted"] == 1
        # 3 tokens -> exactly 3 retries after the first attempt.
        assert counters["client.retries"] == 3


class TestBackpressureUnderFaults:
    """Bounded-queue edge cases while the fault machinery is active."""

    def _service(self, capacity, overflow, **kwargs):
        kwargs.setdefault(
            "faults", FaultPlan(crashes=(ShardCrash(fiber=0, slot=0),))
        )
        return make_chaos_service(
            queue_capacity=capacity, overflow=overflow, **kwargs
        )

    def test_capacity_zero_rejects_everything(self):
        async def go():
            service = make_chaos_service(
                faults=None, queue_capacity=0, overflow=OverflowPolicy.REJECT
            )
            outcome = await service.submit(SlotRequest(0, 1, 1))
            return outcome

        outcome = run(go())
        assert isinstance(outcome, Rejected)
        assert outcome.reason is RejectReason.QUEUE_FULL

    def test_capacity_one_drop_oldest_under_burst(self):
        async def go():
            service = make_chaos_service(
                faults=None,
                queue_capacity=1,
                overflow=OverflowPolicy.DROP_OLDEST,
            )
            f1 = service.submit_nowait(SlotRequest(0, 1, 1))
            f2 = service.submit_nowait(SlotRequest(1, 2, 1))
            await service.tick()
            return await f1, await f2

        o1, o2 = run(go())
        assert isinstance(o1, Rejected) and o1.reason is RejectReason.DROPPED
        assert isinstance(o2, ServiceGrant)

    def test_open_breaker_bypasses_queue_accounting(self):
        """CIRCUIT_OPEN rejections never touch the queue: no drops, no
        offered-counter increments, depth stays zero."""

        async def go():
            service = self._service(1, OverflowPolicy.DROP_OLDEST)
            await service.tick()  # applies the crash; breaker forced open
            outcomes = [
                await service.submit(SlotRequest(1, w, 0)) for w in range(3)
            ]
            return service, outcomes

        service, outcomes = run(go())
        assert all(
            isinstance(o, Rejected)
            and o.reason is RejectReason.CIRCUIT_OPEN
            for o in outcomes
        )
        assert service.shards[0].queue.depth == 0
        counters = service.telemetry.snapshot()["counters"]
        assert counters.get("server.dropped", 0) == 0

    def test_crash_drains_queue_as_shard_down(self):
        """Requests already queued when the shard dies fail fast, for every
        overflow policy."""

        async def go(overflow):
            service = make_chaos_service(
                faults=FaultPlan(crashes=(ShardCrash(fiber=0, slot=1),)),
                queue_capacity=4,
                overflow=overflow,
            )
            await service.tick()  # slot 0: healthy
            futures = [
                service.submit_nowait(SlotRequest(1, w, 0)) for w in range(3)
            ]
            # Tick 1 applies the crash before draining — queued work dies.
            await service.tick()
            return await asyncio.gather(*futures)

        for overflow in OverflowPolicy:
            outcomes = run(go(overflow))
            assert [o.reason for o in outcomes] == (
                [RejectReason.SHARD_DOWN] * 3
            ), f"policy {overflow}"


# ---------------------------------------------------------------------------
# Multi-tenant QoS drill: seeded overload + SHED admission + a shard crash
# ---------------------------------------------------------------------------

QOS_WEIGHTS = {0: 4, 1: 2, 2: 1}
QOS_SLOTS = 80
#: Crash one shard mid-overload; the supervisor restores it from
#: snapshot + journal (the journal now replays EVICT records, so the
#: recovered queue reflects every admission decision the shed made).
QOS_PLAN = FaultPlan(crashes=(ShardCrash(fiber=1, slot=20),))


def make_qos_service(faults=QOS_PLAN, **kwargs):
    kwargs.setdefault("breaker", BreakerConfig(failure_threshold=2, reset_ticks=4))
    kwargs.setdefault("supervisor", SupervisorConfig(restart_delay_ticks=3))
    kwargs.setdefault("durability", DurabilityConfig(snapshot_interval=4))
    return SchedulingService(
        N_FIBERS,
        CircularConversion(K, 1, 1),
        BreakFirstAvailableScheduler(),
        policy=WeightedFairPolicy(QOS_WEIGHTS),
        queue_capacity=6,
        overflow=OverflowPolicy.SHED,
        admission=TenantAdmission(QOS_WEIGHTS),
        faults=faults,
        **kwargs,
    )


async def drive_tenants(service, n_slots=QOS_SLOTS, seed=31):
    """Seeded bursty overload: three tenants, 90% hotspot, tiny queues."""
    traffic = MultiTenantOnOffTraffic(
        N_FIBERS,
        K,
        tuple(
            TenantSpec(t, weight=w, load=0.9, burst_length=5.0)
            for t, w in QOS_WEIGHTS.items()
        ),
        destinations=HotspotDestinations(N_FIBERS, hot_fiber=0, hot_fraction=0.9),
    )
    rng = make_rng(seed)
    futures = []
    for slot in range(n_slots):
        for p in traffic.arrivals(slot, rng):
            futures.append(
                service.submit_nowait(
                    SlotRequest(
                        p.input_fiber,
                        p.wavelength,
                        p.output_fiber,
                        p.duration,
                        p.priority,
                        p.tenant,
                    )
                )
            )
        await service.tick()
        await asyncio.sleep(0)
    await service.drain()
    return list(await asyncio.gather(*futures))


#: Every terminal reject reason a submission can resolve to, as counter
#: suffixes under ``server.rejected.`` / ``tenant.<t>.rejected.``.
REJECT_SUFFIXES = tuple(r.value for r in RejectReason)


class TestQoSChaosDrill:
    @pytest.fixture(scope="class")
    def drill(self):
        async def go():
            service = make_qos_service()
            outcomes = await drive_tenants(service)
            return service, outcomes

        return run(go())

    def _tenant_ledger(self, counters, tenant):
        submitted = counters.get(f"tenant.{tenant}.submitted", 0)
        granted = counters.get(f"tenant.{tenant}.granted", 0)
        rejected = {
            sfx: counters.get(f"tenant.{tenant}.rejected.{sfx}", 0)
            for sfx in REJECT_SUFFIXES
        }
        return submitted, granted, rejected

    def test_overload_and_crash_actually_happened(self, drill):
        service, outcomes = drill
        counters = service.telemetry.snapshot()["counters"]
        assert counters.get("server.rejected.admission_shed", 0) > 0
        assert counters["server.shard_crashes"] == 1
        assert counters["server.shard_restarts"] == 1
        assert service.supervisor.down_shards == ()

    def test_per_tenant_conservation(self, drill):
        """arrivals == grants + rejects (every typed reason) per tenant,
        crash and recovery included — no tenant's requests evaporate."""
        service, outcomes = drill
        counters = service.telemetry.snapshot()["counters"]
        by_tenant_outcomes = {t: 0 for t in QOS_WEIGHTS}
        for o in outcomes:
            by_tenant_outcomes[o.request.tenant] += 1
        for t in QOS_WEIGHTS:
            submitted, granted, rejected = self._tenant_ledger(counters, t)
            assert submitted == by_tenant_outcomes[t], f"tenant {t}"
            assert submitted == granted + sum(rejected.values()), (
                f"tenant {t}: {submitted} != {granted} + {rejected}"
            )

    def test_tenant_ledgers_sum_to_aggregate(self, drill):
        service, outcomes = drill
        counters = service.telemetry.snapshot()["counters"]
        totals = [self._tenant_ledger(counters, t) for t in QOS_WEIGHTS]
        assert sum(s for s, _, _ in totals) == counters["server.submitted"]
        assert sum(g for _, g, _ in totals) == counters["server.granted"]
        for sfx in REJECT_SUFFIXES:
            agg = counters.get(f"server.rejected.{sfx}", 0)
            if sfx in ("dropped", "timed_out", "shutdown", "duplicate"):
                # These live under server.<name>, not server.rejected.<name>.
                agg = counters.get(f"server.{sfx}", 0)
            assert agg == sum(r[sfx] for _, _, r in totals), sfx

    def test_no_tenant_starves(self, drill):
        """Starvation-freedom under overload *and* a crash: every tenant
        lands grants, and the weight order is respected."""
        service, outcomes = drill
        grants = {t: 0 for t in QOS_WEIGHTS}
        for o in outcomes:
            if isinstance(o, ServiceGrant):
                grants[o.request.tenant] += 1
        assert all(g > 0 for g in grants.values()), grants
        total = sum(grants.values())
        # The lightest tenant keeps a non-trivial share (no priority cliff).
        assert grants[2] / total >= 0.05, grants

    def test_shed_victims_skew_to_over_share_tenants(self, drill):
        """SHED evicts the most-over-share class first, so the weight-1
        tenant absorbs at least its weight share of the shedding."""
        service, outcomes = drill
        counters = service.telemetry.snapshot()["counters"]
        sheds = {
            t: counters.get(f"tenant.{t}.rejected.admission_shed", 0)
            for t in QOS_WEIGHTS
        }
        assert sum(sheds.values()) > 0
        # Equal offered loads, weights 4:2:1 -> tenant 2 is over-share
        # whenever queues fill, tenant 0 under-share.
        assert sheds[2] >= sheds[0], sheds

    def test_slo_accountant_report(self, drill):
        """The drill's outcomes feed SloAccountant: targets chosen below
        the achieved ratios are met, an impossible target is flagged."""
        service, outcomes = drill
        acct = SloAccountant()
        acct.set_target(0, min_grant_ratio=0.2)
        acct.set_target(2, min_grant_ratio=0.01)
        for o in outcomes:
            outcome = (
                "granted" if isinstance(o, ServiceGrant) else o.reason.value
            )
            acct.record(o.request.tenant, o.request.priority, outcome)
        report = acct.report()
        assert report["tenants"][0]["met"]
        assert report["tenants"][2]["met"]
        assert report["all_met"]
        strict = SloAccountant()
        strict.set_target(2, min_grant_ratio=0.99)
        for o in outcomes:
            strict.record(
                o.request.tenant,
                o.request.priority,
                "granted" if isinstance(o, ServiceGrant) else o.reason.value,
            )
        assert not strict.report()["tenants"][2]["met"]
        assert not strict.report()["all_met"]
