"""Unit tests for the fault model: plans, injectors, degraded schemes,
and degraded-mode scheduling in the core distributed path."""

import numpy as np
import pytest

from repro.core.distributed import DistributedScheduler, SlotRequest
from repro import BreakFirstAvailableScheduler
from repro.errors import InvalidParameterError, SimulationError
from repro.faults import (
    ChannelOutage,
    ConverterDegradation,
    FaultInjector,
    FaultPlan,
    ShardCrash,
    as_injector,
)
from repro.graphs.conversion import (
    CircularConversion,
    FullRangeConversion,
    NonCircularConversion,
)
from repro.sim.engine import SlottedSimulator
from repro.sim.fast import FastPacketSimulator
from repro.sim.duration import GeometricDuration
from repro.sim.traffic import BernoulliTraffic


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert plan.n_events == 0
        assert plan.horizon() == 0
        assert not plan.has_degradations and not plan.has_crashes

    def test_event_windows_half_open(self):
        ev = ChannelOutage(fiber=0, wavelength=3, start=5, duration=2)
        assert not ev.active_at(4)
        assert ev.active_at(5) and ev.active_at(6)
        assert not ev.active_at(7)

    def test_validate_rejects_out_of_range_events(self):
        bad = [
            FaultPlan(outages=(ChannelOutage(9, 0, 0, 1),)),
            FaultPlan(outages=(ChannelOutage(0, 9, 0, 1),)),
            FaultPlan(outages=(ChannelOutage(0, 0, 0, 0),)),
            FaultPlan(degradations=(ConverterDegradation(9, 0, 1),)),
            FaultPlan(crashes=(ShardCrash(9, 0),)),
        ]
        for plan in bad:
            with pytest.raises(InvalidParameterError):
                plan.validate(4, 6)

    def test_horizon_is_one_past_last_activity(self):
        plan = FaultPlan(
            outages=(ChannelOutage(0, 0, 10, 5),),
            crashes=(ShardCrash(1, 20),),
        )
        assert plan.horizon() == 21

    def test_merge_and_from_events(self):
        a = FaultPlan.from_events([ChannelOutage(0, 0, 0, 1)])
        b = FaultPlan.from_events(
            [ConverterDegradation(1, 2, 3), ShardCrash(0, 4)]
        )
        merged = a.merge(b)
        assert merged.n_events == 3
        with pytest.raises(InvalidParameterError):
            FaultPlan.from_events(["not-an-event"])

    def test_random_is_reproducible(self):
        kwargs = dict(n_fibers=4, k=8, horizon=50)
        assert FaultPlan.random(7, **kwargs) == FaultPlan.random(7, **kwargs)
        assert FaultPlan.random(7, **kwargs) != FaultPlan.random(8, **kwargs)

    def test_random_respects_counts(self):
        plan = FaultPlan.random(
            3, 4, 8, 40, n_outages=5, n_degradations=2, n_crashes=3
        )
        assert len(plan.outages) == 5
        assert len(plan.degradations) == 2
        assert len(plan.crashes) == 3
        plan.validate(4, 8)


class TestFaultInjector:
    def _injector(self):
        plan = FaultPlan(
            outages=(
                ChannelOutage(0, 2, start=3, duration=4),
                ChannelOutage(1, 5, start=0, duration=2),
            ),
            degradations=(
                ConverterDegradation(2, start=1, duration=10, e=1, f=0),
                ConverterDegradation(2, start=5, duration=2, e=0, f=1),
            ),
            crashes=(ShardCrash(1, 6),),
        )
        return FaultInjector(plan, n_fibers=4, k=8)

    def test_dark_mask_tracks_active_windows(self):
        inj = self._injector()
        m0 = inj.dark_mask(0)
        assert m0[1, 5] and not m0[0, 2]
        m3 = inj.dark_mask(3)
        assert m3[0, 2] and not m3[1, 5]
        assert inj.n_dark(3) == 1
        assert inj.n_dark(100) == 0

    def test_dark_mask_memoized_per_slot(self):
        inj = self._injector()
        assert inj.dark_mask(3) is inj.dark_mask(3)

    def test_degradations_compose_by_min(self):
        inj = self._injector()
        assert inj.degradations_at(0) == {}
        assert inj.degradations_at(2) == {2: (1, 0)}
        # Overlap of (1,0) and (0,1) -> element-wise min (0,0).
        assert inj.degradations_at(5) == {2: (0, 0)}

    def test_crashes_and_starting_at(self):
        inj = self._injector()
        assert [c.fiber for c in inj.crashes_at(6)] == [1]
        assert inj.crashes_at(5) == ()
        assert len(inj.starting_at(0)) == 1  # the slot-0 outage
        assert len(inj.starting_at(6)) == 1  # the crash

    def test_as_injector_coercion(self):
        plan = FaultPlan(outages=(ChannelOutage(0, 0, 0, 1),))
        assert as_injector(None, 4, 8) is None
        inj = as_injector(plan, 4, 8)
        assert isinstance(inj, FaultInjector)
        assert as_injector(inj, 4, 8) is inj
        with pytest.raises(InvalidParameterError):
            as_injector(inj, 4, 9)
        with pytest.raises(InvalidParameterError):
            as_injector("nope", 4, 8)


class TestDegradedScheme:
    def test_non_binding_cap_returns_self(self):
        scheme = CircularConversion(8, 1, 1)
        assert scheme.degraded(1, 1) is scheme
        assert scheme.degraded(5, 5) is scheme

    def test_binding_cap_narrows_reach(self):
        eff = CircularConversion(8, 2, 2).degraded(1, 0)
        assert isinstance(eff, CircularConversion)
        assert (eff.e, eff.f) == (1, 0)

    def test_fixed_wavelength_floor(self):
        eff = NonCircularConversion(8, 1, 1).degraded(0, 0)
        assert isinstance(eff, NonCircularConversion)
        assert (eff.e, eff.f) == (0, 0)
        assert eff.adjacency(3) == (3,)

    def test_degraded_full_range_is_plain_circular(self):
        eff = FullRangeConversion(8).degraded(1, 1)
        assert isinstance(eff, CircularConversion)
        assert (eff.e, eff.f) == (1, 1)


class TestDegradedScheduling:
    """Degraded converters narrow the request graph, never widen it."""

    def _slot(self, degradations, seed_requests):
        scheme = CircularConversion(8, 1, 1)
        ds = DistributedScheduler(4, scheme, BreakFirstAvailableScheduler())
        return ds.schedule_slot(seed_requests, degradations=degradations)

    def test_grants_respect_narrowed_window(self):
        # Input 0 degraded to fixed-wavelength: its request at λ3 may only
        # take output channel 3.
        requests = [SlotRequest(0, 3, 0), SlotRequest(1, 3, 0)]
        schedule = self._slot({0: (0, 0)}, requests)
        for g in schedule.granted:
            if g.request.input_fiber == 0:
                assert g.channel == 3

    def test_no_degradation_means_identical_schedule(self):
        scheme = CircularConversion(8, 1, 1)
        requests = [
            SlotRequest(i, w, i % 4)
            for i in range(4)
            for w in range(0, 8, 3)
        ]
        ds = DistributedScheduler(4, scheme, BreakFirstAvailableScheduler())
        base = ds.schedule_slot(requests)
        # A non-binding degradation map must not perturb the schedule.
        same = ds.schedule_slot(requests, degradations={0: (1, 1)})
        assert sorted(
            (g.request, g.channel) for g in base.granted
        ) == sorted((g.request, g.channel) for g in same.granted)

    def test_degradation_never_grants_outside_nominal_window(self):
        scheme = CircularConversion(8, 1, 1)
        ds = DistributedScheduler(4, scheme, BreakFirstAvailableScheduler())
        requests = [SlotRequest(i, w, 0) for i in range(4) for w in (1, 4, 7)]
        schedule = ds.schedule_slot(
            requests, degradations={1: (0, 1), 2: (0, 0)}
        )
        for g in schedule.granted:
            assert scheme.can_convert(g.request.wavelength, g.channel)


class TestEngineFaultWiring:
    def test_dark_channels_reduce_grants(self):
        scheme = CircularConversion(6, 1, 1)

        def run(faults):
            return SlottedSimulator(
                3,
                scheme,
                BreakFirstAvailableScheduler(),
                BernoulliTraffic(3, 6, 1.0),
                seed=11,
                faults=faults,
            ).run(30)

        dark_all = FaultPlan(
            outages=tuple(
                ChannelOutage(fib, w, start=0, duration=30)
                for fib in range(3)
                for w in range(5)
            )
        )
        base = run(None)
        faulted = run(dark_all)
        assert (
            faulted.metrics.granted_series().sum()
            < base.metrics.granted_series().sum()
        )

    def test_engines_bit_identical_under_pure_outage_plan(self):
        scheme = CircularConversion(8, 1, 1)
        plan = FaultPlan.random(
            5, 4, 8, 40, n_outages=6, n_degradations=0, n_crashes=0
        )

        def traffic():
            # Multi-slot connections so outages interact with held channels
            # (and the fast engine's full per-input attribution path runs).
            return BernoulliTraffic(
                4, 8, 0.8, durations=GeometricDuration(2.5)
            )

        full = SlottedSimulator(
            4,
            scheme,
            BreakFirstAvailableScheduler(),
            traffic(),
            seed=17,
            faults=plan,
        ).run(60)
        fast = FastPacketSimulator(
            4, scheme, traffic(), seed=17, faults=plan
        ).run(60)
        assert np.array_equal(
            full.metrics.granted_series(), fast.metrics.granted_series()
        )
        assert full.summary() == fast.summary()

    def test_fast_engine_rejects_degradation_plans(self):
        plan = FaultPlan(
            degradations=(ConverterDegradation(0, 0, 10, e=0, f=0),)
        )
        with pytest.raises(SimulationError):
            FastPacketSimulator(
                4,
                CircularConversion(8, 1, 1),
                BernoulliTraffic(4, 8, 0.5),
                seed=0,
                faults=plan,
            )

    def test_engine_rejects_disturb_with_faults(self):
        plan = FaultPlan(outages=(ChannelOutage(0, 0, 0, 5),))
        with pytest.raises(InvalidParameterError):
            SlottedSimulator(
                4,
                CircularConversion(8, 1, 1),
                BreakFirstAvailableScheduler(),
                BernoulliTraffic(4, 8, 0.5),
                seed=0,
                disturb=True,
                faults=plan,
            )
