"""Exactly-once grants under client retries (idempotent request ids).

The retry loop's hazard: a client that gives up *waiting* for an attempt
(``attempt_timeout``) and resubmits can end up with two copies of its
request in flight — and two channel bookings for one logical connection.
The server's bounded dedup table closes that hole: every attempt carries
the same ``request_id``; a resubmission while the original is queued gets
``DUPLICATE``, a resubmission after the original was granted replays the
original grant verbatim, and a *rejected* original releases its id so the
retry is a genuinely fresh attempt.

The conservation invariant (``docs/SERVICE.md``) gains the matching term::

    submitted == granted + <reject reasons> + duplicate

and ``granted`` counts unique grants only — equal to a no-retry baseline.
"""

import asyncio

import pytest

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.distributed import SlotRequest
from repro.graphs.conversion import CircularConversion
from repro.service import (
    DurabilityConfig,
    Rejected,
    RejectReason,
    RetryPolicy,
    SchedulingClient,
    SchedulingService,
    ServiceGrant,
)
from repro.service.queue import OverflowPolicy

K = 8


def run(coro):
    return asyncio.run(coro)


def make_service(**kwargs):
    return SchedulingService(
        4, CircularConversion(K, 1, 1), BreakFirstAvailableScheduler(), **kwargs
    )


def assert_conservation(service, n_outcomes):
    counters = service.telemetry.snapshot()["counters"]
    resolved = counters["server.granted"] + sum(
        counters.get(name, 0)
        for name in (
            "server.rejected.contention",
            "server.rejected.source_blocked",
            "server.rejected.queue_full",
            "server.dropped",
            "server.timed_out",
            "server.shutdown",
            "server.rejected.shard_down",
            "server.rejected.circuit_open",
            "server.duplicate",
        )
    )
    assert counters["server.submitted"] == resolved == n_outcomes
    return counters


class TestDedupTable:
    def test_duplicate_of_inflight_id_is_refused(self):
        async def go():
            service = make_service()
            r = SlotRequest(0, 2, 1)
            first = service.submit_nowait(r, request_id="rid-1")
            second = service.submit_nowait(r, request_id="rid-1")
            dup = await second  # resolved immediately, before any tick
            await service.tick()
            return service, await first, dup

        service, original, dup = run(go())
        assert isinstance(original, ServiceGrant)
        assert isinstance(dup, Rejected)
        assert dup.reason is RejectReason.DUPLICATE
        counters = assert_conservation(service, 2)
        assert counters["server.granted"] == 1
        assert counters["server.duplicate"] == 1

    def test_resubmit_after_grant_replays_the_original(self):
        async def go():
            service = make_service()
            r = SlotRequest(1, 3, 2)
            first = service.submit_nowait(r, request_id="rid-2")
            await service.tick()
            original = await first
            replay = await service.submit_nowait(r, request_id="rid-2")
            return service, original, replay

        service, original, replay = run(go())
        assert isinstance(original, ServiceGrant)
        assert replay == original  # same channel, same slot — not recounted
        counters = assert_conservation(service, 2)
        assert counters["server.granted"] == 1
        assert counters["server.duplicate"] == 1

    def test_rejected_original_releases_its_id(self):
        async def go():
            service = make_service(
                queue_capacity=0, overflow=OverflowPolicy.REJECT
            )
            r = SlotRequest(0, 1, 1)
            first = await service.submit_nowait(r, request_id="rid-3")
            return service, first

        async def retry_on_fresh_service():
            # Same id against a service where the original was rejected:
            # the retry is a fresh attempt that can be granted.
            service = make_service(
                queue_capacity=0, overflow=OverflowPolicy.REJECT
            )
            r = SlotRequest(0, 1, 1)
            first = await service.submit_nowait(r, request_id="rid-3")
            assert first.reason is RejectReason.QUEUE_FULL
            # Capacity is still 0, so the retry fails the same way — but as
            # QUEUE_FULL (a fresh verdict), never as DUPLICATE.
            second = await service.submit_nowait(r, request_id="rid-3")
            return service, second

        service, first = run(go())
        assert isinstance(first, Rejected)
        assert first.reason is RejectReason.QUEUE_FULL
        service, second = run(retry_on_fresh_service())
        assert second.reason is RejectReason.QUEUE_FULL
        counters = assert_conservation(service, 2)
        assert counters["server.duplicate"] == 0

    def test_dedup_capacity_bounds_the_table(self):
        async def go():
            service = make_service(
                durability=DurabilityConfig(dedup_capacity=2)
            )
            outcomes = []
            for i, rid in enumerate(["a", "b", "c"]):
                outcomes.append(
                    service.submit_nowait(
                        SlotRequest(i, i, 0), request_id=rid
                    )
                )
            await service.tick()
            await asyncio.gather(*outcomes)
            # "a" was evicted by the capacity bound, so its resubmission is
            # a fresh attempt (resolves at the next tick); "c" is still in
            # the table and replays immediately.
            fresh_future = service.submit_nowait(
                SlotRequest(0, 0, 0), request_id="a"
            )
            replay = await service.submit_nowait(
                SlotRequest(2, 2, 0), request_id="c"
            )
            await service.tick()
            return service, await fresh_future, replay

        service, fresh, replay = run(go())
        assert isinstance(replay, ServiceGrant)
        assert not (
            isinstance(fresh, Rejected)
            and fresh.reason is RejectReason.DUPLICATE
        )

    def test_durability_off_ignores_request_ids(self):
        async def go():
            service = make_service(durability=False)
            r = SlotRequest(0, 4, 1)
            f1 = service.submit_nowait(r, request_id="same")
            f2 = service.submit_nowait(r, request_id="same")
            await service.tick()
            return service, await f1, await f2

        service, o1, o2 = run(go())
        # Both copies were scheduled (the second lost to its own twin at
        # the source) — no dedup without the durability layer.
        assert isinstance(o1, ServiceGrant)
        assert o2.reason is RejectReason.SOURCE_BLOCKED
        counters = service.telemetry.snapshot()["counters"]
        assert counters["server.duplicate"] == 0


class TestRetriesAreExactlyOnce:
    def test_wait_timeout_retries_never_double_grant(self):
        """Clients that abandon waiting and hammer resubmissions still get
        exactly one grant each — equal to the no-retry baseline."""
        requests = [SlotRequest(i, 2 + i, 0) for i in range(4)]

        async def go():
            service = make_service(
                durability=DurabilityConfig(snapshot_interval=4)
            )
            client = SchedulingClient(service, seed=5)
            # Real (small) backoff: with zero delay a DUPLICATE refusal
            # resolves instantly and the loop would burn every attempt
            # before the first tick.
            policy = RetryPolicy(
                max_attempts=200, base_delay=0.003, max_delay=0.01
            )
            tasks = [
                asyncio.ensure_future(
                    client.submit_with_retry(
                        r, policy=policy, attempt_timeout=0.005
                    )
                )
                for r in requests
            ]
            # Let a few attempt_timeouts fire before the first tick ever
            # runs, so the dedup table is what prevents double-scheduling.
            await asyncio.sleep(0.02)
            for _ in range(4):
                await service.tick()
                await asyncio.sleep(0.01)
            outcomes = await asyncio.gather(*tasks)
            return service, outcomes

        service, outcomes = run(go())
        assert all(isinstance(o, ServiceGrant) for o in outcomes)
        assert len({(o.request.input_fiber, o.channel) for o in outcomes}) == 4
        # n_outcomes = whatever was submitted (retries inflate it): the
        # invariant is that every submission resolved exactly once.
        counters = assert_conservation(service, counters_total(service))
        # Exactly one grant per logical request — the no-retry baseline.
        assert counters["server.granted"] == len(requests)
        assert counters["server.duplicate"] >= 1
        assert counters["client.wait_timeouts"] >= 1

    def test_replayed_grant_is_the_original(self):
        """A retry that lands after the grant gets the original slot and
        channel back, not a second booking."""

        async def go():
            service = make_service()
            client = SchedulingClient(service, seed=9)
            r = SlotRequest(0, 3, 1, duration=2)
            policy = RetryPolicy(
                max_attempts=200, base_delay=0.003, max_delay=0.01
            )
            task = asyncio.ensure_future(
                client.submit_with_retry(
                    r, policy=policy, attempt_timeout=0.005
                )
            )
            await asyncio.sleep(0.02)  # several abandoned waits
            await service.tick()  # grants the original at slot 0
            outcome = await task
            return service, outcome

        service, outcome = run(go())
        assert isinstance(outcome, ServiceGrant)
        assert outcome.slot == 0
        counters = service.telemetry.snapshot()["counters"]
        assert counters["server.granted"] == 1


def counters_total(service):
    """Total submissions the service saw (for the conservation check)."""
    return service.telemetry.snapshot()["counters"]["server.submitted"]
