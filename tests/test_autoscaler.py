"""The elastic autoscaler (:mod:`repro.service.autoscaler`).

Decision logic runs against a fake in-memory service (fast, no worker
processes): hysteresis streaks, cooldown, split/merge/relocate selection,
fleet bounds, and decision determinism.  One end-to-end test drives a
real :class:`~repro.net.procservice.ProcessShardedService` through an
autoscaler-initiated split under a manufactured hotspot.
"""

import asyncio

import pytest

from repro.errors import InvalidParameterError
from repro.service.autoscaler import Autoscaler, AutoscalerConfig
from repro.service.resharding import MigrationReport, ShardMove
from repro.service.telemetry import Telemetry


class _Queue:
    def __init__(self) -> None:
        self.depth = 0


class _FakePool:
    def __init__(self, service) -> None:
        self._service = service

    def shards_of(self, worker_id):
        return sorted(
            o
            for o, w in self._service.placement.items()
            if w == worker_id
        )


class FakeService:
    """The elasticity surface the autoscaler needs, minus the processes."""

    def __init__(self, n_shards=8, n_workers=2) -> None:
        self.telemetry = Telemetry()
        self.placement = {o: o % n_workers for o in range(n_shards)}
        self.queues = [_Queue() for _ in range(n_shards)]
        self.pool = _FakePool(self)
        self._workers = list(range(n_workers))
        self.log: list[tuple] = []

    # -- signal surface ------------------------------------------------------

    def active_workers(self):
        return sorted(self._workers)

    def worker_queue_depth(self, worker_id):
        return sum(self.queues[o].depth for o in self.pool.shards_of(worker_id))

    # -- elasticity surface --------------------------------------------------

    def _report(self, shard, source, destination) -> MigrationReport:
        return MigrationReport(
            shard=shard,
            source=source,
            destination=destination,
            payload_bytes=0,
            journal_records=0,
            next_tick=0,
            pause_seconds=0.0,
        )

    def add_worker(self):
        new = max(self._workers) + 1 if self._workers else 0
        self._workers.append(new)
        self.log.append(("add", new))
        return new

    def migrate_shard(self, shard, destination):
        source = self.placement[shard]
        self.placement[shard] = destination
        self.log.append(("migrate", shard, source, destination))
        return self._report(shard, source, destination)

    def rebalance(self, moves=None, **_kwargs):
        return [self.migrate_shard(m.shard, m.destination) for m in moves]

    def remove_worker(self, worker_id, *, drain=True):
        reports = []
        if drain:
            others = [w for w in self._workers if w != worker_id]
            for i, o in enumerate(self.pool.shards_of(worker_id)):
                reports.append(
                    self.migrate_shard(o, others[i % len(others)])
                )
        self._workers.remove(worker_id)
        self.log.append(("remove", worker_id))
        return reports

    # -- test drivers --------------------------------------------------------

    def set_depth(self, shard, depth):
        self.queues[shard].depth = depth


def _autoscaler(service, **kwargs) -> Autoscaler:
    defaults = dict(
        high_watermark=10,
        low_watermark=2,
        hysteresis_ticks=3,
        cooldown_ticks=2,
        min_workers=1,
        max_workers=4,
    )
    defaults.update(kwargs)
    return Autoscaler(service, AutoscalerConfig(**defaults))


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"high_watermark": 0},
            {"low_watermark": -1},
            {"low_watermark": 10, "high_watermark": 10},
            {"hysteresis_ticks": 0},
            {"cooldown_ticks": -1},
            {"min_workers": 0},
            {"min_workers": 4, "max_workers": 2},
        ],
    )
    def test_bad_parameters_are_typed(self, kwargs):
        defaults = dict(high_watermark=10, low_watermark=2)
        defaults.update(kwargs)
        with pytest.raises(InvalidParameterError):
            AutoscalerConfig(**defaults)


class TestDecisions:
    def test_hysteresis_delays_the_split(self):
        service = FakeService()
        scaler = _autoscaler(service)
        service.set_depth(0, 50)  # worker 0 is hot
        assert scaler.observe() is None
        assert scaler.observe() is None
        decision = scaler.observe()  # third consecutive hot tick
        assert decision is not None and decision.action == "split"
        assert decision.worker == 0
        assert decision.new_worker == 2
        # Half of worker 0's shards moved, deepest first.
        assert 0 in service.pool.shards_of(2)
        assert len(service.pool.shards_of(2)) == 2

    def test_one_calm_tick_resets_the_streak(self):
        service = FakeService()
        scaler = _autoscaler(service)
        service.set_depth(0, 50)
        scaler.observe()
        scaler.observe()
        service.set_depth(0, 0)  # calm
        assert scaler.observe() is None
        service.set_depth(0, 50)
        assert scaler.observe() is None  # streak restarted at 1
        assert scaler.observe() is None
        assert scaler.observe() is not None

    def test_cooldown_suppresses_back_to_back_actions(self):
        service = FakeService()
        scaler = _autoscaler(service, cooldown_ticks=3)
        service.set_depth(0, 50)
        for _ in range(3):
            scaler.observe()
        assert len(scaler.decisions) == 1
        service.set_depth(1, 50)  # still hot elsewhere
        for _ in range(3):
            assert scaler.observe() is None  # refractory
        # Streak kept accruing during cooldown, so the next observation
        # past it may act immediately.
        assert scaler.observe() is not None
        assert len(scaler.decisions) == 2

    def test_split_respects_max_workers_and_relocates_instead(self):
        service = FakeService(n_shards=8, n_workers=4)
        scaler = _autoscaler(service, max_workers=4, cooldown_ticks=0)
        service.set_depth(0, 30)
        service.set_depth(4, 25)  # both on worker 0
        for _ in range(2):
            assert scaler.observe() is None
        decision = scaler.observe()
        assert decision.action == "relocate"
        assert decision.worker == 0
        # The deepest shard went to the least-loaded other worker.
        assert service.placement[0] != 0
        assert len(decision.reports) == 1

    def test_single_shard_hotspot_is_left_alone(self):
        service = FakeService(n_shards=2, n_workers=2)
        scaler = _autoscaler(service)
        service.set_depth(0, 99)
        for _ in range(5):
            assert scaler.observe() is None

    def test_cold_fleet_merges_and_unwinds_scale_out(self):
        service = FakeService()
        scaler = _autoscaler(service, cooldown_ticks=0, min_workers=1)
        # Everything idle: after the streak, the highest-id worker drains.
        assert scaler.observe() is None
        assert scaler.observe() is None
        decision = scaler.observe()
        assert decision.action == "merge"
        assert decision.worker == 1
        assert service.active_workers() == [0]
        assert all(w == 0 for w in service.placement.values())
        # min_workers floor: no further merges.
        for _ in range(5):
            assert scaler.observe() is None

    def test_decisions_are_deterministic(self):
        def drive():
            service = FakeService()
            scaler = _autoscaler(service, cooldown_ticks=1)
            depths = [50, 50, 50, 0, 0, 0, 0, 0, 0, 50, 50, 50, 50]
            for d in depths:
                service.set_depth(0, d)
                scaler.observe()
            return [
                (dec.action, dec.worker, dec.new_worker)
                for dec in scaler.decisions
            ], service.log

        assert drive() == drive()

    def test_telemetry_counters(self):
        service = FakeService()
        scaler = _autoscaler(service, cooldown_ticks=0)
        service.set_depth(0, 50)
        for _ in range(3):
            scaler.observe()
        counters = service.telemetry.counters("autoscaler")
        assert counters["autoscaler.observations"] == 3
        assert counters["autoscaler.splits"] == 1
        assert counters["autoscaler.merges"] == 0


@pytest.mark.net
@pytest.mark.slow
class TestLiveSplit:
    def test_autoscaler_splits_a_real_hotspot(self):
        from repro.core.distributed import SlotRequest
        from repro.core.first_available import FirstAvailableScheduler
        from repro.graphs.conversion import NonCircularConversion
        from repro.net.procservice import ProcessShardedService
        from repro.service.server import ServiceGrant

        async def go():
            service = ProcessShardedService(
                4,
                NonCircularConversion(3, 1, 1),
                FirstAvailableScheduler(),
                n_workers=2,
            )
            scaler = Autoscaler(
                service,
                AutoscalerConfig(
                    high_watermark=2,
                    low_watermark=1,
                    hysteresis_ticks=1,
                    cooldown_ticks=0,
                    max_workers=3,
                ),
            )
            try:
                hot = service.pool.shards_of(0)
                futures = [
                    service.submit_nowait(SlotRequest(i % 4, w, o))
                    for o in hot
                    for i, w in enumerate((0, 1, 2))
                ]
                decision = scaler.observe()  # pre-tick: queues are deep
                assert decision is not None and decision.action == "split"
                assert decision.new_worker == 2
                assert service.active_workers() == [0, 1, 2]
                assert service.pool.shards_of(2)
                await service.drain()
                outcomes = await asyncio.gather(*futures)
                assert any(
                    isinstance(o, ServiceGrant) for o in outcomes
                )
                assert len(outcomes) == len(futures)
            finally:
                await service.stop()

        asyncio.run(go())
