"""Tests for the bit-level register models (paper Section II-B)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HardwareModelError, InvalidParameterError
from repro.hardware.registers import BitVector, RequestRegister


class TestBitVector:
    def test_init_and_bits(self):
        bv = BitVector(8, 0b1010)
        assert bv.width == 8
        assert bv.bits == 0b1010

    def test_rejects_overflow(self):
        with pytest.raises(InvalidParameterError):
            BitVector(3, 0b1000)
        with pytest.raises(InvalidParameterError):
            BitVector(3, -1)

    def test_from_bools(self):
        bv = BitVector.from_bools([True, False, True])
        assert bv.bits == 0b101
        assert bv.width == 3

    def test_get_set_clear(self):
        bv = BitVector(4)
        bv.set(2)
        assert bv.get(2)
        bv.clear(2)
        assert not bv.get(2)
        bv.set(1, True)
        bv.set(1, False)
        assert not bv.get(1)

    def test_index_bounds(self):
        bv = BitVector(4)
        with pytest.raises(InvalidParameterError):
            bv.get(4)
        with pytest.raises(InvalidParameterError):
            bv.set(-1)

    def test_popcount(self):
        assert BitVector(8, 0b1011).popcount() == 3

    def test_first_set_window(self):
        bv = BitVector(8, 0b0110100)
        assert bv.first_set() == 2
        assert bv.first_set(3) == 4
        assert bv.first_set(3, 3) is None
        assert bv.first_set(5, 7) == 5

    def test_first_set_clipped_window(self):
        bv = BitVector(4, 0b1000)
        assert bv.first_set(-5, 100) == 3
        assert bv.first_set(2, 1) is None

    def test_masked_and_any(self):
        bv = BitVector(4, 0b1100)
        assert bv.masked(0b0100).bits == 0b0100
        assert bv.any()
        assert not BitVector(4).any()

    def test_iter_and_eq(self):
        bv = BitVector(3, 0b101)
        assert list(bv) == [True, False, True]
        assert bv == BitVector(3, 0b101)
        assert bv != BitVector(4, 0b101)
        assert bv != 5

    @given(st.integers(1, 32), st.integers(0, 2**20))
    def test_first_set_matches_reference(self, width, bits):
        bits &= (1 << width) - 1
        bv = BitVector(width, bits)
        expected = next((i for i in range(width) if (bits >> i) & 1), None)
        assert bv.first_set() == expected


class TestRequestRegister:
    def test_layout_matches_paper(self):
        # Bit (i * k + j) = λj on fiber i.
        reg = RequestRegister(2, 4)
        reg.load(1, 2)
        assert reg.snapshot().get(1 * 4 + 2)

    def test_double_request_rejected(self):
        reg = RequestRegister(2, 4)
        reg.load(0, 0)
        with pytest.raises(HardwareModelError, match="twice"):
            reg.load(0, 0)

    def test_clear_requires_request(self):
        reg = RequestRegister(2, 4)
        with pytest.raises(HardwareModelError, match="no request"):
            reg.clear(0, 0)

    def test_wavelength_summary(self):
        reg = RequestRegister.from_requests(3, 4, [(0, 1), (2, 1), (1, 3)])
        summary = reg.wavelength_summary()
        assert list(summary) == [False, True, False, True]

    def test_counts_and_fibers(self):
        reg = RequestRegister.from_requests(3, 4, [(0, 1), (2, 1)])
        assert reg.count_on_wavelength(1) == 2
        assert reg.fibers_on_wavelength(1) == [0, 2]
        assert reg.count_on_wavelength(0) == 0
        assert reg.pending() == 2

    def test_first_fiber_round_robin_start(self):
        reg = RequestRegister.from_requests(4, 2, [(0, 0), (2, 0)])
        assert reg.first_fiber_on_wavelength(0, start=0) == 0
        assert reg.first_fiber_on_wavelength(0, start=1) == 2
        assert reg.first_fiber_on_wavelength(0, start=3) == 0  # wraps
        assert reg.first_fiber_on_wavelength(1, start=0) is None

    def test_has_request_and_clear_cycle(self):
        reg = RequestRegister(2, 2)
        reg.load(1, 1)
        assert reg.has_request(1, 1)
        reg.clear(1, 1)
        assert not reg.has_request(1, 1)
        assert reg.pending() == 0
