"""The write-ahead journal: codec, backends, torn tails, compaction.

The durability layer's whole correctness story rests on two codec claims,
so both get hypothesis property tests:

* **round-trip** — any record sequence decodes back bit-identically;
* **torn-tail tolerance** — truncating the encoded stream at *any* byte
  boundary (and corrupting any single byte past the valid prefix) loses at
  most the record being written, never an earlier one, and never raises.

The backend tests cover :class:`MemoryJournal` / :class:`FileJournal`
durability semantics (reopen adoption, atomic compaction) and
:class:`repro.faults.TornWriter` producing exactly the torn tails the
decoder claims to tolerate.
"""

import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributed import SlotRequest
from repro.errors import InvalidParameterError, JournalCrashError
from repro.faults import TornWriter
from repro.service.journal import (
    FAULT_CRASH,
    FileJournal,
    JournalRecord,
    MemoryJournal,
    RecordType,
    ShardJournal,
    decode_records,
    encode_record,
    request_from_tuple,
    request_tuple,
)

# -- strategies --------------------------------------------------------------

_I64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)

records_st = st.lists(
    st.builds(
        JournalRecord,
        type=st.sampled_from(list(RecordType)),
        tick=_I64,
        values=st.lists(_I64, max_size=6).map(tuple),
    ),
    max_size=12,
)


def encode_all(records):
    return b"".join(encode_record(r) for r in records)


# -- codec properties --------------------------------------------------------


class TestCodec:
    @given(records_st)
    def test_round_trip(self, records):
        decoded, consumed, torn = decode_records(encode_all(records))
        assert decoded == records
        assert consumed == len(encode_all(records))
        assert not torn

    @given(records_st, st.data())
    @settings(max_examples=200)
    def test_truncation_at_any_boundary_keeps_the_prefix(self, records, data):
        """Cutting the stream anywhere loses at most the torn record."""
        buf = encode_all(records)
        cut = data.draw(st.integers(min_value=0, max_value=len(buf)))
        decoded, consumed, torn = decode_records(buf[:cut])
        # The decoded prefix is an exact prefix of the original sequence...
        assert decoded == records[: len(decoded)]
        assert consumed <= cut
        # ...and a clean cut between records is not reported as torn.
        boundaries = {0}
        off = 0
        for r in records:
            off += len(encode_record(r))
            boundaries.add(off)
        assert torn == (cut not in boundaries)
        # Everything before the cut record survived: the torn record is the
        # only loss.
        assert len(decoded) >= sum(1 for b in sorted(boundaries) if b <= cut) - 1

    @given(records_st, st.data())
    @settings(max_examples=200)
    def test_single_byte_corruption_never_raises(self, records, data):
        buf = bytearray(encode_all(records))
        if not buf:
            return
        pos = data.draw(st.integers(min_value=0, max_value=len(buf) - 1))
        flip = data.draw(st.integers(min_value=1, max_value=255))
        buf[pos] ^= flip
        decoded, _consumed, _torn = decode_records(bytes(buf))
        # Records fully before the corrupted byte decode unchanged; the CRC
        # stops the walk at (or before) the damaged record.
        intact = 0
        off = 0
        for r in records:
            end = off + len(encode_record(r))
            if end <= pos:
                intact += 1
                off = end
            else:
                break
        assert decoded[:intact] == records[:intact]

    def test_crc_rejects_a_flipped_body(self):
        good = encode_record(JournalRecord(RecordType.ADVANCE, 7))
        bad = bytearray(good)
        bad[-1] ^= 0xFF
        decoded, consumed, torn = decode_records(bytes(bad))
        assert decoded == [] and consumed == 0 and torn

    def test_absurd_length_header_is_torn_not_a_huge_alloc(self):
        buf = struct.pack("!II", 2**31, 0) + b"xx"
        decoded, consumed, torn = decode_records(buf)
        assert decoded == [] and consumed == 0 and torn

    def test_valid_crc_undecodable_body_is_torn(self):
        # A body claiming more values than its length carries.
        body = struct.pack("!BqH", int(RecordType.GRANT), 0, 40)
        buf = struct.pack("!II", len(body), zlib.crc32(body)) + body
        decoded, _consumed, torn = decode_records(buf)
        assert decoded == [] and torn

    def test_too_many_values_rejected_at_encode(self):
        with pytest.raises(InvalidParameterError):
            encode_record(
                JournalRecord(RecordType.FAULT, 0, (0,) * 70_000)
            )

    def test_request_tuple_round_trip(self):
        r = SlotRequest(2, 5, 1, duration=3, priority=4)
        assert request_from_tuple(request_tuple(r)) == r

    def test_request_tuple_carries_tenant(self):
        r = SlotRequest(2, 5, 1, duration=3, priority=4, tenant=7)
        t = request_tuple(r)
        assert len(t) == 6 and t[-1] == 7
        assert request_from_tuple(t) == r

    def test_request_from_pre_tenant_tuple_defaults_to_zero(self):
        # Journals written before the tenant column store 5-value tuples.
        r = request_from_tuple((2, 5, 1, 3, 4))
        assert r == SlotRequest(2, 5, 1, duration=3, priority=4, tenant=0)


# -- backends ----------------------------------------------------------------


class TestBackends:
    def test_memory_journal_load_and_rewrite(self):
        b = MemoryJournal()
        b.append(b"abc")
        b.append(b"def")
        b.flush()
        assert b.load() == b"abcdef" and len(b) == 6
        b.rewrite(b"xy")
        assert b.load() == b"xy"

    def test_file_journal_persists_across_reopen(self, tmp_path):
        path = tmp_path / "shard.wal"
        b = FileJournal(path)
        b.append(b"hello")
        b.flush()
        b.close()
        b2 = FileJournal(path)
        assert b2.load() == b"hello"
        b2.append(b" world")
        assert b2.load() == b"hello world"
        b2.close()

    def test_file_journal_rewrite_is_atomic_rename(self, tmp_path):
        path = tmp_path / "shard.wal"
        b = FileJournal(path)
        b.append(b"old")
        b.rewrite(b"new")
        assert path.read_bytes() == b"new"
        assert not path.with_suffix(".wal.tmp").exists()
        b.append(b"+tail")
        assert b.load() == b"new+tail"
        b.close()


class TestShardJournal:
    def test_appenders_mirror_and_reload_agree(self):
        j = ShardJournal(MemoryJournal())
        j.accept(0, SlotRequest(1, 2, 0, duration=2))
        j.dequeue(1, 1)
        j.grant(1, 1, 2, 3, 2)
        j.advance(1)
        j.fault(2, FAULT_CRASH)
        j.snapshot_mark(4)
        reloaded, torn = j.reload()
        assert reloaded == list(j.records())
        assert not torn
        assert [r.type for r in reloaded] == [
            RecordType.ACCEPT,
            RecordType.DEQUEUE,
            RecordType.GRANT,
            RecordType.ADVANCE,
            RecordType.FAULT,
            RecordType.SNAPSHOT,
        ]

    def test_reopen_adopts_existing_bytes(self):
        backend = MemoryJournal()
        j = ShardJournal(backend)
        j.advance(0)
        j.advance(1)
        j2 = ShardJournal(backend)  # "restarted process" over the same bytes
        assert j2.records() == j.records()

    def test_compact_drops_only_pre_snapshot_records(self):
        j = ShardJournal(MemoryJournal())
        for t in range(6):
            j.advance(t)
        kept = j.compact(before_tick=4)
        assert kept == 2
        assert [r.tick for r in j.records()] == [4, 5]
        reloaded, torn = j.reload()
        assert [r.tick for r in reloaded] == [4, 5] and not torn

    def test_garbage_tail_on_disk_is_adopted_as_prefix(self, tmp_path):
        path = tmp_path / "shard.wal"
        j = ShardJournal(FileJournal(path))
        j.advance(0)
        j.close()
        with open(path, "ab") as fh:
            fh.write(b"\xde\xad\xbe\xef")  # torn write from a dead process
        j2 = ShardJournal(FileJournal(path))
        assert [r.type for r in j2.records()] == [RecordType.ADVANCE]
        records, torn = j2.reload()
        assert [r.type for r in records] == [RecordType.ADVANCE] and torn
        j2.close()


class TestTornWriter:
    @pytest.mark.parametrize("keep", [0, 1, 5, 10_000])
    def test_severed_append_loses_only_the_torn_record(self, keep):
        inner = MemoryJournal()
        j = ShardJournal(TornWriter(inner, crash_at_append=2, keep_bytes=keep))
        j.advance(0)
        j.advance(1)
        with pytest.raises(JournalCrashError):
            j.advance(2)
        # A fresh journal over the surviving bytes: the torn record is lost
        # unless the whole record reached the backend before the "power
        # loss" (keep >= record length), in which case it is durable.
        full = len(encode_record(JournalRecord(RecordType.ADVANCE, 2)))
        j2 = ShardJournal(inner)
        records, torn = j2.reload()
        expected = [0, 1, 2] if keep >= full else [0, 1]
        assert [r.tick for r in records] == expected
        assert torn == (0 < keep < full)

    def test_crashed_writer_stays_crashed(self):
        writer = TornWriter(MemoryJournal(), crash_at_append=0)
        with pytest.raises(JournalCrashError):
            writer.append(b"x")
        with pytest.raises(JournalCrashError):
            writer.append(b"y")
        with pytest.raises(JournalCrashError):
            writer.rewrite(b"z")
        assert writer.crashed
