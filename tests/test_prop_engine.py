"""Property-based tests over randomized simulator configurations.

Hypothesis drives the whole engine envelope — interconnect sizes, conversion
shapes, loads, durations, disturb mode — and checks the conservation laws
that must hold for *every* configuration.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.graphs.conversion import CircularConversion
from repro.sim.duration import DeterministicDuration, GeometricDuration
from repro.sim.engine import SlottedSimulator
from repro.sim.traffic import BernoulliTraffic


@st.composite
def engine_configs(draw):
    n = draw(st.integers(1, 4))
    k = draw(st.integers(1, 8))
    e = draw(st.integers(0, min(2, k - 1)))
    f = draw(st.integers(0, min(2, k - 1 - e)))
    load = draw(st.floats(0.0, 1.0, allow_nan=False))
    duration = draw(
        st.one_of(
            st.just(DeterministicDuration(1)),
            st.builds(DeterministicDuration, st.integers(1, 4)),
            st.builds(GeometricDuration, st.floats(1.0, 4.0)),
        )
    )
    disturb = draw(st.booleans())
    seed = draw(st.integers(0, 2**31 - 1))
    return n, k, e, f, load, duration, disturb, seed


class TestEngineProperties:
    @settings(max_examples=50, deadline=None)
    @given(engine_configs())
    def test_conservation_everywhere(self, cfg):
        n, k, e, f, load, duration, disturb, seed = cfg
        sim = SlottedSimulator(
            n,
            CircularConversion(k, e, f),
            BreakFirstAvailableScheduler(),
            BernoulliTraffic(n, k, load, durations=duration),
            disturb=disturb,
            seed=seed,
        )
        res = sim.run(12)
        m = res.metrics
        # Flow conservation.
        assert m.granted + m.rejected == m.submitted
        assert m.submitted + m.blocked_source == m.offered
        # Capacity.
        assert all(g <= n * k for g in m.granted_series())
        assert all(b <= n * k for b in m.busy_series())
        # Probabilities in range.
        assert 0.0 <= m.loss_probability <= 1.0
        assert 0.0 <= m.utilization <= 1.0
        assert 0.0 <= m.source_block_probability <= 1.0
        assert 1.0 / max(1, n) - 1e-9 <= m.input_fairness <= 1.0 + 1e-9
        # Occupancy is consistent at the end of the run: every live
        # connection pins exactly one input channel and one output channel,
        # so the busy counts agree (in both disturb modes).
        assert np.count_nonzero(sim._in_busy) == np.count_nonzero(sim._out_busy)

    @settings(max_examples=25, deadline=None)
    @given(engine_configs())
    def test_seed_determinism(self, cfg):
        n, k, e, f, load, duration, disturb, seed = cfg

        def run():
            sim = SlottedSimulator(
                n,
                CircularConversion(k, e, f),
                BreakFirstAvailableScheduler(),
                BernoulliTraffic(n, k, load, durations=duration),
                disturb=disturb,
                seed=seed,
            )
            return sim.run(8).summary()

        assert run() == run()
