"""Tests for the bounded per-shard queues and their overflow policies.

The hypothesis model-based suite at the bottom drives random
offer/drain/plan sequences against a plain-list reference model for every
policy and capacity (``None`` and 0–4 inclusive) — the queue invariants the
write-ahead journal's ``plan_offer`` prediction depends on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.core.distributed import SlotRequest
from repro.service.queue import BoundedQueue, OverflowPolicy, TenantAdmission


class TestBasics:
    def test_fifo_order(self):
        q = BoundedQueue()
        for i in range(5):
            assert q.offer(i).accepted
        assert q.drain() == [0, 1, 2, 3, 4]
        assert q.depth == 0

    def test_unbounded_never_full(self):
        q = BoundedQueue(capacity=None)
        for i in range(10_000):
            assert q.offer(i).accepted
        assert not q.full
        assert q.depth == 10_000

    def test_drain_limit(self):
        q = BoundedQueue()
        for i in range(5):
            q.offer(i)
        assert q.drain(2) == [0, 1]
        assert q.depth == 3
        assert q.drain(99) == [2, 3, 4]

    def test_drain_negative_limit(self):
        with pytest.raises(InvalidParameterError):
            BoundedQueue().drain(-1)

    def test_iteration_and_len(self):
        q = BoundedQueue()
        q.offer("a")
        q.offer("b")
        assert list(q) == ["a", "b"]
        assert len(q) == 2

    def test_invalid_capacity(self):
        with pytest.raises(InvalidParameterError):
            BoundedQueue(capacity=-1)

    def test_invalid_policy(self):
        with pytest.raises(InvalidParameterError):
            BoundedQueue(policy="reject")


class TestOverflowPolicies:
    def _full_queue(self, policy):
        q = BoundedQueue(capacity=2, policy=policy)
        assert q.offer("old").accepted
        assert q.offer("mid").accepted
        assert q.full
        return q

    def test_reject_refuses_newcomer(self):
        q = self._full_queue(OverflowPolicy.REJECT)
        offer = q.offer("new")
        assert not offer.accepted and offer.evicted is None
        assert q.drain() == ["old", "mid"]

    def test_drop_tail_refuses_newcomer(self):
        q = self._full_queue(OverflowPolicy.DROP_TAIL)
        offer = q.offer("new")
        assert not offer.accepted and offer.evicted is None
        assert q.drain() == ["old", "mid"]

    def test_drop_oldest_evicts_head(self):
        q = self._full_queue(OverflowPolicy.DROP_OLDEST)
        offer = q.offer("new")
        assert offer.accepted
        assert offer.evicted == "old"
        assert q.drain() == ["mid", "new"]

    def test_room_after_drain(self):
        q = self._full_queue(OverflowPolicy.REJECT)
        q.drain(1)
        assert q.offer("new").accepted
        assert q.drain() == ["mid", "new"]


class TestDegenerateCapacities:
    """Capacity 0 and 1 — the edge cases fault drills lean on (a service
    under backpressure can legitimately be configured to buffer nothing)."""

    @pytest.mark.parametrize("policy", list(OverflowPolicy))
    def test_capacity_zero_accepts_nothing(self, policy):
        q = BoundedQueue(capacity=0, policy=policy)
        assert q.full and q.depth == 0
        offer = q.offer("x")
        assert not offer.accepted
        # DROP_OLDEST has no head to evict — it must refuse the newcomer,
        # not crash or evict a phantom.
        assert offer.evicted is None
        assert q.drain() == []

    def test_capacity_one_reject(self):
        q = BoundedQueue(capacity=1, policy=OverflowPolicy.REJECT)
        assert q.offer("a").accepted
        assert not q.offer("b").accepted
        assert q.drain() == ["a"]

    def test_capacity_one_drop_oldest_churns(self):
        q = BoundedQueue(capacity=1, policy=OverflowPolicy.DROP_OLDEST)
        assert q.offer("a").accepted
        offer = q.offer("b")
        assert offer.accepted and offer.evicted == "a"
        offer = q.offer("c")
        assert offer.accepted and offer.evicted == "b"
        assert q.drain() == ["c"]


# ---------------------------------------------------------------------------
# Model-based property tests
# ---------------------------------------------------------------------------

#: One scripted operation: ("offer",) or ("drain", limit|None).
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("offer")),
        st.tuples(st.just("drain"), st.none() | st.integers(0, 5)),
    ),
    max_size=40,
)
_capacities = st.none() | st.integers(min_value=0, max_value=4)
_policies = st.sampled_from(list(OverflowPolicy))


class TestQueueModel:
    """Random op sequences vs a plain-list reference model."""

    @given(_capacities, _policies, _ops)
    @settings(max_examples=300)
    def test_matches_reference_model(self, capacity, policy, ops):
        q = BoundedQueue(capacity, policy)
        model: list[int] = []
        counter = 0
        for op in ops:
            if op[0] == "offer":
                counter += 1
                # The plan call must predict offer exactly, every time —
                # this is what lets the server journal the effect
                # write-ahead.  SHED plans per-item (plan_admit); the
                # other policies are item-blind (plan_offer).
                if policy is OverflowPolicy.SHED:
                    decision = q.plan_admit(counter)
                    will_accept = decision.accepted
                    will_evict = decision.evict_index is not None
                else:
                    will_accept, will_evict = q.plan_offer()
                offer = q.offer(counter)
                assert offer.accepted == will_accept
                assert (offer.evicted is not None) == will_evict
                # Reference model semantics (ints are all tenant 0 /
                # class 0, so a full SHED queue refuses the newcomer —
                # the youngest of an all-equal field — like DROP_TAIL):
                full = capacity is not None and len(model) >= capacity
                if not full:
                    model.append(counter)
                    assert offer.accepted and offer.evicted is None
                elif policy is OverflowPolicy.DROP_OLDEST and model:
                    evicted = model.pop(0)
                    model.append(counter)
                    assert offer.accepted and offer.evicted == evicted
                else:
                    assert not offer.accepted and offer.evicted is None
            else:
                limit = op[1]
                if limit is None:
                    expect, model = model, []
                else:
                    expect, model = model[:limit], model[limit:]
                assert q.drain(limit) == expect
            # Invariants after every step.
            assert list(q) == model
            assert q.depth == len(q) == len(model)
            if capacity is not None:
                assert q.depth <= capacity
                assert q.full == (q.depth >= capacity)
            else:
                assert not q.full

    @given(_policies, st.integers(min_value=0, max_value=8))
    def test_capacity_zero_is_inert_for_every_policy(self, policy, n_offers):
        q = BoundedQueue(capacity=0, policy=policy)
        for i in range(n_offers):
            if policy is OverflowPolicy.SHED:
                decision = q.plan_admit(i)
                assert not decision.accepted and decision.evict_index is None
            else:
                assert q.plan_offer() == (False, False)
            offer = q.offer(i)
            assert not offer.accepted and offer.evicted is None
        assert q.depth == 0 and q.full and q.drain() == []

    @given(_capacities, _policies, st.integers(min_value=0, max_value=12))
    def test_fifo_order_is_total(self, capacity, policy, n):
        """Whatever was admitted drains in exactly admission order."""
        q = BoundedQueue(capacity, policy)
        admitted: list[int] = []
        for i in range(n):
            offer = q.offer(i)
            if offer.evicted is not None:
                admitted.remove(offer.evicted)
            if offer.accepted:
                admitted.append(i)
        assert q.drain() == admitted
        assert sorted(admitted) == admitted  # FIFO never reorders


def _req(tenant, priority=0):
    return SlotRequest(0, 0, 0, 1, priority, tenant)


class TestTenantAdmission:
    def test_weight_lookup_and_default(self):
        adm = TenantAdmission({0: 4, 1: 2}, default_weight=3)
        assert adm.weight(0) == 4
        assert adm.weight(1) == 2
        assert adm.weight(99) == 3

    def test_invalid_weights_rejected(self):
        with pytest.raises(InvalidParameterError):
            TenantAdmission({0: 0})
        with pytest.raises(InvalidParameterError):
            TenantAdmission(default_weight=0)
        with pytest.raises(InvalidParameterError):
            TenantAdmission({-1: 2})


class TestShedVictimSelection:
    """plan_admit's deterministic victim order: priority class first, then
    the tenant most over its weighted fair share (exact fractions), then
    the youngest request of that tenant — with the newcomer counting as
    youngest of all."""

    def _queue(self, weights, capacity):
        return BoundedQueue(
            capacity=capacity,
            policy=OverflowPolicy.SHED,
            admission=TenantAdmission(weights),
        )

    def test_not_full_admits_without_eviction(self):
        q = self._queue({}, capacity=2)
        q.offer(_req(0))
        decision = q.plan_admit(_req(1))
        assert decision.accepted and decision.evict_index is None

    def test_lowest_class_is_shed_first(self):
        q = self._queue({}, capacity=3)
        a, b, c = _req(0, priority=0), _req(1, priority=2), _req(2, priority=1)
        for r in (a, b, c):
            assert q.offer(r).accepted
        newcomer = _req(3, priority=1)
        decision = q.plan_admit(newcomer)
        assert decision.accepted and decision.evict_index == 1
        offer = q.offer(newcomer)
        assert offer.accepted and offer.evicted is b
        assert list(q) == [a, c, newcomer]

    def test_over_share_tenant_loses_within_class(self):
        # Same class everywhere; tenant 0 (weight 3) holds 2 -> share 2/3,
        # tenant 1 (weight 1) holds 2 -> share 2/1: tenant 1 is the most
        # over-share, and its *younger* queued request is the victim.
        q = self._queue({0: 3, 1: 1}, capacity=4)
        items = [_req(0), _req(0), _req(1), _req(1)]
        for r in items:
            assert q.offer(r).accepted
        decision = q.plan_admit(_req(2))
        assert decision.accepted and decision.evict_index == 3

    def test_newcomer_over_share_is_refused(self):
        # Queue [t0, t1]; a second t1 request would put tenant 1 at 2/1
        # with itself as the youngest -> the newcomer is its own victim.
        q = self._queue({0: 1, 1: 1}, capacity=2)
        a, b = _req(0), _req(1)
        for r in (a, b):
            assert q.offer(r).accepted
        newcomer = _req(1)
        decision = q.plan_admit(newcomer)
        assert not decision.accepted and decision.evict_index is None
        offer = q.offer(newcomer)
        assert not offer.accepted and offer.evicted is None
        assert list(q) == [a, b]

    def test_fraction_tie_goes_to_youngest_overall(self):
        # Equal weights, equal occupancy: every tenant sits at the same
        # exact share, so the age rule alone decides -- newcomer refused.
        q = self._queue({}, capacity=2)
        for r in (_req(0), _req(1)):
            assert q.offer(r).accepted
        assert not q.plan_admit(_req(2)).accepted

    def test_high_class_newcomer_displaces_low_class_holder(self):
        # A full queue of background traffic cannot lock out a
        # higher-class newcomer of the same tenant.
        q = self._queue({}, capacity=2)
        for r in (_req(0, priority=3), _req(0, priority=3)):
            assert q.offer(r).accepted
        decision = q.plan_admit(_req(0, priority=0))
        # Victim is the *youngest* of the lowest class (index 1).
        assert decision.accepted and decision.evict_index == 1

    def test_plan_admit_requires_shed_policy(self):
        q = BoundedQueue(capacity=1, policy=OverflowPolicy.REJECT)
        with pytest.raises(InvalidParameterError):
            q.plan_admit(_req(0))
