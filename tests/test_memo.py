"""Tests for the schedule memo cache and its scheduler wiring."""

import numpy as np
import pytest

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.first_available import FirstAvailableScheduler
from repro.core.memo import (
    DEFAULT_MAXSIZE,
    ScheduleCache,
    configure_default_cache,
    get_default_cache,
    resolve_cache,
    schedule_cache_key,
)
from repro.errors import InvalidParameterError
from repro.graphs.conversion import (
    CircularConversion,
    FullRangeConversion,
    NonCircularConversion,
)
from repro.graphs.request_graph import RequestGraph


def _graphs(scheme, rng, n=60):
    for _ in range(n):
        wavelengths = rng.integers(scheme.k, size=rng.integers(0, scheme.k + 1))
        available = rng.random(scheme.k) < 0.8
        yield RequestGraph.from_wavelengths(
            scheme, (int(w) for w in wavelengths), [bool(a) for a in available]
        )


class TestScheduleCache:
    def test_get_put_roundtrip(self):
        cache = ScheduleCache(maxsize=4)
        assert cache.get("k1") is None
        cache.put("k1", "v1")
        assert cache.get("k1") == "v1"
        assert cache.stats() == {
            "size": 1, "maxsize": 4, "hits": 1, "misses": 1, "evictions": 0,
        }

    def test_lru_eviction_bounds_memory(self):
        cache = ScheduleCache(maxsize=3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert cache.stats()["evictions"] == 7
        # Only the three most recent keys survive.
        assert cache.get(9) == 9 and cache.get(0) is None

    def test_get_refreshes_recency(self):
        cache = ScheduleCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")           # 'a' is now most recent
        cache.put("c", 3)        # evicts 'b', not 'a'
        assert cache.get("a") == 1 and cache.get("b") is None

    def test_zero_maxsize_disables_storage(self):
        cache = ScheduleCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None and len(cache) == 0

    def test_clear(self):
        cache = ScheduleCache(maxsize=4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0 and cache.get("a") is None

    def test_negative_maxsize_rejected(self):
        with pytest.raises(InvalidParameterError):
            ScheduleCache(maxsize=-1)

    def test_resolve_cache_forms(self):
        own = ScheduleCache(maxsize=2)
        assert resolve_cache(own) is own
        assert resolve_cache(True) is get_default_cache()
        assert resolve_cache(False) is None
        assert resolve_cache(None) is None
        with pytest.raises(InvalidParameterError):
            resolve_cache(42)

    def test_configure_default_cache(self):
        old = get_default_cache()
        try:
            fresh = configure_default_cache(maxsize=7)
            assert get_default_cache() is fresh
            assert fresh.stats()["maxsize"] == 7
        finally:
            configure_default_cache(maxsize=old.stats()["maxsize"])

    def test_default_maxsize(self):
        assert ScheduleCache().stats()["maxsize"] == DEFAULT_MAXSIZE


class TestCacheKey:
    def test_key_separates_algorithms(self):
        """FA and BFA can return different (both maximum) matchings for the
        same full-range sub-problem — their cache entries must not collide."""
        scheme = FullRangeConversion(4)
        k_fa = schedule_cache_key("first-available", scheme, (1, 0, 1, 0), None)
        k_bfa = schedule_cache_key(
            "break-first-available", scheme, (1, 0, 1, 0), None
        )
        assert k_fa != k_bfa

    def test_key_separates_scheme_shape_and_mask(self):
        base = schedule_cache_key(
            "fa", CircularConversion(4, 1, 1), (1, 1, 0, 0), (True,) * 4
        )
        assert base != schedule_cache_key(
            "fa", CircularConversion(4, 1, 2), (1, 1, 0, 0), (True,) * 4
        )
        assert base != schedule_cache_key(
            "fa", CircularConversion(4, 1, 1), (1, 1, 0, 0),
            (True, True, True, False),
        )
        assert base != schedule_cache_key(
            "fa", NonCircularConversion(4, 1, 1), (1, 1, 0, 0), (True,) * 4
        )


class TestSchedulerWiring:
    @pytest.mark.parametrize(
        "scheduler_cls,scheme",
        [
            (FirstAvailableScheduler, NonCircularConversion(6, 1, 1)),
            (BreakFirstAvailableScheduler, CircularConversion(6, 1, 1)),
            (FirstAvailableScheduler, FullRangeConversion(5)),
            (BreakFirstAvailableScheduler, FullRangeConversion(5)),
        ],
    )
    def test_cached_equals_uncached(self, scheduler_cls, scheme):
        cache = ScheduleCache(maxsize=256)
        cached = scheduler_cls(cache=cache)
        plain = scheduler_cls(cache=None)
        rng = np.random.default_rng(5)
        graphs = list(_graphs(scheme, rng))
        # Two passes so the second pass is served from the cache.
        for rg in graphs + graphs:
            assert cached.schedule(rg).grants == plain.schedule(rg).grants
        stats = cache.stats()
        assert stats["hits"] >= len(graphs)

    def test_cache_shared_between_scheduler_instances(self):
        cache = ScheduleCache(maxsize=64)
        scheme = CircularConversion(5, 1, 1)
        rg = RequestGraph.from_wavelengths(scheme, [0, 0, 2], None)
        BreakFirstAvailableScheduler(cache=cache).schedule(rg)
        BreakFirstAvailableScheduler(cache=cache).schedule(rg)
        assert cache.stats()["hits"] == 1

    def test_default_cache_used_when_enabled(self):
        scheme = CircularConversion(5, 1, 1)
        rg = RequestGraph.from_wavelengths(scheme, [1, 1], None)
        default = get_default_cache()
        default.clear()
        before = default.stats()["misses"]
        BreakFirstAvailableScheduler().schedule(rg)
        assert default.stats()["misses"] == before + 1

    def test_eviction_does_not_change_results(self):
        """A deliberately tiny cache thrashes but never corrupts output."""
        cache = ScheduleCache(maxsize=2)
        scheme = NonCircularConversion(6, 1, 1)
        cached = FirstAvailableScheduler(cache=cache)
        plain = FirstAvailableScheduler(cache=None)
        rng = np.random.default_rng(9)
        for rg in _graphs(scheme, rng, n=100):
            assert cached.schedule(rg).grants == plain.schedule(rg).grants
        assert len(cache) <= 2
        assert cache.stats()["evictions"] > 0
