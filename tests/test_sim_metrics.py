"""Tests for metric collection, Jain fairness, and result containers."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError, SimulationError
from repro.sim.metrics import MetricsCollector, jain_fairness_index
from repro.sim.results import SimulationResult, mean_confidence_interval


class TestJainIndex:
    def test_equal_shares(self):
        assert jain_fairness_index([5, 5, 5]) == pytest.approx(1.0)

    def test_one_takes_all(self):
        assert jain_fairness_index([9, 0, 0]) == pytest.approx(1 / 3)

    def test_empty_and_zero(self):
        assert jain_fairness_index([]) == 1.0
        assert jain_fairness_index([0, 0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            jain_fairness_index([1, -1])

    def test_bounds(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            v = rng.integers(0, 10, size=6)
            if v.sum() == 0:
                continue
            j = jain_fairness_index(v)
            assert 1 / 6 - 1e-12 <= j <= 1.0 + 1e-12


class TestMetricsCollector:
    def _record(self, m, granted=2, submitted=3, offered=3, blocked=0):
        m.record_slot(
            offered=offered,
            blocked_source=blocked,
            submitted=submitted,
            granted_inputs=[0] * granted,
            granted_durations=[1] * granted,
            submitted_inputs=[0] * submitted,
            busy_channels=granted,
        )

    def test_counters(self):
        m = MetricsCollector(2, 4)
        self._record(m)
        assert m.n_slots == 1
        assert m.granted == 2
        assert m.rejected == 1
        assert m.acceptance_ratio == pytest.approx(2 / 3)
        assert m.loss_probability == pytest.approx(1 / 3)

    def test_conservation_enforced(self):
        m = MetricsCollector(2, 4)
        with pytest.raises(SimulationError, match="conservation"):
            m.record_slot(
                offered=5,
                blocked_source=0,
                submitted=3,
                granted_inputs=[],
                granted_durations=[],
                submitted_inputs=[0, 0, 0],
                busy_channels=0,
            )

    def test_granted_exceeds_submitted_rejected(self):
        m = MetricsCollector(2, 4)
        with pytest.raises(SimulationError, match="granted"):
            m.record_slot(
                offered=1,
                blocked_source=0,
                submitted=1,
                granted_inputs=[0, 1],
                granted_durations=[1, 1],
                submitted_inputs=[0],
                busy_channels=2,
            )

    def test_durations_mismatch(self):
        m = MetricsCollector(2, 4)
        with pytest.raises(SimulationError, match="disagree"):
            m.record_slot(
                offered=1,
                blocked_source=0,
                submitted=1,
                granted_inputs=[0],
                granted_durations=[],
                submitted_inputs=[0],
                busy_channels=1,
            )

    def test_utilization(self):
        m = MetricsCollector(1, 4)  # capacity 4 per slot
        self._record(m, granted=2, submitted=2, offered=2)
        assert m.utilization == pytest.approx(0.5)

    def test_empty_run_defaults(self):
        m = MetricsCollector(2, 4)
        assert m.acceptance_ratio == 1.0
        assert m.loss_probability == 0.0
        assert m.source_block_probability == 0.0
        assert m.utilization == 0.0
        assert m.input_fairness == 1.0

    def test_fairness_counts_active_inputs_only(self):
        m = MetricsCollector(3, 4)
        m.record_slot(
            offered=2,
            blocked_source=0,
            submitted=2,
            granted_inputs=[0, 1],
            granted_durations=[1, 1],
            submitted_inputs=[0, 1],
            busy_channels=2,
        )
        # Fiber 2 never submitted: perfect fairness among 0 and 1.
        assert m.input_fairness == pytest.approx(1.0)

    def test_series(self):
        m = MetricsCollector(2, 4)
        self._record(m, granted=1, submitted=2, offered=2)
        self._record(m, granted=2, submitted=2, offered=2)
        assert m.granted_series().tolist() == [1, 2]
        assert m.submitted_series().tolist() == [2, 2]
        assert len(m.busy_series()) == 2


class TestConfidenceInterval:
    def test_basic(self):
        mean, lo, hi = mean_confidence_interval(np.array([1.0, 2.0, 3.0]))
        assert mean == pytest.approx(2.0)
        assert lo < mean < hi

    def test_single_sample(self):
        assert mean_confidence_interval(np.array([2.0])) == (2.0, 2.0, 2.0)

    def test_zero_variance(self):
        assert mean_confidence_interval(np.array([3.0, 3.0])) == (3.0, 3.0, 3.0)

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            mean_confidence_interval(np.array([]))

    def test_bad_confidence(self):
        with pytest.raises(InvalidParameterError):
            mean_confidence_interval(np.array([1.0, 2.0]), confidence=1.5)

    def test_wider_at_higher_confidence(self):
        data = np.array([1.0, 2.0, 3.0, 4.0])
        _, lo95, hi95 = mean_confidence_interval(data, 0.95)
        _, lo99, hi99 = mean_confidence_interval(data, 0.99)
        assert hi99 - lo99 > hi95 - lo95


class TestSimulationResult:
    def test_summary_keys(self):
        m = MetricsCollector(2, 4)
        res = SimulationResult(config={"k": 4}, metrics=m)
        s = res.summary()
        assert {"acceptance_ratio", "loss_probability", "utilization"} <= set(s)

    def test_acceptance_interval_no_traffic(self):
        m = MetricsCollector(2, 4)
        res = SimulationResult(config={}, metrics=m)
        assert res.acceptance_interval() == (1.0, 1.0, 1.0)
