"""Tests for graph breaking (Definition 2, Lemmas 2–4, Fig. 5)."""

import pytest
from hypothesis import given, settings

from repro.errors import InvalidParameterError
from repro.graphs.breaking import break_graph
from repro.graphs.crossing import crosses
from repro.graphs.hopcroft_karp import hopcroft_karp
from tests.conftest import circular_instances


class TestPaperFig5:
    """Breaking the Fig. 3(a) graph at edge a2 b1."""

    @pytest.fixture
    def broken(self, paper_circular_rg):
        return break_graph(paper_circular_rg, 2, 1)

    def test_orders(self, broken):
        assert broken.left_order == (3, 4, 5, 6, 0, 1)
        assert broken.right_order == (2, 3, 4, 5, 0)

    def test_sizes(self, broken):
        assert broken.reduced.n_left == 6
        assert broken.reduced.n_right == 5

    def test_convex_and_monotone(self, broken):
        assert broken.is_convex
        intervals = [iv for iv in broken.intervals() if iv[1] >= iv[0]]
        assert intervals == sorted(intervals)
        ends = [hi for _lo, hi in intervals]
        assert ends == sorted(ends)

    def test_a0_a1_adjacency_reduced(self, broken, paper_circular_rg):
        """λ0 requests lose their b1 link and keep {b5, b0} (case analysis
        for W(j) in [u-f+1, W(i)-1])."""
        rg = paper_circular_rg
        for new_idx, orig in enumerate(broken.left_order):
            if orig in (0, 1):  # the λ0 requests
                nbrs = {
                    broken.right_order[b]
                    for b in broken.reduced.neighbors_of_left(new_idx)
                }
                assert nbrs == {5, 0}
        assert rg.wavelength_of(0) == 0

    def test_solve_is_maximum(self, broken, paper_circular_rg):
        m = broken.solve()
        m.validate_against(paper_circular_rg.graph)
        assert len(m) == len(hopcroft_karp(paper_circular_rg.graph))
        assert (2, 1) in m  # the breaking edge is part of the matching


class TestBreakGraphValidation:
    def test_non_edge_rejected(self, paper_circular_rg):
        with pytest.raises(InvalidParameterError):
            break_graph(paper_circular_rg, 0, 3)  # λ0 cannot reach b3

    def test_out_of_range(self, paper_circular_rg):
        with pytest.raises(InvalidParameterError):
            break_graph(paper_circular_rg, 99, 0)
        with pytest.raises(InvalidParameterError):
            break_graph(paper_circular_rg, 0, 99)

    def test_occupied_channel_rejected(self, paper_circular_scheme):
        from repro.graphs.request_graph import RequestGraph

        rg = RequestGraph(
            paper_circular_scheme, (2, 1, 0, 1, 1, 2),
            [True, False, True, True, True, True],
        )
        with pytest.raises(InvalidParameterError):
            break_graph(rg, 2, 1)


class TestBreakingProperties:
    @settings(max_examples=60, deadline=None)
    @given(circular_instances(max_k=8))
    def test_reduced_graph_always_convex(self, rg):
        """Lemma 2 over random instances and every possible breaking edge of
        the first three left vertices."""
        g = rg.graph
        for i in range(min(3, g.n_left)):
            for u in g.neighbors_of_left(i):
                broken = break_graph(rg, i, u)
                assert broken.is_convex
                intervals = [
                    iv for iv in broken.intervals() if iv[1] >= iv[0]
                ]
                assert intervals == sorted(intervals)
                assert [hi for _, hi in intervals] == sorted(
                    hi for _, hi in intervals
                )

    @settings(max_examples=60, deadline=None)
    @given(circular_instances(max_k=8))
    def test_removed_edges_are_exactly_definition2(self, rg):
        g = rg.graph
        if g.n_left == 0 or g.n_edges == 0:
            return
        i = next(a for a in range(g.n_left) if g.degree_left(a) > 0)
        u = g.neighbors_of_left(i)[0]
        broken = break_graph(rg, i, u)
        kept = {
            (broken.left_order[a], broken.right_order[b])
            for a, b in broken.reduced.edges()
        }
        for (j, v) in g.edges():
            should_remove = (
                j == i or v == u or crosses(rg, (j, v), (i, u))
            )
            assert ((j, v) not in kept) == should_remove

    @settings(max_examples=50, deadline=None)
    @given(circular_instances(max_k=8))
    def test_lemma3_lemma4_best_break_is_maximum(self, rg):
        """Trying all d breaks of the first pivot yields the optimum —
        the Theorem-2 core."""
        g = rg.graph
        opt = len(hopcroft_karp(g))
        pivot = next(
            (a for a in range(g.n_left) if g.degree_left(a) > 0), None
        )
        if pivot is None:
            assert opt == 0
            return
        best = max(
            len(break_graph(rg, pivot, u).solve())
            for u in g.neighbors_of_left(pivot)
        )
        assert best == opt

    @settings(max_examples=40, deadline=None)
    @given(circular_instances(max_k=8))
    def test_every_break_yields_valid_matching(self, rg):
        g = rg.graph
        for i in range(min(2, g.n_left)):
            for u in g.neighbors_of_left(i):
                m = break_graph(rg, i, u).solve()
                m.validate_against(g)
