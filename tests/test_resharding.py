"""Live shard migration (:mod:`repro.service.resharding`).

Three layers of coverage:

* the :class:`HandoffPayload` codec — bit-identical round trips, typed
  :class:`~repro.errors.MigrationError` on truncation/corruption;
* the migration engine against real worker processes — placement flips,
  busy[] survives the move bit-identically, policy slices travel, and a
  run with migrations interleaved makes the same grants as one without;
* crash injection — an armed :class:`~repro.faults.CrashPoints` kills
  the engine at every phase of the state machine and a re-drive
  converges; a worker process dying *mid-handoff* (``os._exit`` after
  adoption) is healed by the pool's respawn+redeliver machinery.
"""

import asyncio

import pytest

pytestmark = [pytest.mark.net, pytest.mark.slow]

from repro.core.distributed import SlotRequest
from repro.core.first_available import FirstAvailableScheduler
from repro.core.policies import RoundRobinPolicy
from repro.errors import (
    CrashPointError,
    InvalidParameterError,
    MigrationError,
    WorkerProcessError,
)
from repro.faults import CrashPoints
from repro.graphs.conversion import NonCircularConversion
from repro.net.procpool import POISON_AFTER_ADOPT
from repro.net.procservice import ProcessShardedService
from repro.service.journal import JournalRecord, RecordType
from repro.service.resharding import (
    MIGRATION_PHASES,
    HandoffPayload,
    ShardMove,
)
from repro.service.server import ServiceGrant

N_FIBERS, K = 4, 3


def run(coro):
    return asyncio.run(coro)


def _service(**kwargs) -> ProcessShardedService:
    kwargs.setdefault("n_workers", 2)
    return ProcessShardedService(
        N_FIBERS,
        NonCircularConversion(K, 1, 1),
        FirstAvailableScheduler(),
        **kwargs,
    )


class TestHandoffPayload:
    def _payload(self, **kwargs) -> HandoffPayload:
        records = [
            JournalRecord(RecordType.GRANT, 0, (0, 0, 0, 0, 1, 0, 0)),
            JournalRecord(RecordType.ADVANCE, 0, ()),
        ]
        defaults = dict(
            shard=2,
            k=3,
            next_tick=1,
            busy=(0, 4, 0),
            records=records,
            policy_state={"pointers": [[2, 0, 5]]},
        )
        defaults.update(kwargs)
        return HandoffPayload.from_records(**defaults)

    def test_round_trip_is_bit_identical(self):
        payload = self._payload()
        blob = payload.encode()
        again = HandoffPayload.decode(blob)
        assert again == payload
        assert again.encode() == blob
        assert [r.type for r in again.records()] == [
            RecordType.GRANT,
            RecordType.ADVANCE,
        ]

    def test_round_trip_without_policy_state(self):
        payload = self._payload(policy_state=None)
        assert HandoffPayload.decode(payload.encode()).policy_state is None

    def test_round_trip_with_snapshot(self):
        payload = self._payload(snapshot=b"\x00\x01snapbytes")
        assert (
            HandoffPayload.decode(payload.encode()).snapshot
            == b"\x00\x01snapbytes"
        )

    def test_truncation_at_every_boundary_is_typed(self):
        blob = self._payload().encode()
        for cut in range(len(blob)):
            with pytest.raises(MigrationError):
                HandoffPayload.decode(blob[:cut])

    def test_single_byte_corruption_is_typed(self):
        blob = self._payload().encode()
        for pos in range(len(blob)):
            hostile = bytearray(blob)
            hostile[pos] ^= 0xFF
            with pytest.raises(MigrationError):
                HandoffPayload.decode(bytes(hostile))

    def test_trailing_garbage_is_typed(self):
        with pytest.raises(MigrationError):
            HandoffPayload.decode(self._payload().encode() + b"x")

    def test_bad_magic_is_typed(self):
        blob = bytearray(self._payload().encode())
        blob[:4] = b"NOPE"
        with pytest.raises(MigrationError, match="magic"):
            HandoffPayload.decode(bytes(blob))

    def test_torn_journal_stream_is_typed(self):
        payload = self._payload()
        torn = HandoffPayload(
            shard=payload.shard,
            k=payload.k,
            next_tick=payload.next_tick,
            busy=payload.busy,
            journal=payload.journal[:-3],
        )
        with pytest.raises(MigrationError, match="torn"):
            torn.records()


class TestLiveMigration:
    def test_placement_flips_and_busy_survives(self):
        async def go():
            service = _service()
            try:
                fut = service.submit_nowait(SlotRequest(0, 0, 0, duration=5))
                await service.tick()
                assert isinstance(await fut, ServiceGrant)
                busy_before = service.worker_busy(0)
                source = service.placement[0]
                destination = 1 - source
                report = service.migrate_shard(0, destination)
                assert service.placement[0] == destination
                assert report.source == source
                assert report.destination == destination
                assert report.journal_records >= 2
                assert not report.resumed
                # The destination's replica carries the identical clock.
                assert service.worker_busy(0) == busy_before
                # And keeps ticking from it.
                await service.tick()
                assert max(service.worker_busy(0)) == max(busy_before) - 1
            finally:
                await service.stop()

        run(go())

    def test_migrated_run_grants_identically(self):
        """The tentpole bit-identity claim in miniature: interleaving
        migrations between ticks changes no grant decision."""

        def traffic(slot):
            return [
                SlotRequest(
                    (slot + i) % N_FIBERS, i % K, (slot * 2 + i) % N_FIBERS
                )
                for i in range(3)
            ]

        async def drive(migrate_at):
            service = _service()
            slots = []
            try:
                for slot in range(12):
                    if slot in migrate_at:
                        shard = migrate_at[slot]
                        destination = 1 - service.placement[shard]
                        service.migrate_shard(shard, destination)
                    pairs = [
                        (r, service.submit_nowait(r)) for r in traffic(slot)
                    ]
                    await service.tick()
                    slots.append(
                        sorted(
                            (
                                r.input_fiber,
                                r.wavelength,
                                r.output_fiber,
                                f.result().channel
                                if isinstance(f.result(), ServiceGrant)
                                else -1,
                            )
                            for r, f in pairs
                        )
                    )
            finally:
                await service.stop()
            return slots

        reference = run(drive({}))
        migrated = run(drive({3: 0, 6: 2, 9: 0}))
        assert migrated == reference

    def test_round_robin_policy_slice_travels(self):
        """RoundRobinPolicy partitions per output: the migrating shard's
        pointer slice must move with it, so post-move rotation continues
        where the old owner left off (same winners as an unmigrated run)."""

        def burst(slot):
            # Three inputs race for output 0, wavelength 0, every slot.
            return [SlotRequest(i, 0, 0) for i in range(3)]

        async def drive(migrate):
            service = _service(policy=RoundRobinPolicy())
            winners = []
            try:
                for slot in range(6):
                    if migrate and slot == 3:
                        service.migrate_shard(0, 1 - service.placement[0])
                    pairs = [
                        (r, service.submit_nowait(r)) for r in burst(slot)
                    ]
                    await service.tick()
                    winners.append(
                        sorted(
                            r.input_fiber
                            for r, f in pairs
                            if isinstance(f.result(), ServiceGrant)
                        )
                    )
            finally:
                await service.stop()
            return winners

        assert run(drive(True)) == run(drive(False))

    def test_rebalance_to_target_placement(self):
        async def go():
            service = _service()
            try:
                before = dict(service.placement)
                target = {o: o % 2 for o in range(N_FIBERS)}
                reports = service.rebalance(target=target)
                assert service.placement == target
                # The moves were exactly the disagreeing shards.
                assert {r.shard for r in reports} == {
                    o for o in range(N_FIBERS) if before[o] != target[o]
                }
                await service.tick()
            finally:
                await service.stop()

        run(go())

    def test_bad_moves_are_typed(self):
        async def go():
            service = _service()
            try:
                with pytest.raises(MigrationError, match="not active"):
                    service.migrate_shard(0, 99)
                with pytest.raises(MigrationError, match="not placed"):
                    service.migrate_shard(99, 0)
                with pytest.raises(InvalidParameterError, match="exactly one"):
                    service.rebalance()
                with pytest.raises(InvalidParameterError, match="exactly one"):
                    service.rebalance(
                        moves=[ShardMove(0, 0, 1)], target={0: 1}
                    )
            finally:
                await service.stop()

        run(go())


class TestElasticity:
    def test_add_then_drain_then_remove(self):
        async def go():
            service = _service()
            try:
                new = service.add_worker()
                assert new == 2
                assert service.active_workers() == [0, 1, 2]
                service.migrate_shard(0, new)
                service.migrate_shard(1, new)
                fut = service.submit_nowait(SlotRequest(0, 0, 0))
                await service.tick()
                assert isinstance(await fut, ServiceGrant)
                # Removing while the worker owns shards requires a drain.
                with pytest.raises(WorkerProcessError, match="migrate"):
                    service.pool.remove_worker(new)
                reports = service.remove_worker(new)
                assert {r.shard for r in reports} == {0, 1}
                assert service.active_workers() == [0, 1]
                # The retired id is a tombstone, not reusable.
                with pytest.raises(WorkerProcessError, match="retired"):
                    service.pool.call(new, "busy")
                assert service.add_worker() == 3
                # Traffic still flows after the churn.
                fut2 = service.submit_nowait(SlotRequest(1, 1, 0))
                await service.tick()
                assert isinstance(await fut2, ServiceGrant)
            finally:
                await service.stop()

        run(go())

    def test_cannot_remove_last_worker(self):
        async def go():
            service = _service(n_workers=1)
            try:
                # The pool refuses while shards are owned; the service's
                # drain path refuses because there is nowhere to drain to.
                with pytest.raises(WorkerProcessError, match="owns shards"):
                    service.pool.remove_worker(0)
                with pytest.raises(InvalidParameterError, match="last active"):
                    service.remove_worker(0)
            finally:
                await service.stop()

        run(go())


class TestCrashInjection:
    @pytest.mark.parametrize("phase", MIGRATION_PHASES)
    def test_kill_at_every_phase_then_redrive_converges(self, phase):
        async def go():
            service = _service()
            try:
                fut = service.submit_nowait(SlotRequest(0, 0, 0, duration=4))
                await service.tick()
                assert isinstance(await fut, ServiceGrant)
                busy_before = service.worker_busy(0)
                source = service.placement[0]
                destination = 1 - source
                crashpoints = CrashPoints(arm=[phase])
                with pytest.raises(CrashPointError, match=phase):
                    service.migrate_shard(
                        0, destination, crashpoints=crashpoints
                    )
                # Pre-flip deaths leave the source authoritative;
                # post-flip deaths leave the destination authoritative.
                pre_flip = phase in MIGRATION_PHASES[:3]
                assert service.placement[0] == (
                    source if pre_flip else destination
                )
                # Re-driving the same move converges either way...
                report = service.migrate_shard(
                    0, destination, crashpoints=crashpoints
                )
                assert service.placement[0] == destination
                assert report.resumed == (not pre_flip)
                # ...with the replica's clock bit-identical throughout.
                assert service.worker_busy(0) == busy_before
                await service.tick()
                assert max(service.worker_busy(0)) == max(busy_before) - 1
            finally:
                await service.stop()

        run(go())

    def test_worker_death_mid_handoff_is_healed(self):
        """The destination process dies (``os._exit``) immediately after
        journaling the adopted replica: the pool respawns it, redelivers
        the adopt, and the migration completes with the identical clock."""

        async def go():
            service = _service()
            try:
                fut = service.submit_nowait(SlotRequest(0, 0, 0, duration=4))
                await service.tick()
                assert isinstance(await fut, ServiceGrant)
                busy_before = service.worker_busy(0)
                source = service.placement[0]
                destination = 1 - source
                service.pool.call(destination, "poison", POISON_AFTER_ADOPT)
                report = service.migrate_shard(0, destination)
                assert service.pool._workers[destination].respawns == 1
                assert service.placement[0] == destination
                assert not report.resumed
                assert service.worker_busy(0) == busy_before
                await service.tick()
                assert max(service.worker_busy(0)) == max(busy_before) - 1
            finally:
                await service.stop()

        run(go())
