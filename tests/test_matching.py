"""Tests for matchings and their validity/maximality certificates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidMatchingError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.hopcroft_karp import hopcroft_karp
from repro.graphs.matching import Matching


class TestConstruction:
    def test_basic(self):
        m = Matching([(0, 1), (1, 0)])
        assert len(m) == 2
        assert (0, 1) in m

    def test_empty(self):
        assert len(Matching([])) == 0

    def test_rejects_left_reuse(self):
        with pytest.raises(InvalidMatchingError):
            Matching([(0, 0), (0, 1)])

    def test_rejects_right_reuse(self):
        with pytest.raises(InvalidMatchingError):
            Matching([(0, 0), (1, 0)])

    def test_partner_lookup(self):
        m = Matching([(0, 2)])
        assert m.right_of(0) == 2
        assert m.left_of(2) == 0
        assert m.right_of(9) is None
        assert m.left_of(9) is None

    def test_matched_sets(self):
        m = Matching([(0, 2), (3, 1)])
        assert m.matched_left() == {0, 3}
        assert m.matched_right() == {1, 2}

    def test_match_array(self):
        m = Matching([(0, 2), (3, 1)])
        assert m.match_array(4) == [None, 3, 0, None]

    def test_iteration_sorted(self):
        m = Matching([(3, 1), (0, 2)])
        assert list(m) == [(0, 2), (3, 1)]

    def test_equality(self):
        assert Matching([(0, 1)]) == Matching([(0, 1)])
        assert Matching([(0, 1)]) != Matching([(0, 2)])
        assert Matching([(0, 1)]) != 42
        assert hash(Matching([(0, 1)])) == hash(Matching([(0, 1)]))


class TestValidation:
    def test_validate_against_ok(self):
        g = BipartiteGraph(2, 2, [(0, 0), (1, 1)])
        Matching([(0, 0)]).validate_against(g)

    def test_validate_missing_edge(self):
        g = BipartiteGraph(2, 2, [(0, 0)])
        with pytest.raises(InvalidMatchingError):
            Matching([(0, 1)]).validate_against(g)

    def test_validate_out_of_range(self):
        g = BipartiteGraph(1, 1, [(0, 0)])
        with pytest.raises(InvalidMatchingError):
            Matching([(3, 0)]).validate_against(g)


class TestAugmentingPaths:
    def test_none_when_maximum(self):
        g = BipartiteGraph(2, 2, [(0, 0), (1, 1)])
        m = Matching([(0, 0), (1, 1)])
        assert m.find_augmenting_path(g) is None
        assert m.is_maximum_in(g)

    def test_trivial_augmenting_path(self):
        g = BipartiteGraph(1, 1, [(0, 0)])
        m = Matching([])
        assert m.find_augmenting_path(g) == [0, 0]
        assert not m.is_maximum_in(g)

    def test_length_three_path(self):
        # a0-b0 matched; a1 only reaches b0; a0 also reaches b1:
        # augmenting path a1 -> b0 -> a0 -> b1.
        g = BipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
        m = Matching([(0, 0)])
        path = m.find_augmenting_path(g)
        assert path == [1, 0, 0, 1]

    def test_path_alternates_and_is_valid(self):
        g = BipartiteGraph(3, 3, [(0, 0), (0, 1), (1, 0), (2, 1), (2, 2)])
        m = Matching([(0, 0), (2, 1)])
        path = m.find_augmenting_path(g)
        assert path is not None
        # Odd length (vertices), starts/ends unmatched.
        assert len(path) % 2 == 0
        assert path[0] not in m.matched_left()
        assert path[-1] not in m.matched_right()
        # Edges alternate unmatched/matched.
        for i in range(0, len(path) - 1, 2):
            assert g.has_edge(path[i], path[i + 1])

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            max_size=15,
            unique=True,
        )
    )
    def test_berge_certificate_matches_hopcroft_karp(self, edges):
        g = BipartiteGraph(6, 6, edges)
        opt = hopcroft_karp(g)
        # HK's matching is certified maximum.
        assert opt.is_maximum_in(g)
        # Removing one edge from it makes it non-maximum iff graph allows.
        if len(opt) > 0:
            smaller = Matching(list(sorted(opt.pairs))[:-1])
            assert smaller.find_augmenting_path(g) is not None
