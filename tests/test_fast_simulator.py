"""Tests for the vectorized fast-path simulator."""

import numpy as np
import pytest

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.first_available import FirstAvailableScheduler
from repro.errors import SimulationError
from repro.graphs.conversion import (
    CircularConversion,
    FullRangeConversion,
    NonCircularConversion,
)
from repro.sim.duration import (
    DeterministicDuration,
    GeometricDuration,
    UniformDuration,
)
from repro.sim.engine import SlottedSimulator
from repro.sim.fast import FastPacketSimulator
from repro.sim.traffic import BernoulliTraffic, HotspotDestinations


class TestValidation:
    def test_scheme_gate(self):
        from repro.graphs.conversion import ConversionScheme

        class WeirdScheme(ConversionScheme):
            def adjacency(self, w):
                return (w,)

        with pytest.raises(SimulationError, match="unsupported scheme"):
            FastPacketSimulator(
                2, WeirdScheme(4, 0, 0), BernoulliTraffic(2, 4, 0.5)
            )

    def test_full_range_supported_via_circular_path(self):
        res = FastPacketSimulator(
            2, FullRangeConversion(4), BernoulliTraffic(2, 4, 0.9), seed=1
        ).run(30)
        assert res.metrics.granted <= res.metrics.submitted

    def test_dimension_mismatch(self):
        with pytest.raises(SimulationError):
            FastPacketSimulator(
                2, CircularConversion(4, 1, 1), BernoulliTraffic(3, 4, 0.5)
            )

    def test_priority_classes_rejected(self):
        sim = FastPacketSimulator(
            2,
            CircularConversion(4, 1, 1),
            BernoulliTraffic(
                2,
                4,
                1.0,
                durations=GeometricDuration(3.0),
                priority_weights=[1, 1],
            ),
            seed=1,
        )
        with pytest.raises(SimulationError, match="QoS class"):
            sim.run(20)

    def test_vectorized_requires_plain_bernoulli(self):
        with pytest.raises(SimulationError, match="vectorized_arrivals"):
            FastPacketSimulator(
                2,
                CircularConversion(4, 1, 1),
                BernoulliTraffic(
                    2, 4, 0.5, destinations=HotspotDestinations(2, 0, 0.5)
                ),
                vectorized_arrivals=True,
            )
        with pytest.raises(SimulationError, match="vectorized_arrivals"):
            FastPacketSimulator(
                2,
                CircularConversion(4, 1, 1),
                BernoulliTraffic(2, 4, 0.5, priority_weights=[1, 1]),
                vectorized_arrivals=True,
            )


class TestExactEquivalence:
    @pytest.mark.parametrize(
        "scheme_cls,scheduler",
        [
            (CircularConversion, BreakFirstAvailableScheduler()),
            (NonCircularConversion, FirstAvailableScheduler()),
        ],
    )
    def test_grant_series_identical_to_full_engine(self, scheme_cls, scheduler):
        scheme = scheme_cls(8, 1, 1)
        full = SlottedSimulator(
            4, scheme, scheduler, BernoulliTraffic(4, 8, 0.9), seed=11
        ).run(100)
        fast = FastPacketSimulator(
            4, scheme, BernoulliTraffic(4, 8, 0.9), seed=11
        ).run(100)
        assert np.array_equal(
            full.metrics.granted_series(), fast.metrics.granted_series()
        )
        assert np.array_equal(
            full.metrics.submitted_series(), fast.metrics.submitted_series()
        )
        assert full.metrics.loss_probability == fast.metrics.loss_probability

    @pytest.mark.parametrize(
        "scheme_cls,scheduler",
        [
            (CircularConversion, BreakFirstAvailableScheduler()),
            (NonCircularConversion, FirstAvailableScheduler()),
        ],
    )
    @pytest.mark.parametrize(
        "durations",
        [
            DeterministicDuration(3),
            GeometricDuration(2.5),
            UniformDuration(1, 4),
        ],
        ids=["deterministic", "geometric", "uniform"],
    )
    def test_multislot_bit_identical_to_full_engine(
        self, scheme_cls, scheduler, durations
    ):
        """The ISSUE's gating test: with multi-slot traffic the fast engine
        must reproduce the full engine's per-slot grant counts (and in fact
        its complete metric summary) bit-for-bit from the same seed."""
        scheme = scheme_cls(8, 1, 1)

        def traffic():
            return BernoulliTraffic(4, 8, 0.9, durations=durations)

        full = SlottedSimulator(
            4, scheme, scheduler, traffic(), seed=17
        ).run(120, warmup=10)
        fast = FastPacketSimulator(4, scheme, traffic(), seed=17).run(
            120, warmup=10
        )
        assert np.array_equal(
            full.metrics.granted_series(), fast.metrics.granted_series()
        )
        assert np.array_equal(
            full.metrics.submitted_series(), fast.metrics.submitted_series()
        )
        assert np.array_equal(
            full.metrics.busy_series(), fast.metrics.busy_series()
        )
        assert full.summary() == fast.summary()
        assert (
            full.metrics.duration_histogram()
            == fast.metrics.duration_histogram()
        )
        assert np.array_equal(
            full.metrics.granted_by_input, fast.metrics.granted_by_input
        )

    def test_multislot_exercises_source_blocking(self):
        """Sanity: the equivalence above isn't vacuous — heavy multi-slot
        traffic must actually hit the input-channel occupancy path."""
        fast = FastPacketSimulator(
            4,
            CircularConversion(8, 1, 1),
            BernoulliTraffic(4, 8, 1.0, durations=DeterministicDuration(4)),
            seed=3,
        ).run(80)
        assert fast.metrics.blocked_source > 0
        assert fast.metrics.mean_granted_duration == 4.0

    def test_config_labels_fast_path(self):
        res = FastPacketSimulator(
            2, CircularConversion(4, 1, 1), BernoulliTraffic(2, 4, 0.5), seed=1
        ).run(10)
        assert res.config["scheduler"] == "batch-fast-path"


class TestVectorizedMode:
    def test_statistically_consistent(self):
        scheme = CircularConversion(8, 1, 1)
        losses = []
        for seed, vectorized in ((3, True), (3, False)):
            sim = FastPacketSimulator(
                8,
                scheme,
                BernoulliTraffic(8, 8, 0.9),
                seed=seed,
                vectorized_arrivals=vectorized,
            )
            losses.append(sim.run(400, warmup=20).metrics.loss_probability)
        assert abs(losses[0] - losses[1]) < 0.02

    def test_reproducible(self):
        def run():
            return FastPacketSimulator(
                4,
                CircularConversion(8, 1, 1),
                BernoulliTraffic(4, 8, 0.8),
                seed=6,
                vectorized_arrivals=True,
            ).run(50).summary()

        assert run() == run()

    def test_conservation(self):
        res = FastPacketSimulator(
            4,
            CircularConversion(8, 1, 1),
            BernoulliTraffic(4, 8, 1.0),
            seed=2,
            vectorized_arrivals=True,
        ).run(60)
        m = res.metrics
        assert m.granted + m.rejected == m.submitted
        assert 0.0 <= m.loss_probability <= 1.0
        assert m.input_fairness == 1.0  # attribution intentionally neutral
