"""The wire protocol codec (:mod:`repro.net.protocol`).

Mirrors the journal codec suite's discipline for the network payload
layer: every message round-trips bit-identically, and arbitrary bytes —
truncations at every boundary, single-byte corruption, pure garbage —
must surface as a typed :class:`~repro.errors.ProtocolError`, never an
unhandled exception (and, combined with the strict
:class:`~repro.util.framing.FrameDecoder`, never a hung reader).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.net.protocol import (
    PROTOCOL_VERSIONS,
    Bye,
    ErrorMsg,
    Grant,
    Hello,
    Migrate,
    Migrated,
    MsgType,
    Ping,
    Pong,
    Reject,
    Submit,
    TickAdvance,
    TickDone,
    Welcome,
    decode_message,
    encode_message,
    negotiate_version,
    reject_reason_code,
    reject_reason_from_code,
)
from repro.service.server import RejectReason

_U16 = st.integers(min_value=0, max_value=0xFFFF)
_U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
_SEQ = st.integers(min_value=1, max_value=2**64 - 1)
_I64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)

_TEXT = st.text(max_size=64)

messages_st = st.one_of(
    st.builds(
        Hello,
        versions=st.lists(_U16, min_size=1, max_size=8).map(tuple),
    ),
    st.builds(Welcome, version=_U16, n_fibers=_U32, k=_U32),
    st.builds(
        ErrorMsg,
        seq=st.integers(min_value=0, max_value=2**64 - 1),
        code=_U16,
        message=_TEXT,
    ),
    st.builds(Bye),
    st.builds(
        Submit,
        seq=_SEQ,
        input_fiber=_U32,
        wavelength=_U32,
        output_fiber=_U32,
        duration=_U32,
        priority=st.integers(min_value=-(2**31), max_value=2**31 - 1),
        timeout_ticks=_I64,
        request_id=st.text(max_size=32),
        tenant=_U32,  # 0 exercises the v1 SUBMIT bytes, >0 SUBMIT2
    ),
    st.builds(Grant, seq=_SEQ, channel=_U32, slot=_I64),
    st.builds(
        Reject,
        seq=_SEQ,
        reason=st.sampled_from(list(RejectReason)),
        slot=_I64,
    ),
    st.builds(TickAdvance, count=st.integers(min_value=1, max_value=0xFFFFFFFF)),
    st.builds(TickDone, slot=_I64, granted=_U32),
    st.builds(Migrate, seq=_SEQ, shard=_U32, destination=_U32),
    st.builds(
        Migrated,
        seq=_SEQ,
        shard=_U32,
        source=_U32,
        destination=_U32,
        next_tick=st.integers(min_value=0, max_value=2**64 - 1),
        payload_bytes=st.integers(min_value=0, max_value=2**64 - 1),
        journal_records=st.integers(min_value=0, max_value=2**64 - 1),
        resumed=st.booleans(),
    ),
    st.builds(Ping, token=st.integers(min_value=0, max_value=2**64 - 1)),
    st.builds(
        Pong,
        token=st.integers(min_value=0, max_value=2**64 - 1),
        slot=_I64,
    ),
)


class TestRoundTrip:
    @given(messages_st)
    def test_round_trip(self, msg):
        assert decode_message(encode_message(msg)) == msg

    def test_every_message_type_is_covered(self):
        # The strategy must not silently skip a tag.
        sampled = {
            MsgType.HELLO,
            MsgType.WELCOME,
            MsgType.ERROR,
            MsgType.BYE,
            MsgType.SUBMIT,
            MsgType.SUBMIT2,  # Submit with tenant != 0 encodes as SUBMIT2
            MsgType.GRANT,
            MsgType.REJECT,
            MsgType.TICK_ADVANCE,
            MsgType.TICK_DONE,
            MsgType.MIGRATE,
            MsgType.MIGRATED,
            MsgType.PING,
            MsgType.PONG,
        }
        assert sampled == set(MsgType)

    def test_reason_codes_round_trip_and_are_stable(self):
        for reason in RejectReason:
            assert reject_reason_from_code(reject_reason_code(reason)) is reason
        # Pinned values: the wire contract, not the enum definition order.
        assert reject_reason_code(RejectReason.CONTENTION) == 1
        assert reject_reason_code(RejectReason.DUPLICATE) == 9
        assert reject_reason_code(RejectReason.RATE_LIMITED) == 11

    def test_unknown_reason_code_is_typed(self):
        with pytest.raises(ProtocolError):
            reject_reason_from_code(200)


class TestHostileBytes:
    @given(messages_st, st.data())
    @settings(max_examples=200)
    def test_truncation_at_every_boundary_is_typed(self, msg, data):
        buf = encode_message(msg)
        cut = data.draw(st.integers(min_value=0, max_value=len(buf) - 1))
        try:
            decode_message(buf[:cut])
        except ProtocolError:
            pass
        # Decoding a truncated ERROR/HELLO prefix may still succeed when
        # the cut lands on a self-consistent prefix; what is banned is any
        # *other* exception, which would escape the pytest.raises-free try.

    @given(messages_st, st.data())
    @settings(max_examples=200)
    def test_single_byte_corruption_is_typed(self, msg, data):
        buf = bytearray(encode_message(msg))
        pos = data.draw(st.integers(min_value=0, max_value=len(buf) - 1))
        buf[pos] ^= data.draw(st.integers(min_value=1, max_value=255))
        try:
            decode_message(bytes(buf))
        except ProtocolError:
            pass

    @given(st.binary(max_size=128))
    @settings(max_examples=300)
    def test_garbage_is_typed(self, junk):
        try:
            decode_message(junk)
        except ProtocolError:
            pass

    def test_empty_payload(self):
        with pytest.raises(ProtocolError):
            decode_message(b"")

    def test_unknown_tag(self):
        with pytest.raises(ProtocolError):
            decode_message(b"\xfe")

    def test_trailing_garbage_rejected(self):
        buf = encode_message(Bye()) + b"x"
        with pytest.raises(ProtocolError):
            decode_message(buf)

    def test_zero_seq_submit_rejected(self):
        buf = bytearray(encode_message(Submit(1, 0, 0, 0)))
        buf[1:9] = b"\x00" * 8  # overwrite seq with 0
        with pytest.raises(ProtocolError):
            decode_message(bytes(buf))

    def test_zero_count_tick_rejected(self):
        buf = bytearray(encode_message(TickAdvance(1)))
        buf[-4:] = b"\x00" * 4
        with pytest.raises(ProtocolError):
            decode_message(bytes(buf))

    def test_oversized_request_id_rejected_at_encode(self):
        with pytest.raises(ProtocolError):
            encode_message(Submit(1, 0, 0, 0, request_id="x" * 300))

    def test_empty_hello_rejected_at_encode(self):
        with pytest.raises(ProtocolError):
            encode_message(Hello(versions=()))


class TestHandshake:
    def test_negotiate_picks_highest_common(self):
        assert negotiate_version((1, 2, 3), (1, 3)) == 3
        assert negotiate_version((1,), (1,)) == 1

    def test_negotiate_none_when_disjoint(self):
        assert negotiate_version((7, 8), (1,)) is None

    def test_current_versions_are_one_through_four(self):
        assert PROTOCOL_VERSIONS == (1, 2, 3, 4)
        assert negotiate_version(PROTOCOL_VERSIONS) == 4
        # Older single-version peers still land on their version.
        assert negotiate_version((1,)) == 1
        assert negotiate_version((2,)) == 2
        assert negotiate_version((3,)) == 3

    def test_submit_converts_to_slot_request(self):
        s = Submit(5, input_fiber=2, wavelength=3, output_fiber=1, duration=4)
        r = s.to_request()
        assert (r.input_fiber, r.wavelength, r.output_fiber, r.duration) == (
            2,
            3,
            1,
            4,
        )
