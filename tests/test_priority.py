"""Tests for strict-priority (QoS) scheduling — the paper's future work."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baseline import HopcroftKarpScheduler
from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.priority import PriorityScheduler
from repro.errors import InvalidParameterError
from repro.graphs.conversion import CircularConversion
from repro.graphs.request_graph import RequestGraph


@pytest.fixture
def scheme():
    return CircularConversion(6, 1, 1)


@pytest.fixture
def prio():
    return PriorityScheduler(BreakFirstAvailableScheduler())


class TestBasics:
    def test_single_class_equals_plain_scheduling(self, scheme, prio):
        vec = [2, 1, 0, 1, 1, 2]
        sched = prio.schedule(scheme, [vec])
        plain = BreakFirstAvailableScheduler().schedule(RequestGraph(scheme, vec))
        assert sched.n_granted == plain.n_granted
        assert sched.n_classes == 1

    def test_requires_a_class(self, scheme, prio):
        with pytest.raises(InvalidParameterError):
            prio.schedule(scheme, [])

    def test_mask_length_checked(self, scheme, prio):
        with pytest.raises(InvalidParameterError):
            prio.schedule(scheme, [[0] * 6], available=[True])

    def test_high_class_sees_full_band(self, scheme, prio):
        high = [1, 1, 1, 1, 1, 1]
        low = [1, 1, 1, 1, 1, 1]
        sched = prio.schedule(scheme, [high, low])
        assert sched.granted_of(0) == 6  # all channels to the high class
        assert sched.granted_of(1) == 0

    def test_low_class_gets_leftovers(self, scheme, prio):
        high = [1, 0, 0, 0, 0, 0]  # one request
        low = [1, 1, 1, 1, 1, 1]
        sched = prio.schedule(scheme, [high, low])
        assert sched.granted_of(0) == 1
        assert sched.granted_of(1) == 5
        assert len(sched.used_channels()) == 6

    def test_channels_disjoint_across_classes(self, scheme, prio):
        sched = prio.schedule(scheme, [[1] * 6, [1] * 6, [1] * 6])
        all_channels = [
            g.channel for r in sched.per_class for g in r.grants
        ]
        assert len(all_channels) == len(set(all_channels))

    def test_respects_initial_availability(self, scheme, prio):
        sched = prio.schedule(
            scheme, [[1] * 6], available=[False, True, False, True, False, True]
        )
        assert sched.granted_of(0) == 3
        assert sched.used_channels() <= {1, 3, 5}

    def test_three_classes_totals(self, scheme, prio):
        sched = prio.schedule(scheme, [[1, 0, 0, 0, 0, 0]] * 3)
        assert sched.n_requested == 3
        assert sched.n_granted == 3  # λ0's window has 3 channels


class TestOptimalityPerClass:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 2), min_size=6, max_size=6),
        st.lists(st.integers(0, 2), min_size=6, max_size=6),
    )
    def test_high_class_is_maximum(self, high, low):
        scheme = CircularConversion(6, 1, 1)
        prio = PriorityScheduler(BreakFirstAvailableScheduler())
        sched = prio.schedule(scheme, [high, low])
        opt = HopcroftKarpScheduler().schedule(RequestGraph(scheme, high))
        assert sched.granted_of(0) == opt.n_granted

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 2), min_size=6, max_size=6),
        st.lists(st.integers(0, 2), min_size=6, max_size=6),
    )
    def test_low_class_maximum_given_leftovers(self, high, low):
        scheme = CircularConversion(6, 1, 1)
        prio = PriorityScheduler(BreakFirstAvailableScheduler())
        sched = prio.schedule(scheme, [high, low])
        leftovers = [
            b not in {g.channel for g in sched.per_class[0].grants}
            for b in range(6)
        ]
        opt = HopcroftKarpScheduler().schedule(
            RequestGraph(scheme, low, leftovers)
        )
        assert sched.granted_of(1) == opt.n_granted
