"""Consistent-hash shard placement: determinism, balance, stability."""

import pytest

from repro.errors import InvalidParameterError
from repro.net.placement import HashRing


class TestRingBasics:
    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            HashRing([])

    def test_rejects_duplicates(self):
        with pytest.raises(InvalidParameterError):
            HashRing([0, 1, 0])

    def test_rejects_bad_replicas(self):
        with pytest.raises(InvalidParameterError):
            HashRing([0, 1], replicas=0)

    def test_single_node_owns_everything(self):
        ring = HashRing([7])
        assert ring.placement(16) == {o: 7 for o in range(16)}


class TestDeterminism:
    def test_placement_is_a_pure_function(self):
        """Two independently built rings agree — no randomized hashing.

        This is the property that lets the parent process, the worker
        processes and the tests all compute the same shard→worker map
        without talking to each other.
        """
        a = HashRing([0, 1, 2]).placement(16)
        b = HashRing([0, 1, 2]).placement(16)
        assert a == b

    def test_node_for_matches_fresh_ring(self):
        ring = HashRing([0, 1, 2, 3])
        again = HashRing([0, 1, 2, 3])
        for key in ("shard-0", "shard-5", "anything"):
            assert ring.node_for(key) == again.node_for(key)


class TestBoundedLoad:
    @pytest.mark.parametrize("n_workers", [2, 3, 4])
    @pytest.mark.parametrize("n_shards", [4, 8, 16, 32])
    def test_balance_within_one(self, n_workers, n_shards):
        ring = HashRing(list(range(n_workers)))
        placement = ring.placement(n_shards)
        assert sorted(placement) == list(range(n_shards))
        loads = [
            sum(1 for w in placement.values() if w == n)
            for n in range(n_workers)
        ]
        assert max(loads) - min(loads) <= 1, loads
        # Nobody exceeds ceil(n_shards / n_workers).
        assert max(loads) <= -(-n_shards // n_workers)

    def test_every_worker_gets_work_when_shards_suffice(self):
        ring = HashRing(list(range(4)))
        placement = ring.placement(8)
        assert set(placement.values()) == {0, 1, 2, 3}

    def test_shards_of_partitions_the_space(self):
        ring = HashRing([0, 1, 2])
        n_shards = 10
        seen: list[int] = []
        for node in ring.nodes:
            seen.extend(ring.shards_of(node, n_shards))
        assert sorted(seen) == list(range(n_shards))


class TestStability:
    def test_most_shards_stay_put_when_workers_grow(self):
        """Adding a worker moves ~1/n of the shards, not all of them —
        the point of using a ring instead of ``shard % n_workers``."""
        n_shards = 64
        before = HashRing([0, 1, 2]).placement(n_shards)
        after = HashRing([0, 1, 2, 3]).placement(n_shards)
        moved = sum(1 for o in range(n_shards) if before[o] != after[o])
        # Strictly fewer moves than a modulo re-shuffle would force
        # (modulo moves ~3/4 of shards going 3→4 workers); the bounded
        # walk adds a few moves over a bare ring, so allow headroom
        # above the ideal 1/4 while still requiring real stability.
        assert moved < n_shards // 2, f"{moved} of {n_shards} shards moved"
