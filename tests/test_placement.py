"""Consistent-hash shard placement: determinism, balance, stability.

The hypothesis classes at the bottom state the ring's contract over
*arbitrary* node sets and add/remove sequences: placement is always a
total, deterministic, ±1-balanced map, and changing the worker set by one
node moves at most twice the unavoidable minimum of shards (the fair
share the joining/leaving node must gain/give up).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.net.placement import HashRing


class TestRingBasics:
    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            HashRing([])

    def test_rejects_duplicates(self):
        with pytest.raises(InvalidParameterError):
            HashRing([0, 1, 0])

    def test_rejects_bad_replicas(self):
        with pytest.raises(InvalidParameterError):
            HashRing([0, 1], replicas=0)

    def test_single_node_owns_everything(self):
        ring = HashRing([7])
        assert ring.placement(16) == {o: 7 for o in range(16)}


class TestDeterminism:
    def test_placement_is_a_pure_function(self):
        """Two independently built rings agree — no randomized hashing.

        This is the property that lets the parent process, the worker
        processes and the tests all compute the same shard→worker map
        without talking to each other.
        """
        a = HashRing([0, 1, 2]).placement(16)
        b = HashRing([0, 1, 2]).placement(16)
        assert a == b

    def test_node_for_matches_fresh_ring(self):
        ring = HashRing([0, 1, 2, 3])
        again = HashRing([0, 1, 2, 3])
        for key in ("shard-0", "shard-5", "anything"):
            assert ring.node_for(key) == again.node_for(key)


class TestBoundedLoad:
    @pytest.mark.parametrize("n_workers", [2, 3, 4])
    @pytest.mark.parametrize("n_shards", [4, 8, 16, 32])
    def test_balance_within_one(self, n_workers, n_shards):
        ring = HashRing(list(range(n_workers)))
        placement = ring.placement(n_shards)
        assert sorted(placement) == list(range(n_shards))
        loads = [
            sum(1 for w in placement.values() if w == n)
            for n in range(n_workers)
        ]
        assert max(loads) - min(loads) <= 1, loads
        # Nobody exceeds ceil(n_shards / n_workers).
        assert max(loads) <= -(-n_shards // n_workers)

    def test_every_worker_gets_work_when_shards_suffice(self):
        ring = HashRing(list(range(4)))
        placement = ring.placement(8)
        assert set(placement.values()) == {0, 1, 2, 3}

    def test_shards_of_partitions_the_space(self):
        ring = HashRing([0, 1, 2])
        n_shards = 10
        seen: list[int] = []
        for node in ring.nodes:
            seen.extend(ring.shards_of(node, n_shards))
        assert sorted(seen) == list(range(n_shards))


class TestStability:
    def test_most_shards_stay_put_when_workers_grow(self):
        """Adding a worker moves ~1/n of the shards, not all of them —
        the point of using a ring instead of ``shard % n_workers``."""
        n_shards = 64
        before = HashRing([0, 1, 2]).placement(n_shards)
        after = HashRing([0, 1, 2, 3]).placement(n_shards)
        moved = sum(1 for o in range(n_shards) if before[o] != after[o])
        # Strictly fewer moves than a modulo re-shuffle would force
        # (modulo moves ~3/4 of shards going 3→4 workers); the bounded
        # walk adds a few moves over a bare ring, so allow headroom
        # above the ideal 1/4 while still requiring real stability.
        assert moved < n_shards // 2, f"{moved} of {n_shards} shards moved"


# ---------------------------------------------------------------------------
# Property suite: arbitrary node sets and add/remove sequences
# ---------------------------------------------------------------------------

#: Worker-id sets drawn from a sparse space so ids are arbitrary, not 0..n.
_node_sets = st.sets(
    st.integers(min_value=0, max_value=63), min_size=1, max_size=6
).map(sorted)
#: Enough shards per worker for the stability envelope to be meaningful
#: (≥ 8 × the largest worker count the generator can produce).
_shard_counts = st.sampled_from((48, 64, 96))


def _loads(placement, nodes):
    return {n: sum(1 for w in placement.values() if w == n) for n in nodes}


class TestRingProperties:
    @given(_node_sets, st.integers(min_value=1, max_value=96))
    def test_total_balanced_deterministic(self, nodes, n_shards):
        ring = HashRing(nodes)
        placement = ring.placement(n_shards)
        assert sorted(placement) == list(range(n_shards))
        assert set(placement.values()) <= set(nodes)
        loads = _loads(placement, nodes)
        assert max(loads.values()) - min(loads.values()) <= 1
        assert max(loads.values()) <= math.ceil(n_shards / len(nodes))
        assert min(loads.values()) >= n_shards // len(nodes)
        # Pure function: an independently built ring agrees exactly.
        assert placement == HashRing(nodes).placement(n_shards)

    @given(_node_sets, st.integers(min_value=1, max_value=64))
    def test_shards_of_partitions_the_space(self, nodes, n_shards):
        ring = HashRing(nodes)
        seen: list[int] = []
        for node in ring.nodes:
            seen.extend(ring.shards_of(node, n_shards))
        assert sorted(seen) == list(range(n_shards))


class TestRingChurn:
    """Minimal shard movement under arbitrary add/remove node sequences."""

    @given(_node_sets, _shard_counts, st.data())
    @settings(max_examples=50)
    def test_each_step_moves_at_most_twice_the_fair_share(
        self, nodes, n_shards, data
    ):
        nodes = list(nodes)
        placement = HashRing(nodes).placement(n_shards)
        for _ in range(data.draw(st.integers(min_value=1, max_value=5))):
            can_add = len(nodes) < 6
            can_remove = len(nodes) > 1
            if can_add and (not can_remove or data.draw(st.booleans())):
                joined = data.draw(
                    st.integers(min_value=0, max_value=63).filter(
                        lambda x: x not in nodes
                    )
                )
                nodes.append(joined)
                departed = None
            else:
                departed = data.draw(st.sampled_from(nodes))
                nodes.remove(departed)
                joined = None
            after = HashRing(nodes).placement(n_shards)
            moved = sum(
                1 for o in range(n_shards) if placement[o] != after[o]
            )
            fair_share = math.ceil(n_shards / len(nodes))
            assert moved <= 2 * fair_share, (
                f"{moved} of {n_shards} shards moved "
                f"(fair share {fair_share}, nodes now {sorted(nodes)})"
            )
            if joined is not None:
                # The joiner must end up with a full fair share...
                assert (
                    sum(1 for w in after.values() if w == joined)
                    >= n_shards // len(nodes)
                )
            if departed is not None:
                # ...and a leaver's shards must all be reassigned.
                assert departed not in after.values()
            placement = after
