"""Executable versions of the paper's supporting lemmas (5 and 6).

Lemmas 1–4 are covered by the crossing/breaking test modules; this module
adds the two counting lemmas behind Theorem 3.
"""

from hypothesis import given, settings

from repro.graphs.crossing import crosses, has_crossing_edges, uncross_matching
from repro.graphs.hopcroft_karp import hopcroft_karp
from repro.util.intervals import canonical_signed_residue
from tests.conftest import circular_instances


def _edge_offset(rg, a, b):
    scheme = rg.scheme
    return canonical_signed_residue(
        b - rg.wavelength_of(a), scheme.k, -scheme.e, scheme.f
    )


class TestLemma5:
    """Edges crossing ``a_i b_u`` from opposite wavelength sides cross each
    other (which is why a no-crossing matching contains only one side)."""

    @settings(max_examples=60, deadline=None)
    @given(circular_instances(max_k=8))
    def test_opposite_side_crossers_cross_each_other(self, rg):
        g = rg.graph
        scheme = rg.scheme
        k, e, f = scheme.k, scheme.e, scheme.f
        edges = sorted(g.edges())
        for (i, u) in edges[:6]:
            w_i = rg.wavelength_of(i)
            t = _edge_offset(rg, i, u)
            plus_side = []   # W(j) in [W(i)+1, u-1+e]   (Definition 1 case 1.2)
            minus_side = []  # W(l) in [u-f+1, W(i)-1]   (Definition 1 case 1.1)
            for (j, v) in edges:
                if (j, v) == (i, u) or not crosses(rg, (j, v), (i, u)):
                    continue
                w_j = rg.wavelength_of(j)
                if w_j == w_i:
                    continue  # same-wavelength crossers: not covered by L5
                if canonical_signed_residue(w_j - w_i, k, 1, t - 1 + e) is not None:
                    plus_side.append((j, v))
                elif (
                    canonical_signed_residue(w_j - w_i, k, t - f + 1, -1)
                    is not None
                ):
                    minus_side.append((j, v))
            for pe in plus_side:
                for me in minus_side:
                    if pe[0] == me[0] or pe[1] == me[1]:
                        continue  # shared vertex: can't coexist in a matching
                    assert crosses(rg, pe, me) or crosses(rg, me, pe), (
                        (i, u),
                        pe,
                        me,
                    )


class TestLemma6:
    """In a no-crossing-edge maximum matching, at most
    ``max(δ(u)-1, d-δ(u))`` matched edges cross any edge ``a_i b_u``."""

    @settings(max_examples=60, deadline=None)
    @given(circular_instances(max_k=8))
    def test_crossing_count_bound(self, rg):
        g = rg.graph
        if g.n_edges == 0:
            return
        scheme = rg.scheme
        d = scheme.degree
        matching = uncross_matching(rg, hopcroft_karp(g))
        assert not has_crossing_edges(rg, matching)
        matched = sorted(matching.pairs)
        for (i, u) in sorted(g.edges())[:10]:
            t = _edge_offset(rg, i, u)
            delta = t + scheme.e + 1  # δ(u): 1-based from the minus end
            bound = max(delta - 1, d - delta)
            n_crossing = sum(
                1
                for (j, v) in matched
                if (j, v) != (i, u) and crosses(rg, (j, v), (i, u))
            )
            assert n_crossing <= bound, ((i, u), delta, d, n_crossing, matched)
