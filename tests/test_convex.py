"""Tests for convex bipartite graphs, Glover's algorithm and First Available
(paper Tables 1–2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError, NotConvexError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.convex import (
    ConvexInstance,
    first_available_convex,
    glover_maximum_matching,
    is_convex_in_order,
)
from repro.graphs.hopcroft_karp import hopcroft_karp


@st.composite
def interval_instances(draw, max_left=12, max_right=10):
    n_right = draw(st.integers(1, max_right))
    n_left = draw(st.integers(0, max_left))
    intervals = []
    for _ in range(n_left):
        lo = draw(st.integers(0, n_right - 1))
        hi = draw(st.integers(lo, n_right - 1))
        if draw(st.booleans()):
            intervals.append((lo, hi))
        else:
            intervals.append((1, 0))  # isolated vertex
    return ConvexInstance(tuple(intervals), n_right)


class TestIsConvex:
    def test_convex_graph(self):
        g = BipartiteGraph(2, 4, [(0, 0), (0, 1), (1, 2), (1, 3)])
        assert is_convex_in_order(g)

    def test_non_convex_gap(self):
        g = BipartiteGraph(1, 3, [(0, 0), (0, 2)])
        assert not is_convex_in_order(g)

    def test_convex_in_custom_order(self):
        g = BipartiteGraph(1, 3, [(0, 0), (0, 2)])
        assert is_convex_in_order(g, [0, 2, 1])

    def test_edge_outside_order(self):
        g = BipartiteGraph(1, 3, [(0, 0), (0, 1)])
        assert not is_convex_in_order(g, [0, 2])

    def test_duplicate_order_rejected(self):
        g = BipartiteGraph(1, 2, [(0, 0)])
        with pytest.raises(InvalidParameterError):
            is_convex_in_order(g, [0, 0])

    def test_order_out_of_range(self):
        g = BipartiteGraph(1, 2, [(0, 0)])
        with pytest.raises(InvalidParameterError):
            is_convex_in_order(g, [0, 5])

    def test_isolated_left_vertex_ok(self):
        g = BipartiteGraph(2, 2, [(0, 0)])
        assert is_convex_in_order(g)


class TestGlover:
    def test_min_end_rule(self):
        # b0 adjacent to a0 (END 2) and a1 (END 0): Glover must pick a1.
        g = BipartiteGraph(2, 3, [(0, 0), (0, 1), (0, 2), (1, 0)])
        m = glover_maximum_matching(g)
        assert (1, 0) in m
        assert len(m) == 2

    def test_rejects_non_convex(self):
        g = BipartiteGraph(1, 3, [(0, 0), (0, 2)])
        with pytest.raises(NotConvexError):
            glover_maximum_matching(g)

    def test_empty_graph(self):
        assert len(glover_maximum_matching(BipartiteGraph(0, 3))) == 0

    def test_subset_order(self):
        g = BipartiteGraph(2, 4, [(0, 1), (1, 1), (1, 3)])
        m = glover_maximum_matching(g, [1, 3])
        assert len(m) == 2

    @settings(max_examples=80, deadline=None)
    @given(interval_instances())
    def test_glover_optimal_on_convex(self, inst):
        g = inst.to_graph()
        m = glover_maximum_matching(g)
        m.validate_against(g)
        assert len(m) == len(hopcroft_karp(g))


class TestFirstAvailableConvex:
    def test_matches_first_vertex(self):
        g = BipartiteGraph(2, 2, [(0, 0), (1, 0), (1, 1)])
        m = first_available_convex(g)
        assert (0, 0) in m

    def test_suboptimal_without_monotonicity(self):
        # FA (first-vertex rule) is NOT optimal for arbitrary convex graphs:
        # a0 spans everything, a1 only b0. FA gives b0 to a0... a1 unmatched?
        g = BipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
        m = first_available_convex(g)
        # first rule still finds 2 here (a0-b0 then nothing for b1? no: a1
        # can't take b1). This graph is monotone-violating; FA yields 1 less.
        assert len(m) == 1
        assert len(hopcroft_karp(g)) == 2


class TestConvexInstance:
    def test_interval_validation(self):
        with pytest.raises(InvalidParameterError):
            ConvexInstance(((0, 5),), 3)
        with pytest.raises(InvalidParameterError):
            ConvexInstance(((-1, 1),), 3)

    def test_empty_interval_allowed(self):
        inst = ConvexInstance(((1, 0),), 3)
        assert inst.to_graph().n_edges == 0

    def test_to_graph(self):
        inst = ConvexInstance(((0, 1), (1, 2)), 3)
        g = inst.to_graph()
        assert g.edges() == frozenset({(0, 0), (0, 1), (1, 1), (1, 2)})

    def test_solve_heap_glover(self):
        inst = ConvexInstance(((0, 2), (0, 0)), 3)
        m = inst.solve()
        assert len(m) == 2
        assert (1, 0) in m  # min-END wins b0

    @settings(max_examples=80, deadline=None)
    @given(interval_instances())
    def test_solve_optimal(self, inst):
        m = inst.solve()
        g = inst.to_graph()
        m.validate_against(g)
        assert len(m) == len(hopcroft_karp(g))

    def test_solve_first_available_requires_monotone(self):
        inst = ConvexInstance(((1, 2), (0, 2)), 3)
        with pytest.raises(NotConvexError):
            inst.solve_first_available()

    @settings(max_examples=80, deadline=None)
    @given(interval_instances())
    def test_first_available_optimal_when_monotone(self, inst):
        # Sort intervals to establish monotone BEGIN/END (Theorem-1 regime).
        nonempty = sorted(
            [iv for iv in inst.intervals if iv[1] >= iv[0]]
        )
        empty = [iv for iv in inst.intervals if iv[1] < iv[0]]
        ordered = ConvexInstance(tuple(nonempty + empty), inst.n_right)
        # Monotone END must also hold; filter instances where it doesn't.
        ends = [hi for _lo, hi in nonempty]
        if ends != sorted(ends):
            return
        m = ordered.solve_first_available()
        g = ordered.to_graph()
        m.validate_against(g)
        assert len(m) == len(hopcroft_karp(g))
