"""Tests for the service telemetry primitives and registry."""

import threading

import pytest

from repro.errors import InvalidParameterError
from repro.service.telemetry import (
    Counter,
    Gauge,
    Histogram,
    Telemetry,
    exponential_buckets,
)


class TestCounterGauge:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(InvalidParameterError):
            c.inc(-1)

    def test_counter_thread_safety(self):
        c = Counter()
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(10_000)])
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_count_sum_mean(self):
        h = Histogram([1.0, 2.0, 4.0])
        for v in (0.5, 1.5, 3.0, 8.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(13.0)
        assert h.mean == pytest.approx(13.0 / 4)

    def test_quantiles_bracket_samples(self):
        h = Histogram(exponential_buckets(0.001, 2.0, 16))
        samples = [0.001 * 1.05**i for i in range(200)]
        for v in samples:
            h.observe(v)
        lo, hi = min(samples), max(samples)
        assert lo <= h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0) <= hi
        # p50 lands within a bucket of the true median.
        true_median = sorted(samples)[100]
        assert h.quantile(0.5) == pytest.approx(true_median, rel=1.0)

    def test_empty_histogram(self):
        h = Histogram([1.0])
        assert h.quantile(0.5) == 0.0
        assert h.snapshot()["count"] == 0

    def test_overflow_bucket(self):
        h = Histogram([1.0])
        h.observe(100.0)
        assert h.count == 1
        assert h.quantile(1.0) == pytest.approx(100.0)

    def test_invalid_buckets(self):
        with pytest.raises(InvalidParameterError):
            Histogram([])
        with pytest.raises(InvalidParameterError):
            Histogram([2.0, 1.0])

    def test_invalid_quantile(self):
        with pytest.raises(InvalidParameterError):
            Histogram([1.0]).quantile(1.5)


class TestExponentialBuckets:
    def test_layout(self):
        b = exponential_buckets(1.0, 2.0, 4)
        assert b == (1.0, 2.0, 4.0, 8.0)

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(InvalidParameterError):
            exponential_buckets(1.0, 1.0, 4)
        with pytest.raises(InvalidParameterError):
            exponential_buckets(1.0, 2.0, 0)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        t = Telemetry()
        assert t.counter("a") is t.counter("a")
        assert t.gauge("g") is t.gauge("g")
        assert t.histogram("h") is t.histogram("h")

    def test_kind_conflict_rejected(self):
        t = Telemetry()
        t.counter("x")
        with pytest.raises(InvalidParameterError):
            t.gauge("x")
        with pytest.raises(InvalidParameterError):
            t.histogram("x")

    def test_counters_prefix_filter(self):
        t = Telemetry()
        t.counter("server.granted").inc(2)
        t.counter("shard.0.granted").inc(1)
        assert t.counters("server.") == {"server.granted": 2}

    def test_snapshot_plain_data(self):
        t = Telemetry()
        t.counter("c").inc(3)
        t.gauge("g").set(7)
        t.histogram("h").observe(0.5)
        snap = t.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_render_mentions_every_metric(self):
        t = Telemetry()
        t.counter("server.granted").inc()
        t.gauge("server.slot").set(9)
        t.histogram("server.lat").observe(0.01)
        text = t.render()
        assert "server.granted" in text
        assert "server.slot" in text
        assert "server.lat" in text and "p99" in text
