"""Tests for the service telemetry primitives and registry, and for the
fault-path instrumentation (breaker transitions, supervisor restarts)."""

import threading

import pytest

from repro.errors import InvalidParameterError
from repro.service.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.service.supervisor import ShardSupervisor, SupervisorConfig
from repro.service.telemetry import (
    Counter,
    Gauge,
    Histogram,
    SloAccountant,
    Telemetry,
    exponential_buckets,
)


class TestCounterGauge:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(InvalidParameterError):
            c.inc(-1)

    def test_counter_thread_safety(self):
        c = Counter()
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(10_000)])
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_count_sum_mean(self):
        h = Histogram([1.0, 2.0, 4.0])
        for v in (0.5, 1.5, 3.0, 8.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(13.0)
        assert h.mean == pytest.approx(13.0 / 4)

    def test_quantiles_bracket_samples(self):
        h = Histogram(exponential_buckets(0.001, 2.0, 16))
        samples = [0.001 * 1.05**i for i in range(200)]
        for v in samples:
            h.observe(v)
        lo, hi = min(samples), max(samples)
        assert lo <= h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0) <= hi
        # p50 lands within a bucket of the true median.
        true_median = sorted(samples)[100]
        assert h.quantile(0.5) == pytest.approx(true_median, rel=1.0)

    def test_empty_histogram(self):
        h = Histogram([1.0])
        assert h.quantile(0.5) == 0.0
        assert h.snapshot()["count"] == 0

    def test_overflow_bucket(self):
        h = Histogram([1.0])
        h.observe(100.0)
        assert h.count == 1
        assert h.quantile(1.0) == pytest.approx(100.0)

    def test_invalid_buckets(self):
        with pytest.raises(InvalidParameterError):
            Histogram([])
        with pytest.raises(InvalidParameterError):
            Histogram([2.0, 1.0])

    def test_invalid_quantile(self):
        with pytest.raises(InvalidParameterError):
            Histogram([1.0]).quantile(1.5)


class TestExponentialBuckets:
    def test_layout(self):
        b = exponential_buckets(1.0, 2.0, 4)
        assert b == (1.0, 2.0, 4.0, 8.0)

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(InvalidParameterError):
            exponential_buckets(1.0, 1.0, 4)
        with pytest.raises(InvalidParameterError):
            exponential_buckets(1.0, 2.0, 0)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        t = Telemetry()
        assert t.counter("a") is t.counter("a")
        assert t.gauge("g") is t.gauge("g")
        assert t.histogram("h") is t.histogram("h")

    def test_kind_conflict_rejected(self):
        t = Telemetry()
        t.counter("x")
        with pytest.raises(InvalidParameterError):
            t.gauge("x")
        with pytest.raises(InvalidParameterError):
            t.histogram("x")

    def test_counters_prefix_filter(self):
        t = Telemetry()
        t.counter("server.granted").inc(2)
        t.counter("shard.0.granted").inc(1)
        assert t.counters("server.") == {"server.granted": 2}

    def test_snapshot_plain_data(self):
        t = Telemetry()
        t.counter("c").inc(3)
        t.gauge("g").set(7)
        t.histogram("h").observe(0.5)
        snap = t.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_render_mentions_every_metric(self):
        t = Telemetry()
        t.counter("server.granted").inc()
        t.gauge("server.slot").set(9)
        t.histogram("server.lat").observe(0.01)
        text = t.render()
        assert "server.granted" in text
        assert "server.slot" in text
        assert "server.lat" in text and "p99" in text


class TestBreakerTelemetry:
    def _breaker(self, **cfg):
        t = Telemetry()
        cfg.setdefault("failure_threshold", 2)
        cfg.setdefault("reset_ticks", 3)
        return t, CircuitBreaker(BreakerConfig(**cfg), t, shard=0)

    def test_full_cycle_counts_every_transition(self):
        t, b = self._breaker()
        assert b.state is BreakerState.CLOSED
        assert t.gauge("shard.0.breaker_state").value == 0
        b.record_failure(0)
        b.record_failure(0)  # threshold 2 -> OPEN
        assert b.state is BreakerState.OPEN
        assert t.gauge("shard.0.breaker_state").value == 2
        assert not b.allow(1)  # still inside reset_ticks
        assert b.allow(3)  # probe admitted -> HALF_OPEN
        assert t.gauge("shard.0.breaker_state").value == 1
        b.record_success(3)  # probe succeeded -> CLOSED
        assert b.state is BreakerState.CLOSED
        counters = t.snapshot()["counters"]
        assert counters["breaker.transitions.opened"] == 1
        assert counters["breaker.transitions.half_open"] == 1
        assert counters["breaker.transitions.closed"] == 1

    def test_failed_probe_reopens(self):
        t, b = self._breaker()
        b.force_open(0)
        assert b.allow(3)
        b.record_failure(3)
        assert b.state is BreakerState.OPEN
        assert t.snapshot()["counters"]["breaker.transitions.opened"] == 2
        # The reset timer restarted at the failed probe's tick.
        assert not b.allow(4)
        assert b.allow(6)

    def test_probe_limit_bounds_half_open_admissions(self):
        _, b = self._breaker(probe_limit=2, probe_successes=2)
        b.force_open(0)
        assert b.allow(3) and b.allow(3)
        assert not b.allow(3)  # third concurrent probe refused
        b.record_success(3)
        assert b.state is BreakerState.HALF_OPEN  # needs 2 successes
        b.record_success(3)
        assert b.state is BreakerState.CLOSED

    def test_success_resets_consecutive_failures(self):
        _, b = self._breaker(failure_threshold=2)
        b.record_failure(0)
        b.record_success(0)
        b.record_failure(1)
        assert b.state is BreakerState.CLOSED

    def test_open_refusals_are_side_effect_free(self):
        t, b = self._breaker()
        b.force_open(0)
        for _ in range(10):
            assert not b.allow(1)
        assert t.snapshot()["counters"]["breaker.transitions.opened"] == 1


class TestSupervisorTelemetry:
    def test_restart_counter_and_aged_restore(self):
        t = Telemetry()
        sup = ShardSupervisor(SupervisorConfig(restart_delay_ticks=2), t)
        sup.note_checkpoint(0, tick=5, busy=[3, 0, 1])
        sup.record_crash(0, tick=6)
        assert sup.is_down(0) and sup.down_shards == (0,)
        assert sup.due_for_restart(7) == ()
        assert sup.due_for_restart(8) == (0,)
        # Aged by the 3 ticks since the checkpoint, floored at zero.
        assert sup.restore_busy(0, tick=8, k=3) == [0, 0, 0]
        assert sup.restore_busy(0, tick=6, k=3) == [2, 0, 0]
        sup.mark_restarted(0)
        assert not sup.is_down(0)
        assert t.snapshot()["counters"]["server.shard_restarts"] == 1

    def test_down_shard_not_checkpointed(self):
        sup = ShardSupervisor()
        sup.note_checkpoint(1, tick=4, busy=[2])
        sup.record_crash(1, tick=4)
        sup.note_checkpoint(1, tick=5, busy=[9])  # ignored: shard is down
        assert sup.checkpoint_of(1) == (4, [2])

    def test_no_checkpoint_restores_all_free(self):
        sup = ShardSupervisor()
        sup.record_crash(2, tick=0)
        assert sup.restore_busy(2, tick=1, k=4) == [0, 0, 0, 0]

    def test_checkpoint_interval_skips_off_ticks(self):
        sup = ShardSupervisor(SupervisorConfig(checkpoint_interval=3))
        sup.note_checkpoint(0, tick=2, busy=[1])
        assert sup.checkpoint_of(0) is None
        sup.note_checkpoint(0, tick=3, busy=[2])
        assert sup.checkpoint_of(0) == (3, [2])


class TestSloAccountant:
    def test_empty_ratio_is_one(self):
        assert SloAccountant().grant_ratio(0) == 1.0

    def test_per_class_and_rollup_ratios(self):
        slo = SloAccountant()
        for _ in range(3):
            slo.record(0, 0, "granted")
        slo.record(0, 0, "contention")
        slo.record(0, 1, "granted")
        slo.record(0, 1, "admission_shed")
        assert slo.grant_ratio(0, 0) == 3 / 4
        assert slo.grant_ratio(0, 1) == 1 / 2
        assert slo.grant_ratio(0) == 4 / 6

    def test_report_cells_and_targets(self):
        slo = SloAccountant()
        slo.record(0, 0, "granted")
        slo.record(0, 0, "granted")
        slo.record(1, 2, "contention")
        slo.set_target(0, 0.5)
        slo.set_target(1, 0.5)
        report = slo.report()
        assert report["cells"]["0/0"] == {
            "submitted": 2,
            "granted": 2,
            "rejected": {},
        }
        assert report["cells"]["1/2"]["rejected"] == {"contention": 1}
        assert report["tenants"][0]["met"] is True
        assert report["tenants"][1]["met"] is False
        assert report["all_met"] is False

    def test_untargeted_tenant_counts_as_met(self):
        slo = SloAccountant()
        slo.record(5, 0, "dropped")
        report = slo.report()
        assert report["tenants"][5]["target"] is None
        assert report["tenants"][5]["met"] is True
        assert report["all_met"] is True

    def test_per_class_target_fails_while_rollup_passes(self):
        slo = SloAccountant()
        for _ in range(9):
            slo.record(0, 0, "granted")
        slo.record(0, 1, "timed_out")
        slo.set_target(0, 0.8)          # rollup: 9/10 -> met
        slo.set_target(0, 0.5, priority=1)  # class 1: 0/1 -> not met
        report = slo.report()
        assert report["tenants"][0]["met"] is True
        assert report["tenants"][0]["class_1"]["met"] is False
        assert report["all_met"] is False

    def test_target_validation(self):
        with pytest.raises(InvalidParameterError):
            SloAccountant().set_target(0, 1.5)

    def test_thread_safety_smoke(self):
        slo = SloAccountant()

        def worker():
            for _ in range(500):
                slo.record(0, 0, "granted")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert slo.report()["cells"]["0/0"]["submitted"] == 2000
