"""Property suite for the migration wave planner.

:func:`repro.service.resharding.plan_waves` colors simultaneous shard
moves into conflict-free waves.  The properties the robustness story
leans on (``docs/ROBUSTNESS.md``, "Live resharding"):

* within one wave no worker appears in two moves — in particular, no
  worker is ever both a source and a destination in the same wave;
* every move is scheduled exactly once;
* the number of waves never exceeds the documented ``2·Δ − 1`` bound
  (``Δ`` = the maximum number of moves touching one worker);
* planning is deterministic in the move *set* (input order immaterial).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.service.resharding import (
    ShardMove,
    max_move_degree,
    plan_waves,
    wave_bound,
)


@st.composite
def move_sets(draw, max_moves=24, max_workers=8):
    """Distinct-shard move lists over a small worker fleet."""
    n_moves = draw(st.integers(min_value=0, max_value=max_moves))
    shards = draw(
        st.lists(
            st.integers(min_value=0, max_value=255),
            min_size=n_moves,
            max_size=n_moves,
            unique=True,
        )
    )
    moves = []
    for shard in shards:
        source = draw(st.integers(min_value=0, max_value=max_workers - 1))
        destination = draw(
            st.integers(min_value=0, max_value=max_workers - 1).filter(
                lambda w: w != source
            )
        )
        moves.append(ShardMove(shard=shard, source=source, destination=destination))
    return moves


class TestWaveProperties:
    @given(move_sets())
    def test_no_worker_twice_in_a_wave(self, moves):
        for wave in plan_waves(moves):
            participants = [w for m in wave for w in (m.source, m.destination)]
            assert len(participants) == len(set(participants))

    @given(move_sets())
    def test_no_worker_is_source_and_destination_in_a_wave(self, moves):
        # Implied by the stronger property above, but this is the
        # contract the docs state — assert it directly.
        for wave in plan_waves(moves):
            sources = {m.source for m in wave}
            destinations = {m.destination for m in wave}
            assert not (sources & destinations)

    @given(move_sets())
    def test_every_move_scheduled_exactly_once(self, moves):
        planned = [m for wave in plan_waves(moves) for m in wave]
        assert sorted(planned) == sorted(moves)

    @given(move_sets())
    def test_wave_count_within_documented_bound(self, moves):
        waves = plan_waves(moves)
        assert len(waves) <= wave_bound(moves)
        # And the bound itself is what the docstring says it is.
        d = max_move_degree(moves)
        assert wave_bound(moves) == (2 * d - 1 if d else 0)

    @given(move_sets(), st.randoms(use_true_random=False))
    def test_plan_is_deterministic_in_the_move_set(self, moves, rng):
        shuffled = list(moves)
        rng.shuffle(shuffled)
        assert plan_waves(shuffled) == plan_waves(moves)

    @given(move_sets())
    def test_waves_are_never_empty(self, moves):
        waves = plan_waves(moves)
        assert all(wave for wave in waves)
        if not moves:
            assert waves == []


class TestWaveUnits:
    def test_self_move_is_rejected(self):
        with pytest.raises(InvalidParameterError, match="source == destination"):
            ShardMove(shard=0, source=1, destination=1)

    def test_duplicate_shard_is_rejected(self):
        moves = [
            ShardMove(shard=3, source=0, destination=1),
            ShardMove(shard=3, source=1, destination=2),
        ]
        with pytest.raises(InvalidParameterError, match="two moves"):
            plan_waves(moves)

    def test_disjoint_moves_share_one_wave(self):
        moves = [
            ShardMove(shard=0, source=0, destination=1),
            ShardMove(shard=1, source=2, destination=3),
        ]
        assert plan_waves(moves) == [sorted(moves)]

    def test_chain_is_serialized(self):
        # 0 -> 1 and 1 -> 2 share worker 1: two waves, source-then-dest
        # never collapses into one.
        moves = [
            ShardMove(shard=0, source=0, destination=1),
            ShardMove(shard=1, source=1, destination=2),
        ]
        waves = plan_waves(moves)
        assert len(waves) == 2
        assert [len(w) for w in waves] == [1, 1]

    def test_degree_and_bound_on_a_star(self):
        # Three moves all landing on worker 0: Δ = 3, bound = 5, and the
        # planner needs exactly Δ waves (one landing per wave).
        moves = [
            ShardMove(shard=o, source=o + 1, destination=0) for o in range(3)
        ]
        assert max_move_degree(moves) == 3
        assert wave_bound(moves) == 5
        assert len(plan_waves(moves)) == 3
