"""Tests for the vectorized batch First Available scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import batch_first_available
from repro.core.first_available import first_available_fast
from repro.errors import InvalidParameterError


class TestValidation:
    def test_requires_2d(self):
        with pytest.raises(InvalidParameterError):
            batch_first_available(np.zeros(4), None, 1, 1)

    def test_rejects_negative_counts(self):
        with pytest.raises(InvalidParameterError):
            batch_first_available(np.array([[-1, 0]]), None, 0, 0)

    def test_availability_shape(self):
        with pytest.raises(InvalidParameterError):
            batch_first_available(
                np.zeros((2, 4), dtype=int), np.ones((3, 4), dtype=bool), 1, 1
            )

    def test_degree_bound(self):
        with pytest.raises(InvalidParameterError):
            batch_first_available(np.zeros((1, 2), dtype=int), None, 1, 1)
        with pytest.raises(InvalidParameterError):
            batch_first_available(np.zeros((1, 4), dtype=int), None, -1, 0)


class TestSemantics:
    def test_empty_matrix(self):
        assign = batch_first_available(np.zeros((3, 4), dtype=int), None, 1, 1)
        assert (assign == -1).all()

    def test_single_row_matches_scalar(self):
        vec = [2, 0, 1, 1]
        assign = batch_first_available(np.array([vec]), None, 1, 1)
        scalar = first_available_fast(vec, [True] * 4, 1, 1)
        expected = [-1] * 4
        for g in scalar:
            expected[g.channel] = g.wavelength
        assert assign[0].tolist() == expected

    def test_rows_independent(self):
        req = np.array([[1, 0, 0], [0, 0, 1]])
        assign = batch_first_available(req, None, 0, 0)
        assert assign[0].tolist() == [0, -1, -1]
        assert assign[1].tolist() == [-1, -1, 2]

    def test_availability_respected(self):
        req = np.array([[1, 1, 1]])
        avail = np.array([[False, True, False]])
        assign = batch_first_available(req, avail, 1, 1)
        assert assign[0, 0] == -1 and assign[0, 2] == -1
        assert assign[0, 1] >= 0

    def test_grant_counts_bounded(self):
        rng = np.random.default_rng(0)
        req = rng.integers(0, 3, size=(10, 8))
        assign = batch_first_available(req, None, 1, 1)
        granted = (assign >= 0).sum(axis=1)
        assert (granted <= req.sum(axis=1)).all()
        assert (granted <= 8).all()

    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(1, 6),   # rows
        st.integers(1, 8),   # k
        st.integers(0, 2),   # e
        st.integers(0, 2),   # f
        st.integers(0, 2**31 - 1),
    )
    def test_identical_to_scalar_pass(self, rows, k, e, f, seed):
        if e + f + 1 > k:
            return
        rng = np.random.default_rng(seed)
        req = rng.integers(0, 3, size=(rows, k))
        avail = rng.random((rows, k)) > 0.3
        assign = batch_first_available(req, avail, e, f)
        for m in range(rows):
            scalar = first_available_fast(
                req[m].tolist(), avail[m].tolist(), e, f
            )
            expected = [-1] * k
            for g in scalar:
                expected[g.channel] = g.wavelength
            assert assign[m].tolist() == expected, (m, req[m], avail[m])
