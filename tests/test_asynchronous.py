"""Tests for the asynchronous FCFS wavelength-routing simulator and the
Erlang-B closed form."""

import math

import pytest

from repro.analysis.analytical import erlang_b
from repro.errors import InvalidParameterError
from repro.graphs.conversion import CircularConversion, FullRangeConversion
from repro.sim.asynchronous import AsyncWavelengthRouter


def _erlang_b_direct(a: float, c: int) -> float:
    """Direct-sum Erlang B (independent reference implementation)."""
    num = a**c / math.factorial(c)
    den = sum(a**j / math.factorial(j) for j in range(c + 1))
    return num / den


class TestErlangB:
    @pytest.mark.parametrize("a,c", [(1.0, 1), (5.0, 8), (9.0, 12), (20.0, 16)])
    def test_matches_direct_sum(self, a, c):
        assert erlang_b(a, c) == pytest.approx(_erlang_b_direct(a, c))

    def test_zero_traffic(self):
        assert erlang_b(0.0, 4) == 0.0

    def test_monotone_in_traffic(self):
        vals = [erlang_b(a, 8) for a in (1.0, 4.0, 8.0, 16.0)]
        assert vals == sorted(vals)

    def test_monotone_in_servers(self):
        vals = [erlang_b(8.0, c) for c in (2, 4, 8, 16)]
        assert vals == sorted(vals, reverse=True)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            erlang_b(-1.0, 4)
        with pytest.raises(InvalidParameterError):
            erlang_b(1.0, 0)


class TestRouterValidation:
    def test_bad_params(self):
        scheme = CircularConversion(4, 1, 1)
        with pytest.raises(InvalidParameterError):
            AsyncWavelengthRouter(2, scheme, arrival_rate=0.0)
        with pytest.raises(InvalidParameterError):
            AsyncWavelengthRouter(2, scheme, 1.0, holding_time=0.0)
        with pytest.raises(InvalidParameterError):
            AsyncWavelengthRouter(2, scheme, 1.0, policy="best-fit")

    def test_bad_run_args(self):
        router = AsyncWavelengthRouter(2, CircularConversion(4, 1, 1), 1.0)
        with pytest.raises(InvalidParameterError):
            router.run(0.0)
        with pytest.raises(InvalidParameterError):
            router.run(10.0, warmup=-1.0)

    def test_offered_erlangs(self):
        router = AsyncWavelengthRouter(
            2, CircularConversion(4, 1, 1), 3.0, holding_time=2.0
        )
        assert router.offered_erlangs_per_fiber == 6.0


class TestRouterBehaviour:
    def test_counters_consistent(self):
        router = AsyncWavelengthRouter(
            3, CircularConversion(8, 1, 1), arrival_rate=6.0, seed=1
        )
        res = router.run(300.0, warmup=30.0)
        assert 0 <= res.blocked <= res.offered
        assert 0.0 <= res.blocking_probability <= 1.0
        assert 0.0 <= res.utilization <= 1.0

    def test_reproducible(self):
        def run(seed):
            return AsyncWavelengthRouter(
                2, CircularConversion(6, 1, 1), 4.0, seed=seed
            ).run(200.0)

        a, b = run(9), run(9)
        assert (a.offered, a.blocked, a.carried_time) == (
            b.offered,
            b.blocked,
            b.carried_time,
        )
        c = run(10)
        assert (a.offered, a.blocked) != (c.offered, c.blocked)

    def test_light_load_no_blocking(self):
        router = AsyncWavelengthRouter(
            2, FullRangeConversion(16), arrival_rate=0.5, seed=2
        )
        res = router.run(300.0)
        assert res.blocking_probability < 0.001

    def test_erlang_b_agreement_full_range(self):
        k, erlangs = 8, 6.0
        router = AsyncWavelengthRouter(
            2, FullRangeConversion(k), arrival_rate=erlangs, seed=3
        )
        res = router.run(6000.0, warmup=300.0)
        assert res.blocking_probability == pytest.approx(
            erlang_b(erlangs, k), abs=0.015
        )

    def test_degree_one_blocks_most(self):
        def blocking(scheme):
            return AsyncWavelengthRouter(
                2, scheme, arrival_rate=6.0, seed=4
            ).run(800.0, warmup=80.0).blocking_probability

        b1 = blocking(CircularConversion(8, 0, 0))
        b3 = blocking(CircularConversion(8, 1, 1))
        bf = blocking(FullRangeConversion(8))
        assert b1 > b3 > bf

    @pytest.mark.parametrize("policy", ["first-fit", "last-fit", "random"])
    def test_policies_all_valid(self, policy):
        router = AsyncWavelengthRouter(
            2,
            CircularConversion(6, 1, 1),
            arrival_rate=5.0,
            policy=policy,
            seed=5,
        )
        res = router.run(200.0)
        assert res.offered > 0

    def test_carried_erlangs_bounded_by_k(self):
        router = AsyncWavelengthRouter(
            2, FullRangeConversion(4), arrival_rate=50.0, seed=6
        )
        res = router.run(200.0, warmup=20.0)
        assert res.carried_erlangs_per_fiber <= 4.0 + 1e-9
