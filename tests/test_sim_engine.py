"""Tests for the slotted simulation engine (conservation laws, multi-slot
occupancy, disturb mode, reproducibility)."""

import numpy as np
import pytest

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.approx import SingleBreakScheduler
from repro.errors import SimulationError
from repro.graphs.conversion import CircularConversion
from repro.sim.duration import DeterministicDuration, GeometricDuration
from repro.sim.engine import SlottedSimulator
from repro.sim.traffic import BernoulliTraffic


def make_sim(
    n=3, k=6, load=0.8, durations=None, disturb=False, seed=5, scheduler=None
):
    scheme = CircularConversion(k, 1, 1)
    traffic = BernoulliTraffic(n, k, load, durations=durations)
    return SlottedSimulator(
        n,
        scheme,
        scheduler or BreakFirstAvailableScheduler(),
        traffic,
        disturb=disturb,
        seed=seed,
    )


class TestBasics:
    def test_dimension_mismatch_rejected(self):
        scheme = CircularConversion(6, 1, 1)
        traffic = BernoulliTraffic(3, 4, 0.5)  # k mismatch
        with pytest.raises(SimulationError):
            SlottedSimulator(3, scheme, BreakFirstAvailableScheduler(), traffic)

    def test_run_slot_count(self):
        res = make_sim().run(50, warmup=10)
        assert res.n_slots == 50
        assert res.warmup_slots == 10

    def test_config_echo(self):
        res = make_sim().run(10)
        assert res.config["n_fibers"] == 3
        assert res.config["k"] == 6
        assert res.config["scheduler"] == "break-first-available"

    def test_reproducible_runs(self):
        a = make_sim(seed=9).run(60).summary()
        b = make_sim(seed=9).run(60).summary()
        assert a == b

    def test_different_seeds_differ(self):
        a = make_sim(seed=1).run(60).summary()
        b = make_sim(seed=2).run(60).summary()
        assert a != b


class TestConservation:
    def test_counters_consistent(self):
        res = make_sim(load=1.0).run(80)
        m = res.metrics
        assert m.granted + m.rejected == m.submitted
        assert m.submitted + m.blocked_source == m.offered
        assert 0.0 <= m.loss_probability <= 1.0
        assert 0.0 <= m.utilization <= 1.0

    def test_grants_bounded_by_capacity(self):
        res = make_sim(n=2, k=4, load=1.0).run(50)
        for granted in res.metrics.granted_series():
            assert granted <= 2 * 4  # N output fibers × k channels

    def test_single_slot_durations_free_channels(self):
        # With duration 1 and no arrivals, nothing stays busy.
        sim = make_sim(load=0.0)
        c = sim.step()
        assert c["busy_channels"] == 0
        assert np.count_nonzero(sim._out_busy) == 0


class TestMultiSlot:
    def test_input_channel_blocked_during_connection(self):
        sim = make_sim(n=2, k=4, load=1.0, durations=DeterministicDuration(5))
        sim.step()
        c2 = sim.step()
        # All input channels busy with 5-slot connections (or were rejected
        # and retried): granted ones block their channels.
        assert c2["blocked_source"] > 0

    def test_occupied_channels_persist(self):
        sim = make_sim(n=2, k=4, load=1.0, durations=DeterministicDuration(3))
        c1 = sim.step()
        c2 = sim.step()
        assert c2["busy_channels"] >= c1["granted"]  # still held

    def test_durations_eventually_release(self):
        sim = make_sim(n=2, k=4, load=0.0, durations=DeterministicDuration(2))
        # Inject by hand: run a loaded sim a few steps, then idle.
        loaded = make_sim(n=2, k=4, load=1.0, durations=DeterministicDuration(2))
        for _ in range(3):
            loaded.step()
        for _ in range(3):
            loaded.traffic.load = 0.0  # stop arrivals
            loaded.step()
        assert np.count_nonzero(loaded._out_busy) == 0
        assert sim is not loaded

    def test_disturb_requires_optimal_scheduler_no_drop(self):
        # SingleBreak may fail to re-place all ongoing connections; engine
        # must fail loudly instead of silently dropping one.
        sim = make_sim(
            n=4,
            k=6,
            load=0.9,
            durations=GeometricDuration(6.0),
            disturb=True,
            scheduler=SingleBreakScheduler("minus-end"),
        )
        try:
            for _ in range(80):
                sim.step()
        except SimulationError as exc:
            assert "disturb" in str(exc)

    def test_disturb_mode_runs_clean_with_bfa(self):
        res = make_sim(
            n=3, k=6, load=0.4, durations=GeometricDuration(4.0), disturb=True
        ).run(80, warmup=10)
        m = res.metrics
        assert m.granted + m.rejected == m.submitted

    def test_disturb_no_worse_loss(self):
        kwargs = dict(n=3, k=6, load=0.4, durations=GeometricDuration(6.0), seed=3)
        loss_burst = make_sim(disturb=False, **kwargs).run(250, warmup=40).metrics.loss_probability
        loss_disturb = make_sim(disturb=True, **kwargs).run(250, warmup=40).metrics.loss_probability
        assert loss_disturb <= loss_burst + 0.02


class TestStepCounters:
    def test_counter_keys(self):
        c = make_sim().step()
        assert {
            "slot",
            "offered",
            "blocked_source",
            "submitted",
            "granted",
            "busy_channels",
        } <= set(c)

    def test_slots_advance(self):
        sim = make_sim()
        assert sim.step()["slot"] == 0
        assert sim.step()["slot"] == 1


class TestExportImport:
    """The simulator half of the durability story: export_state captures
    everything step() touches, so a same-shaped twin continues
    bit-identically from the snapshot."""

    def test_round_trip_continues_bit_identically(self):
        kwargs = dict(
            n=3, k=6, load=0.8, durations=GeometricDuration(3.0), seed=17
        )
        sim = make_sim(**kwargs)
        for _ in range(25):
            sim.step()
        state = sim.export_state()

        twin = make_sim(**kwargs)  # same construction, fresh RNG streams
        twin.import_state(state)
        for _ in range(25):
            assert twin.step() == sim.step()
        assert np.array_equal(twin._out_busy, sim._out_busy)
        assert np.array_equal(twin._in_busy, sim._in_busy)
        assert twin._ongoing == sim._ongoing

    def test_state_survives_json_serialization(self):
        import json

        sim = make_sim(seed=23, durations=GeometricDuration(2.0))
        for _ in range(10):
            sim.step()
        wire = json.dumps(sim.export_state())  # must be JSON-encodable
        ref = make_sim(seed=23, durations=GeometricDuration(2.0))
        twin = make_sim(seed=23, durations=GeometricDuration(2.0))
        ref.import_state(sim.export_state())
        twin.import_state(json.loads(wire))
        for _ in range(10):
            assert twin.step() == ref.step()

    def test_import_rejects_mismatched_shape(self):
        from repro.errors import InvalidParameterError

        state = make_sim(n=3, k=6).export_state()
        other = make_sim(n=2, k=4)
        with pytest.raises(InvalidParameterError):
            other.import_state(state)

    def test_export_does_not_alias_live_state(self):
        sim = make_sim(seed=31)
        state = sim.export_state()
        before = [row[:] for row in state["out_busy"]]
        sim.step()  # mutating the simulator must not mutate the snapshot
        assert state["out_busy"] == before
