"""Service vs. SlottedSimulator equivalence.

The acceptance bar for the service layer: under simulator-parity settings
(unbounded queues, no timeouts, inline fan-out, one tick per traffic slot,
the simulator's own seeded random grant policy) the online service must make
*identical grant decisions* to :class:`~repro.sim.engine.SlottedSimulator`
on the same seeded traffic — same winners, same assigned channels, same
contention losses, same blocked-at-source counts, slot by slot.  Both stacks
route through :func:`repro.core.distributed.schedule_output_fiber`, so this
test pins the shared code path and the service's admission/state bookkeeping
to the simulator's semantics.
"""

import asyncio

import pytest

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.distributed import SlotRequest
from repro.core.first_available import FirstAvailableScheduler
from repro.core.policies import RandomPolicy, WeightedFairPolicy
from repro.graphs.conversion import CircularConversion, NonCircularConversion
from repro.service import SchedulingService, Rejected, RejectReason, ServiceGrant
from repro.sim.duration import DeterministicDuration
from repro.sim.engine import SlottedSimulator
from repro.sim.traffic import (
    BernoulliTraffic,
    HotspotDestinations,
    MultiTenantOnOffTraffic,
    TenantSpec,
)
from repro.util.rng import spawn_rngs


def _run_simulator(n_fibers, scheme, scheduler, traffic, seed, n_slots, policy=None):
    """Run the batch simulator, recording each slot's grant decisions."""
    sim = SlottedSimulator(
        n_fibers, scheme, scheduler, traffic, policy=policy, seed=seed
    )
    slots = []
    original = sim.distributed.schedule_slot

    def recording(requests, availability=None):
        schedule = original(requests, availability)
        slots.append(
            {
                "granted": {
                    (
                        g.request.input_fiber,
                        g.request.wavelength,
                        g.request.output_fiber,
                        g.channel,
                    )
                    for g in schedule.granted
                },
                "rejected": {
                    (r.input_fiber, r.wavelength, r.output_fiber)
                    for r in schedule.rejected
                },
            }
        )
        return schedule

    sim.distributed.schedule_slot = recording
    blocked = []
    for _ in range(n_slots):
        counters = sim.step()
        blocked.append(counters["blocked_source"])
    return slots, blocked


def _run_service(n_fibers, scheme, scheduler, traffic, seed, n_slots, policy=None):
    """Drive the service with the identical seeded traffic, one tick/slot."""
    # Mirror SlottedSimulator's stream construction exactly: one master
    # seed spawns the traffic stream and the RandomPolicy stream (the
    # policy stream is spawned — and discarded — even when an explicit
    # deterministic policy is passed, matching the engine).
    traffic_rng, policy_rng = spawn_rngs(seed, 2)

    async def go():
        service = SchedulingService(
            n_fibers,
            scheme,
            scheduler,
            policy=policy if policy is not None else RandomPolicy(policy_rng),
            queue_capacity=None,  # unbounded: no admission losses
        )
        slots = []
        blocked = []
        for slot in range(n_slots):
            futures = [
                service.submit_nowait(
                    SlotRequest(
                        p.input_fiber,
                        p.wavelength,
                        p.output_fiber,
                        p.duration,
                        p.priority,
                        p.tenant,
                    )
                    # no timeout: requests wait for their tick
                )
                for p in traffic.arrivals(slot, traffic_rng)
            ]
            await service.tick()
            granted = set()
            rejected = set()
            n_blocked = 0
            for f in futures:
                outcome = f.result()  # every future resolves within the tick
                r = outcome.request
                if isinstance(outcome, ServiceGrant):
                    granted.add(
                        (r.input_fiber, r.wavelength, r.output_fiber, outcome.channel)
                    )
                elif outcome.reason is RejectReason.SOURCE_BLOCKED:
                    n_blocked += 1
                else:
                    assert outcome.reason is RejectReason.CONTENTION
                    rejected.add((r.input_fiber, r.wavelength, r.output_fiber))
            slots.append({"granted": granted, "rejected": rejected})
            blocked.append(n_blocked)
        await service.stop()
        return slots, blocked

    return asyncio.run(go())


CASES = [
    pytest.param(
        CircularConversion(8, 1, 1),
        BreakFirstAvailableScheduler,
        DeterministicDuration(1),
        id="bfa-circular-single-slot",
    ),
    pytest.param(
        CircularConversion(8, 1, 1),
        BreakFirstAvailableScheduler,
        DeterministicDuration(3),
        id="bfa-circular-multi-slot",
    ),
    pytest.param(
        NonCircularConversion(8, 1, 1),
        FirstAvailableScheduler,
        DeterministicDuration(2),
        id="fa-noncircular-multi-slot",
    ),
]


@pytest.mark.parametrize("scheme, scheduler_cls, durations", CASES)
def test_service_matches_simulator_slot_by_slot(scheme, scheduler_cls, durations):
    n_fibers, n_slots, seed, load = 4, 40, 20030422, 0.9

    def traffic():
        return BernoulliTraffic(
            n_fibers, scheme.k, load=load, durations=durations
        )

    sim_slots, sim_blocked = _run_simulator(
        n_fibers, scheme, scheduler_cls(), traffic(), seed, n_slots
    )
    svc_slots, svc_blocked = _run_service(
        n_fibers, scheme, scheduler_cls(), traffic(), seed, n_slots
    )

    # The simulator only calls schedule_slot for slots (it always does, even
    # with zero submissions); both sides must agree slot by slot.
    assert len(sim_slots) == len(svc_slots) == n_slots
    for slot, (sim, svc) in enumerate(zip(sim_slots, svc_slots)):
        assert sim["granted"] == svc["granted"], f"grant mismatch in slot {slot}"
        assert sim["rejected"] == svc["rejected"], f"reject mismatch in slot {slot}"
    assert sim_blocked == svc_blocked

    # Sanity: the workload actually exercised contention and carryover.
    total_granted = sum(len(s["granted"]) for s in sim_slots)
    total_rejected = sum(len(s["rejected"]) for s in sim_slots)
    assert total_granted > 0 and total_rejected > 0
    if durations.mean > 1:
        assert sum(sim_blocked) > 0


def test_service_matches_simulator_multi_tenant_wfq():
    """The tenant dimension end-to-end: bursty ON/OFF multi-tenant traffic
    through the weighted fair policy must stay grant-identical slot by slot
    between the simulator and the service — tenant ids threaded through
    submission, the policy's deficit credits advancing in lockstep."""
    n_fibers, k, n_slots, seed = 4, 8, 40, 20030422
    weights = {0: 4, 1: 2, 2: 1}
    scheme = CircularConversion(k, 1, 1)

    def traffic():
        return MultiTenantOnOffTraffic(
            n_fibers,
            k,
            (
                TenantSpec(0, weight=4, load=0.8, burst_length=5.0),
                TenantSpec(1, weight=2, load=0.8, burst_length=5.0),
                TenantSpec(2, weight=1, load=0.8, burst_length=5.0),
            ),
            destinations=HotspotDestinations(
                n_fibers, hot_fiber=0, hot_fraction=0.8
            ),
        )

    sim_slots, sim_blocked = _run_simulator(
        n_fibers,
        scheme,
        BreakFirstAvailableScheduler(),
        traffic(),
        seed,
        n_slots,
        policy=WeightedFairPolicy(weights),
    )
    svc_slots, svc_blocked = _run_service(
        n_fibers,
        scheme,
        BreakFirstAvailableScheduler(),
        traffic(),
        seed,
        n_slots,
        policy=WeightedFairPolicy(weights),
    )

    assert len(sim_slots) == len(svc_slots) == n_slots
    for slot, (sim, svc) in enumerate(zip(sim_slots, svc_slots)):
        assert sim["granted"] == svc["granted"], f"grant mismatch in slot {slot}"
        assert sim["rejected"] == svc["rejected"], f"reject mismatch in slot {slot}"
    assert sim_blocked == svc_blocked
    # The drill is only meaningful if the hotspot actually forced the
    # policy to arbitrate.
    assert sum(len(s["rejected"]) for s in sim_slots) > 0
