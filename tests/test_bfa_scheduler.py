"""Tests for Break-and-First-Available (paper Table 3, Theorem 2)."""

import pytest
from hypothesis import given, settings

from repro.analysis.verify import assert_maximum_schedule
from repro.core.baseline import HopcroftKarpScheduler
from repro.core.break_first_available import (
    BreakFirstAvailableReferenceScheduler,
    BreakFirstAvailableScheduler,
    bfa_fast,
)
from repro.errors import InvalidParameterError
from repro.graphs.conversion import CircularConversion, FullRangeConversion
from repro.graphs.request_graph import RequestGraph
from tests.conftest import PAPER_VECTOR, circular_instances


class TestFastFunction:
    def test_empty(self):
        grants, stats = bfa_fast([0, 0, 0], [True] * 3, 1, 1)
        assert grants == []
        assert stats["reduced_graphs"] == 0

    def test_paper_example(self):
        grants, _ = bfa_fast(list(PAPER_VECTOR), [True] * 6, 1, 1)
        assert len(grants) == 6

    def test_intro_example(self):
        # 2 on λ1, 3 on λ2, 1 on λ4: 5 of 6 granted (Section I).
        grants, _ = bfa_fast([0, 2, 3, 0, 1, 0], [True] * 6, 1, 1)
        assert len(grants) == 5

    def test_k_one(self):
        grants, _ = bfa_fast([2], [True], 0, 0)
        assert len(grants) == 1

    def test_all_channels_occupied(self):
        grants, stats = bfa_fast([1, 1], [False, False], 1, 0)
        assert grants == []
        assert stats["pivots_skipped"] >= 1

    def test_unmatchable_pivot_skipped(self):
        # λ0's whole window {4, 0, 1} occupied; λ2's window {1, 2, 3} still
        # has channel 3 free.
        grants, stats = bfa_fast(
            [1, 0, 1, 0, 0], [False, False, False, True, False], 1, 1
        )
        assert stats["pivots_skipped"] == 1
        assert len(grants) == 1
        assert grants[0].wavelength == 2 and grants[0].channel == 3

    def test_degree_exceeds_k_rejected(self):
        with pytest.raises(InvalidParameterError):
            bfa_fast([1, 1], [True, True], 1, 1)

    def test_mask_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            bfa_fast([1, 1], [True], 0, 0)

    def test_full_range_degree(self):
        # e + f + 1 == k: circular full range, still exact.
        grants, _ = bfa_fast([2, 2, 2], [True] * 3, 1, 1)
        assert len(grants) == 3

    def test_grants_feasible(self):
        grants, _ = bfa_fast([1, 2, 0, 1, 1], [True, True, False, True, True], 1, 1)
        channels = [g.channel for g in grants]
        assert len(set(channels)) == len(channels)
        assert 2 not in channels
        scheme = CircularConversion(5, 1, 1)
        for g in grants:
            assert scheme.can_convert(g.wavelength, g.channel)


class TestScheduler:
    def test_scheme_gate(self, paper_noncircular_rg):
        with pytest.raises(InvalidParameterError, match="circular"):
            BreakFirstAvailableScheduler().schedule(paper_noncircular_rg)

    def test_accepts_full_range_circular(self):
        rg = RequestGraph(FullRangeConversion(4), [1, 1, 1, 1])
        assert BreakFirstAvailableScheduler().schedule(rg).n_granted == 4

    def test_paper_figure4(self, paper_circular_rg):
        res = BreakFirstAvailableScheduler().schedule(paper_circular_rg)
        assert res.n_granted == 6
        assert res.n_rejected == 1

    def test_stats_counts_reduced_graphs(self, paper_circular_rg):
        res = BreakFirstAvailableScheduler().schedule(paper_circular_rg)
        assert 1 <= res.stats["reduced_graphs"] <= 3  # early exit allowed

    @settings(max_examples=150, deadline=None)
    @given(circular_instances())
    def test_theorem2_optimality(self, rg):
        """BFA cardinality == Hopcroft–Karp on every circular instance —
        including availability masks and d == k."""
        res = BreakFirstAvailableScheduler().schedule(rg)
        opt = HopcroftKarpScheduler().schedule(rg)
        assert res.n_granted == opt.n_granted
        assert_maximum_schedule(rg, res)

    @settings(max_examples=100, deadline=None)
    @given(circular_instances(max_k=9))
    def test_fast_equals_reference_cardinality(self, rg):
        fast = BreakFirstAvailableScheduler().schedule(rg)
        ref = BreakFirstAvailableReferenceScheduler().schedule(rg)
        assert fast.n_granted == ref.n_granted

    @settings(max_examples=80, deadline=None)
    @given(circular_instances())
    def test_schedule_always_feasible(self, rg):
        res = BreakFirstAvailableScheduler().schedule(rg)
        channels = [g.channel for g in res.grants]
        assert len(set(channels)) == len(channels)
        for g in res.grants:
            assert rg.available[g.channel]
            assert rg.scheme.can_convert(g.wavelength, g.channel)


class TestReferenceScheduler:
    def test_paper_figure4(self, paper_circular_rg):
        res = BreakFirstAvailableReferenceScheduler().schedule(paper_circular_rg)
        assert res.n_granted == 6

    def test_no_requests(self, paper_circular_scheme):
        rg = RequestGraph(paper_circular_scheme, [0] * 6)
        res = BreakFirstAvailableReferenceScheduler().schedule(rg)
        assert res.n_granted == 0
        assert res.stats["reduced_graphs"] == 0

    def test_scheme_gate(self, paper_noncircular_rg):
        with pytest.raises(InvalidParameterError):
            BreakFirstAvailableReferenceScheduler().schedule(paper_noncircular_rg)


class TestAsymmetricReach:
    @pytest.mark.parametrize("e,f", [(0, 2), (2, 0), (3, 1), (0, 0)])
    def test_optimal(self, e, f, rng):
        hk = HopcroftKarpScheduler()
        bfa = BreakFirstAvailableScheduler()
        for _ in range(40):
            k = int(rng.integers(max(2, e + f + 1), 12))
            vec = rng.integers(0, 3, size=k).tolist()
            avail = (rng.random(k) > 0.25).tolist()
            rg = RequestGraph(CircularConversion(k, e, f), vec, avail)
            assert bfa.schedule(rg).n_granted == hk.schedule(rg).n_granted
