"""Crash-consistent recovery: the kill-at-every-tick equivalence gate.

The durability contract (``docs/ROBUSTNESS.md``, "Durability & recovery")
is that a shard rebuilt from *latest valid snapshot + deterministic journal
replay* is **bit-identical** to one that never crashed.  The main test here
enforces exactly that, the hard way: for every tick boundary of a reference
run, kill **all** shards at that boundary, recover them from durable state,
finish the run, and require

* the same outcome for every submitted request (grants with the same
  channel and slot, rejections with the same reason and slot),
* the same final ``busy[]`` residuals on every shard,
* the same grant-path telemetry counters,

for both conversion types and multi-slot durations.  The rest of the file
covers the snapshot codec, recovery from a fresh process over the file
backend, torn journal tails, and the queue cross-check defect detector.
"""

import asyncio

import pytest

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.distributed import SlotRequest
from repro.core.first_available import FirstAvailableScheduler
from repro.core.policies import RandomPolicy
from repro.errors import DurabilityError, InvalidParameterError
from repro.graphs.conversion import CircularConversion, NonCircularConversion
from repro.service import (
    DurabilityConfig,
    Rejected,
    SchedulingService,
    ServiceGrant,
)
from repro.service.journal import JournalRecord, RecordType
from repro.service.queue import OverflowPolicy
from repro.service.durability import replay_journal
from repro.service.snapshot import (
    FileSnapshotStore,
    MemorySnapshotStore,
    ShardSnapshot,
    decode_snapshot,
    encode_snapshot,
)
from repro.util.rng import make_rng

N_FIBERS = 3
K = 6
N_SLOTS = 12
SNAPSHOT_INTERVAL = 4

#: The grant-path counters that must be bit-identical across a crash.
EQUIV_COUNTERS = (
    "server.submitted",
    "server.granted",
    "server.rejected.contention",
    "server.rejected.source_blocked",
    "server.dropped",
    "server.rejected.queue_full",
    "server.timed_out",
    "server.shutdown",
)

CASES = [
    pytest.param(
        CircularConversion(K, 1, 1), BreakFirstAvailableScheduler, id="bfa"
    ),
    pytest.param(
        NonCircularConversion(K, 1, 1), FirstAvailableScheduler, id="fa"
    ),
]


def run(coro):
    return asyncio.run(coro)


def build_schedule(seed=11, n_slots=N_SLOTS, load=0.8, max_duration=3):
    """A deterministic multi-slot request schedule, computed once so the
    baseline and every crash run submit byte-identical traffic."""
    rng = make_rng(seed)
    schedule = []
    for _slot in range(n_slots):
        slot_requests = []
        for i in range(N_FIBERS):
            for w in range(K):
                if rng.random() < load:
                    slot_requests.append(
                        SlotRequest(
                            i,
                            w,
                            int(rng.integers(N_FIBERS)),
                            duration=int(rng.integers(1, max_duration + 1)),
                        )
                    )
        schedule.append(slot_requests)
    return schedule


def make_service(scheme, scheduler_cls, **kwargs):
    kwargs.setdefault(
        "durability", DurabilityConfig(snapshot_interval=SNAPSHOT_INTERVAL)
    )
    kwargs.setdefault("max_batch_per_tick", 2)  # forces queue carryover
    return SchedulingService(
        N_FIBERS,
        scheme,
        scheduler_cls(),
        policy=RandomPolicy(seed=7),
        **kwargs,
    )


async def drive(service, schedule, crash_ticks=()):
    """Run the schedule, killing + recovering every shard at each boundary
    in ``crash_ticks``.  Returns (outcomes, recovery states)."""
    futures = []
    states = []
    for slot, slot_requests in enumerate(schedule):
        if slot in crash_ticks:
            for o in range(N_FIBERS):
                service.shards[o].crash()
            for o in range(N_FIBERS):
                states.append(service.recover_shard(o))
        for r in slot_requests:
            futures.append(service.submit_nowait(r))
        await service.tick()
    await service.drain()
    return list(await asyncio.gather(*futures)), states


def counters_of(service):
    counters = service.telemetry.snapshot()["counters"]
    return {name: counters.get(name, 0) for name in EQUIV_COUNTERS}


class TestKillAtEveryTick:
    @pytest.mark.parametrize("scheme, scheduler_cls", CASES)
    def test_recovered_run_is_bit_identical(self, scheme, scheduler_cls):
        schedule = build_schedule()

        async def baseline():
            service = make_service(scheme, scheduler_cls)
            outcomes, _ = await drive(service, schedule)
            return (
                outcomes,
                [s.busy_snapshot() for s in service.shards],
                counters_of(service),
            )

        base_outcomes, base_busy, base_counters = run(baseline())
        assert any(isinstance(o, ServiceGrant) for o in base_outcomes)
        assert any(
            isinstance(o, ServiceGrant) and o.request.duration > 1
            for o in base_outcomes
        ), "schedule must exercise multi-slot connections"

        for crash_tick in range(N_SLOTS):

            async def crashed():
                service = make_service(scheme, scheduler_cls)
                outcomes, states = await drive(
                    service, schedule, crash_ticks=(crash_tick,)
                )
                return (
                    outcomes,
                    [s.busy_snapshot() for s in service.shards],
                    counters_of(service),
                    states,
                )

            outcomes, busy, counters, states = run(crashed())
            label = f"crash at tick {crash_tick}"
            assert outcomes == base_outcomes, label
            assert busy == base_busy, label
            assert counters == base_counters, label
            # Recovery provenance: cold is only legitimate before anything
            # was ever journaled; once a snapshot exists it anchors replay.
            for state in states:
                assert state.tick == crash_tick, label
                if crash_tick == 0:
                    assert state.source == "cold", label
                else:
                    assert state.source != "cold", label
                if crash_tick > SNAPSHOT_INTERVAL:
                    assert state.source == "snapshot+journal", label
                    assert state.snapshot_tick is not None

    @pytest.mark.parametrize("scheme, scheduler_cls", CASES[:1])
    def test_equivalence_survives_drop_oldest_evictions(
        self, scheme, scheduler_cls
    ):
        """The WAL's predicted-eviction path (plan_offer) must replay too."""
        schedule = build_schedule(seed=29, load=0.95)
        kwargs = dict(
            queue_capacity=2,
            overflow=OverflowPolicy.DROP_OLDEST,
            max_batch_per_tick=1,
        )

        async def go(crash_ticks):
            service = make_service(scheme, scheduler_cls, **kwargs)
            outcomes, _ = await drive(service, schedule, crash_ticks)
            return outcomes, [s.busy_snapshot() for s in service.shards]

        base = run(go(()))
        assert any(
            isinstance(o, Rejected) for o in base[0]
        ), "overflow pressure never materialized"
        for crash_tick in (1, 5, 9):
            assert run(go((crash_tick,))) == base, f"crash at {crash_tick}"


class TestFileBackendRecovery:
    def _config(self, tmp_path):
        return DurabilityConfig(
            snapshot_interval=SNAPSHOT_INTERVAL,
            backend="file",
            directory=tmp_path,
        )

    def test_fresh_process_recovers_from_the_directory(self, tmp_path):
        """Simulated process death: a brand-new service over the same
        directory rebuilds each shard's exact pre-death state."""
        scheme = CircularConversion(K, 1, 1)
        schedule = build_schedule(seed=3, n_slots=7)

        async def first_life():
            service = make_service(
                scheme,
                BreakFirstAvailableScheduler,
                durability=self._config(tmp_path),
            )
            await drive(service, schedule)
            busy = [s.busy_snapshot() for s in service.shards]
            slot = service.slot
            # Process dies: no stop(), just the file handles closing.
            service.durability.close()
            return busy, slot

        busy_at_death, slot_at_death = run(first_life())
        assert slot_at_death >= len(schedule)

        async def second_life():
            service = make_service(
                scheme,
                BreakFirstAvailableScheduler,
                durability=self._config(tmp_path),
            )
            states = [service.recover_shard(o) for o in range(N_FIBERS)]
            busy = [s.busy_snapshot() for s in service.shards]
            service.durability.close()
            return states, busy

        states, busy = run(second_life())
        assert busy == busy_at_death
        for state in states:
            assert state.tick == slot_at_death
            assert state.source == "snapshot+journal"
            assert state.queue == ()

    def test_torn_journal_tail_is_tolerated(self, tmp_path):
        scheme = CircularConversion(K, 1, 1)
        schedule = build_schedule(seed=5, n_slots=6)

        async def first_life():
            service = make_service(
                scheme,
                BreakFirstAvailableScheduler,
                durability=self._config(tmp_path),
            )
            await drive(service, schedule)
            busy = [s.busy_snapshot() for s in service.shards]
            service.durability.close()
            return busy

        busy_at_death = run(first_life())
        # Power loss mid-append: garbage bytes at one journal's tail.
        wal = tmp_path / "shard-0000.wal"
        assert wal.exists()
        with open(wal, "ab") as fh:
            fh.write(b"\x00\x01half-a-record")

        async def second_life():
            service = make_service(
                scheme,
                BreakFirstAvailableScheduler,
                durability=self._config(tmp_path),
            )
            state = service.recover_shard(0)
            counters = service.telemetry.snapshot()["counters"]
            busy = service.shards[0].busy_snapshot()
            service.durability.close()
            return state, busy, counters

        state, busy, counters = run(second_life())
        assert busy == busy_at_death[0]
        assert state.torn_tail
        assert counters["durability.torn_tails"] == 1

    def test_corrupt_latest_snapshot_falls_back_to_older(self, tmp_path):
        scheme = CircularConversion(K, 1, 1)
        schedule = build_schedule(seed=9, n_slots=9)  # snapshots at 4 and 8

        async def first_life():
            service = make_service(
                scheme,
                BreakFirstAvailableScheduler,
                durability=self._config(tmp_path),
            )
            await drive(service, schedule)
            busy = [s.busy_snapshot() for s in service.shards]
            service.durability.close()
            return busy, service.slot

        busy_at_death, slot_at_death = run(first_life())
        snaps = sorted(tmp_path.glob("shard-0000.tick-*.snap"))
        assert len(snaps) == 2
        older_tick = int(snaps[0].stem.rsplit("tick-", 1)[1])
        snaps[-1].write_bytes(b"RSNPgarbage")  # newest snapshot torn on disk

        async def second_life():
            service = make_service(
                scheme,
                BreakFirstAvailableScheduler,
                durability=self._config(tmp_path),
            )
            state = service.recover_shard(0)
            busy = service.shards[0].busy_snapshot()
            service.durability.close()
            return state, busy

        state, busy = run(second_life())
        # The older valid snapshot anchors a longer replay; same end state.
        assert busy == busy_at_death[0]
        assert state.tick == slot_at_death
        assert state.snapshot_tick == older_tick


class TestCrossCheck:
    def test_journal_queue_disagreement_raises(self):
        """A journal that disagrees with the surviving live queue is a
        crash-consistency defect, not a degraded mode."""

        async def go():
            service = make_service(
                CircularConversion(K, 1, 1), BreakFirstAvailableScheduler
            )
            await service.tick()
            # Forge an ACCEPT the live queue never saw.
            service.durability.journal(0).append(
                JournalRecord(RecordType.ACCEPT, 1, (0, 0, 0, 1, 0))
            )
            service.shards[0].crash()
            with pytest.raises(DurabilityError):
                service.recover_shard(0)

        run(go())

    def test_recover_shard_requires_durability(self):
        async def go():
            service = SchedulingService(
                N_FIBERS,
                CircularConversion(K, 1, 1),
                BreakFirstAvailableScheduler(),
                durability=False,
            )
            assert service.durability is None
            with pytest.raises(InvalidParameterError):
                service.recover_shard(0)

        run(go())


class TestSnapshotCodec:
    def _snapshot(self):
        return ShardSnapshot(
            shard=2,
            tick=40,
            busy=(0, 3, 1, 0, 2, 0),
            queue=((0, 1, 2, 3, 0, 0), (2, 5, 2, 1, 1, 4)),
            policy_state={"pointers": [[2, 1, 0]]},
        )

    def test_round_trip(self):
        snap = self._snapshot()
        assert decode_snapshot(encode_snapshot(snap)) == snap

    def test_round_trip_empty(self):
        snap = ShardSnapshot(shard=0, tick=0, busy=(0,) * K)
        assert decode_snapshot(encode_snapshot(snap)) == snap

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda b: b[:5],
            lambda b: b"XXXX" + b[4:],
            lambda b: b[:-3],
            lambda b: b[:-1] + bytes([b[-1] ^ 0xFF]),
            lambda b: b"",
        ],
        ids=["short", "magic", "truncated", "bitflip", "empty"],
    )
    def test_corruption_raises(self, mutate):
        blob = encode_snapshot(self._snapshot())
        with pytest.raises(DurabilityError):
            decode_snapshot(mutate(blob))

    def test_memory_store_latest_skips_corrupt(self):
        store = MemorySnapshotStore()
        good = ShardSnapshot(shard=1, tick=8, busy=(1, 0, 0, 0, 0, 2))
        store.save(good)
        store.save(ShardSnapshot(shard=1, tick=16, busy=(0,) * K))
        store._blobs[1][-1] = (16, b"RSNPtorn")
        assert store.latest(1) == good
        assert store.ticks(1) == (8, 16)
        store.prune(1, retain=1)
        assert store.ticks(1) == (16,)

    def test_file_store_prune_and_ordering(self, tmp_path):
        store = FileSnapshotStore(tmp_path)
        for tick in (4, 8, 12):
            store.save(ShardSnapshot(shard=0, tick=tick, busy=(tick,)))
        assert store.ticks(0) == (4, 8, 12)
        assert store.latest(0).tick == 12
        store.prune(0, retain=2)
        assert store.ticks(0) == (8, 12)
        # Other shards' files are untouched namespaces.
        assert store.latest(3) is None


class TestTenantBackCompat:
    """Pre-tenant durable state must recover on current code: v1 snapshots
    and 5-value ACCEPT records both surface widened with tenant 0."""

    def test_v1_snapshot_decodes_with_tenant_zero(self):
        import json
        import struct
        import zlib

        from repro.service import snapshot as snap_mod

        busy = (0, 2, 0, 1, 0, 0)
        queue_v1 = ((0, 1, 2, 3, 0), (2, 5, 2, 1, 1))  # 5 ints: no tenant
        policy = json.dumps(None).encode("utf-8")
        body = snap_mod._BODY_HEAD.pack(1, 7, len(busy), len(queue_v1), len(policy))
        body += struct.pack(f"!{len(busy)}q", *busy)
        for entry in queue_v1:
            body += struct.pack("!5q", *entry)
        body += policy
        blob = (
            snap_mod._PREFIX.pack(snap_mod._MAGIC, 1, len(body), zlib.crc32(body))
            + body
        )
        snap = decode_snapshot(blob)
        assert snap.shard == 1 and snap.tick == 7 and snap.busy == busy
        assert snap.queue == tuple(entry + (0,) for entry in queue_v1)

    def test_unknown_snapshot_version_rejected(self):
        import struct
        import zlib

        from repro.service import snapshot as snap_mod

        body = snap_mod._BODY_HEAD.pack(0, 0, 0, 0, 4) + b"null"
        blob = (
            snap_mod._PREFIX.pack(snap_mod._MAGIC, 9, len(body), zlib.crc32(body))
            + body
        )
        with pytest.raises(DurabilityError):
            decode_snapshot(blob)

    def test_five_value_accept_replays_with_tenant_zero(self):
        """A journal written before the tenant column replays cleanly."""
        records = [
            JournalRecord(RecordType.ACCEPT, 0, (0, 1, 2, 3, 0)),
            JournalRecord(RecordType.ACCEPT, 0, (1, 4, 2, 1, 1, 9)),
        ]
        _, queue, _, replayed = replay_journal(records, None, K)
        assert replayed == 2
        assert queue == ((0, 1, 2, 3, 0, 0), (1, 4, 2, 1, 1, 9))

    def test_evict_record_replays_the_shed(self):
        """EVICT(i) must reproduce the admission decision on replay: the
        evicted entry is gone, later entries keep their order."""
        records = [
            JournalRecord(RecordType.ACCEPT, 0, (0, 1, 0, 2, 0, 5)),
            JournalRecord(RecordType.ACCEPT, 0, (1, 2, 0, 1, 0, 6)),
            JournalRecord(RecordType.EVICT, 1, (0,)),
            JournalRecord(RecordType.ACCEPT, 1, (2, 3, 0, 1, 1, 7)),
        ]
        _, queue, _, _ = replay_journal(records, None, K)
        assert queue == ((1, 2, 0, 1, 0, 6), (2, 3, 0, 1, 1, 7))

    def test_out_of_range_evict_is_ignored(self):
        """Records older than the snapshot are skipped, which can orphan an
        EVICT whose target entry lives inside the snapshot; replay must
        tolerate the dangling index rather than crash."""
        records = [
            JournalRecord(RecordType.EVICT, 0, (3,)),
            JournalRecord(RecordType.ACCEPT, 0, (0, 1, 0, 1, 0, 0)),
        ]
        _, queue, _, _ = replay_journal(records, None, K)
        assert queue == ((0, 1, 0, 1, 0, 0),)

    def test_shard_journal_evict_round_trips_through_codec(self):
        """ShardJournal.evict writes a record that decodes back intact."""
        from repro.service.journal import MemoryJournal, ShardJournal

        backend = MemoryJournal()
        journal = ShardJournal(backend)
        journal.accept(0, SlotRequest(0, 1, 0, 2, 0, 5))
        journal.evict(1, 0)
        records = journal.records()
        assert [r.type for r in records] == [RecordType.ACCEPT, RecordType.EVICT]
        assert records[0].values == (0, 1, 0, 2, 0, 5)
        assert records[1].values == (0,)
