"""Tests for the minimum-converter-stress optimal scheduler."""

import pytest
from hypothesis import given, settings

from repro.core.baseline import HopcroftKarpScheduler
from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.first_available import FirstAvailableScheduler
from repro.core.min_stress import MinStressScheduler, total_stress
from repro.graphs.conversion import FullRangeConversion
from repro.graphs.request_graph import RequestGraph
from tests.conftest import circular_instances, noncircular_instances


class TestBasics:
    def test_empty(self, paper_circular_scheme):
        rg = RequestGraph(paper_circular_scheme, [0] * 6)
        assert MinStressScheduler().schedule(rg).n_granted == 0

    def test_identity_preferred(self, paper_circular_scheme):
        # A single request on λ2 with all channels free: the zero-offset
        # grant (channel 2) must be picked.
        rg = RequestGraph(paper_circular_scheme, [0, 0, 1, 0, 0, 0])
        res = MinStressScheduler().schedule(rg)
        assert res.grants[0].channel == 2

    def test_paper_example_cardinality(self, paper_circular_rg):
        res = MinStressScheduler().schedule(paper_circular_rg)
        assert res.n_granted == 6

    def test_occupied_channel_forces_offset(self, paper_circular_scheme):
        rg = RequestGraph(
            paper_circular_scheme,
            [0, 0, 1, 0, 0, 0],
            [True, True, False, True, True, True],
        )
        res = MinStressScheduler().schedule(rg)
        assert res.n_granted == 1
        assert res.grants[0].channel in (1, 3)  # |offset| == 1 either way

    def test_full_range_supported(self):
        rg = RequestGraph(FullRangeConversion(4), [2, 2, 0, 0])
        res = MinStressScheduler().schedule(rg)
        assert res.n_granted == 4

    def test_total_stress_helper(self, paper_circular_rg):
        res = MinStressScheduler().schedule(paper_circular_rg)
        assert total_stress(paper_circular_rg, res) >= 0


class TestOptimality:
    @settings(max_examples=80, deadline=None)
    @given(circular_instances(max_k=9))
    def test_always_maximum_circular(self, rg):
        ms = MinStressScheduler().schedule(rg)
        assert ms.n_granted == HopcroftKarpScheduler().schedule(rg).n_granted

    @settings(max_examples=60, deadline=None)
    @given(noncircular_instances(max_k=9))
    def test_always_maximum_noncircular(self, rg):
        ms = MinStressScheduler().schedule(rg)
        assert ms.n_granted == HopcroftKarpScheduler().schedule(rg).n_granted

    @settings(max_examples=80, deadline=None)
    @given(circular_instances(max_k=9))
    def test_stress_never_exceeds_other_optimal_solvers(self, rg):
        ms = MinStressScheduler().schedule(rg)
        s_ms = total_stress(rg, ms)
        for other in (HopcroftKarpScheduler(), BreakFirstAvailableScheduler()):
            s_other = total_stress(rg, other.schedule(rg))
            assert s_ms <= s_other

    @settings(max_examples=40, deadline=None)
    @given(noncircular_instances(max_k=9))
    def test_stress_never_exceeds_fa(self, rg):
        ms = MinStressScheduler().schedule(rg)
        fa = FirstAvailableScheduler().schedule(rg)
        assert ms.n_granted == fa.n_granted
        assert total_stress(rg, ms) <= total_stress(rg, fa)


class TestStrictImprovementExists:
    def test_bfa_can_be_strictly_worse(self):
        """A case where BFA's maximum matching retunes more than needed:
        at the paper's running example the min-stress solution exists with
        less total offset than at least one optimal solver's choice."""
        found = False
        from repro.analysis.instances import random_circular_instance
        from repro.util.rng import make_rng

        rng = make_rng(9)
        ms = MinStressScheduler()
        bfa = BreakFirstAvailableScheduler()
        for _ in range(60):
            rg = random_circular_instance(10, 2, 2, load=0.8, rng=rng)
            if total_stress(rg, ms.schedule(rg)) < total_stress(
                rg, bfa.schedule(rg)
            ):
                found = True
                break
        assert found
