"""Tests for the switching fabric and the end-to-end Fig. 1 datapath."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.distributed import DistributedScheduler, SlotRequest
from repro.errors import HardwareModelError
from repro.graphs.conversion import CircularConversion
from repro.interconnect.fabric import SwitchingFabric
from repro.interconnect.interconnect import WDMInterconnect


@pytest.fixture
def scheme():
    return CircularConversion(6, 1, 1)


@pytest.fixture
def fabric(scheme):
    return SwitchingFabric(4, scheme)


class TestFabric:
    def test_connect_and_lookup(self, fabric):
        fabric.connect(0, 1, 2, 2)
        assert fabric.output_of(0, 1) == (2, 2)
        assert fabric.input_of(2, 2) == (0, 1)
        assert fabric.n_closed == 1

    def test_conversion_range_wiring(self, fabric):
        with pytest.raises(HardwareModelError, match="no crosspoint"):
            fabric.connect(0, 0, 1, 3)  # λ0 cannot reach channel 3

    def test_input_drives_once(self, fabric):
        fabric.connect(0, 1, 2, 2)
        with pytest.raises(HardwareModelError, match="already drives"):
            fabric.connect(0, 1, 3, 1)

    def test_output_driven_once(self, fabric):
        fabric.connect(0, 1, 2, 2)
        with pytest.raises(HardwareModelError, match="already driven"):
            fabric.connect(1, 1, 2, 2)

    def test_disconnect(self, fabric):
        fabric.connect(0, 1, 2, 2)
        fabric.disconnect_input(0, 1)
        assert fabric.output_of(0, 1) is None
        assert fabric.input_of(2, 2) is None
        fabric.disconnect_input(0, 1)  # no-op

    def test_clear(self, fabric):
        fabric.connect(0, 1, 2, 2)
        fabric.clear()
        assert fabric.n_closed == 0

    def test_crosspoints_per_input(self, fabric):
        assert fabric.crosspoints_per_input() == 4 * 3  # N*d

    def test_iteration_sorted(self, fabric):
        fabric.connect(1, 0, 0, 0)
        fabric.connect(0, 0, 1, 1)
        states = list(fabric)
        assert states[0].input_fiber == 0


class TestWDMInterconnect:
    def test_route_simple_slot(self, scheme):
        ds = DistributedScheduler(4, scheme, BreakFirstAvailableScheduler())
        reqs = [SlotRequest(0, 0, 1), SlotRequest(1, 0, 1), SlotRequest(2, 3, 2)]
        schedule = ds.schedule_slot(reqs)
        ic = WDMInterconnect(4, scheme)
        routed = ic.route_schedule(schedule)
        assert len(routed) == schedule.n_granted
        # Unicast: each signal reached its requested output fiber.
        for r in routed:
            match = [
                g for g in schedule.granted
                if (g.request.input_fiber, g.request.wavelength)
                == (r.input_fiber, r.input_wavelength)
            ]
            assert len(match) == 1
            assert match[0].request.output_fiber == r.output_fiber
            assert match[0].channel == r.output_channel

    def test_configure_rejects_conflicts(self, scheme):
        from repro.core.distributed import GrantedRequest

        ic = WDMInterconnect(2, scheme)
        g1 = GrantedRequest(SlotRequest(0, 0, 0), channel=1)
        g2 = GrantedRequest(SlotRequest(1, 1, 0), channel=1)
        with pytest.raises(HardwareModelError):
            ic.configure([g1, g2])

    def test_propagate_checks_fiber_count(self, scheme):
        ic = WDMInterconnect(2, scheme)
        with pytest.raises(HardwareModelError, match="input fibers"):
            ic.propagate([[]])

    def test_rejected_signals_dropped(self, scheme):
        from repro.interconnect.components import OpticalSignal

        ic = WDMInterconnect(2, scheme)
        ic.fabric.clear()
        # No crosspoints configured: the signal vanishes (no buffers).
        routed = ic.propagate(
            [[OpticalSignal(0, source=(0, 0))], []]
        )
        assert routed == []

    def test_dimensions(self, scheme):
        ic = WDMInterconnect(3, scheme)
        assert ic.k == 6
        assert ic.n_input_channels == 18

    @settings(max_examples=30, deadline=None)
    @given(mask=st.integers(0, 2 ** 18 - 1))
    def test_any_schedule_is_physically_realizable(self, mask):
        """Fuzz: whatever the distributed scheduler outputs can be routed by
        the physical datapath without interference."""
        n = 3
        scheme = CircularConversion(6, 1, 1)
        reqs = [
            SlotRequest(i, w, (i * 5 + w) % n)
            for i in range(n)
            for w in range(scheme.k)
            if (mask >> (i * scheme.k + w)) & 1
        ]
        ds = DistributedScheduler(n, scheme, BreakFirstAvailableScheduler())
        schedule = ds.schedule_slot(reqs)
        ic = WDMInterconnect(n, scheme)
        routed = ic.route_schedule(schedule)
        assert len(routed) == schedule.n_granted
