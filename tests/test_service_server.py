"""Tests for the asyncio scheduling service: grants, timeouts, backpressure,
shard-state carryover, execution modes, and telemetry conservation."""

import asyncio

import pytest

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.distributed import SlotRequest
from repro.core.first_available import FirstAvailableScheduler
from repro.errors import InvalidParameterError, SimulationError
from repro.graphs.conversion import CircularConversion, NonCircularConversion
from repro.service import (
    ExecutionMode,
    LoadGenerator,
    OverflowPolicy,
    Rejected,
    RejectReason,
    SchedulingClient,
    SchedulingService,
    ServiceGrant,
)
from repro.sim.traffic import BernoulliTraffic


def run(coro):
    return asyncio.run(coro)


def make_service(n_fibers=4, k=6, **kwargs):
    return SchedulingService(
        n_fibers,
        CircularConversion(k, 1, 1),
        BreakFirstAvailableScheduler(),
        **kwargs,
    )


class TestSubmitAndTick:
    def test_grant_resolves_future(self):
        async def go():
            service = make_service()
            future = service.submit_nowait(SlotRequest(0, 2, 3))
            assert not future.done()
            await service.tick()
            return await future

        outcome = run(go())
        assert isinstance(outcome, ServiceGrant)
        assert outcome.slot == 0
        assert outcome.request.wavelength == 2

    def test_contention_rejects_loser(self):
        async def go():
            # k=1: a single channel, two same-wavelength contenders.
            service = SchedulingService(
                2,
                NonCircularConversion(1, 0, 0),
                FirstAvailableScheduler(),
            )
            f0 = service.submit_nowait(SlotRequest(0, 0, 0))
            f1 = service.submit_nowait(SlotRequest(1, 0, 0))
            await service.tick()
            return await f0, await f1

        o0, o1 = run(go())
        # FixedPriorityPolicy: lowest input fiber wins.
        assert isinstance(o0, ServiceGrant)
        assert isinstance(o1, Rejected)
        assert o1.reason is RejectReason.CONTENTION

    def test_invalid_request_raises_immediately(self):
        async def go():
            service = make_service()
            with pytest.raises(InvalidParameterError):
                service.submit_nowait(SlotRequest(99, 0, 0))
            with pytest.raises(InvalidParameterError):
                service.submit_nowait(SlotRequest(0, 0, 0), timeout=-1.0)

        run(go())

    def test_client_submit_many(self):
        async def go():
            service = make_service()
            client = SchedulingClient(service)
            task = asyncio.ensure_future(
                client.submit_many([SlotRequest(i, i, 0) for i in range(3)])
            )
            await asyncio.sleep(0)
            await service.tick()
            return await task

        outcomes = run(go())
        assert len(outcomes) == 3
        assert all(isinstance(o, ServiceGrant) for o in outcomes)


class TestTimeouts:
    def test_expired_deadline_times_out_at_tick(self):
        async def go():
            service = make_service()
            future = service.submit_nowait(SlotRequest(0, 0, 0), timeout=0.0)
            await service.tick()
            return await future

        outcome = run(go())
        assert isinstance(outcome, Rejected)
        assert outcome.reason is RejectReason.TIMED_OUT

    def test_queued_request_times_out_when_batch_cap_delays_it(self):
        async def go():
            # Batch cap 1: the second request waits a tick and its 0-second
            # deadline expires before it is ever scheduled.
            service = make_service(max_batch_per_tick=1)
            f1 = service.submit_nowait(SlotRequest(0, 0, 0))
            f2 = service.submit_nowait(SlotRequest(1, 1, 0), timeout=0.0)
            await service.tick()
            assert (await f1).channel is not None
            assert not f2.done()
            await service.tick()
            return await f2

        outcome = run(go())
        assert outcome.reason is RejectReason.TIMED_OUT
        assert outcome.slot == 1

    def test_no_timeout_waits_indefinitely(self):
        async def go():
            service = make_service(max_batch_per_tick=1)
            service.submit_nowait(SlotRequest(0, 0, 0))
            future = service.submit_nowait(SlotRequest(1, 1, 0))
            await service.tick()
            assert not future.done()
            await service.tick()
            return await future

        assert isinstance(run(go()), ServiceGrant)


class TestBackpressure:
    def test_reject_policy_fails_fast(self):
        async def go():
            service = make_service(
                queue_capacity=1, overflow=OverflowPolicy.REJECT
            )
            f1 = service.submit_nowait(SlotRequest(0, 0, 0))
            f2 = service.submit_nowait(SlotRequest(1, 1, 0))
            assert f2.done()  # rejected synchronously, before any tick
            await service.tick()
            return await f1, await f2

        o1, o2 = run(go())
        assert isinstance(o1, ServiceGrant)
        assert o2.reason is RejectReason.QUEUE_FULL

    def test_drop_tail_drops_newcomer(self):
        async def go():
            service = make_service(
                queue_capacity=1, overflow=OverflowPolicy.DROP_TAIL
            )
            f1 = service.submit_nowait(SlotRequest(0, 0, 0))
            f2 = service.submit_nowait(SlotRequest(1, 1, 0))
            await service.tick()
            return await f1, await f2

        o1, o2 = run(go())
        assert isinstance(o1, ServiceGrant)
        assert o2.reason is RejectReason.DROPPED

    def test_drop_oldest_evicts_head(self):
        async def go():
            service = make_service(
                queue_capacity=1, overflow=OverflowPolicy.DROP_OLDEST
            )
            f1 = service.submit_nowait(SlotRequest(0, 0, 0))
            f2 = service.submit_nowait(SlotRequest(1, 1, 0))
            assert f1.done()  # evicted to make room
            await service.tick()
            return await f1, await f2

        o1, o2 = run(go())
        assert o1.reason is RejectReason.DROPPED
        assert isinstance(o2, ServiceGrant)

    def test_overflow_is_per_shard(self):
        async def go():
            service = make_service(
                queue_capacity=1, overflow=OverflowPolicy.REJECT
            )
            # Different output fibers → different shards → no overflow.
            futures = [
                service.submit_nowait(SlotRequest(i, 0, i)) for i in range(4)
            ]
            await service.tick()
            return await asyncio.gather(*futures)

        assert all(isinstance(o, ServiceGrant) for o in run(go()))


class TestShardStateCarryover:
    def test_multislot_grant_holds_channel_across_ticks(self):
        async def go():
            # k=1, d=1: one output channel; a duration-3 grant must block
            # it for exactly ticks 1 and 2 and free it at tick 3.
            service = SchedulingService(
                2, NonCircularConversion(1, 0, 0), FirstAvailableScheduler()
            )
            f0 = service.submit_nowait(SlotRequest(0, 0, 0, duration=3))
            await service.tick()
            assert isinstance(await f0, ServiceGrant)
            outcomes = []
            for _ in range(3):
                f = service.submit_nowait(SlotRequest(1, 0, 0))
                await service.tick()
                outcomes.append(await f)
            return outcomes

        o1, o2, o3 = run(go())
        assert o1.reason is RejectReason.CONTENTION
        assert o2.reason is RejectReason.CONTENTION
        assert isinstance(o3, ServiceGrant)

    def test_input_channel_blocked_at_source(self):
        async def go():
            # Same input channel (fiber 0, λ0) mid-connection: a new request
            # from it — even to a different output — is blocked at source.
            service = make_service()
            f0 = service.submit_nowait(SlotRequest(0, 0, 0, duration=3))
            await service.tick()
            assert isinstance(await f0, ServiceGrant)
            f1 = service.submit_nowait(SlotRequest(0, 0, 2))
            await service.tick()
            return await f1

        outcome = run(go())
        assert outcome.reason is RejectReason.SOURCE_BLOCKED

    def test_duplicate_input_channel_same_tick(self):
        async def go():
            service = make_service()
            f0 = service.submit_nowait(SlotRequest(0, 0, 1))
            f1 = service.submit_nowait(SlotRequest(0, 0, 2))
            await service.tick()
            return await f0, await f1

        o0, o1 = run(go())
        assert isinstance(o0, ServiceGrant)
        assert o1.reason is RejectReason.SOURCE_BLOCKED


class TestExecutionModes:
    def _drive(self, mode, scheme, scheduler):
        async def go():
            service = SchedulingService(
                8, scheme, scheduler, mode=mode, max_workers=4
            )
            gen = LoadGenerator(
                service, BernoulliTraffic(8, scheme.k, load=0.85), seed=99
            )
            report = await gen.run(30)
            counters = service.telemetry.counters("server.")
            await service.stop()
            return report, counters

        return run(go())

    def test_threads_matches_inline(self):
        scheme = CircularConversion(12, 1, 1)
        r_inline, _ = self._drive(
            ExecutionMode.INLINE, scheme, BreakFirstAvailableScheduler()
        )
        r_threads, _ = self._drive(
            ExecutionMode.THREADS, scheme, BreakFirstAvailableScheduler()
        )
        assert r_inline.offered == r_threads.offered
        assert r_inline.granted == r_threads.granted
        assert r_inline.rejected_contention == r_threads.rejected_contention

    def test_vectorized_matches_inline_bfa(self):
        scheme = CircularConversion(12, 1, 1)
        r_inline, _ = self._drive(
            ExecutionMode.INLINE, scheme, BreakFirstAvailableScheduler()
        )
        r_vec, _ = self._drive(
            ExecutionMode.VECTORIZED, scheme, BreakFirstAvailableScheduler()
        )
        assert r_inline.granted == r_vec.granted
        assert r_inline.rejected_contention == r_vec.rejected_contention

    def test_vectorized_matches_inline_fa(self):
        scheme = NonCircularConversion(12, 1, 1)
        r_inline, _ = self._drive(
            ExecutionMode.INLINE, scheme, FirstAvailableScheduler()
        )
        r_vec, _ = self._drive(
            ExecutionMode.VECTORIZED, scheme, FirstAvailableScheduler()
        )
        assert r_inline.granted == r_vec.granted
        assert r_inline.rejected_contention == r_vec.rejected_contention

    def test_vectorized_needs_batchable_scheme(self):
        from repro.core.full_range import FullRangeScheduler
        from repro.graphs.conversion import FullRangeConversion

        with pytest.raises(InvalidParameterError):
            SchedulingService(
                2,
                FullRangeConversion(4),
                FullRangeScheduler(),
                mode=ExecutionMode.VECTORIZED,
            )

    def test_vectorized_rejects_priority_classes(self):
        async def go():
            service = SchedulingService(
                2,
                CircularConversion(6, 1, 1),
                BreakFirstAvailableScheduler(),
                mode=ExecutionMode.VECTORIZED,
            )
            # Two shards (outputs 0 and 1) so the batch kernel actually
            # engages — a single-shard tick falls back to the inline path.
            service.submit_nowait(SlotRequest(0, 0, 0, priority=1))
            service.submit_nowait(SlotRequest(1, 0, 1, priority=0))
            with pytest.raises(SimulationError):
                await service.tick()
            await service.stop()

        run(go())


class TestTelemetryConservation:
    def test_counters_partition_offered_load(self):
        async def go():
            service = make_service(
                n_fibers=4,
                k=6,
                queue_capacity=2,
                overflow=OverflowPolicy.DROP_OLDEST,
                max_batch_per_tick=2,
            )
            # Saturating burst: overflow drops, contention losses, and a
            # couple of instant timeouts, followed by a shutdown flush.
            for i in range(4):
                for w in range(6):
                    service.submit_nowait(
                        SlotRequest(i, w, (i + w) % 4),
                        timeout=0.0 if (i + w) % 5 == 0 else None,
                    )
            await service.tick()
            for i in range(4):
                service.submit_nowait(SlotRequest(i, 0, 0))
            await service.stop()  # flushes the still-queued requests
            return service.telemetry.counters("server.")

        c = run(go())
        outcomes = (
            c["server.granted"]
            + c["server.rejected.contention"]
            + c["server.rejected.source_blocked"]
            + c["server.rejected.queue_full"]
            + c["server.dropped"]
            + c["server.timed_out"]
            + c["server.shutdown"]
        )
        assert c["server.submitted"] == outcomes
        assert c["server.dropped"] > 0  # the burst did overflow
        assert c["server.shutdown"] > 0  # the flush did happen

    def test_load_generator_report_partitions_offered(self):
        async def go():
            service = make_service(
                n_fibers=4,
                k=8,
                queue_capacity=3,
                overflow=OverflowPolicy.DROP_TAIL,
                max_batch_per_tick=3,
            )
            gen = LoadGenerator(
                service, BernoulliTraffic(4, 8, load=0.9), seed=5
            )
            return await gen.run(40)

        report = run(go())
        assert report.offered == (
            report.granted
            + report.rejected_contention
            + report.rejected_source
            + report.rejected_queue
            + report.dropped
            + report.timed_out
        )
        assert report.granted > 0

    def test_shard_counters_sum_to_server_totals(self):
        async def go():
            service = make_service(n_fibers=3, k=6)
            gen = LoadGenerator(
                service, BernoulliTraffic(3, 6, load=0.8), seed=11
            )
            await gen.run(25)
            return service.telemetry

        t = run(go())
        server = t.counters("server.")
        shard_granted = sum(
            t.counters(f"shard.{o}.granted")[f"shard.{o}.granted"]
            for o in range(3)
        )
        shard_offered = sum(
            t.counters(f"shard.{o}.offered")[f"shard.{o}.offered"]
            for o in range(3)
        )
        assert shard_granted == server["server.granted"]
        assert shard_offered == server["server.submitted"]


class TestLifecycle:
    def test_timer_loop_ticks_and_stops(self):
        async def go():
            service = make_service(tick_interval=0.001)
            service.start()
            future = service.submit_nowait(SlotRequest(0, 0, 0))
            outcome = await asyncio.wait_for(future, timeout=5.0)
            await service.stop()
            ticks = service.telemetry.counters("server.")["server.ticks"]
            return outcome, ticks

        outcome, ticks = run(go())
        assert isinstance(outcome, ServiceGrant)
        assert ticks >= 1

    def test_stop_flushes_with_shutdown(self):
        async def go():
            service = make_service()
            future = service.submit_nowait(SlotRequest(0, 0, 0))
            await service.stop()
            outcome = await future
            with pytest.raises(SimulationError):
                service.submit_nowait(SlotRequest(0, 0, 0))
            with pytest.raises(SimulationError):
                await service.tick()
            return outcome

        outcome = run(go())
        assert outcome.reason is RejectReason.SHUTDOWN

    def test_stop_is_idempotent(self):
        async def go():
            service = make_service()
            await service.stop()
            await service.stop()

        run(go())

    def test_double_start_rejected(self):
        async def go():
            service = make_service(tick_interval=0.001)
            service.start()
            with pytest.raises(SimulationError):
                service.start()
            await service.stop()

        run(go())

    def test_scheduler_factory_gives_each_shard_its_own(self):
        service = SchedulingService(
            3,
            CircularConversion(6, 1, 1),
            scheduler_factory=BreakFirstAvailableScheduler,
        )
        schedulers = {id(s.scheduler) for s in service.shards}
        assert len(schedulers) == 3

    def test_scheduler_args_exclusive(self):
        with pytest.raises(InvalidParameterError):
            SchedulingService(2, CircularConversion(6, 1, 1))
        with pytest.raises(InvalidParameterError):
            SchedulingService(
                2,
                CircularConversion(6, 1, 1),
                BreakFirstAvailableScheduler(),
                scheduler_factory=BreakFirstAvailableScheduler,
            )
