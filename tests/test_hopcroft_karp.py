"""Tests for the from-scratch Hopcroft–Karp implementation (baseline [1])."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.hopcroft_karp import hopcroft_karp


def _nx_maximum(graph: BipartiteGraph) -> int:
    g = nx.Graph()
    left = [("L", a) for a in range(graph.n_left)]
    g.add_nodes_from(left, bipartite=0)
    g.add_nodes_from((("R", b) for b in range(graph.n_right)), bipartite=1)
    for a, b in graph.edges():
        g.add_edge(("L", a), ("R", b))
    if graph.n_left == 0 or graph.n_edges == 0:
        return 0
    matching = nx.bipartite.maximum_matching(g, top_nodes=left)
    return len(matching) // 2


class TestSmallCases:
    def test_empty(self):
        assert len(hopcroft_karp(BipartiteGraph(0, 0))) == 0

    def test_no_edges(self):
        assert len(hopcroft_karp(BipartiteGraph(3, 3))) == 0

    def test_single_edge(self):
        m = hopcroft_karp(BipartiteGraph(1, 1, [(0, 0)]))
        assert m.pairs == frozenset({(0, 0)})

    def test_perfect_matching(self):
        g = BipartiteGraph(3, 3, [(i, j) for i in range(3) for j in range(3)])
        assert len(hopcroft_karp(g)) == 3

    def test_requires_augmenting_chain(self):
        # Greedy lowest-first would match a0-b0 and leave a1 unmatched;
        # HK must find the size-2 matching.
        g = BipartiteGraph(2, 2, [(0, 0), (0, 1), (1, 0)])
        assert len(hopcroft_karp(g)) == 2

    def test_star_graph(self):
        g = BipartiteGraph(5, 1, [(i, 0) for i in range(5)])
        assert len(hopcroft_karp(g)) == 1

    def test_konig_worst_case(self):
        # Two disjoint long alternating chains.
        edges = []
        for i in range(4):
            edges.append((i, i))
            if i + 1 < 4:
                edges.append((i + 1, i))
        g = BipartiteGraph(4, 4, edges)
        assert len(hopcroft_karp(g)) == 4

    def test_matching_is_valid(self):
        g = BipartiteGraph(4, 4, [(0, 1), (1, 1), (1, 2), (2, 0), (3, 2)])
        m = hopcroft_karp(g)
        m.validate_against(g)
        assert m.is_maximum_in(g)

    def test_deterministic(self):
        g = BipartiteGraph(4, 4, [(0, 1), (1, 1), (1, 2), (2, 0), (3, 2)])
        assert hopcroft_karp(g) == hopcroft_karp(g)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("n,m,density", [(5, 5, 0.3), (8, 6, 0.5), (10, 10, 0.2), (12, 7, 0.7)])
    def test_random_graphs(self, n, m, density, rng):
        for _ in range(20):
            edges = [
                (a, b)
                for a in range(n)
                for b in range(m)
                if rng.random() < density
            ]
            g = BipartiteGraph(n, m, edges)
            assert len(hopcroft_karp(g)) == _nx_maximum(g)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            max_size=30,
            unique=True,
        )
    )
    def test_property_cardinality_matches_networkx(self, edges):
        g = BipartiteGraph(8, 8, edges)
        m = hopcroft_karp(g)
        m.validate_against(g)
        assert len(m) == _nx_maximum(g)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            max_size=30,
            unique=True,
        )
    )
    def test_property_berge_certificate(self, edges):
        g = BipartiteGraph(8, 8, edges)
        assert hopcroft_karp(g).is_maximum_in(g)
