"""Tests for validation helpers, RNG utilities and table rendering."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.util.rng import make_rng, spawn_rngs
from repro.util.tables import format_table
from repro.util.validation import (
    check_index,
    check_nonnegative_int,
    check_positive_int,
    check_probability,
)


class TestValidation:
    def test_positive_int_accepts(self):
        assert check_positive_int(3, "x") == 3
        assert check_positive_int(np.int64(5), "x") == 5

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "3", None, True])
    def test_positive_int_rejects(self, bad):
        with pytest.raises(InvalidParameterError):
            check_positive_int(bad, "x")

    def test_nonnegative_int(self):
        assert check_nonnegative_int(0, "x") == 0
        with pytest.raises(InvalidParameterError):
            check_nonnegative_int(-1, "x")

    def test_check_index(self):
        assert check_index(0, 5, "i") == 0
        assert check_index(4, 5, "i") == 4
        with pytest.raises(InvalidParameterError):
            check_index(5, 5, "i")
        with pytest.raises(InvalidParameterError):
            check_index(-1, 5, "i")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        assert check_probability(0, "p") == 0.0
        assert check_probability(1, "p") == 1.0
        with pytest.raises(InvalidParameterError):
            check_probability(1.1, "p")
        with pytest.raises(InvalidParameterError):
            check_probability(-0.1, "p")
        with pytest.raises(InvalidParameterError):
            check_probability(True, "p")

    def test_error_message_names_parameter(self):
        with pytest.raises(InvalidParameterError, match="wavelengths"):
            check_positive_int(-2, "wavelengths")


class TestRng:
    def test_make_rng_from_seed_reproducible(self):
        a = make_rng(7).random(4)
        b = make_rng(7).random(4)
        assert np.allclose(a, b)

    def test_make_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_spawn_rngs_independent_and_reproducible(self):
        fam1 = spawn_rngs(11, 3)
        fam2 = spawn_rngs(11, 3)
        for g1, g2 in zip(fam1, fam2):
            assert np.allclose(g1.random(4), g2.random(4))
        # Streams differ from each other.
        fam3 = spawn_rngs(11, 2)
        assert not np.allclose(fam3[0].random(8), fam3[1].random(8))

    def test_spawn_rngs_rejects_bad_count(self):
        with pytest.raises(InvalidParameterError):
            spawn_rngs(1, 0)


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = out.split("\n")
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        # All rows share the same width.
        assert len({len(line) for line in lines[1:]}) == 1

    def test_bool_rendering(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_float_format(self):
        out = format_table(["x"], [[0.123456]], float_fmt=".2f")
        assert "0.12" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="row 0"):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out
