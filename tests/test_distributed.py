"""Tests for the per-output-fiber distributed scheduling facade."""

import pytest

from repro.core.baseline import HopcroftKarpScheduler
from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.distributed import DistributedScheduler, SlotRequest
from repro.core.policies import RoundRobinPolicy
from repro.errors import InvalidParameterError
from repro.graphs.conversion import CircularConversion


@pytest.fixture
def ds():
    return DistributedScheduler(
        4, CircularConversion(6, 1, 1), BreakFirstAvailableScheduler()
    )


class TestValidation:
    def test_duplicate_input_channel(self, ds):
        reqs = [SlotRequest(0, 1, 2), SlotRequest(0, 1, 3)]
        with pytest.raises(InvalidParameterError, match="two requests"):
            ds.schedule_slot(reqs)

    def test_out_of_range_fiber(self, ds):
        with pytest.raises(InvalidParameterError):
            ds.schedule_slot([SlotRequest(9, 0, 0)])
        with pytest.raises(InvalidParameterError):
            ds.schedule_slot([SlotRequest(0, 0, 9)])

    def test_out_of_range_wavelength(self, ds):
        with pytest.raises(InvalidParameterError):
            ds.schedule_slot([SlotRequest(0, 6, 0)])

    def test_bad_duration(self, ds):
        with pytest.raises(InvalidParameterError):
            ds.schedule_slot([SlotRequest(0, 0, 0, duration=0)])


class TestScheduling:
    def test_empty_slot(self, ds):
        schedule = ds.schedule_slot([])
        assert schedule.n_granted == 0
        assert schedule.n_rejected == 0
        assert schedule.per_output == {}

    def test_no_contention_all_granted(self, ds):
        reqs = [SlotRequest(i, i, i % 4) for i in range(4)]
        schedule = ds.schedule_slot(reqs)
        assert schedule.n_granted == 4
        assert schedule.n_rejected == 0

    def test_partition_by_output(self, ds):
        reqs = [
            SlotRequest(0, 0, 1),
            SlotRequest(1, 0, 1),
            SlotRequest(2, 0, 2),
        ]
        schedule = ds.schedule_slot(reqs)
        assert set(schedule.per_output) == {1, 2}
        assert schedule.per_output[1].n_requested == 2
        assert schedule.per_output[2].n_requested == 1

    def test_grants_reference_real_requests(self, ds):
        reqs = [SlotRequest(i, w, 0) for i in range(4) for w in (0, 3)]
        schedule = ds.schedule_slot(reqs)
        req_set = set(reqs)
        for g in schedule.granted:
            assert g.request in req_set
        # granted + rejected = submitted, no request in both
        assert schedule.n_granted + schedule.n_rejected == len(reqs)
        granted_reqs = {g.request for g in schedule.granted}
        assert granted_reqs.isdisjoint(schedule.rejected)

    def test_channels_disjoint_per_output(self, ds):
        reqs = [SlotRequest(i, w, 0) for i in range(4) for w in range(6)]
        schedule = ds.schedule_slot(reqs)
        channels = [g.channel for g in schedule.granted]
        assert len(channels) == len(set(channels))

    def test_contention_drops_requests(self, ds):
        # 8 same-wavelength requests to one output: window is 3 channels.
        reqs = [SlotRequest(i, 2, 0) for i in range(4)]
        schedule = ds.schedule_slot(reqs)
        assert schedule.n_granted == 3
        assert schedule.n_rejected == 1

    def test_availability_mask(self, ds):
        reqs = [SlotRequest(0, 2, 0)]
        schedule = ds.schedule_slot(
            reqs, availability={0: [True, False, False, False, True, True]}
        )
        assert schedule.n_granted == 0  # λ2's window {1,2,3} all occupied
        schedule2 = ds.schedule_slot(reqs, availability={0: [True] * 6})
        assert schedule2.n_granted == 1

    def test_parallel_equals_sequential(self):
        scheme = CircularConversion(8, 1, 1)
        reqs = [
            SlotRequest(i, w, (i + w) % 5)
            for i in range(5)
            for w in range(8)
            if (i + 2 * w) % 3 != 0
        ]
        seq = DistributedScheduler(
            5, scheme, BreakFirstAvailableScheduler(), parallel=False
        ).schedule_slot(reqs)
        par = DistributedScheduler(
            5, scheme, BreakFirstAvailableScheduler(), parallel=True
        ).schedule_slot(reqs)
        assert sorted(map(repr, seq.granted)) == sorted(map(repr, par.granted))

    def test_matches_global_optimum_per_output(self, ds):
        # Because outputs are independent, the distributed result equals the
        # per-output optima summed (the paper's decomposition argument).
        reqs = [
            SlotRequest(i, w, (i * w) % 4)
            for i in range(4)
            for w in range(6)
            if (i + w) % 2 == 0
        ]
        schedule = ds.schedule_slot(reqs)
        hk = HopcroftKarpScheduler()
        total_opt = 0
        from repro.graphs.request_graph import RequestGraph

        by_output = {}
        for r in reqs:
            by_output.setdefault(r.output_fiber, []).append(r.wavelength)
        for o, ws in by_output.items():
            rg = RequestGraph.from_wavelengths(ds.scheme, ws)
            total_opt += hk.schedule(rg).n_granted
        assert schedule.n_granted == total_opt

    def test_round_robin_rotates_across_slots(self):
        ds = DistributedScheduler(
            3,
            CircularConversion(3, 0, 0),  # identity conversion: 1 channel/λ
            BreakFirstAvailableScheduler(),
            policy=RoundRobinPolicy(),
        )
        reqs = [SlotRequest(0, 0, 0), SlotRequest(1, 0, 0), SlotRequest(2, 0, 0)]
        winners = []
        for _ in range(3):
            schedule = ds.schedule_slot(reqs)
            assert schedule.n_granted == 1
            winners.append(schedule.granted[0].request.input_fiber)
        assert winners == [0, 1, 2]


class TestExecutorReuse:
    """The parallel mode reuses one thread pool across slots (per instance)."""

    def _requests(self, n, k, step=2):
        return [
            SlotRequest(i, w, (i + w) % n)
            for i in range(n)
            for w in range(k)
            if (i * k + w) % step == 0
        ]

    def test_concurrent_and_serial_grants_identical(self):
        scheme = CircularConversion(8, 1, 1)
        reqs = self._requests(8, 8)
        serial = DistributedScheduler(
            8, scheme, BreakFirstAvailableScheduler()
        )
        concurrent = DistributedScheduler(
            8, scheme, BreakFirstAvailableScheduler(), parallel=True,
            max_workers=4,
        )
        # Several slots through the same instances: the reused pool must not
        # change any decision relative to fresh sequential scheduling.
        for _ in range(3):
            s = serial.schedule_slot(reqs)
            c = concurrent.schedule_slot(reqs)
            assert sorted(map(repr, s.granted)) == sorted(map(repr, c.granted))
            assert sorted(map(repr, s.rejected)) == sorted(map(repr, c.rejected))
        concurrent.close()

    def test_pool_constructed_once_and_reused(self):
        ds = DistributedScheduler(
            6,
            CircularConversion(6, 1, 1),
            BreakFirstAvailableScheduler(),
            parallel=True,
            max_workers=2,
        )
        assert ds._pool is None  # lazy: no threads until a parallel slot
        reqs = self._requests(6, 6)
        ds.schedule_slot(reqs)
        pool = ds._pool
        assert pool is not None
        ds.schedule_slot(reqs)
        assert ds._pool is pool  # same executor across slots
        ds.close()
        assert ds._pool is None

    def test_close_idempotent_and_recreates_on_demand(self):
        ds = DistributedScheduler(
            4,
            CircularConversion(6, 1, 1),
            BreakFirstAvailableScheduler(),
            parallel=True,
        )
        ds.close()
        ds.close()
        schedule = ds.schedule_slot(self._requests(4, 6))
        assert ds._pool is not None
        assert schedule.n_granted > 0
        ds.close()

    def test_context_manager_closes_pool(self):
        with DistributedScheduler(
            4,
            CircularConversion(6, 1, 1),
            BreakFirstAvailableScheduler(),
            parallel=True,
        ) as ds:
            ds.schedule_slot(self._requests(4, 6))
            assert ds._pool is not None
        assert ds._pool is None

    def test_serial_instance_never_builds_pool(self):
        ds = DistributedScheduler(
            4, CircularConversion(6, 1, 1), BreakFirstAvailableScheduler()
        )
        ds.schedule_slot(self._requests(4, 6))
        assert ds._pool is None

    def test_max_workers_exposed(self):
        ds = DistributedScheduler(
            4,
            CircularConversion(6, 1, 1),
            BreakFirstAvailableScheduler(),
            parallel=True,
            max_workers=3,
        )
        assert ds.max_workers == 3
        ds.schedule_slot(self._requests(4, 6))
        assert ds._pool._max_workers == 3
        ds.close()
