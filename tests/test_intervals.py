"""Tests for circular-interval arithmetic (the paper's [x, y] mod k notation)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.util.intervals import (
    CircularInterval,
    canonical_signed_residue,
    circular_distance,
    mod_range,
)


class TestCircularInterval:
    def test_paper_example_wraparound(self):
        # The paper: "the adjacency set of λ0 is {λ5, λ0, λ1} ... we can
        # represent it as [-1, 1]".
        assert set(CircularInterval(-1, 1, 6)) == {5, 0, 1}

    def test_members_in_interval_order(self):
        assert CircularInterval(4, 7, 6).members() == (4, 5, 0, 1)

    def test_simple_interval(self):
        assert list(CircularInterval(1, 3, 10)) == [1, 2, 3]

    def test_empty_when_end_below_start(self):
        iv = CircularInterval(3, 2, 6)
        assert iv.empty
        assert len(iv) == 0
        assert list(iv) == []

    def test_singleton(self):
        assert list(CircularInterval(5, 5, 6)) == [5]

    def test_full_circle(self):
        assert set(CircularInterval(0, 5, 6)) == set(range(6))

    def test_longer_than_k_caps_at_k(self):
        assert len(CircularInterval(0, 100, 6)) == 6
        assert set(CircularInterval(0, 100, 6)) == set(range(6))

    def test_contains_wrapped(self):
        iv = CircularInterval(-1, 1, 6)
        assert 5 in iv and 0 in iv and 1 in iv
        assert 2 not in iv and 3 not in iv and 4 not in iv

    def test_contains_respects_mod(self):
        iv = CircularInterval(1, 2, 6)
        assert 7 in iv  # 7 mod 6 = 1
        assert 13 in iv

    def test_contains_non_int(self):
        assert "x" not in CircularInterval(0, 3, 6)
        assert 1.0 not in CircularInterval(0, 3, 6)

    def test_empty_contains_nothing(self):
        assert 0 not in CircularInterval(5, 4, 6)

    def test_invalid_modulus(self):
        with pytest.raises(InvalidParameterError):
            CircularInterval(0, 1, 0)
        with pytest.raises(InvalidParameterError):
            CircularInterval(0, 1, -3)

    def test_intersects(self):
        assert CircularInterval(4, 6, 6).intersects(CircularInterval(0, 1, 6))
        assert not CircularInterval(1, 2, 6).intersects(CircularInterval(4, 5, 6))

    def test_intersects_modulus_mismatch(self):
        with pytest.raises(InvalidParameterError):
            CircularInterval(0, 1, 6).intersects(CircularInterval(0, 1, 7))

    @given(
        st.integers(-20, 20), st.integers(-20, 20), st.integers(1, 12)
    )
    def test_membership_matches_enumeration(self, start, end, k):
        iv = CircularInterval(start, end, k)
        members = set(iv)
        for x in range(k):
            assert (x in iv) == (x in members)

    @given(st.integers(-20, 20), st.integers(0, 30), st.integers(1, 12))
    def test_length_formula(self, start, span, k):
        iv = CircularInterval(start, start + span, k)
        assert len(iv) == min(span + 1, k)
        assert len(list(iv)) == len(iv)


class TestModRange:
    def test_basic(self):
        assert mod_range(-1, 1, 6) == (5, 0, 1)

    def test_empty(self):
        assert mod_range(2, 1, 6) == ()


class TestCanonicalSignedResidue:
    def test_in_window(self):
        assert canonical_signed_residue(5, 6, -2, 2) == -1

    def test_positive(self):
        assert canonical_signed_residue(1, 6, -2, 2) == 1

    def test_zero(self):
        assert canonical_signed_residue(0, 6, -2, 2) == 0

    def test_not_representable(self):
        assert canonical_signed_residue(3, 6, -2, 2) is None

    def test_empty_window(self):
        assert canonical_signed_residue(0, 6, 1, 0) is None

    def test_window_wider_than_k_rejected(self):
        with pytest.raises(InvalidParameterError):
            canonical_signed_residue(0, 4, -2, 2)

    def test_window_of_exactly_k(self):
        # width exactly k: unique representative exists for every delta
        for delta in range(-10, 10):
            r = canonical_signed_residue(delta, 5, -2, 2)
            assert r is not None
            assert (r - delta) % 5 == 0

    @given(st.integers(-50, 50), st.integers(1, 12), st.integers(-12, 12), st.integers(0, 11))
    def test_residue_is_congruent_and_unique(self, delta, k, lo, width):
        hi = lo + min(width, k - 1)
        r = canonical_signed_residue(delta, k, lo, hi)
        in_window = [x for x in range(lo, hi + 1) if (x - delta) % k == 0]
        if r is None:
            assert in_window == []
        else:
            assert in_window == [r]


class TestCircularDistance:
    def test_adjacent(self):
        assert circular_distance(0, 5, 6) == 1

    def test_same(self):
        assert circular_distance(3, 3, 6) == 0

    def test_opposite(self):
        assert circular_distance(0, 3, 6) == 3

    def test_symmetry(self):
        for a in range(8):
            for b in range(8):
                assert circular_distance(a, b, 8) == circular_distance(b, a, 8)

    def test_invalid_modulus(self):
        with pytest.raises(InvalidParameterError):
            circular_distance(0, 1, 0)
