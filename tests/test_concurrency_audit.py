"""Thread-safety audit regression tests: RetryBudget and ScheduleCache.

Both objects are shared across threads in supported configurations —
a :class:`RetryBudget` by clients on different threads/event loops, the
:class:`ScheduleCache` by shard schedulers under ``ExecutionMode.THREADS``
— so their mutations must be lock-guarded read-modify-writes.  These tests
hammer them from many threads and assert *exact* accounting, which the
pre-audit unlocked float arithmetic (``tokens -= 1``) loses under
interleaving.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.memo import ScheduleCache
from repro.service import RetryBudget
from repro.types import Grant, ScheduleResult

N_THREADS = 8


def hammer(fn, n_threads=N_THREADS, iterations=2_000):
    """Run ``fn(thread_index)`` concurrently, starting all threads on a
    barrier so the critical sections actually overlap."""
    barrier = threading.Barrier(n_threads)

    def worker(idx):
        barrier.wait()
        for _ in range(iterations):
            fn(idx)

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        for f in [pool.submit(worker, i) for i in range(n_threads)]:
            f.result()  # surface worker exceptions


class TestRetryBudget:
    def test_concurrent_spends_are_exact(self):
        """tokens_spent + tokens_left == initial, to the last token."""
        initial = N_THREADS * 1_000.0
        budget = RetryBudget(tokens=initial, refill_per_success=0.0)
        spent = [0] * N_THREADS

        def spend(idx):
            if budget.try_spend():
                spent[idx] += 1

        hammer(spend, iterations=1_500)  # 12k attempts on 8k tokens
        assert sum(spent) == initial
        assert budget.tokens == 0.0
        assert not budget.try_spend()

    def test_concurrent_spend_and_refill_never_lose_tokens(self):
        budget = RetryBudget(tokens=500.0, refill_per_success=1.0)
        counts = {"spent": [0] * N_THREADS, "refilled": [0] * N_THREADS}

        def mix(idx):
            if idx % 2 == 0:
                if budget.try_spend():
                    counts["spent"][idx] += 1
            else:
                budget.refill()
                counts["refilled"][idx] += 1

        hammer(mix, iterations=2_000)
        spent, refilled = sum(counts["spent"]), sum(counts["refilled"])
        # Refills cap at capacity, so the balance is a >= bound plus the
        # hard invariants: never negative, never above capacity.
        assert 0.0 <= budget.tokens <= budget.capacity
        assert budget.tokens >= min(budget.capacity, 500.0 - spent + 0.0)
        assert spent <= 500.0 + refilled

    def test_spend_below_one_token_refuses(self):
        budget = RetryBudget(tokens=2.0, refill_per_success=0.5)
        assert budget.try_spend() and budget.try_spend()
        assert not budget.try_spend()
        budget.refill()  # 0.5 tokens: still below the 1-token spend floor
        assert not budget.try_spend()
        budget.refill()
        assert budget.try_spend()


class TestScheduleCache:
    def _result(self, tag):
        return ScheduleResult(
            grants=(Grant(wavelength=tag % 4, channel=tag % 4),),
            request_vector=(1, 0, 0, 0),
            available=(True, True, True, True),
        )

    def test_concurrent_get_put_stays_consistent(self):
        cache = ScheduleCache(maxsize=64)
        keys = [("k", i) for i in range(256)]

        def churn(idx):
            for i, key in enumerate(keys):
                if (i + idx) % 3 == 0:
                    cache.put(key, self._result(i))
                else:
                    got = cache.get(key)
                    if got is not None:
                        assert got == self._result(i)

        hammer(churn, iterations=20)
        stats = cache.stats()
        assert len(cache) == stats["size"] <= 64
        assert stats["hits"] + stats["misses"] > 0

    def test_eviction_accounting_is_exact_under_contention(self):
        cache = ScheduleCache(maxsize=8)

        def insert(idx):
            for i in range(64):
                cache.put((idx, i), self._result(i))

        hammer(insert, iterations=10)
        stats = cache.stats()
        # Every insert beyond capacity evicted exactly one entry.
        inserts = N_THREADS * 10 * 64
        assert stats["evictions"] == inserts - stats["size"]
        assert stats["size"] == 8
