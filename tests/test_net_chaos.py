"""The net chaos rig: seeded wire faults through the real TCP stack.

The acceptance drill of PR 10: a :class:`~repro.net.chaos.ChaosProxy`
executes a seeded :class:`~repro.faults.net.NetFaultPlan` (latency,
write stalls, mid-frame resets, single-byte corruption, duplicate
SUBMIT delivery, a healed partition) between a
:class:`~repro.net.client.ResilientNetClient` and a live
:class:`~repro.net.server.NetServer`, and the run must *converge*:

* every request the client observed as **granted** is bit-identical
  (channel and slot) to a fault-free reference run of the same workload;
* the conservation invariant holds server-side (``submitted == granted
  + Σ rejects``, ``UNAVAILABLE`` included);
* corruption is caught by the CRC (connection dies loudly) — a wrong
  grant is never delivered;
* no fd leaks and no destroyed-pending-task warnings at shutdown.

Determinism: the workload pins absolute ``deadline_slot`` values before
scheduling each submit, and every request has ``timeout_ticks=1`` with
``duration=1`` and at most one request per output fiber per slot — so a
request either joins exactly its reference batch (clean-slate channel
state each slot ⇒ the reference grant) or expires TIMED_OUT.  Fault
*timing* wobbles with the wall clock, but a grant at a wrong slot or
channel is impossible, which is the invariant that matters.
"""

import asyncio
import gc
import os
import warnings

import pytest

pytestmark = [pytest.mark.chaos, pytest.mark.net]

from repro.core.distributed import SlotRequest
from repro.core.first_available import FirstAvailableScheduler
from repro.errors import InvalidParameterError, ProtocolError
from repro.faults.net import (
    ConnReset,
    CorruptByte,
    DuplicateFrame,
    LatencySpike,
    NetFaultPlan,
    Partition,
    WriteStall,
)
from repro.graphs.conversion import NonCircularConversion
from repro.net import protocol as proto
from repro.net.chaos import ChaosProxy, FrameSplitter
from repro.net.client import NetClient, ResilientNetClient
from repro.net.server import NetServer
from repro.service import SchedulingService
from repro.service.server import RejectReason
from repro.util.framing import encode_frame

N_FIBERS, K = 4, 3
SOAK_SLOTS = 40
SOAK_SEED = 0xC0FFEE


def run(coro):
    return asyncio.run(coro)


def _service() -> SchedulingService:
    return SchedulingService(
        N_FIBERS,
        NonCircularConversion(K, 1, 1),
        FirstAvailableScheduler(),
        durability=False,
    )


def _workload(slot: int) -> list[tuple[str, SlotRequest]]:
    """1–3 single-slot requests, at most one per output fiber — grants
    are history-independent, so the bit-identity argument is airtight."""
    reqs = []
    for j in range(1 + (slot % 3)):
        reqs.append(
            (
                f"req-{slot}-{j}",
                SlotRequest(
                    (slot + 2 * j) % N_FIBERS,
                    (slot + j) % K,
                    (slot + j) % N_FIBERS,
                    duration=1,
                ),
            )
        )
    return reqs


async def _drive(rc: ResilientNetClient) -> dict:
    """Run the soak workload; returns ``{request_id: Grant | Reject}``."""
    tasks: dict[str, asyncio.Task] = {}
    for slot in range(SOAK_SLOTS):
        base = max(rc.server_slot, 0)
        for rid, request in _workload(slot):
            tasks[rid] = asyncio.ensure_future(
                rc.submit(request, request_id=rid, deadline_slot=base + 1)
            )
        await asyncio.sleep(0.002)
        await rc.tick(1)
    # Keep ticking until redelivered stragglers expire: liveness means
    # this terminates; a hang here is exactly the bug the drill hunts.
    flushes = 0
    while any(not t.done() for t in tasks.values()) and flushes < 50:
        flushes += 1
        await rc.tick(1)
        await asyncio.sleep(0.02)
    return {
        rid: await asyncio.wait_for(t, 10) for rid, t in tasks.items()
    }


def _conservation(service: SchedulingService) -> None:
    counters = service.telemetry.snapshot()["counters"]
    resolved = counters.get("server.granted", 0)
    for name, value in counters.items():
        if name.startswith("server.rejected."):
            resolved += value
    for name in (
        "server.dropped", "server.timed_out",
        "server.shutdown", "server.duplicate",
    ):
        resolved += counters.get(name, 0)
    assert counters["server.submitted"] == resolved


class TestNetFaultPlan:
    def test_same_seed_same_plan(self):
        a = NetFaultPlan.random(7, 64)
        b = NetFaultPlan.random(7, 64)
        assert a == b
        assert NetFaultPlan.random(8, 64) != a

    def test_random_plan_validates_and_has_all_kinds(self):
        plan = NetFaultPlan.random(3, 32)
        assert plan.validate() is plan
        assert plan.latencies and plan.stalls and plan.resets
        assert plan.corruptions and plan.duplicates and plan.partitions
        assert not plan.is_empty
        assert plan.horizon() >= 1
        assert plan.meta["seed"] == 3

    def test_from_events_and_merge(self):
        a = NetFaultPlan.from_events(
            [ConnReset(5), DuplicateFrame(3), Partition(9, seconds=0.1)]
        )
        b = NetFaultPlan.from_events([ConnReset(2), CorruptByte(4)])
        merged = a.merge(b)
        assert merged.resets == (ConnReset(2), ConnReset(5))
        assert merged.corruptions == (CorruptByte(4),)
        assert merged.n_events == 5

    def test_validate_rejects_ill_formed_events(self):
        with pytest.raises(InvalidParameterError):
            NetFaultPlan(resets=(ConnReset(1, direction="up"),)).validate()
        with pytest.raises(InvalidParameterError):
            NetFaultPlan(partitions=(Partition(1, seconds=0.0),)).validate()
        with pytest.raises(InvalidParameterError):
            NetFaultPlan(
                corruptions=(CorruptByte(1, mask=0),)
            ).validate()
        with pytest.raises(InvalidParameterError):
            NetFaultPlan.from_events([object()])

    def test_horizon_and_latency_window(self):
        ev = LatencySpike(start=4, duration=3, delay=0.001)
        plan = NetFaultPlan(latencies=(ev,), stalls=(WriteStall(10),))
        assert plan.horizon() == 11
        assert ev.active_at(4) and ev.active_at(6) and not ev.active_at(7)


class TestFrameSplitter:
    def test_splits_on_boundaries_across_chunks(self):
        frames = [
            encode_frame(proto.encode_message(proto.Ping(i)))
            for i in range(1, 4)
        ]
        blob = b"".join(frames)
        splitter = FrameSplitter()
        got = []
        # Feed one byte at a time: reassembly must be exact.
        for i in range(len(blob)):
            got.extend(splitter.feed(blob[i : i + 1]))
        assert got == frames
        assert splitter.partial == b""

    def test_partial_tail_is_exposed(self):
        frame = encode_frame(proto.encode_message(proto.Bye()))
        splitter = FrameSplitter()
        assert splitter.feed(frame[:-2]) == []
        assert splitter.partial == frame[:-2]
        assert splitter.feed(frame[-2:]) == [frame]


class TestPingPong:
    def test_ping_resyncs_server_slot(self):
        async def go():
            service, server = _service(), None
            server = NetServer(service)
            await server.start()
            client = await NetClient.connect("127.0.0.1", server.port)
            try:
                assert client.server_slot == -1
                pong = await client.ping()
                assert pong.slot == 0 and client.server_slot == 0
                await client.tick(3)
                assert client.server_slot == 3
                assert (await client.ping()).slot == 3
            finally:
                await client.close()
                await server.stop()
                await service.stop()

        run(go())

    def test_ping_is_fenced_to_v4(self):
        async def go():
            service = _service()
            server = NetServer(service)
            await server.start()
            client = await NetClient.connect(
                "127.0.0.1", server.port, versions=(1, 2, 3)
            )
            try:
                assert client.version == 3
                with pytest.raises(ProtocolError, match="protocol >= 4"):
                    await client.ping()
                # A v3 peer that puts PING on the wire anyway is refused.
                client._send(proto.Ping(1))
                with pytest.raises(ProtocolError):
                    await client.tick(1)
            finally:
                await client.close()
                await server.stop()
                await service.stop()

        run(go())


class TestResilientClient:
    def test_reconnects_and_redelivers_through_aborted_link(self):
        async def go():
            service = _service()
            server = NetServer(service)
            await server.start()
            proxy = await ChaosProxy(
                "127.0.0.1", server.port, NetFaultPlan()
            ).start()
            rc = await ResilientNetClient.connect(
                "127.0.0.1", proxy.port, reconnect_deadline=5.0
            )
            try:
                reply = await self._submit_and_tick(
                    rc, SlotRequest(0, 0, 1, duration=1), "first"
                )
                assert isinstance(reply, proto.Grant)
                for link in list(proxy._links):
                    link.abort()
                await asyncio.sleep(0.05)
                reply = await self._submit_and_tick(
                    rc, SlotRequest(1, 1, 2, duration=1), "second"
                )
                assert isinstance(reply, proto.Grant)
                assert rc.reconnects >= 1
            finally:
                await rc.close()
                await proxy.close()
                await server.stop()
                await service.stop()

        run(go())

    @staticmethod
    async def _submit_and_tick(rc, request, rid):
        task = asyncio.ensure_future(
            rc.submit(request, request_id=rid, timeout_ticks=2)
        )
        await asyncio.sleep(0.02)
        await rc.tick(1)
        return await asyncio.wait_for(task, 10)

    def test_degrades_to_unavailable_when_reconnect_exhausted(self):
        async def go():
            service = _service()
            server = NetServer(service)
            await server.start()
            rc = await ResilientNetClient.connect(
                "127.0.0.1",
                server.port,
                reconnect_backoff=0.02,
                reconnect_deadline=0.3,
            )
            try:
                port = server.port
                await server.stop()  # hard partition: nobody listens
                reply = await asyncio.wait_for(
                    rc.submit(
                        SlotRequest(0, 0, 1), request_id="r", timeout_ticks=1
                    ),
                    10,
                )
                assert isinstance(reply, proto.Reject)
                assert reply.reason is RejectReason.UNAVAILABLE
                assert reply.slot == -1
                assert rc.unavailable_rejects == 1
                with pytest.raises(Exception):
                    await rc.tick(1)
                del port
            finally:
                await rc.close()
                await service.stop()

        run(go())

    def test_heartbeat_liveness_trips_on_stalled_server(self):
        # A proxy that relays the handshake then swallows everything
        # (accept-and-drop) must trip the liveness detector: the client
        # aborts the wedged connection instead of hanging.
        async def go():
            service = _service()
            server = NetServer(service)
            await server.start()
            proxy = await ChaosProxy(
                "127.0.0.1", server.port, NetFaultPlan()
            ).start()
            rc = await ResilientNetClient.connect(
                "127.0.0.1",
                proxy.port,
                heartbeat_interval=0.05,
                liveness_timeout=0.2,
                reconnect_deadline=5.0,
            )
            try:
                inner = rc._client
                # Freeze the proxy↔client pipe: heartbeats get no PONG.
                for link in list(proxy._links):
                    link.server_writer.transport.pause_reading()
                    link.client_writer.transport.pause_reading()
                deadline = asyncio.get_running_loop().time() + 5.0
                while (
                    inner.healthy
                    and asyncio.get_running_loop().time() < deadline
                ):
                    await asyncio.sleep(0.05)
                assert not inner.healthy  # liveness tripped, not hung
                # ...and the next operation self-heals via reconnect.
                for link in list(proxy._links):
                    link.abort()
                assert (await rc.tick(1)) >= 1
            finally:
                await rc.close()
                await proxy.close()
                await server.stop()
                await service.stop()

        run(go())


class TestCorruptionIsLoud:
    def test_corrupt_grant_never_reaches_the_application(self):
        # A single flipped byte in a server→client frame must kill that
        # connection (CRC) — the resilient client reconnects and the
        # outcome is replayed from dedup, never parsed from bad bytes.
        async def go():
            service = _service()
            server = NetServer(service)
            await server.start()
            plan = NetFaultPlan(
                corruptions=(CorruptByte(0, offset=3, mask=0x40),)
            )
            proxy = await ChaosProxy("127.0.0.1", server.port, plan).start()
            rc = await ResilientNetClient.connect(
                "127.0.0.1", proxy.port, reconnect_deadline=5.0
            )
            try:
                task = asyncio.ensure_future(
                    rc.submit(
                        SlotRequest(0, 0, 1, duration=1),
                        request_id="c1",
                        timeout_ticks=3,
                    )
                )
                await asyncio.sleep(0.02)
                await rc.tick(1)
                # The corrupted frame killed a connection somewhere; keep
                # ticking so the redelivered request resolves.
                for _ in range(4):
                    if task.done():
                        break
                    await rc.tick(1)
                    await asyncio.sleep(0.02)
                reply = await asyncio.wait_for(task, 10)
                assert proxy.stats["corruptions"] == 1
                # Whatever the outcome type, it went through a *valid*
                # frame: a Grant must match the service's recorded grant.
                if isinstance(reply, proto.Grant):
                    counters = service.telemetry.snapshot()["counters"]
                    assert counters["server.granted"] == 1
            finally:
                await rc.close()
                await proxy.close()
                await server.stop()
                await service.stop()
            _conservation(service)

        run(go())


class TestChaosSoak:
    """The acceptance drill: seeded soak vs fault-free reference."""

    def _fd_count(self) -> int:
        return len(os.listdir(f"/proc/{os.getpid()}/fd"))

    async def _reference(self) -> dict:
        service = _service()
        server = NetServer(service)
        await server.start()
        rc = await ResilientNetClient.connect("127.0.0.1", server.port)
        try:
            return await _drive(rc)
        finally:
            await rc.close()
            await server.stop()
            await service.stop()

    async def _chaos(self, trace_path) -> tuple[dict, dict, SchedulingService]:
        service = _service()
        server = NetServer(service, idle_timeout=30.0)
        await server.start()
        plan = NetFaultPlan.random(SOAK_SEED, SOAK_SLOTS)
        assert plan == NetFaultPlan.random(SOAK_SEED, SOAK_SLOTS)
        proxy = ChaosProxy(
            "127.0.0.1", server.port, plan, trace_path=str(trace_path)
        )
        await proxy.start()
        rc = await ResilientNetClient.connect(
            "127.0.0.1",
            proxy.port,
            heartbeat_interval=0.25,
            reconnect_deadline=5.0,
        )
        try:
            outcomes = await _drive(rc)
            stats = dict(proxy.stats)
        finally:
            await rc.close()
            await proxy.close()
            await server.stop()
            await service.stop()
        return outcomes, stats, service

    def test_soak_converges_to_reference(self, tmp_path):
        trace_path = tmp_path / "net-chaos-frames.jsonl"
        gc.collect()
        fds_before = self._fd_count()

        async def go():
            reference = await self._reference()
            outcomes, stats, service = await self._chaos(trace_path)
            return reference, outcomes, stats, service

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            reference, outcomes, stats, service = run(go())
            gc.collect()

        # 1. Convergence: every observed grant is bit-identical to the
        #    fault-free reference — same channel, same slot.
        assert set(outcomes) == set(reference)
        granted = {
            rid: o
            for rid, o in outcomes.items()
            if isinstance(o, proto.Grant)
        }
        assert granted, "the soak must grant something"
        for rid, grant in granted.items():
            ref = reference[rid]
            assert isinstance(ref, proto.Grant), rid
            assert (grant.channel, grant.slot) == (ref.channel, ref.slot), rid
        # The fault-free reference grants everything in this workload.
        assert all(
            isinstance(o, proto.Grant) for o in reference.values()
        )

        # 2. Conservation server-side, UNAVAILABLE included.
        _conservation(service)

        # 3. The plan actually fired: every fault kind was exercised.
        assert stats["resets"] >= 1
        assert stats["corruptions"] >= 1
        assert stats["duplicates"] >= 1
        assert stats["partitions"] >= 1
        assert stats["frames"] > SOAK_SLOTS

        # 4. The frame trace (CI failure artifact) is well-formed JSONL.
        lines = trace_path.read_text().splitlines()
        assert len(lines) >= stats["frames"] // 2
        import json

        kinds = {json.loads(line)["kind"] for line in lines}
        assert "frame" in kinds and "partition" in kinds

        # 5. Hygiene: no leaked fds, no destroyed-pending-task warnings.
        assert self._fd_count() <= fds_before + 4
        destroyed = [
            w for w in caught if "Task was destroyed" in str(w.message)
        ]
        assert destroyed == []
