"""Tests for the analytical loss models (exact closed forms vs brute force
enumeration and vs the simulator)."""

import math

import numpy as np
import pytest

from repro.analysis.analytical import (
    full_range_loss_probability,
    full_range_throughput,
    loss_bounds,
    no_conversion_loss_probability,
)
from repro.errors import InvalidParameterError


def _brute_force_full_range(n_fibers: int, k: int, load: float) -> float:
    """E[(X-k)^+]/E[X] by direct pmf enumeration (independent code path)."""
    n = n_fibers * k
    p = load / n_fibers
    mean = n * p
    lost = 0.0
    for x in range(n + 1):
        pmf = math.comb(n, x) * p**x * (1 - p) ** (n - x)
        lost += max(0, x - k) * pmf
    return lost / mean


class TestFullRange:
    def test_matches_brute_force(self):
        for n_fibers, k, load in ((2, 3, 0.8), (4, 4, 0.5), (8, 6, 1.0)):
            assert full_range_loss_probability(
                n_fibers, k, load
            ) == pytest.approx(_brute_force_full_range(n_fibers, k, load))

    def test_zero_load(self):
        assert full_range_loss_probability(4, 8, 0.0) == 0.0

    def test_monotone_in_load(self):
        losses = [
            full_range_loss_probability(4, 8, load)
            for load in (0.2, 0.5, 0.8, 1.0)
        ]
        assert losses == sorted(losses)

    def test_single_fiber_no_contention(self):
        # N=1: X ~ Binomial(k, load) <= k always; nothing is ever lost.
        assert full_range_loss_probability(1, 8, 0.9) == pytest.approx(0.0)

    def test_throughput_complement(self):
        n_fibers, k, load = 4, 8, 0.9
        loss = full_range_loss_probability(n_fibers, k, load)
        thru = full_range_throughput(n_fibers, k, load)
        # carried = offered * (1 - loss); offered per channel-slot = load.
        assert thru == pytest.approx(load * (1 - loss))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            full_range_loss_probability(0, 8, 0.5)
        with pytest.raises(InvalidParameterError):
            full_range_loss_probability(4, 8, 1.5)


class TestNoConversion:
    def test_closed_form_small_case(self):
        # N=2, load p per channel to a uniform destination: each wavelength
        # gets X ~ Binomial(2, p/2); loss = 1 - P(X>=1)/E[X].
        n, load = 2, 0.8
        q = load / n
        expected = 1 - (1 - (1 - q) ** n) / (n * q)
        assert no_conversion_loss_probability(n, load) == pytest.approx(expected)

    def test_zero_load(self):
        assert no_conversion_loss_probability(4, 0.0) == 0.0

    def test_worse_than_full_range(self):
        for load in (0.3, 0.7, 1.0):
            assert no_conversion_loss_probability(
                8, load
            ) > full_range_loss_probability(8, 16, load)

    def test_monte_carlo_agreement(self):
        rng = np.random.default_rng(5)
        n_fibers, load, k = 4, 0.9, 1
        trials = 200_000
        x = rng.binomial(n_fibers, load / n_fibers, size=trials)
        mc = 1 - np.minimum(x, k).mean() / x.mean()
        assert no_conversion_loss_probability(n_fibers, load) == pytest.approx(
            mc, abs=5e-3
        )


class TestBounds:
    def test_bracket_ordering(self):
        lo, hi = loss_bounds(8, 16, 0.9)
        assert 0.0 <= lo <= hi <= 1.0

    def test_bracket_collapses_at_zero_load(self):
        assert loss_bounds(8, 16, 0.0) == (0.0, 0.0)
