"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from :class:`ReproError`
so that callers can catch library failures without masking programming errors
(``TypeError``/``ValueError`` raised by NumPy, etc. still propagate).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "InvalidGraphError",
    "InvalidMatchingError",
    "NotConvexError",
    "ScheduleError",
    "HardwareModelError",
    "SimulationError",
    "UncrossingDidNotConvergeError",
    "FaultError",
    "ShardDownError",
    "CircuitOpenError",
    "RetryExhaustedError",
    "DurabilityError",
    "JournalCrashError",
    "MigrationError",
    "CrashPointError",
    "ProtocolError",
    "ConnectionLostError",
    "FramingError",
    "WorkerProcessError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidParameterError(ReproError, ValueError):
    """A constructor or function argument is outside its documented domain."""


class InvalidGraphError(ReproError, ValueError):
    """A graph object violates a structural requirement (e.g. vertex range)."""


class InvalidMatchingError(ReproError, ValueError):
    """An edge set claimed to be a matching is not vertex-disjoint or uses
    edges absent from the underlying graph."""


class NotConvexError(ReproError, ValueError):
    """An algorithm requiring a convex bipartite graph received a graph whose
    adjacency sets are not intervals in the given right-vertex ordering."""


class ScheduleError(ReproError, RuntimeError):
    """A scheduler produced (or was asked to validate) an inconsistent
    schedule, e.g. a grant to an occupied or non-adjacent channel."""


class HardwareModelError(ReproError, RuntimeError):
    """The register-level hardware model detected a physically impossible
    state, e.g. two simultaneously active inputs at one optical combiner."""


class SimulationError(ReproError, RuntimeError):
    """The slotted simulator detected an inconsistent state, e.g. a grant for
    a packet that never arrived."""


class FaultError(ReproError, RuntimeError):
    """Base class of the fault/degradation hierarchy: an error caused by an
    injected or detected component failure rather than by bad inputs.

    Catch this to handle *operational* failures (dark channels, degraded
    converters, dead shard workers) separately from programming errors."""


class ShardDownError(FaultError):
    """A service shard worker is down: it crashed (injected or organic) and
    has not been restarted, so its queue cannot serve requests.  Raised
    ``from`` the causing exception when the crash was organic, so the
    original defect stays on the chain."""


class CircuitOpenError(FaultError):
    """A per-shard circuit breaker is open: the shard failed repeatedly and
    submissions are being short-circuited until the half-open probe
    succeeds."""


class RetryExhaustedError(FaultError):
    """A retrying client gave up: the attempt limit or the shared retry
    budget was exhausted before any attempt succeeded."""


class DurabilityError(ReproError, RuntimeError):
    """The durability layer detected an inconsistency it cannot repair:
    a corrupt snapshot with no valid predecessor, or a journal replay that
    disagrees with live state it must match (e.g. the surviving queue)."""


class JournalCrashError(FaultError):
    """A simulated process death severed a journal write mid-record
    (fault injection only — see :class:`repro.faults.TornWriter`).  Real
    crashes do not raise; they just leave the same torn tail behind."""


class MigrationError(ReproError, RuntimeError):
    """A live shard migration cannot proceed or verify: the handoff
    payload is corrupt, the move is ill-formed (source does not own the
    shard, destination is retired), or the adopted replica's replayed
    state disagrees with what the source exported.  The placement is only
    ever flipped *after* verification, so a raised migration leaves the
    source authoritative and the service serving."""


class CrashPointError(FaultError):
    """A simulated process death at a named crash point (fault injection
    only — see :class:`repro.faults.CrashPoints`).  Tests arm a point,
    catch this, and assert the interrupted operation can be re-driven to
    a bit-identical end state."""


class ProtocolError(ReproError, RuntimeError):
    """The wire protocol (:mod:`repro.net`) received bytes it cannot act
    on: an unknown message type, a malformed body, a handshake violation,
    or no protocol version in common.  Always a *typed* failure — corrupt
    or truncated network input must surface as this (or a subclass), never
    as a bare ``struct.error`` or a reader that hangs."""


class ConnectionLostError(ProtocolError):
    """The transport under a :mod:`repro.net` connection died mid-flight:
    reset, EOF inside a frame, or a failed liveness probe.  Unlike its
    parent this is *retryable* — the peer said nothing wrong, the wire
    just went away — so :class:`repro.net.client.ResilientNetClient`
    reconnects and redelivers on exactly this type (and on
    :class:`FramingError`, where killing the connection is the protocol's
    own corruption response)."""


class FramingError(ProtocolError):
    """A framed byte *stream* is corrupt: CRC mismatch or an implausible
    length header.  Fatal to the connection — after corruption there is no
    way to resynchronize on the next frame boundary.  (Journal decoding
    never raises this; torn journal tails are tolerated by construction —
    see :func:`repro.util.framing.decode_frames`.)"""


class WorkerProcessError(FaultError):
    """A shard worker *process* failed in a way its parent cannot repair
    by respawning: repeated crash loops, a sick reply, or a failure during
    recovery itself.  Single crashes do not raise — the pool restarts the
    process and replays the in-flight tick (see :mod:`repro.net.procpool`)."""


class UncrossingDidNotConvergeError(ReproError, RuntimeError):
    """The Lemma-1 uncrossing procedure exceeded its iteration guard.

    This indicates a bug (the paper proves the procedure terminates); the
    guard exists so that a defect surfaces as a diagnosable error instead of
    an infinite loop.
    """
