"""Break and First Available Algorithm (paper Table 3, Theorem 2) — ``O(dk)``.

Circular symmetrical conversion makes the request graph non-convex (edges
wrap around the wavelength band).  The paper's remedy: pick one pivot request
``a_i``, and for each of the ``d`` channels ``b_u`` adjacent to it, *break*
the graph at ``a_i b_u`` — remove both vertices, incident edges and all
crossing edges (Definition 1/2) — which leaves a convex reduced graph in a
shifted vertex ordering (Lemma 2).  First Available solves each reduced graph
in ``O(k)``; the best of the ``d`` breaks plus the breaking edge is a maximum
matching of the original graph (Lemmas 3–4, Theorem 2), for ``O(dk)`` total.

The fast implementation here never materializes a graph.  Choosing the pivot
as the *first* request (the lowest wavelength ``W`` carrying a request) makes
the shifted left ordering coincide with ascending wavelength order, and the
reduced adjacency of a wavelength ``w = W + s`` (``s`` the canonical signed
offset of ``w`` from ``W``, ``u = W + t`` the breaking channel) collapses to
three interval forms in shifted channel positions ``0..k-2``:

* ``s ∈ [t-f, -1]`` or (``s = 0``, pivot's siblings when the paper's Case 2.1
  applies): adjacency ``[w - e, u - 1]`` — a suffix of the position range;
* ``s ∈ [1, t+e]`` or (``s = 0``, Case 2.2 frame): adjacency ``[u + 1, w + f]``
  — a prefix;
* otherwise: the untouched window ``[w - e, w + f]`` — ``d`` consecutive
  positions in the middle.

(The boundary offsets ``s = t - f`` and ``s = t + e``, whose requests are
adjacent to ``b_u`` but have no crossing edges, reduce to the same interval
forms because only the edge into the removed ``b_u`` disappears.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core import kernels as _kernels
from repro.core.base import Scheduler, make_result
from repro.core.memo import (
    ScheduleCache,
    schedule_cache_key,
    resolve_cache as _resolve_cache,
)
from repro.errors import InvalidParameterError, ScheduleError
from repro.graphs.breaking import break_graph
from repro.graphs.conversion import CircularConversion
from repro.graphs.request_graph import RequestGraph
from repro.types import Grant, ScheduleResult

__all__ = [
    "bfa_fast",
    "solve_reduced_fast",
    "BreakFirstAvailableScheduler",
    "BreakFirstAvailableReferenceScheduler",
]


@dataclass(frozen=True, slots=True)
class _Group:
    """One wavelength's requests in a reduced instance: ``count`` requests
    whose shifted-position adjacency is ``[lo, hi]`` (empty if ``hi < lo``)."""

    wavelength: int
    count: int
    lo: int
    hi: int


def _reduced_groups(
    remaining: Sequence[int],
    k: int,
    e: int,
    f: int,
    pivot_w: int,
    t: int,
) -> list[_Group]:
    """Interval form of the reduced graph after breaking at ``(pivot, W+t)``.

    ``remaining`` are request counts with the pivot's own request already
    removed.  Positions index the shifted channel order ``u+1, ..., u-1``
    where ``u = (pivot_w + t) mod k``.  Groups are returned in ascending
    offset order (``s = 0, 1, 2, ...``), which Lemma 2 guarantees is monotone
    in both interval endpoints.
    """
    d = e + f + 1
    u = (pivot_w + t) % k
    groups: list[_Group] = []
    for s in range(k):  # offset of wavelength w = pivot_w + s
        w = (pivot_w + s) % k
        count = remaining[w]
        if count == 0:
            continue
        if s == 0:
            # Pivot's same-wavelength siblings (all later in left order):
            # adjacency [u+1, w+f] → prefix ending at unwrapped offset f-t-1.
            lo, hi = 0, f - t - 1
        else:
            s_minus = s - k  # negative representative
            if 1 <= s <= t + e:
                # Plus side of the pivot: prefix [u+1, w+f].
                lo, hi = 0, s + f - t - 1
            elif t - f <= s_minus <= -1:
                # Minus side (circularly just below u): suffix [w-e, u-1].
                length = t - s_minus + e
                lo, hi = (k - 1) - length, k - 2
            else:
                # Untouched middle window [w-e, w+f].
                lo = (w - e - (u + 1)) % k
                hi = lo + d - 1
                if hi > k - 2:
                    raise ScheduleError(
                        f"internal error: middle window of λ{w} wraps past the "
                        f"reduced range (lo={lo}, d={d}, k={k})"
                    )
        groups.append(_Group(wavelength=w, count=count, lo=lo, hi=hi))
    return groups


def solve_reduced_fast(
    groups: Sequence[_Group],
    available_positions: Sequence[tuple[int, int]],
) -> list[tuple[int, int]]:
    """First Available on a reduced instance in grouped interval form.

    ``available_positions`` lists ``(position, channel)`` pairs in ascending
    position order (occupied channels omitted).  Returns ``(wavelength,
    channel)`` grants.  ``O(k)`` by the same advancing-pointer argument as
    :func:`repro.core.first_available.first_available_fast`; the monotone
    endpoint property (Lemma 2) is asserted defensively.
    """
    last_lo = last_hi = -1
    for g in groups:
        if g.hi < g.lo:
            continue
        if g.lo < last_lo or g.hi < last_hi:
            raise ScheduleError(
                f"internal error: Lemma-2 monotonicity violated at λ{g.wavelength}: "
                f"({g.lo}, {g.hi}) after ({last_lo}, {last_hi})"
            )
        last_lo, last_hi = g.lo, g.hi

    counts = [g.count for g in groups]
    grants: list[tuple[int, int]] = []
    gi = 0
    n = len(groups)
    for p, channel in available_positions:
        while gi < n:
            g = groups[gi]
            if counts[gi] == 0 or g.hi < g.lo or g.hi < p:
                gi += 1
                continue
            break
        if gi < n and groups[gi].lo <= p:
            counts[gi] -= 1
            grants.append((groups[gi].wavelength, channel))
    return grants


def bfa_fast(
    request_vector: Sequence[int],
    available: Sequence[bool],
    e: int,
    f: int,
) -> tuple[list[Grant], dict[str, int]]:
    """The ``O(dk)`` Break-and-First-Available pass on a request vector.

    Adjacency is the circular window ``[w - e, w + f] mod k``.  Returns the
    grants plus counters (number of reduced graphs tried, pivots skipped).
    """
    k = len(request_vector)
    if len(available) != k:
        raise InvalidParameterError(
            f"availability mask length {len(available)} != k={k}"
        )
    if e + f + 1 > k:
        raise InvalidParameterError(
            f"conversion degree e+f+1={e + f + 1} exceeds k={k}"
        )
    backend = _kernels.get_backend()
    if backend.bfa_row is not None:
        # Compiled backends fuse the whole O(dk) pass; pairs come back in
        # bfa_fast's emission order (breaking edge first, then ascending
        # shifted position) so the Grant list is bit-identical to the
        # Python loop below (tests/test_kernels.py).
        wl, ch, n, reduced, skipped = backend.bfa_row(
            np.ascontiguousarray(request_vector, dtype=np.int64),
            np.ascontiguousarray(available, dtype=bool),
            e,
            f,
        )
        return (
            [
                Grant(wavelength=int(wl[i]), channel=int(ch[i]))
                for i in range(n)
            ],
            {"reduced_graphs": int(reduced), "pivots_skipped": int(skipped)},
        )
    remaining = list(request_vector)
    stats = {"reduced_graphs": 0, "pivots_skipped": 0}

    # Pivot: the first request overall — the lowest wavelength carrying one.
    # A wavelength whose whole adjacency window is occupied can never be
    # granted; dropping it leaves the maximum matching unchanged, so we skip
    # to the next candidate (needed for the Section-V occupied-channel case).
    pivot_w = -1
    pivot_breaks: list[tuple[int, int]] = []  # (t, u) per available break edge
    for w in range(k):
        if remaining[w] == 0:
            continue
        breaks = [
            (t, (w + t) % k)
            for t in range(-e, f + 1)
            if available[(w + t) % k]
        ]
        if breaks:
            pivot_w = w
            pivot_breaks = breaks
            break
        remaining[w] = 0  # unmatchable: every adjacent channel occupied
        stats["pivots_skipped"] += 1
    if pivot_w < 0:
        return [], stats

    remaining[pivot_w] -= 1

    # Precompute the reduced instance's left side once: wavelengths with
    # remaining requests, in ascending offset order from the pivot (the
    # Lemma-2 shifted ordering).  Only the intervals depend on the break.
    entry_s: list[int] = []
    entry_w: list[int] = []
    base_counts: list[int] = []
    for s in range(k):
        w = (pivot_w + s) % k
        if remaining[w] > 0:
            entry_s.append(s)
            entry_w.append(w)
            base_counts.append(remaining[w])
    n_groups = len(entry_s)
    n_available = sum(1 for b in range(k) if available[b])
    perfect = min(sum(base_counts) + 1, n_available)  # +1: the pivot grant
    d = e + f + 1
    all_free = n_available == k

    best_pairs: list[tuple[int, int]] | None = None
    for t, u in pivot_breaks:
        # Interval decode per group (see module docstring for the cases).
        lows = [0] * n_groups
        highs = [0] * n_groups
        wrap = k + t - f  # smallest positive s on the circular minus side
        for gi in range(n_groups):
            s = entry_s[gi]
            if s == 0:
                lows[gi], highs[gi] = 0, f - t - 1
            elif 1 <= s <= t + e:
                lows[gi], highs[gi] = 0, s + f - t - 1
            elif s >= wrap:
                length = t - (s - k) + e
                lows[gi], highs[gi] = (k - 1) - length, k - 2
            else:
                lo = (entry_w[gi] - e - u - 1) % k
                lows[gi], highs[gi] = lo, lo + d - 1
        counts = base_counts.copy()
        pairs: list[tuple[int, int]] = [(pivot_w, u)]
        gi = 0
        stats["reduced_graphs"] += 1
        for p in range(k - 1):
            channel = u + 1 + p
            if channel >= k:
                channel -= k
            if not all_free and not available[channel]:
                continue
            while gi < n_groups and (
                counts[gi] == 0 or highs[gi] < lows[gi] or highs[gi] < p
            ):
                gi += 1
            if gi < n_groups and lows[gi] <= p:
                counts[gi] -= 1
                pairs.append((entry_w[gi], channel))
        if best_pairs is None or len(pairs) > len(best_pairs):
            best_pairs = pairs
            if len(best_pairs) >= perfect:
                break  # cannot do better than granting everything grantable
    assert best_pairs is not None
    return [Grant(wavelength=w, channel=b) for w, b in best_pairs], stats


class BreakFirstAvailableScheduler(Scheduler):
    """Fast ``O(dk)`` Break-and-First-Available scheduler (paper Table 3).

    Requires circular symmetrical conversion (full range included, though the
    trivial :class:`~repro.core.full_range.FullRangeScheduler` is cheaper
    there).  ``cache`` memoizes the per-output sub-problem as in
    :class:`~repro.core.first_available.FirstAvailableScheduler`.
    """

    name = "break-first-available"

    def __init__(self, cache: "ScheduleCache | bool | None" = True) -> None:
        self._cache = _resolve_cache(cache)

    def _check_scheme(self, rg: RequestGraph) -> None:
        if not isinstance(rg.scheme, CircularConversion):
            raise InvalidParameterError(
                "BreakFirstAvailableScheduler requires circular symmetrical "
                f"conversion, got {rg.scheme!r}; use FirstAvailableScheduler "
                "for non-circular schemes"
            )

    def schedule(self, rg: RequestGraph) -> ScheduleResult:
        self._check_scheme(rg)
        if self._cache is not None:
            key = schedule_cache_key(
                self.name, rg.scheme, rg.request_vector, rg.available
            )
            cached = self._cache.get(key)
            if cached is not None:
                return cached
        grants, stats = bfa_fast(
            rg.request_vector, rg.available, rg.scheme.e, rg.scheme.f
        )
        result = make_result(rg, grants, stats=stats)
        if self._cache is not None:
            self._cache.put(key, result)
        return result


class BreakFirstAvailableReferenceScheduler(Scheduler):
    """Table-3 verbatim on explicit graphs (reference oracle).

    Breaks the explicit request graph at each of the pivot's edges via
    :func:`repro.graphs.breaking.break_graph` and keeps the best matching.
    Exponentially slower than the fast version on large instances but
    structurally identical to the paper's pseudocode.
    """

    name = "break-first-available-ref"

    def _check_scheme(self, rg: RequestGraph) -> None:
        BreakFirstAvailableScheduler()._check_scheme(rg)

    def schedule(self, rg: RequestGraph) -> ScheduleResult:
        self._check_scheme(rg)
        graph = rg.graph
        pivot = next(
            (a for a in range(graph.n_left) if graph.degree_left(a) > 0), None
        )
        if pivot is None:
            return make_result(rg, [], stats={"reduced_graphs": 0})
        best = None
        tried = 0
        for u in graph.neighbors_of_left(pivot):
            matching = break_graph(rg, pivot, u).solve()
            tried += 1
            if best is None or len(matching) > len(best):
                best = matching
        assert best is not None
        grants = [
            Grant(wavelength=rg.wavelength_of(a), channel=b) for a, b in best
        ]
        return make_result(rg, grants, stats={"reduced_graphs": tried})
