"""Baseline schedulers: Hopcroft–Karp and Glover on explicit request graphs.

:class:`HopcroftKarpScheduler` is the paper's comparison point [1] — the best
general bipartite maximum-matching algorithm, valid for *any* conversion
scheme but with per-output cost ``O(sqrt(n) (m + n))`` on the expanded
request graph (and ``O(N^{3/2} k^{3/2} d)`` if run on the whole interconnect
at once).  It doubles as the optimality oracle in the test suite.

:class:`GloverScheduler` runs Table 1 verbatim — maximum for any *convex*
request graph (non-circular symmetrical or full-range conversion), with cost
``O(|E|)`` before the First Available simplification.
"""

from __future__ import annotations

from repro.core.base import Scheduler, make_result
from repro.core.first_available import FirstAvailableScheduler
from repro.graphs.convex import glover_maximum_matching
from repro.graphs.hopcroft_karp import hopcroft_karp
from repro.graphs.request_graph import RequestGraph
from repro.types import Grant, ScheduleResult

__all__ = ["HopcroftKarpScheduler", "GloverScheduler"]


class HopcroftKarpScheduler(Scheduler):
    """Optimal scheduler for any scheme via Hopcroft–Karp (baseline [1])."""

    name = "hopcroft-karp"

    def schedule(self, rg: RequestGraph) -> ScheduleResult:
        graph = rg.graph
        matching = hopcroft_karp(graph)
        grants = [
            Grant(wavelength=rg.wavelength_of(a), channel=b) for a, b in matching
        ]
        return make_result(
            rg,
            grants,
            stats={"n_left": graph.n_left, "n_edges": graph.n_edges},
        )


class GloverScheduler(Scheduler):
    """Glover's algorithm (paper Table 1) on the explicit request graph.

    Supports the same schemes as the First Available scheduler (the request
    graph must be convex in the ordering of available channels).
    """

    name = "glover"

    def _check_scheme(self, rg: RequestGraph) -> None:
        FirstAvailableScheduler()._check_scheme(rg)

    def schedule(self, rg: RequestGraph) -> ScheduleResult:
        self._check_scheme(rg)
        right_order = [b for b in range(rg.k) if rg.available[b]]
        matching = glover_maximum_matching(rg.graph, right_order)
        grants = [
            Grant(wavelength=rg.wavelength_of(a), channel=b) for a, b in matching
        ]
        return make_result(rg, grants)
