"""First Available Algorithm (paper Table 2, Theorem 1) — ``O(k)``.

For non-circular symmetrical conversion the request graph is convex with
``BEGIN``/``END`` monotone in left-vertex index, so matching each output
channel (in ascending order) to the *first* request that can reach it yields
a maximum matching.  Because same-wavelength requests are interchangeable for
matching-size purposes, the fast implementation works directly on the request
vector: for channel ``b`` the first adjacent request is the smallest
wavelength ``w ∈ [b - f, b + e]`` with remaining requests.  A single
advancing wavelength pointer makes the whole pass ``O(k)`` — independent of
the interconnect size ``N`` *and* of the conversion degree ``d``, exactly as
the paper claims for the hardware implementation.

Two implementations are exported:

* :func:`first_available_fast` — the ``O(k)`` request-vector algorithm.
* :class:`FirstAvailableScheduler` / :class:`FirstAvailableReferenceScheduler`
  — scheduler wrappers around the fast and the explicit-graph (Table-2
  verbatim) versions; the test suite proves them equivalent.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core import kernels as _kernels
from repro.errors import InvalidParameterError
from repro.graphs.conversion import (
    ConversionScheme,
    FullRangeConversion,
    NonCircularConversion,
)
from repro.graphs.convex import first_available_convex
from repro.graphs.request_graph import RequestGraph
from repro.core.base import Scheduler, make_result
from repro.core.memo import (
    ScheduleCache,
    schedule_cache_key,
    resolve_cache as _resolve_cache,
)
from repro.types import Grant, ScheduleResult

__all__ = [
    "first_available_fast",
    "FirstAvailableScheduler",
    "FirstAvailableReferenceScheduler",
]


def first_available_fast(
    request_vector: Sequence[int],
    available: Sequence[bool],
    e: int,
    f: int,
    *,
    check: bool = True,
) -> list[Grant]:
    """The ``O(k)`` First Available pass on a request vector.

    ``request_vector[w]`` counts requests on ``λ_w``; ``available[b]`` marks
    free output channels.  Adjacency is the non-circular clipped window:
    channel ``b`` serves wavelengths ``[b - f, b + e] ∩ [0, k)``.  Returns
    the grants in ascending channel order.  ``check=False`` skips input
    validation for pre-validated inner-loop callers.
    """
    k = len(request_vector)
    if check and len(available) != k:
        raise InvalidParameterError(
            f"availability mask length {len(available)} != k={k}"
        )
    backend = _kernels.get_backend()
    if backend.fa_row is not None:
        # Compiled backends fuse the whole row sweep; bit-identical to the
        # Python loop below (tests/test_kernels.py), and grants come out in
        # the same ascending channel order.
        row = backend.fa_row(
            np.ascontiguousarray(request_vector, dtype=np.int64),
            np.ascontiguousarray(available, dtype=bool),
            e,
            f,
        )
        return [
            Grant(wavelength=int(w), channel=b)
            for b, w in enumerate(row.tolist())
            if w >= 0
        ]
    remaining = list(request_vector)
    grants: list[Grant] = []
    p = 0  # smallest wavelength that may still have grantable requests
    for b in range(k):
        if not available[b]:
            continue
        lo = b - f
        hi = b + e
        if p < lo:
            p = lo
        if p < 0:
            p = 0
        # Skip exhausted wavelengths inside this channel's window.  The
        # pointer never retreats, so the total work over all channels is
        # O(k): counts only ever decrease, and a skipped wavelength stays
        # exhausted forever.
        while p < k and p <= hi and remaining[p] == 0:
            p += 1
        if p < k and p <= hi and remaining[p] > 0:
            remaining[p] -= 1
            grants.append(Grant(wavelength=p, channel=b))
    return grants


class FirstAvailableScheduler(Scheduler):
    """Fast ``O(k)`` First Available scheduler (paper Table 2).

    Supports non-circular symmetrical conversion and full-range conversion
    (where the window covers every channel and the graph is trivially convex
    and monotone).  For circular symmetrical conversion use
    :class:`~repro.core.break_first_available.BreakFirstAvailableScheduler`.

    ``cache`` memoizes the per-output sub-problem (see
    :mod:`repro.core.memo`): ``True`` (default) shares the process-wide LRU,
    ``None``/``False`` disables, or pass a dedicated
    :class:`~repro.core.memo.ScheduleCache`.
    """

    name = "first-available"

    def __init__(self, cache: "ScheduleCache | bool | None" = True) -> None:
        self._cache = _resolve_cache(cache)

    def _check_scheme(self, rg: RequestGraph) -> None:
        scheme: ConversionScheme = rg.scheme
        if not isinstance(scheme, (NonCircularConversion, FullRangeConversion)):
            raise InvalidParameterError(
                "FirstAvailableScheduler requires non-circular symmetrical "
                f"(or full-range) conversion, got {scheme!r}; "
                "use BreakFirstAvailableScheduler for circular schemes"
            )

    def schedule(self, rg: RequestGraph) -> ScheduleResult:
        self._check_scheme(rg)
        if self._cache is not None:
            key = schedule_cache_key(
                self.name, rg.scheme, rg.request_vector, rg.available
            )
            cached = self._cache.get(key)
            if cached is not None:
                return cached
        # Full range conversion reaches every channel from every wavelength;
        # the clipped window that realizes that for *every* channel is
        # e = f = k - 1 (FullRangeConversion's own (e, f) split the reach
        # circularly, which the non-circular window formula must not use).
        if rg.scheme.is_full_range:
            e = f = rg.k - 1
        else:
            e, f = rg.scheme.e, rg.scheme.f
        grants = first_available_fast(
            rg.request_vector, rg.available, e, f, check=False
        )
        result = make_result(rg, grants, stats={"channels_scanned": rg.k})
        if self._cache is not None:
            self._cache.put(key, result)
        return result


class FirstAvailableReferenceScheduler(Scheduler):
    """Table-2 verbatim on the explicit request graph (reference oracle).

    Runs in ``O(|E|)``; used to cross-validate the fast implementation and
    in the figure-regeneration experiments where the explicit matching
    (which request, not just which wavelength) matters.
    """

    name = "first-available-ref"

    def _check_scheme(self, rg: RequestGraph) -> None:
        FirstAvailableScheduler()._check_scheme(rg)

    def schedule(self, rg: RequestGraph) -> ScheduleResult:
        self._check_scheme(rg)
        right_order = [b for b in range(rg.k) if rg.available[b]]
        matching = first_available_convex(rg.graph, right_order)
        grants = [
            Grant(wavelength=rg.wavelength_of(a), channel=b) for a, b in matching
        ]
        return make_result(rg, grants)
