"""Single-break approximation scheduler (paper Section IV-C).

Break-and-First-Available tries all ``d`` breaks because the edge belonging
to a no-crossing-edge maximum matching is not known in advance.  When speed
(or hardware cost) matters more than the last unit of throughput, a single
break suffices: breaking at edge ``a_i b_u`` where ``b_u`` is the ``δ(u)``-th
adjacent channel counted from the minus end loses at most
``max(δ(u) - 1, d - δ(u))`` matches (Theorem 3), minimized by the "shortest"
edge ``δ(u) = (d + 1) / 2`` at ``(d - 1) / 2`` (Corollary 1) — e.g. at most 1
lost match for ``d = 3`` and at most 2 for ``d = 5``.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.core.base import Scheduler, make_result
from repro.core.break_first_available import _reduced_groups, solve_reduced_fast
from repro.errors import InvalidParameterError
from repro.graphs.conversion import CircularConversion
from repro.graphs.request_graph import RequestGraph
from repro.types import Grant, ScheduleResult
from repro.util.rng import make_rng

__all__ = ["BreakPolicy", "deficit_bound", "SingleBreakScheduler"]

BreakPolicy = Literal["shortest", "minus-end", "plus-end", "random"]

_POLICIES: tuple[str, ...] = ("shortest", "minus-end", "plus-end", "random")


def deficit_bound(delta: int, d: int) -> int:
    """Theorem-3 bound on the matching deficit of breaking at the
    ``delta``-th adjacent edge (1-based from the minus end) with conversion
    degree ``d``: ``max(delta - 1, d - delta)``."""
    if not 1 <= delta <= d:
        raise InvalidParameterError(f"delta must be in [1, {d}], got {delta}")
    return max(delta - 1, d - delta)


def _delta_of_offset(t: int, e: int) -> int:
    """``δ(u)``: position of break offset ``t ∈ [-e, f]`` counted 1-based
    from the minus end of the adjacency window."""
    return t + e + 1


class SingleBreakScheduler(Scheduler):
    """Approximate ``O(k)`` scheduler: one break instead of ``d`` (Sec. IV-C).

    Parameters
    ----------
    policy:
        Which of the pivot's edges to break at:

        * ``"shortest"`` (default) — the Corollary-1 choice
          ``δ = ceil((d + 1) / 2)``, bound ``floor(d / 2)`` (equal to
          ``(d - 1) / 2`` for odd ``d``);
        * ``"minus-end"`` — ``δ = 1`` (worst bound ``d - 1``);
        * ``"plus-end"`` — ``δ = d`` (worst bound ``d - 1``);
        * ``"random"`` — uniform over the window (needs ``seed``).

        If the policy's channel is occupied, the nearest available adjacent
        channel with the smallest Theorem-3 bound is used instead.
    seed:
        RNG seed for the ``"random"`` policy.
    """

    def __init__(self, policy: BreakPolicy = "shortest", seed: int | None = None):
        if policy not in _POLICIES:
            raise InvalidParameterError(
                f"unknown break policy {policy!r}; choose from {_POLICIES}"
            )
        self.policy = policy
        self._rng = make_rng(seed)
        self.name = f"single-break[{policy}]"

    def _check_scheme(self, rg: RequestGraph) -> None:
        if not isinstance(rg.scheme, CircularConversion):
            raise InvalidParameterError(
                "SingleBreakScheduler requires circular symmetrical "
                f"conversion, got {rg.scheme!r}"
            )

    def _choose_offset(self, candidates: list[int], e: int, f: int) -> int:
        """Pick the break offset ``t`` among available candidates."""
        d = e + f + 1
        if self.policy == "random":
            return int(self._rng.choice(np.asarray(candidates)))
        if self.policy == "minus-end":
            target_delta = 1
        elif self.policy == "plus-end":
            target_delta = d
        else:  # shortest (Corollary 1)
            target_delta = (d + 1 + 1) // 2  # ceil((d + 1) / 2)
        return min(
            candidates,
            key=lambda t: (
                abs(_delta_of_offset(t, e) - target_delta),
                deficit_bound(_delta_of_offset(t, e), d),
                abs(t),
            ),
        )

    def schedule(self, rg: RequestGraph) -> ScheduleResult:
        self._check_scheme(rg)
        scheme = rg.scheme
        k, e, f = scheme.k, scheme.e, scheme.f
        remaining = list(rg.request_vector)
        available = rg.available
        skipped = 0
        pivot_w = -1
        candidates: list[int] = []
        for w in range(k):
            if remaining[w] == 0:
                continue
            cand = [t for t in range(-e, f + 1) if available[(w + t) % k]]
            if cand:
                pivot_w = w
                candidates = cand
                break
            remaining[w] = 0
            skipped += 1
        if pivot_w < 0:
            return make_result(
                rg, [], stats={"reduced_graphs": 0, "pivots_skipped": skipped}
            )

        t = self._choose_offset(candidates, e, f)
        u = (pivot_w + t) % k
        remaining[pivot_w] -= 1
        groups = _reduced_groups(remaining, k, e, f, pivot_w, t)
        positions = [
            ((b - u - 1) % k, b)
            for b in ((u + 1 + off) % k for off in range(k - 1))
            if available[b]
        ]
        sub = solve_reduced_fast(groups, positions)
        grants = [Grant(wavelength=pivot_w, channel=u)] + [
            Grant(wavelength=w, channel=b) for w, b in sub
        ]
        delta = _delta_of_offset(t, e)
        return make_result(
            rg,
            grants,
            stats={
                "reduced_graphs": 1,
                "pivots_skipped": skipped,
                "delta": delta,
                "deficit_bound": deficit_bound(delta, scheme.degree),
            },
        )
