"""Bounded LRU memoization of the per-output scheduling sub-problem.

The paper's decomposition makes every slot a batch of ``N`` independent
sub-problems, each fully determined by ``(request vector, availability mask,
conversion scheme)``.  Under Bernoulli traffic at realistic loads and small
``k``, the same ``(requests, availability)`` states recur constantly — the
request vector is a sparse multiset over ``k`` wavelengths and the
availability mask is usually all-free — so the FA/BFA answer can be reused
instead of recomputed.  The schedulers are deterministic pure functions of
that key, which makes the cached :class:`~repro.types.ScheduleResult`
bit-identical to a fresh computation (tested).

:class:`ScheduleCache` is a thread-safe bounded LRU shared by every caller
that goes through the scheduler wrappers: :class:`~repro.core.distributed.
DistributedScheduler` (and hence :class:`~repro.sim.engine.SlottedSimulator`)
and the :mod:`repro.service` shards.  Grant *policies* stay outside the cache
on purpose: which requester wins a wavelength's channels is stateful
(random / round-robin), while the wavelength→channel matching being cached is
not.

Disable memoization per scheduler with ``FirstAvailableScheduler(cache=None)``
/ ``BreakFirstAvailableScheduler(cache=None)``, or globally with
``configure_default_cache(maxsize=0)``.  See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

from repro.errors import InvalidParameterError
from repro.graphs.conversion import ConversionScheme
from repro.types import ScheduleResult

__all__ = [
    "ScheduleCache",
    "schedule_cache_key",
    "get_default_cache",
    "configure_default_cache",
    "resolve_cache",
]

#: Default capacity of the process-wide shared cache.  At k=16 a key is a
#: few hundred bytes; 4096 entries keep the cache well under a few MB while
#: covering far more states than Bernoulli traffic visits at small k.
DEFAULT_MAXSIZE = 4096


def schedule_cache_key(
    algorithm: str,
    scheme: ConversionScheme,
    request_vector: tuple[int, ...],
    available: tuple[bool, ...],
) -> Hashable:
    """The memo key of one per-output sub-problem.

    Keyed by the algorithm name plus the scheme's *behaviour* — class, ``k``
    and conversion reaches — plus the request-count tuple and availability
    mask, so two scheme objects with identical parameters share entries.  The
    algorithm name matters because two schedulers can return different (both
    maximum) matchings for the same instance, e.g. FA vs BFA on a full-range
    scheme.
    """
    return (
        algorithm,
        type(scheme).__name__,
        scheme.k,
        scheme.e,
        scheme.f,
        request_vector,
        available,
    )


class ScheduleCache:
    """Thread-safe bounded LRU cache of :class:`ScheduleResult` values.

    ``maxsize=0`` disables storage (every lookup misses), which keeps the
    call sites branch-free.  Eviction is strict LRU: a hit refreshes the
    entry, an insert past capacity evicts the least recently used one.
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize < 0:
            raise InvalidParameterError(
                f"cache maxsize must be >= 0, got {maxsize}"
            )
        self.maxsize = int(maxsize)
        self._data: OrderedDict[Hashable, ScheduleResult] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __getstate__(self) -> dict:
        # Picklable for multiprocessing spawn (schedulers travel to shard
        # worker processes): the lock is process-local and the contents are
        # a warm-start optimisation, so both stay behind — the worker gets
        # a cold cache with the same capacity.
        return {"maxsize": self.maxsize}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["maxsize"])

    def __len__(self) -> int:
        # Taken under the lock: len(OrderedDict) is atomic in CPython, but
        # the cache is shared across shard executor threads and the audit in
        # tests/test_concurrency_audit.py holds every reader to the lock.
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable) -> ScheduleResult | None:
        """The cached result for ``key``, refreshing its recency; or None."""
        with self._lock:
            result = self._data.get(key)
            if result is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: Hashable, result: ScheduleResult) -> None:
        """Insert ``result`` under ``key``, evicting LRU entries past capacity."""
        if self.maxsize == 0:
            return
        with self._lock:
            self._data[key] = result
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss/eviction counters."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> dict[str, int]:
        """Snapshot of ``{size, maxsize, hits, misses, evictions}``."""
        with self._lock:
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"ScheduleCache(size={s['size']}/{s['maxsize']}, "
            f"hits={s['hits']}, misses={s['misses']})"
        )


_default_cache = ScheduleCache()


def get_default_cache() -> ScheduleCache:
    """The process-wide cache shared by schedulers constructed with
    ``cache=True`` (their default)."""
    return _default_cache


def resolve_cache(
    cache: "ScheduleCache | bool | None",
) -> ScheduleCache | None:
    """Normalize a scheduler's ``cache`` argument.

    ``True`` → the shared default cache, ``False``/``None`` → memoization
    off, a :class:`ScheduleCache` → itself.
    """
    if cache is True:
        return get_default_cache()
    if cache is False or cache is None:
        return None
    if not isinstance(cache, ScheduleCache):
        raise InvalidParameterError(
            f"cache must be a ScheduleCache, bool or None, got {cache!r}"
        )
    return cache


def configure_default_cache(maxsize: int = DEFAULT_MAXSIZE) -> ScheduleCache:
    """Replace the shared default cache with a fresh one of ``maxsize``.

    ``maxsize=0`` globally disables memoization for schedulers built after
    the call (existing scheduler instances keep the cache object they
    resolved at construction).  Returns the new cache.
    """
    global _default_cache
    _default_cache = ScheduleCache(maxsize)
    return _default_cache
