"""Vectorized batch First Available across many output fibers.

The distributed schedulers are embarrassingly parallel across the ``N``
output fibers.  On real hardware each output has its own scheduler; in a
software simulation the same parallelism is best exploited by *vectorizing*
over outputs with NumPy — one ``(M, k)`` request matrix, all ``M`` outputs
advanced channel-by-channel in lock step, with the per-row wavelength
pointers updated by boolean masks instead of Python loops.

The result is bit-identical to running :func:`~repro.core.first_available.
first_available_fast` per row (tested), with one NumPy pass over ``k``
channels instead of ``M`` Python passes; the ``BATCH`` benchmark measures
the speedup.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["batch_first_available"]

# Below this many rows, NumPy per-call dispatch costs more than the whole
# sweep; a plain-Python pass over the same greedy is far faster and remains
# bit-identical (the two paths are tested against each other).
_SCALAR_ROWS = 128


def _fa_scalar(
    req: np.ndarray, avail: np.ndarray, e: int, f: int
) -> np.ndarray:
    """Per-row First Available; same greedy as the vectorized sweep."""
    m_rows, k = req.shape
    rem = req.tolist()
    avail_l = avail.tolist()
    out = [[-1] * k for _ in range(m_rows)]
    for m in range(m_rows):
        c = rem[m]
        a = avail_l[m]
        row = out[m]
        p = 0
        for b in range(k):
            lo = b - f
            if p < lo:
                p = lo
            hi = b + e
            if hi > k - 1:
                hi = k - 1
            while p <= hi and c[p] == 0:
                p += 1
            if a[b] and p <= hi:
                c[p] -= 1
                row[b] = p
    return np.asarray(out, dtype=np.int64)


def batch_first_available(
    request_matrix: np.ndarray,
    available: np.ndarray | None,
    e: int,
    f: int,
    *,
    check: bool = True,
) -> np.ndarray:
    """First Available over ``M`` output fibers at once (non-circular).

    Parameters
    ----------
    request_matrix:
        ``(M, k)`` integer array; entry ``(m, w)`` counts requests on
        ``λ_w`` destined to output ``m``.
    available:
        Optional ``(M, k)`` boolean array of free channels (default: all).
    e, f:
        Conversion reach (clipped non-circular windows, as in
        :func:`first_available_fast`).
    check:
        When False, skip input validation (shape / sign / reach checks).
        For inner-loop callers whose inputs are pre-validated — the fast
        simulator and the service tick loop; malformed input then produces
        undefined results instead of :class:`InvalidParameterError`.

    Returns
    -------
    ``(M, k)`` integer array ``assign`` where ``assign[m, b]`` is the input
    wavelength granted output channel ``b`` of output ``m``, or ``-1`` if
    the channel is unused.
    """
    req = np.asarray(request_matrix)
    if check:
        if req.ndim != 2:
            raise InvalidParameterError(
                f"request matrix must be 2-D (M, k), got shape {req.shape}"
            )
        if np.any(req < 0):
            raise InvalidParameterError("request counts must be nonnegative")
    m_rows, k = req.shape
    if available is None:
        avail = np.ones((m_rows, k), dtype=bool)
    else:
        avail = np.asarray(available, dtype=bool)
        if check and avail.shape != (m_rows, k):
            raise InvalidParameterError(
                f"availability shape {avail.shape} != request shape {(m_rows, k)}"
            )
    if check:
        if e < 0 or f < 0:
            raise InvalidParameterError("conversion reaches must be nonnegative")
        if e + f + 1 > k:
            raise InvalidParameterError(
                f"conversion degree {e + f + 1} exceeds k={k}"
            )

    if m_rows <= _SCALAR_ROWS:
        return _fa_scalar(req, avail, e, f)

    remaining = req.astype(np.int64).copy()
    assign = np.full((m_rows, k), -1, dtype=np.int64)
    # Per-row wavelength pointer: smallest wavelength that may still serve a
    # future channel.  Identical role to the scalar pointer in
    # first_available_fast; each row's pointer only ever advances, so total
    # advancement work is O(M k) in vectorized chunks.
    p = np.zeros(m_rows, dtype=np.int64)
    rows = np.arange(m_rows)
    for b in range(k):
        lo = max(0, b - f)
        hi = min(k - 1, b + e)
        np.maximum(p, lo, out=p)
        # Advance pointers over exhausted wavelengths inside the window.
        while True:
            inside = p <= hi
            need = inside & (remaining[rows, np.minimum(p, k - 1)] == 0)
            if not need.any():
                break
            p[need] += 1
        grant = avail[:, b] & (p <= hi) & (remaining[rows, np.minimum(p, k - 1)] > 0)
        if grant.any():
            g_rows = rows[grant]
            g_wl = p[grant]
            remaining[g_rows, g_wl] -= 1
            assign[g_rows, b] = g_wl
    return assign
