"""Batch First Available across many output fibers.

The distributed schedulers are embarrassingly parallel across the ``N``
output fibers.  On real hardware each output has its own scheduler; in a
software simulation the same parallelism is best exploited by fusing the
per-output loop into one pass over the whole ``(M, k)`` request matrix.

This module is the stable public entry point: it validates inputs,
normalizes them to the contiguous array form every backend shares, and
dispatches to the process-wide kernel backend
(:mod:`repro.core.kernels`) — a Numba-compiled sweep, the lock-step NumPy
vectorization, or the plain-Python greedy, selected by
``REPRO_KERNEL_BACKEND`` / availability.  All backends are bit-identical
to running :func:`~repro.core.first_available.first_available_fast` per
row (tested); which one runs is purely a speed knob.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.errors import InvalidParameterError

__all__ = ["batch_first_available"]


def batch_first_available(
    request_matrix: np.ndarray,
    available: np.ndarray | None,
    e: int,
    f: int,
    *,
    check: bool = True,
) -> np.ndarray:
    """First Available over ``M`` output fibers at once (non-circular).

    Parameters
    ----------
    request_matrix:
        ``(M, k)`` integer array; entry ``(m, w)`` counts requests on
        ``λ_w`` destined to output ``m``.
    available:
        Optional ``(M, k)`` boolean array of free channels (default: all).
    e, f:
        Conversion reach (clipped non-circular windows, as in
        :func:`first_available_fast`).
    check:
        When False, skip input validation (shape / sign / reach checks).
        For inner-loop callers whose inputs are pre-validated — the fast
        simulator and the service tick loop; malformed input then produces
        undefined results instead of :class:`InvalidParameterError`.

    Returns
    -------
    ``(M, k)`` integer array ``assign`` where ``assign[m, b]`` is the input
    wavelength granted output channel ``b`` of output ``m``, or ``-1`` if
    the channel is unused.
    """
    req = np.asarray(request_matrix)
    if check:
        if req.ndim != 2:
            raise InvalidParameterError(
                f"request matrix must be 2-D (M, k), got shape {req.shape}"
            )
        if np.any(req < 0):
            raise InvalidParameterError("request counts must be nonnegative")
    m_rows, k = req.shape
    if available is None:
        avail = np.ones((m_rows, k), dtype=bool)
    else:
        avail = np.ascontiguousarray(available, dtype=bool)
        if check and avail.shape != (m_rows, k):
            raise InvalidParameterError(
                f"availability shape {avail.shape} != request shape {(m_rows, k)}"
            )
    if check:
        if e < 0 or f < 0:
            raise InvalidParameterError("conversion reaches must be nonnegative")
        if e + f + 1 > k:
            raise InvalidParameterError(
                f"conversion degree {e + f + 1} exceeds k={k}"
            )
    return kernels.get_backend().fa_rows(
        np.ascontiguousarray(req, dtype=np.int64), avail, int(e), int(f)
    )
