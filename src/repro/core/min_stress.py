"""Minimum-converter-stress optimal scheduler.

All of the paper's schedulers return *a* maximum matching; the ``ABLATE``
experiment shows they differ in how far they retune signals (the conversion
offset ``channel − wavelength``).  Wider retuning costs optical
signal-to-noise margin, so among maximum matchings the one with the least
total retuning is preferable when the slot budget allows a heavier
algorithm.

:class:`MinStressScheduler` finds it exactly: a minimum-cost maximum
matching on the request graph, solved as a rectangular assignment problem
(:func:`scipy.optimize.linear_sum_assignment`) where a conversion edge costs
its squared offset and a non-edge costs a prohibitive constant ``M``.  With
``M`` larger than any achievable total edge cost, minimizing total cost
first maximizes cardinality and then minimizes retuning — so the result is
*always* a maximum matching (validated against Hopcroft–Karp in the tests),
at ``O(n³)`` per output fiber instead of ``O(dk)``.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.base import Scheduler, make_result
from repro.graphs.request_graph import RequestGraph
from repro.types import Grant, ScheduleResult
from repro.util.intervals import canonical_signed_residue

__all__ = ["MinStressScheduler", "total_stress"]


def total_stress(rg: RequestGraph, result: ScheduleResult) -> int:
    """Sum of squared conversion offsets over a schedule's grants."""
    scheme = rg.scheme
    stress = 0
    for g in result.grants:
        t = canonical_signed_residue(
            g.channel - g.wavelength, scheme.k, -scheme.e, scheme.f
        )
        if t is None:  # full-range grants may sit outside the (e, f) window
            t = min(
                (g.channel - g.wavelength) % scheme.k,
                (g.wavelength - g.channel) % scheme.k,
            )
        stress += t * t
    return stress


class MinStressScheduler(Scheduler):
    """Optimal scheduler minimizing total squared conversion offset.

    Works for any conversion scheme.  Cardinality always equals the maximum
    matching; among maximum matchings, total squared retuning is minimal.
    """

    name = "min-stress"

    def schedule(self, rg: RequestGraph) -> ScheduleResult:
        n = rg.n_requests
        k = rg.k
        if n == 0:
            return make_result(rg, [])
        scheme = rg.scheme
        # Prohibitive cost: larger than any total of real edge costs, so the
        # assignment never trades a real edge for two cheap non-edges.
        reach = max(scheme.e, scheme.f, k)
        big_m = (reach * reach) * (min(n, k) + 1) + 1
        cost = np.full((n, k), float(big_m))
        for a in range(n):
            w = rg.wavelength_of(a)
            for b in rg.adjacency_of_request(a):
                t = canonical_signed_residue(b - w, k, -scheme.e, scheme.f)
                offset = (
                    t
                    if t is not None
                    else min((b - w) % k, (w - b) % k)
                )
                cost[a, b] = float(offset * offset)
        rows, cols = linear_sum_assignment(cost)
        grants = [
            Grant(wavelength=rg.wavelength_of(a), channel=int(b))
            for a, b in zip(rows, cols)
            if cost[a, b] < big_m
        ]
        return make_result(
            rg,
            grants,
            stats={"assignment_size": int(len(rows))},
        )
