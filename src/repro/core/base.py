"""Scheduler interface and schedule validation.

A *scheduler* resolves the output contention of a single output fiber for a
single time slot: given a request graph it decides which requests are granted
and which output wavelength channel each grant uses.  Every scheduler in this
package validates its own output before returning it, so an algorithmic
defect surfaces as a :class:`~repro.errors.ScheduleError` rather than a
silently wrong simulation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Mapping

from repro.errors import ScheduleError
from repro.graphs.request_graph import RequestGraph
from repro.types import Grant, ScheduleResult

__all__ = ["Scheduler", "validate_schedule", "make_result"]


def validate_schedule(rg: RequestGraph, grants: Iterable[Grant]) -> None:
    """Raise :class:`ScheduleError` unless ``grants`` is a feasible schedule.

    Feasible means: each grant's channel is distinct and available, each
    grant respects the conversion adjacency, and no wavelength is granted
    more times than it was requested.
    """
    scheme = rg.scheme
    used_channels: set[int] = set()
    granted_per_wavelength = [0] * rg.k
    for g in grants:
        if not 0 <= g.wavelength < rg.k:
            raise ScheduleError(f"grant wavelength {g.wavelength} outside [0, {rg.k})")
        if not 0 <= g.channel < rg.k:
            raise ScheduleError(f"grant channel {g.channel} outside [0, {rg.k})")
        if g.channel in used_channels:
            raise ScheduleError(f"channel {g.channel} assigned twice")
        used_channels.add(g.channel)
        if not rg.available[g.channel]:
            raise ScheduleError(f"channel {g.channel} is occupied")
        if not scheme.can_convert(g.wavelength, g.channel):
            raise ScheduleError(
                f"λ{g.wavelength} cannot be converted to channel {g.channel} "
                f"under {scheme!r}"
            )
        granted_per_wavelength[g.wavelength] += 1
    for w, (granted, requested) in enumerate(
        zip(granted_per_wavelength, rg.request_vector)
    ):
        if granted > requested:
            raise ScheduleError(
                f"λ{w}: granted {granted} requests but only {requested} arrived"
            )


def make_result(
    rg: RequestGraph,
    grants: Iterable[Grant],
    stats: Mapping[str, int] | None = None,
) -> ScheduleResult:
    """Validate ``grants`` against ``rg`` and wrap them in a
    :class:`ScheduleResult`."""
    grants = tuple(grants)
    validate_schedule(rg, grants)
    return ScheduleResult(
        grants=grants,
        request_vector=rg.request_vector,
        available=rg.available,
        stats=dict(stats or {}),
    )


class Scheduler(ABC):
    """Contention-resolution algorithm for one output fiber.

    Subclasses implement :meth:`schedule`; :attr:`name` identifies the
    algorithm in experiment reports.  Schedulers are stateless with respect
    to slots (grant fairness across slots is handled by the grant policies in
    :mod:`repro.core.policies`), so one instance may serve many output fibers
    concurrently.
    """

    #: Short identifier used in experiment tables.
    name: str = "scheduler"

    @abstractmethod
    def schedule(self, rg: RequestGraph) -> ScheduleResult:
        """Resolve contention for the requests in ``rg``.

        Returns a validated :class:`ScheduleResult`.  Raises
        :class:`~repro.errors.InvalidParameterError` if the scheduler does
        not support ``rg.scheme`` (e.g. the First Available scheduler on a
        circular scheme).
        """

    def supports(self, rg: RequestGraph) -> bool:
        """Whether this scheduler accepts ``rg``'s conversion scheme."""
        try:
            self._check_scheme(rg)
        except Exception:
            return False
        return True

    def _check_scheme(self, rg: RequestGraph) -> None:
        """Hook: raise if ``rg.scheme`` is unsupported.  Default: accept."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
