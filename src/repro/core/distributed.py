"""Distributed slot scheduling across all output fibers (paper Section I).

Under unicast traffic the requests arriving in one slot partition into ``N``
subsets by destination fiber, and "the decision of accepting a request or not
in one subset does not affect the decisions in other subsets".  The
:class:`DistributedScheduler` exploits exactly this: one independent
per-output scheduler instance per fiber, optionally executed concurrently,
with total per-slot work ``O(N · k)`` / ``O(N · dk)`` — i.e. ``O(k)`` or
``O(dk)`` *per scheduling unit*, independent of interconnect size ``N``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.base import Scheduler, make_result, validate_schedule
from repro.core.break_first_available import bfa_fast
from repro.core.first_available import first_available_fast
from repro.core.policies import FixedPriorityPolicy, GrantPolicy
from repro.errors import InvalidParameterError
from repro.graphs.conversion import (
    CircularConversion,
    ConversionScheme,
    NonCircularConversion,
)
from repro.graphs.request_graph import RequestGraph
from repro.types import ScheduleResult
from repro.util.validation import (
    check_index,
    check_nonnegative_int,
    check_positive_int,
)

__all__ = [
    "SlotRequest",
    "GrantedRequest",
    "SlotSchedule",
    "DistributedScheduler",
    "validate_slot_request",
    "distribute_grants",
    "schedule_output_fiber",
]


@dataclass(frozen=True, slots=True, order=True)
class SlotRequest:
    """One connection request offered to the interconnect in a slot.

    A request occupies input channel ``(input_fiber, wavelength)`` and is
    destined for ``output_fiber`` (unicast; the destination *channel* is the
    scheduler's choice).  ``duration`` is the number of slots the connection
    holds if granted (1 = single-slot optical packet).  ``priority`` is the
    QoS class, 0 = highest (the paper's future work): higher classes are
    scheduled first and lower classes only see their leftover channels.
    ``tenant`` identifies the traffic owner for weighted fair sharing and
    per-tenant admission/accounting (0 = the default single tenant; the
    pre-tenant wire and journal encodings map to it).
    """

    input_fiber: int
    wavelength: int
    output_fiber: int
    duration: int = 1
    priority: int = 0
    tenant: int = 0


@dataclass(frozen=True, slots=True)
class GrantedRequest:
    """A granted request together with its assigned output channel."""

    request: SlotRequest
    channel: int


@dataclass(frozen=True)
class SlotSchedule:
    """Outcome of scheduling one slot across all output fibers."""

    granted: tuple[GrantedRequest, ...]
    rejected: tuple[SlotRequest, ...]
    per_output: dict[int, ScheduleResult] = field(default_factory=dict)

    @property
    def n_granted(self) -> int:
        """Total granted requests this slot."""
        return len(self.granted)

    @property
    def n_rejected(self) -> int:
        """Total rejected requests this slot (output contention losses)."""
        return len(self.rejected)


def validate_slot_request(
    request: SlotRequest, n_fibers: int, k: int
) -> SlotRequest:
    """Raise :class:`InvalidParameterError` unless ``request`` fits an
    ``n_fibers``-fiber interconnect with ``k`` wavelengths; returns it."""
    check_index(request.input_fiber, n_fibers, "input_fiber")
    check_index(request.output_fiber, n_fibers, "output_fiber")
    check_index(request.wavelength, k, "wavelength")
    check_positive_int(request.duration, "duration")
    check_nonnegative_int(request.priority, "priority")
    check_nonnegative_int(request.tenant, "tenant")
    return request


def distribute_grants(
    policy: GrantPolicy,
    output_fiber: int,
    requests: Sequence[SlotRequest],
    grants: Sequence,
) -> tuple[list[GrantedRequest], list[SlotRequest]]:
    """Hand a scheduler's wavelength-level grants to specific requesters.

    Group granted channels by wavelength, then let the policy pick the
    winners of each wavelength's channels.  This is the single code path
    shared by the batch :class:`DistributedScheduler` and the online
    :mod:`repro.service` shards, so both make identical decisions.
    """
    channels_by_wavelength: dict[int, list[int]] = {}
    for g in grants:
        channels_by_wavelength.setdefault(g.wavelength, []).append(g.channel)
    requests_by_wavelength: dict[int, list[SlotRequest]] = {}
    for r in requests:
        requests_by_wavelength.setdefault(r.wavelength, []).append(r)

    granted: list[GrantedRequest] = []
    rejected: list[SlotRequest] = []
    for w, contenders in sorted(requests_by_wavelength.items()):
        channels = sorted(channels_by_wavelength.get(w, []))
        by_fiber = {r.input_fiber: r for r in contenders}
        winners = policy.select_requests(
            output_fiber, w, contenders, len(channels)
        )
        winner_set = set(winners)
        for fiber, channel in zip(sorted(winner_set), channels):
            granted.append(GrantedRequest(by_fiber[fiber], channel))
        rejected.extend(r for r in contenders if r.input_fiber not in winner_set)
    return granted, rejected


def _wraparound_usable(
    k: int,
    e: int,
    f: int,
    request_vector: Sequence[int],
    available: Sequence[bool],
) -> bool:
    """Whether any requested wavelength's circular window has a *usable*
    wraparound edge — i.e. a wrapped channel that is currently available.

    When this is ``False`` the circular request graph, restricted to the
    available channels, is identical to the non-circular (clipped) one:
    every edge crossing the band boundary lands on an unavailable channel,
    so the graph is convex and the First Available pass is exact.
    """
    for w in range(k):
        if not request_vector[w]:
            continue
        lo = w - e
        hi = w + f
        if lo < 0 and any(available[b] for b in range(k + lo, k)):
            return True
        if hi >= k and any(available[b] for b in range(hi - k + 1)):
            return True
    return False


def _schedule_narrowed(
    scheme: ConversionScheme,
    requests: Sequence[SlotRequest],
    available: Sequence[bool],
) -> list:
    """Schedule one degraded-reach group directly on the fast kernels.

    Non-circular narrowed schemes go straight to the ``O(k)`` First
    Available pass.  Circular ones use the ``O(dk)`` BFA pass — except when
    every wraparound edge of the requested wavelengths is faulted/occupied,
    in which case the graph is convex and FA suffices (the BFA → FA
    fallback of the fault model; see ``docs/ROBUSTNESS.md``).
    """
    vec = [0] * scheme.k
    for r in requests:
        vec[r.wavelength] += 1
    e, f = scheme.e, scheme.f
    if isinstance(scheme, CircularConversion) and _wraparound_usable(
        scheme.k, e, f, vec, available
    ):
        grants, _stats = bfa_fast(vec, available, e, f)
        return grants
    return first_available_fast(vec, available, e, f, check=False)


def _degradation_groups(
    scheme: ConversionScheme,
    narrowed: Mapping[int, ConversionScheme],
    requests: Sequence[SlotRequest],
) -> list[tuple[ConversionScheme, list[SlotRequest]]]:
    """Partition ``requests`` by effective converter reach.

    Degraded groups come first, most constrained first (ascending effective
    degree), so the narrowest converters get first pick of the channels and
    are not starved by healthy inputs; the nominal-reach group runs last
    under the caller's configured scheduler.
    """
    by_reach: dict[tuple[int, int], tuple[ConversionScheme, list[SlotRequest]]] = {}
    nominal: list[SlotRequest] = []
    for r in requests:
        eff = narrowed.get(r.input_fiber)
        if eff is None:
            nominal.append(r)
        else:
            entry = by_reach.setdefault((eff.e, eff.f), (eff, []))
            entry[1].append(r)
    groups = [
        by_reach[key]
        for key in sorted(by_reach, key=lambda ef: (ef[0] + ef[1], ef))
    ]
    if nominal:
        groups.append((scheme, nominal))
    return groups


def schedule_output_fiber(
    scheme: ConversionScheme,
    scheduler: Scheduler,
    policy: GrantPolicy,
    output_fiber: int,
    requests: Sequence[SlotRequest],
    available: Sequence[bool] | None,
    degradations: "Mapping[int, tuple[int, int]] | None" = None,
) -> tuple[ScheduleResult, list[GrantedRequest], list[SlotRequest]]:
    """Resolve one output fiber's contention for one slot.

    Runs the per-output scheduler on the requests' wavelength vector (with
    strict-priority layering when several QoS classes are present) and
    distributes the granted channels to individual requesters via the
    policy.  Pure function of its inputs plus any policy state — the shared
    kernel of :class:`DistributedScheduler` and the service shards.

    ``degradations`` maps input fibers to a degraded converter reach
    ``(e', f')`` (see :mod:`repro.faults`).  Affected requests are scheduled
    on the narrowed scheme ``scheme.degraded(e', f')``, layered most
    constrained first on the running availability mask; unaffected requests
    keep the configured scheduler.  Without degradations the fast paths
    below are byte-for-byte the pre-fault behaviour.
    """
    requests = list(requests)
    narrowed: dict[int, ConversionScheme] = {}
    if degradations:
        for fiber, (e2, f2) in degradations.items():
            eff = scheme.degraded(e2, f2)
            if eff is not scheme:
                narrowed[fiber] = eff
        if narrowed and not any(r.input_fiber in narrowed for r in requests):
            narrowed = {}
    if narrowed:
        return _schedule_output_fiber_degraded(
            scheme, scheduler, policy, output_fiber, requests, available,
            narrowed,
        )
    classes = sorted({r.priority for r in requests})
    if len(classes) <= 1:
        rg = RequestGraph.from_wavelengths(
            scheme, (r.wavelength for r in requests), available
        )
        result = scheduler.schedule(rg)
        # Trust boundary: the per-output result may come from a third-party
        # Scheduler — revalidate before handing out channels, so a defective
        # scheduler fails loudly instead of silently wasting channels or
        # granting phantom requests.
        validate_schedule(rg, result.grants)
        granted, rejected = distribute_grants(
            policy, output_fiber, requests, result.grants
        )
        return result, granted, rejected

    # Strict-priority layering (paper future work): schedule class 0 on
    # the full mask, each lower class on the channels left over.
    mask = list(available) if available is not None else [True] * scheme.k
    granted: list[GrantedRequest] = []
    rejected: list[SlotRequest] = []
    all_grants = []
    for priority in classes:
        class_requests = [r for r in requests if r.priority == priority]
        rg = RequestGraph.from_wavelengths(
            scheme, (r.wavelength for r in class_requests), mask
        )
        result = scheduler.schedule(rg)
        validate_schedule(rg, result.grants)
        g, rej = distribute_grants(
            policy, output_fiber, class_requests, result.grants
        )
        granted.extend(g)
        rejected.extend(rej)
        all_grants.extend(result.grants)
        for grant in result.grants:
            mask[grant.channel] = False
    # Combined per-output result for reporting (validated against the
    # union request graph with the original availability).
    rg_all = RequestGraph.from_wavelengths(
        scheme, (r.wavelength for r in requests), available
    )
    combined = make_result(
        rg_all, all_grants, stats={"priority_classes": len(classes)}
    )
    return combined, granted, rejected


def _schedule_output_fiber_degraded(
    scheme: ConversionScheme,
    scheduler: Scheduler,
    policy: GrantPolicy,
    output_fiber: int,
    requests: list[SlotRequest],
    available: Sequence[bool] | None,
    narrowed: Mapping[int, ConversionScheme],
) -> tuple[ScheduleResult, list[GrantedRequest], list[SlotRequest]]:
    """Degraded-mode layering: priority classes outer, converter reach inner.

    Each layer is scheduled on the channels its predecessors left over, and
    its grants are revalidated against the layer's own (narrowed) request
    graph, so a degraded converter can never be granted a channel outside
    its remaining reach.
    """
    classes = sorted({r.priority for r in requests})
    mask = list(available) if available is not None else [True] * scheme.k
    granted: list[GrantedRequest] = []
    rejected: list[SlotRequest] = []
    all_grants = []
    for priority in classes:
        class_requests = [r for r in requests if r.priority == priority]
        for scheme_g, group in _degradation_groups(
            scheme, narrowed, class_requests
        ):
            if scheme_g is scheme:
                rg = RequestGraph.from_wavelengths(
                    scheme, (r.wavelength for r in group), mask
                )
                result = scheduler.schedule(rg)
                grants = result.grants
            else:
                grants = _schedule_narrowed(scheme_g, group, mask)
                rg = RequestGraph.from_wavelengths(
                    scheme_g, (r.wavelength for r in group), mask
                )
            validate_schedule(rg, grants)
            g, rej = distribute_grants(policy, output_fiber, group, grants)
            granted.extend(g)
            rejected.extend(rej)
            all_grants.extend(grants)
            for grant in grants:
                mask[grant.channel] = False
    # Narrowed adjacency is a subset of the nominal adjacency and the layer
    # masks are disjoint, so the union validates against the nominal graph.
    rg_all = RequestGraph.from_wavelengths(
        scheme, (r.wavelength for r in requests), available
    )
    combined = make_result(
        rg_all,
        all_grants,
        stats={
            "priority_classes": len(classes),
            "degraded_inputs": len(narrowed),
        },
    )
    return combined, granted, rejected


class DistributedScheduler:
    """Per-output-fiber distributed scheduling for an ``N × N`` interconnect.

    Parameters
    ----------
    n_fibers:
        Interconnect size ``N``.
    scheme:
        Wavelength-conversion scheme (shared by all output fibers).
    scheduler:
        Per-output contention-resolution algorithm (stateless; shared).
    policy:
        Grant policy breaking ties among same-wavelength requesters.
    parallel:
        Run the ``N`` independent per-output schedulers in a thread pool.
        Results are identical to the sequential mode; this mirrors the
        paper's "fast distributed scheduling" where each output fiber
        schedules itself.
    max_workers:
        Thread-pool width when ``parallel`` (default: executor's choice).

    The thread pool is created lazily on the first parallel slot and reused
    for every subsequent slot (constructing a pool per slot costs more than
    the per-slot scheduling work itself).  Call :meth:`close` — or use the
    instance as a context manager — to release the worker threads early;
    otherwise they are reclaimed at interpreter exit.
    """

    def __init__(
        self,
        n_fibers: int,
        scheme: ConversionScheme,
        scheduler: Scheduler,
        policy: GrantPolicy | None = None,
        parallel: bool = False,
        max_workers: int | None = None,
    ) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        self.scheme = scheme
        self.scheduler = scheduler
        self.policy = policy if policy is not None else FixedPriorityPolicy()
        self.parallel = bool(parallel)
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-distributed",
            )
        return self._pool

    def close(self) -> None:
        """Shut down the reusable thread pool (idempotent; a later parallel
        slot transparently recreates it)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "DistributedScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _validate_requests(self, requests: Sequence[SlotRequest]) -> None:
        seen_channels: set[tuple[int, int]] = set()
        for r in requests:
            validate_slot_request(r, self.n_fibers, self.scheme.k)
            channel = (r.input_fiber, r.wavelength)
            if channel in seen_channels:
                raise InvalidParameterError(
                    f"input channel (fiber {r.input_fiber}, λ{r.wavelength}) "
                    "carries two requests in one slot"
                )
            seen_channels.add(channel)

    def _schedule_output(
        self,
        output_fiber: int,
        requests: list[SlotRequest],
        available: Sequence[bool] | None,
        degradations: "Mapping[int, tuple[int, int]] | None" = None,
    ) -> tuple[int, ScheduleResult, list[GrantedRequest], list[SlotRequest]]:
        result, granted, rejected = schedule_output_fiber(
            self.scheme, self.scheduler, self.policy, output_fiber, requests,
            available, degradations,
        )
        return output_fiber, result, granted, rejected

    def schedule_slot(
        self,
        requests: Sequence[SlotRequest],
        availability: "Mapping[int, Sequence[bool]] | np.ndarray | None" = None,
        degradations: "Mapping[int, tuple[int, int]] | None" = None,
    ) -> SlotSchedule:
        """Schedule one slot.

        ``availability`` marks each output fiber's free channels (Section-V
        occupied channels): either a mapping from output fiber to a length-k
        mask (missing fibers default to all-free) or an ``(N, k)`` boolean
        array — the form the simulation engines maintain natively, row
        ``o`` being output ``o``'s mask.

        ``degradations`` maps input fibers to a degraded converter reach
        ``(e', f')``; it applies to that input's requests on every output
        fiber (the converter sits at the input).  See
        :func:`schedule_output_fiber`.
        """
        self._validate_requests(requests)
        by_output: dict[int, list[SlotRequest]] = {}
        for r in requests:
            by_output.setdefault(r.output_fiber, []).append(r)

        if availability is None:
            jobs = [
                (o, reqs, None, degradations)
                for o, reqs in sorted(by_output.items())
            ]
        elif isinstance(availability, np.ndarray):
            if availability.shape != (self.n_fibers, self.scheme.k):
                raise InvalidParameterError(
                    f"availability array shape {availability.shape} != "
                    f"{(self.n_fibers, self.scheme.k)}"
                )
            jobs = [
                (o, reqs, availability[o], degradations)
                for o, reqs in sorted(by_output.items())
            ]
        else:
            jobs = [
                (o, reqs, availability.get(o), degradations)
                for o, reqs in sorted(by_output.items())
            ]
        if self.parallel and len(jobs) > 1:
            pool = self._ensure_pool()
            outcomes = list(pool.map(lambda j: self._schedule_output(*j), jobs))
        else:
            outcomes = [self._schedule_output(*j) for j in jobs]

        per_output: dict[int, ScheduleResult] = {}
        granted: list[GrantedRequest] = []
        rejected: list[SlotRequest] = []
        for o, result, g, rej in outcomes:
            per_output[o] = result
            granted.extend(g)
            rejected.extend(rej)
        return SlotSchedule(
            granted=tuple(granted),
            rejected=tuple(rejected),
            per_output=per_output,
        )
