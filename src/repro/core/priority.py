"""Priority (QoS) scheduling — the paper's stated future work.

The conclusion of the paper names "incorporating different QoS requirements,
such as different priorities among connection requests" as future work.  This
module implements the natural strict-priority layering on top of any of the
optimal schedulers:

* requests are partitioned into priority classes (class 0 highest);
* class 0 is scheduled alone on the full availability mask — it gets a
  *maximum* matching as if lower classes did not exist;
* each lower class is then scheduled on the channels its superiors left
  free (exactly the Section-V occupied-channel machinery).

Strict layering maximizes high-priority throughput first; total throughput
across classes may be below the unprioritized maximum (the usual price of
strict priority), which the ``QOS`` experiment quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.base import Scheduler
from repro.errors import InvalidParameterError
from repro.graphs.conversion import ConversionScheme
from repro.graphs.request_graph import RequestGraph
from repro.types import ScheduleResult

__all__ = ["PrioritySchedule", "PriorityScheduler"]


@dataclass(frozen=True)
class PrioritySchedule:
    """Per-class results of one prioritized scheduling pass."""

    per_class: tuple[ScheduleResult, ...]

    @property
    def n_classes(self) -> int:
        """Number of priority classes scheduled."""
        return len(self.per_class)

    @property
    def n_granted(self) -> int:
        """Total grants across classes."""
        return sum(r.n_granted for r in self.per_class)

    @property
    def n_requested(self) -> int:
        """Total requests across classes."""
        return sum(r.n_requested for r in self.per_class)

    def granted_of(self, priority: int) -> int:
        """Grants of one class (0 = highest)."""
        return self.per_class[priority].n_granted

    def used_channels(self) -> frozenset[int]:
        """Channels consumed by any class."""
        return frozenset(
            g.channel for r in self.per_class for g in r.grants
        )


class PriorityScheduler:
    """Strict-priority layering over a per-output scheduler.

    Parameters
    ----------
    scheduler:
        The contention-resolution algorithm used for each class.  Must be
        optimal (FA/BFA/Hopcroft–Karp) for the per-class maximality
        guarantee to hold; the single-break approximation is accepted but
        the guarantee weakens to its Theorem-3 bound per class.
    """

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler

    def schedule(
        self,
        scheme: ConversionScheme,
        class_vectors: Sequence[Sequence[int]],
        available: Sequence[bool] | None = None,
    ) -> PrioritySchedule:
        """Schedule the priority classes of one output fiber for one slot.

        ``class_vectors[c]`` is the request vector of priority class ``c``
        (0 = highest).  Returns one :class:`ScheduleResult` per class; lower
        classes see the channels left over by higher ones.
        """
        if not class_vectors:
            raise InvalidParameterError("at least one priority class required")
        mask = list(available) if available is not None else [True] * scheme.k
        if len(mask) != scheme.k:
            raise InvalidParameterError(
                f"availability mask length {len(mask)} != k={scheme.k}"
            )
        results: list[ScheduleResult] = []
        for vector in class_vectors:
            rg = RequestGraph(scheme, vector, mask)
            result = self.scheduler.schedule(rg)
            results.append(result)
            for g in result.grants:
                mask[g.channel] = False
        return PrioritySchedule(per_class=tuple(results))
