"""Grant policies: which of several same-wavelength requests wins.

The schedulers decide *how many* requests on each wavelength are granted
(same-wavelength requests are interchangeable for matching size, paper
Section III).  When several input fibers offered requests on that wavelength,
a policy picks the winners.  The paper recommends random selection or
round-robin for fairness, citing the electronic-switch schedulers of
McKeown et al. [7][8].
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Hashable, Mapping, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.util.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.distributed import SlotRequest

__all__ = [
    "GrantPolicy",
    "FixedPriorityPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "WeightedFairPolicy",
]


class GrantPolicy(ABC):
    """Selects ``n`` winners among the requesters of one wavelength on one
    output fiber.  Implementations may keep per-(output, wavelength) state
    across slots (round-robin) but must not share state across output fibers,
    so the per-output schedulers stay independent ("distributed")."""

    #: True when every piece of mutable state is keyed by output fiber, so
    #: per-worker policy instances over disjoint shards behave exactly like
    #: one shared instance (multi-process placement relies on this).
    state_partitioned_by_output: bool = True

    @abstractmethod
    def select(
        self,
        output_fiber: int,
        wavelength: int,
        requesters: Sequence[Hashable],
        n: int,
    ) -> list[Hashable]:
        """Return ``min(n, len(requesters))`` distinct winners."""

    def select_requests(
        self,
        output_fiber: int,
        wavelength: int,
        requests: "Sequence[SlotRequest]",
        n: int,
    ) -> list[int]:
        """Pick the winning *input fibers* among full requests.

        :func:`~repro.core.distributed.distribute_grants` calls this form so
        policies can see request attributes beyond the requester id (tenant,
        priority).  The default delegates to :meth:`select` over the sorted
        input-fiber ids — byte-identical to the historical behaviour for
        every id-based policy.
        """
        return self.select(
            output_fiber,
            wavelength,
            sorted(r.input_fiber for r in requests),
            n,
        )

    def export_state(self) -> object | None:
        """JSON-encodable snapshot of the policy's mutable state.

        ``None`` for stateless policies (the default).  The durability
        layer persists this in shard snapshots and the simulator in
        :meth:`~repro.sim.engine.SlottedSimulator.export_state`, so a
        recovered run replays the same winner sequence.
        """
        return None

    def restore_state(self, state: object | None) -> None:
        """Inverse of :meth:`export_state` (accepts its JSON round-trip)."""
        if state is not None:
            raise InvalidParameterError(
                f"{type(self).__name__} is stateless; cannot restore "
                f"{state!r}"
            )

    def export_output_state(self, output_fiber: int) -> object | None:
        """The slice of :meth:`export_state` keyed by ``output_fiber``.

        Live shard migration ships exactly one output fiber's worth of
        policy state in the handoff payload
        (:mod:`repro.service.resharding`), so partitioned policies must
        be able to cut that slice out and graft it back in.  ``None``
        for stateless policies and for policies whose state is *not*
        partitioned by output (their canonical state lives with whoever
        drives the tick, never with a shard owner).
        """
        return None

    def absorb_output_state(
        self, output_fiber: int, state: object | None
    ) -> None:
        """Graft a slice exported by another instance for ``output_fiber``
        (inverse of :meth:`export_output_state`; accepts its JSON
        round-trip).  Replaces any state this instance already holds for
        that output fiber."""
        if state is not None:
            raise InvalidParameterError(
                f"{type(self).__name__} carries no per-output state; "
                f"cannot absorb {state!r}"
            )

    def discard_output_state(self, output_fiber: int) -> None:
        """Forget ``output_fiber``'s slice (the shard migrated away)."""

    def _check(self, requesters: Sequence[Hashable], n: int) -> int:
        if n < 0:
            raise InvalidParameterError(f"grant count must be >= 0, got {n}")
        if len(set(requesters)) != len(requesters):
            raise InvalidParameterError("duplicate requesters in one selection")
        return min(n, len(requesters))


class FixedPriorityPolicy(GrantPolicy):
    """Deterministic: lowest requester identifiers win.

    Simple and stateless, but starves high-index input fibers under
    persistent contention — the unfairness the paper's random/round-robin
    recommendation avoids (demonstrated by the ``FAIR`` experiment).
    """

    def select(
        self,
        output_fiber: int,
        wavelength: int,
        requesters: Sequence[Hashable],
        n: int,
    ) -> list[Hashable]:
        n = self._check(requesters, n)
        return sorted(requesters)[:n]


class RandomPolicy(GrantPolicy):
    """Uniform random winners (the paper's "random selecting")."""

    #: One RNG feeds every output fiber's draws, so per-worker instances
    #: would diverge from a single shared instance.
    state_partitioned_by_output = False

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        self._rng = make_rng(seed)

    def export_state(self) -> object:
        # bit_generator.state is a plain dict of strings and (big) ints —
        # JSON-encodable as required; deep-copy via the JSON round trip so
        # the caller's snapshot cannot alias the live generator state.
        return json.loads(json.dumps(self._rng.bit_generator.state))

    def restore_state(self, state: object | None) -> None:
        if not isinstance(state, dict):
            raise InvalidParameterError(
                f"RandomPolicy needs a bit-generator state dict, got {state!r}"
            )
        self._rng.bit_generator.state = state

    def select(
        self,
        output_fiber: int,
        wavelength: int,
        requesters: Sequence[Hashable],
        n: int,
    ) -> list[Hashable]:
        n = self._check(requesters, n)
        if n == len(requesters):
            return list(requesters)
        if n == 1:
            # The common contention case; integers() costs a fraction of a
            # without-replacement choice() on these tiny pools.
            return [requesters[self._rng.integers(len(requesters))]]
        idx = self._rng.permutation(len(requesters))[:n]
        idx.sort()
        return [requesters[i] for i in idx]


class RoundRobinPolicy(GrantPolicy):
    """Rotating-priority winners (the paper's "round-robin scheduling").

    Keeps one rotation pointer per ``(output fiber, wavelength)`` pair,
    mirroring iSLIP's per-output grant pointers [8]: selection starts at the
    first requester *after* the previous slot's last winner (in identifier
    order, wrapping), so persistent contenders take turns.  Requester
    identifiers must be mutually comparable (e.g. input-fiber indices).
    """

    def __init__(self) -> None:
        self._pointers: dict[tuple[int, int], Hashable] = {}

    def export_state(self) -> object:
        return {
            "pointers": [
                [o, w, last] for (o, w), last in sorted(self._pointers.items())
            ]
        }

    def restore_state(self, state: object | None) -> None:
        if not isinstance(state, dict) or "pointers" not in state:
            raise InvalidParameterError(
                f"RoundRobinPolicy needs a pointers dict, got {state!r}"
            )
        self._pointers = {
            (int(o), int(w)): last for o, w, last in state["pointers"]
        }

    def export_output_state(self, output_fiber: int) -> object | None:
        pointers = [
            [o, w, last]
            for (o, w), last in sorted(self._pointers.items())
            if o == output_fiber
        ]
        return {"pointers": pointers} if pointers else None

    def absorb_output_state(
        self, output_fiber: int, state: object | None
    ) -> None:
        self.discard_output_state(output_fiber)
        if state is None:
            return
        if not isinstance(state, dict) or "pointers" not in state:
            raise InvalidParameterError(
                f"RoundRobinPolicy needs a pointers dict, got {state!r}"
            )
        for o, w, last in state["pointers"]:
            if int(o) != output_fiber:
                raise InvalidParameterError(
                    f"slice for output {output_fiber} contains a pointer "
                    f"for output {o}"
                )
            self._pointers[(int(o), int(w))] = last

    def discard_output_state(self, output_fiber: int) -> None:
        for key in [k for k in self._pointers if k[0] == output_fiber]:
            del self._pointers[key]

    def select(
        self,
        output_fiber: int,
        wavelength: int,
        requesters: Sequence[Hashable],
        n: int,
    ) -> list[Hashable]:
        n = self._check(requesters, n)
        if n == 0:
            return []
        key = (output_fiber, wavelength)
        ordered = sorted(requesters)
        m = len(ordered)
        last = self._pointers.get(key)
        start = 0
        if last is not None:
            start = next((i for i, rid in enumerate(ordered) if rid > last), 0)
        winners = [ordered[(start + i) % m] for i in range(n)]
        self._pointers[key] = winners[-1]
        return winners

    def reset(self) -> None:
        """Forget all rotation pointers (start of a fresh simulation)."""
        self._pointers.clear()


class WeightedFairPolicy(GrantPolicy):
    """Deficit-weighted fair sharing across *tenants* (multi-tenant QoS).

    Each output fiber keeps one signed credit balance per tenant.  Every
    time a channel is handed out, each tenant still contending for it earns
    its weight in credits; the richest balance wins the channel and pays
    the round's total earnings back.  Over any window of ``G`` grants under
    persistent contention, tenant ``t`` therefore receives
    ``G · w_t / Σw ± O(1)`` channels — weighted fairness with an ``O(1)``
    deficit bound, the classic deficit/surplus round-robin argument.  A
    backlogged tenant's balance grows every allocation it loses, so it is
    served within ``2 · ceil(Σw / w_t)`` allocations — starvation-free
    (property-tested in ``tests/test_wfq_properties.py``; the exact bound
    from a fresh start is one deficit round of ``Σw`` allocations, in
    which each backlogged tenant wins *exactly* ``w_t`` channels).

    Within one tenant, winners rotate round-robin by input fiber (one
    pointer per ``(output, tenant)``), so no input fiber starves inside its
    tenant either.  All state is keyed by output fiber (balances *and*
    pointers), keeping the per-output schedulers independent, and
    :meth:`export_state` / :meth:`restore_state` round-trip through JSON so
    the journal/snapshot path and :meth:`~repro.sim.engine.SlottedSimulator
    .export_state` can carry it.

    ``weights`` maps tenant id → positive integer weight; unknown tenants
    get ``default_weight``.  Requests carry their tenant
    (:attr:`~repro.core.distributed.SlotRequest.tenant`); id-based
    :meth:`select` calls treat all requesters as tenant 0 (degrading to
    plain round-robin), so the policy stays usable anywhere a
    :class:`GrantPolicy` is.
    """

    def __init__(
        self,
        weights: "Mapping[int, int] | None" = None,
        default_weight: int = 1,
    ) -> None:
        if default_weight < 1:
            raise InvalidParameterError(
                f"default_weight must be >= 1, got {default_weight}"
            )
        self.default_weight = int(default_weight)
        self._weights: dict[int, int] = {}
        if weights:
            for tenant, w in weights.items():
                if int(w) < 1:
                    raise InvalidParameterError(
                        f"tenant {tenant} weight must be >= 1, got {w}"
                    )
                self._weights[int(tenant)] = int(w)
        # credits[output][tenant] -> signed balance; pointers[(output,
        # tenant)] -> last winning input fiber (within-tenant rotation).
        self._credits: dict[int, dict[int, int]] = {}
        self._pointers: dict[tuple[int, int], int] = {}

    def weight(self, tenant: int) -> int:
        return self._weights.get(tenant, self.default_weight)

    # -- state ---------------------------------------------------------------

    def export_state(self) -> object:
        return {
            "credits": [
                [o, t, c]
                for o, balances in sorted(self._credits.items())
                for t, c in sorted(balances.items())
            ],
            "pointers": [
                [o, t, last]
                for (o, t), last in sorted(self._pointers.items())
            ],
        }

    def restore_state(self, state: object | None) -> None:
        if (
            not isinstance(state, dict)
            or "credits" not in state
            or "pointers" not in state
        ):
            raise InvalidParameterError(
                f"WeightedFairPolicy needs a credits/pointers dict, "
                f"got {state!r}"
            )
        self._credits = {}
        for o, t, c in state["credits"]:
            self._credits.setdefault(int(o), {})[int(t)] = int(c)
        self._pointers = {
            (int(o), int(t)): int(last) for o, t, last in state["pointers"]
        }

    def reset(self) -> None:
        """Forget all balances and rotation pointers."""
        self._credits.clear()
        self._pointers.clear()

    def export_output_state(self, output_fiber: int) -> object | None:
        credits = [
            [output_fiber, t, c]
            for t, c in sorted(self._credits.get(output_fiber, {}).items())
        ]
        pointers = [
            [o, t, last]
            for (o, t), last in sorted(self._pointers.items())
            if o == output_fiber
        ]
        if not credits and not pointers:
            return None
        return {"credits": credits, "pointers": pointers}

    def absorb_output_state(
        self, output_fiber: int, state: object | None
    ) -> None:
        self.discard_output_state(output_fiber)
        if state is None:
            return
        if (
            not isinstance(state, dict)
            or "credits" not in state
            or "pointers" not in state
        ):
            raise InvalidParameterError(
                f"WeightedFairPolicy needs a credits/pointers dict, "
                f"got {state!r}"
            )
        for o, t, c in state["credits"]:
            if int(o) != output_fiber:
                raise InvalidParameterError(
                    f"slice for output {output_fiber} contains a balance "
                    f"for output {o}"
                )
            self._credits.setdefault(int(o), {})[int(t)] = int(c)
        for o, t, last in state["pointers"]:
            if int(o) != output_fiber:
                raise InvalidParameterError(
                    f"slice for output {output_fiber} contains a pointer "
                    f"for output {o}"
                )
            self._pointers[(int(o), int(t))] = int(last)

    def discard_output_state(self, output_fiber: int) -> None:
        self._credits.pop(output_fiber, None)
        for key in [k for k in self._pointers if k[0] == output_fiber]:
            del self._pointers[key]

    # -- selection -----------------------------------------------------------

    def select(
        self,
        output_fiber: int,
        wavelength: int,
        requesters: Sequence[Hashable],
        n: int,
    ) -> list[Hashable]:
        n = self._check(requesters, n)
        return self._select_fibers(
            output_fiber, {0: sorted(requesters)}, n
        )

    def select_requests(
        self,
        output_fiber: int,
        wavelength: int,
        requests: "Sequence[SlotRequest]",
        n: int,
    ) -> list[int]:
        if len(requests) == 1 and n > 0:
            # Uncontended allocation (the common case): a lone contender
            # earns the whole pot and immediately spends it, so balances
            # are untouched — only the rotation pointer advances.
            r = requests[0]
            self._pointers[(output_fiber, r.tenant)] = r.input_fiber
            return [r.input_fiber]
        fibers = [r.input_fiber for r in requests]
        n = self._check(fibers, n)
        by_tenant: dict[int, list[int]] = {}
        for r in requests:
            by_tenant.setdefault(r.tenant, []).append(r.input_fiber)
        for contenders in by_tenant.values():
            contenders.sort()
        return self._select_fibers(output_fiber, by_tenant, n)

    def _select_fibers(
        self, output_fiber: int, by_tenant: dict[int, list[int]], n: int
    ) -> list:
        if n == 0:
            return []
        if len(by_tenant) == 1:
            # One tenant contending: every round it earns the pot and pays
            # it straight back, so balances cannot move — only the
            # within-tenant rotation runs.
            ((tenant, contenders),) = by_tenant.items()
            return [
                self._rotate(output_fiber, tenant, by_tenant)
                for _ in range(min(n, len(contenders)))
            ]
        balances = self._credits.setdefault(output_fiber, {})
        weights = {t: self.weight(t) for t in by_tenant}
        winners: list = []
        for _ in range(n):
            eligible = sorted(t for t, c in by_tenant.items() if c)
            if not eligible:
                break
            pot = 0
            for t in eligible:
                balances[t] = balances.get(t, 0) + weights[t]
                pot += weights[t]
            winner_tenant = max(eligible, key=lambda t: (balances[t], -t))
            balances[winner_tenant] -= pot
            winners.append(
                self._rotate(output_fiber, winner_tenant, by_tenant)
            )
        # A tenant whose contenders are exhausted keeps its balance: the
        # un-spent credit is exactly its deficit carried to the next slot.
        return winners

    def _rotate(
        self, output_fiber: int, tenant: int, by_tenant: dict[int, list[int]]
    ) -> int:
        """Within-tenant round-robin: first contender after the previous
        winner (in input-fiber order, wrapping); removes the pick."""
        contenders = by_tenant[tenant]
        key = (output_fiber, tenant)
        last = self._pointers.get(key)
        idx = 0
        if last is not None:
            idx = next(
                (i for i, f in enumerate(contenders) if f > last), 0
            )
        winner = contenders.pop(idx)
        self._pointers[key] = winner
        return winner
