"""Grant policies: which of several same-wavelength requests wins.

The schedulers decide *how many* requests on each wavelength are granted
(same-wavelength requests are interchangeable for matching size, paper
Section III).  When several input fibers offered requests on that wavelength,
a policy picks the winners.  The paper recommends random selection or
round-robin for fairness, citing the electronic-switch schedulers of
McKeown et al. [7][8].
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from typing import Hashable, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.util.rng import make_rng

__all__ = [
    "GrantPolicy",
    "FixedPriorityPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
]


class GrantPolicy(ABC):
    """Selects ``n`` winners among the requesters of one wavelength on one
    output fiber.  Implementations may keep per-(output, wavelength) state
    across slots (round-robin) but must not share state across output fibers,
    so the per-output schedulers stay independent ("distributed")."""

    @abstractmethod
    def select(
        self,
        output_fiber: int,
        wavelength: int,
        requesters: Sequence[Hashable],
        n: int,
    ) -> list[Hashable]:
        """Return ``min(n, len(requesters))`` distinct winners."""

    def export_state(self) -> object | None:
        """JSON-encodable snapshot of the policy's mutable state.

        ``None`` for stateless policies (the default).  The durability
        layer persists this in shard snapshots and the simulator in
        :meth:`~repro.sim.engine.SlottedSimulator.export_state`, so a
        recovered run replays the same winner sequence.
        """
        return None

    def restore_state(self, state: object | None) -> None:
        """Inverse of :meth:`export_state` (accepts its JSON round-trip)."""
        if state is not None:
            raise InvalidParameterError(
                f"{type(self).__name__} is stateless; cannot restore "
                f"{state!r}"
            )

    def _check(self, requesters: Sequence[Hashable], n: int) -> int:
        if n < 0:
            raise InvalidParameterError(f"grant count must be >= 0, got {n}")
        if len(set(requesters)) != len(requesters):
            raise InvalidParameterError("duplicate requesters in one selection")
        return min(n, len(requesters))


class FixedPriorityPolicy(GrantPolicy):
    """Deterministic: lowest requester identifiers win.

    Simple and stateless, but starves high-index input fibers under
    persistent contention — the unfairness the paper's random/round-robin
    recommendation avoids (demonstrated by the ``FAIR`` experiment).
    """

    def select(
        self,
        output_fiber: int,
        wavelength: int,
        requesters: Sequence[Hashable],
        n: int,
    ) -> list[Hashable]:
        n = self._check(requesters, n)
        return sorted(requesters)[:n]


class RandomPolicy(GrantPolicy):
    """Uniform random winners (the paper's "random selecting")."""

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        self._rng = make_rng(seed)

    def export_state(self) -> object:
        # bit_generator.state is a plain dict of strings and (big) ints —
        # JSON-encodable as required; deep-copy via the JSON round trip so
        # the caller's snapshot cannot alias the live generator state.
        return json.loads(json.dumps(self._rng.bit_generator.state))

    def restore_state(self, state: object | None) -> None:
        if not isinstance(state, dict):
            raise InvalidParameterError(
                f"RandomPolicy needs a bit-generator state dict, got {state!r}"
            )
        self._rng.bit_generator.state = state

    def select(
        self,
        output_fiber: int,
        wavelength: int,
        requesters: Sequence[Hashable],
        n: int,
    ) -> list[Hashable]:
        n = self._check(requesters, n)
        if n == len(requesters):
            return list(requesters)
        if n == 1:
            # The common contention case; integers() costs a fraction of a
            # without-replacement choice() on these tiny pools.
            return [requesters[self._rng.integers(len(requesters))]]
        idx = self._rng.permutation(len(requesters))[:n]
        idx.sort()
        return [requesters[i] for i in idx]


class RoundRobinPolicy(GrantPolicy):
    """Rotating-priority winners (the paper's "round-robin scheduling").

    Keeps one rotation pointer per ``(output fiber, wavelength)`` pair,
    mirroring iSLIP's per-output grant pointers [8]: selection starts at the
    first requester *after* the previous slot's last winner (in identifier
    order, wrapping), so persistent contenders take turns.  Requester
    identifiers must be mutually comparable (e.g. input-fiber indices).
    """

    def __init__(self) -> None:
        self._pointers: dict[tuple[int, int], Hashable] = {}

    def export_state(self) -> object:
        return {
            "pointers": [
                [o, w, last] for (o, w), last in sorted(self._pointers.items())
            ]
        }

    def restore_state(self, state: object | None) -> None:
        if not isinstance(state, dict) or "pointers" not in state:
            raise InvalidParameterError(
                f"RoundRobinPolicy needs a pointers dict, got {state!r}"
            )
        self._pointers = {
            (int(o), int(w)): last for o, w, last in state["pointers"]
        }

    def select(
        self,
        output_fiber: int,
        wavelength: int,
        requesters: Sequence[Hashable],
        n: int,
    ) -> list[Hashable]:
        n = self._check(requesters, n)
        if n == 0:
            return []
        key = (output_fiber, wavelength)
        ordered = sorted(requesters)
        m = len(ordered)
        last = self._pointers.get(key)
        start = 0
        if last is not None:
            start = next((i for i, rid in enumerate(ordered) if rid > last), 0)
        winners = [ordered[(start + i) % m] for i in range(n)]
        self._pointers[key] = winners[-1]
        return winners

    def reset(self) -> None:
        """Forget all rotation pointers (start of a fresh simulation)."""
        self._pointers.clear()
