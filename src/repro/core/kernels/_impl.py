"""Loop-form FA/BFA kernels in Numba-compilable style.

Every function here is written against the ``nopython`` subset — plain
``for`` loops over preallocated NumPy arrays, no Python containers, no
closures — and decorated with ``@njit(cache=True)`` **when numba is
importable** (``NUMBA_AVAILABLE``).  When it is not, the same functions run
interpreted, which is what lets the equivalence suite pin the exact code
numba compiles on interpreters without numba installed
(``tests/test_kernels.py``): the compiled backend and its interpreted twin
are one source, not two implementations that can drift.

These are *not* the fallback backends — :mod:`repro.core.kernels.
python_backend` (list-based) and :mod:`repro.core.kernels.numpy_backend`
(vectorized) carry the no-numba hot paths.  This module exists for the
``numba`` backend, which calls these functions compiled.

Contracts (shared by all backends, gated by the bit-identity tests):

* ``fa_rows_kernel(req, avail, e, f)`` — the clipped-window First
  Available greedy of :func:`repro.core.first_available.
  first_available_fast`, fused over all ``(M, k)`` rows.  Returns the
  ``assign`` matrix (``assign[m, b]`` = granted wavelength or ``-1``).
* ``bfa_rows_kernel(req, avail, e, f)`` — the circular
  Break-and-First-Available of :func:`repro.core.break_first_available.
  bfa_fast` fused over all rows: pivot selection with unmatchable-pivot
  skipping, the Lemma-2 shifted-frame interval decode per break offset
  ``t ∈ [-e, f]``, and the first-best tie-break over the ``d = e+f+1``
  breaks.  Returns the ``assign`` matrix.
* ``bfa_row_kernel(req_row, avail_row, e, f)`` — single-row BFA returning
  the grant pairs **in bfa_fast's emission order** (breaking edge first,
  then ascending shifted position) plus its counters, so scheduler-path
  callers can reconstruct ``bfa_fast``'s exact ``(grants, stats)``.

Inputs must be C-contiguous ``int64`` / ``bool_`` arrays with ``e, f``
plain ints; the backend wrappers normalize.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed (CI)
    from numba import njit as _njit

    def _maybe_jit(fn):
        return _njit(cache=True)(fn)

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the interpreted twin
    def _maybe_jit(fn):
        return fn

    NUMBA_AVAILABLE = False

__all__ = [
    "NUMBA_AVAILABLE",
    "fa_rows_kernel",
    "bfa_rows_kernel",
    "bfa_row_core",
    "bfa_row_kernel",
]


@_maybe_jit
def fa_rows_kernel(req, avail, e, f):
    """Fused First Available over all rows (clipped non-circular windows)."""
    m_rows, k = req.shape
    out = np.full((m_rows, k), -1, np.int64)
    rem = np.empty(k, np.int64)
    for m in range(m_rows):
        for w in range(k):
            rem[w] = req[m, w]
        p = 0  # advancing wavelength pointer, as in first_available_fast
        for b in range(k):
            lo = b - f
            if p < lo:
                p = lo
            hi = b + e
            if hi > k - 1:
                hi = k - 1
            while p <= hi and rem[p] == 0:
                p += 1
            if avail[m, b] and p <= hi:
                rem[p] -= 1
                out[m, b] = p
    return out


@_maybe_jit
def bfa_row_core(rem, avail, e, f, wl, ch):
    """One row of Break-and-First-Available (bfa_fast's exact greedy).

    ``rem`` is consumed.  Fills ``wl``/``ch`` with the winning break's
    grant pairs in emission order (pivot's breaking edge first, then
    ascending shifted position) and returns ``(n_grants, reduced_graphs,
    pivots_skipped)``.
    """
    k = rem.shape[0]
    skipped = 0
    # Pivot: first wavelength carrying a request with any free channel in
    # its circular window; unmatchable candidates are zeroed and skipped.
    pivot = -1
    for w in range(k):
        if rem[w] == 0:
            continue
        found = False
        for t in range(-e, f + 1):
            if avail[(w + t) % k]:
                found = True
                break
        if found:
            pivot = w
            break
        rem[w] = 0
        skipped += 1
    if pivot < 0:
        return 0, 0, skipped
    rem[pivot] -= 1

    # The reduced instance's left side, in ascending pivot offset order
    # (the Lemma-2 shifted ordering); only the intervals depend on t.
    entry_s = np.empty(k, np.int64)
    entry_w = np.empty(k, np.int64)
    base = np.empty(k, np.int64)
    ng = 0
    for s in range(k):
        w = (pivot + s) % k
        if rem[w] > 0:
            entry_s[ng] = s
            entry_w[ng] = w
            base[ng] = rem[w]
            ng += 1
    n_avail = 0
    for b in range(k):
        if avail[b]:
            n_avail += 1
    total = 1
    for gi in range(ng):
        total += base[gi]
    perfect = total if total < n_avail else n_avail
    d = e + f + 1

    lows = np.empty(k, np.int64)
    highs = np.empty(k, np.int64)
    counts = np.empty(k, np.int64)
    cur_wl = np.empty(k, np.int64)
    cur_ch = np.empty(k, np.int64)
    best_n = -1
    reduced = 0
    for t in range(-e, f + 1):
        u = (pivot + t) % k
        if not avail[u]:
            continue
        reduced += 1
        # Interval decode per group (bfa_fast's three cases).
        wrap = k + t - f
        for gi in range(ng):
            s = entry_s[gi]
            if s == 0:
                lows[gi] = 0
                highs[gi] = f - t - 1
            elif s >= 1 and s <= t + e:
                lows[gi] = 0
                highs[gi] = s + f - t - 1
            elif s >= wrap:
                length = t - (s - k) + e
                lows[gi] = (k - 1) - length
                highs[gi] = k - 2
            else:
                lo = (entry_w[gi] - e - u - 1) % k
                lows[gi] = lo
                highs[gi] = lo + d - 1
            counts[gi] = base[gi]
        cur_n = 1
        cur_wl[0] = pivot
        cur_ch[0] = u
        gi = 0
        for p in range(k - 1):
            channel = u + 1 + p
            if channel >= k:
                channel -= k
            if not avail[channel]:
                continue
            while gi < ng and (
                counts[gi] == 0 or highs[gi] < lows[gi] or highs[gi] < p
            ):
                gi += 1
            if gi < ng and lows[gi] <= p:
                counts[gi] -= 1
                cur_wl[cur_n] = entry_w[gi]
                cur_ch[cur_n] = channel
                cur_n += 1
        if cur_n > best_n:  # first-best tie-break over the d breaks
            best_n = cur_n
            for i in range(cur_n):
                wl[i] = cur_wl[i]
                ch[i] = cur_ch[i]
            if best_n >= perfect:
                break
    return best_n, reduced, skipped


@_maybe_jit
def bfa_rows_kernel(req, avail, e, f):
    """Fused Break-and-First-Available over all rows (circular windows)."""
    m_rows, k = req.shape
    out = np.full((m_rows, k), -1, np.int64)
    rem = np.empty(k, np.int64)
    wl = np.empty(k, np.int64)
    ch = np.empty(k, np.int64)
    for m in range(m_rows):
        for w in range(k):
            rem[w] = req[m, w]
        n, _reduced, _skipped = bfa_row_core(rem, avail[m], e, f, wl, ch)
        for i in range(n):
            out[m, ch[i]] = wl[i]
    return out


@_maybe_jit
def bfa_row_kernel(req_row, avail_row, e, f):
    """Single-row BFA: ``(wl, ch, n_grants, reduced_graphs, pivots_skipped)``."""
    k = req_row.shape[0]
    rem = req_row.copy()
    wl = np.empty(k, np.int64)
    ch = np.empty(k, np.int64)
    n, reduced, skipped = bfa_row_core(rem, avail_row, e, f, wl, ch)
    return wl, ch, n, reduced, skipped
