"""Pure-Python kernel backend: plain list sweeps, zero NumPy dispatch.

The fastest path for *small* batches on a stock interpreter: below the
registry's ``SCALAR_ROWS`` cutover, NumPy's per-call dispatch costs more
than the whole greedy pass, and plain Python lists beat array indexing by
a further constant factor.  :mod:`repro.core.kernels.numpy_backend`
delegates its small-matrix regime here; selecting
``REPRO_KERNEL_BACKEND=python`` outright runs *everything* here (the
degenerate fallback, and the fixed reference point the harness's
backend-speedup ratio is measured against).

Both kernels are line-for-line ports of the scalar algorithms
(:func:`repro.core.first_available.first_available_fast`,
:func:`repro.core.break_first_available.bfa_fast`) emitting the batch
``assign``-matrix encoding; the hypothesis equivalence suites pin them to
those oracles and to the other backends bit-for-bit.

No imports from the rest of ``repro.core`` — backend modules must stay
self-contained so the registry can load them while the package is still
initializing.
"""

from __future__ import annotations

import numpy as np

NAME = "python"
VERSION = None


def fa_rows(req: np.ndarray, avail: np.ndarray, e: int, f: int) -> np.ndarray:
    """Per-row First Available (clipped windows); the batch FA greedy."""
    m_rows, k = req.shape
    rem = req.tolist()
    avail_l = avail.tolist()
    out = [[-1] * k for _ in range(m_rows)]
    for m in range(m_rows):
        c = rem[m]
        a = avail_l[m]
        row = out[m]
        p = 0
        for b in range(k):
            lo = b - f
            if p < lo:
                p = lo
            hi = b + e
            if hi > k - 1:
                hi = k - 1
            while p <= hi and c[p] == 0:
                p += 1
            if a[b] and p <= hi:
                c[p] -= 1
                row[b] = p
    return np.asarray(out, dtype=np.int64)


def _bfa_row(c: list, a: list, e: int, f: int, row: list) -> None:
    """One row of Break-and-First-Available (bfa_fast's exact greedy).

    ``c`` (request counts) is consumed; grants land in ``row`` as
    ``row[channel] = wavelength``.
    """
    k = len(c)
    # Pivot: first wavelength carrying a request with any free channel in
    # its circular window; unmatchable candidates are zeroed and skipped.
    pivot = -1
    for w in range(k):
        if c[w] == 0:
            continue
        found = False
        for t in range(-e, f + 1):
            if a[(w + t) % k]:
                found = True
                break
        if found:
            pivot = w
            break
        c[w] = 0
    if pivot < 0:
        return
    c[pivot] -= 1

    entry_s: list[int] = []
    entry_w: list[int] = []
    base: list[int] = []
    for s in range(k):
        w = (pivot + s) % k
        if c[w] > 0:
            entry_s.append(s)
            entry_w.append(w)
            base.append(c[w])
    ng = len(entry_s)
    n_avail = sum(1 for b in range(k) if a[b])
    perfect = min(sum(base) + 1, n_avail)
    d = e + f + 1

    best_n = -1
    best_wl: list[int] = []
    best_ch: list[int] = []
    for t in range(-e, f + 1):
        u = (pivot + t) % k
        if not a[u]:
            continue
        # Interval decode per group (bfa_fast's three cases).
        lows = [0] * ng
        highs = [0] * ng
        wrap = k + t - f
        for gi in range(ng):
            s = entry_s[gi]
            if s == 0:
                highs[gi] = f - t - 1
            elif 1 <= s <= t + e:
                highs[gi] = s + f - t - 1
            elif s >= wrap:
                length = t - (s - k) + e
                lows[gi] = (k - 1) - length
                highs[gi] = k - 2
            else:
                lo = (entry_w[gi] - e - u - 1) % k
                lows[gi] = lo
                highs[gi] = lo + d - 1
        counts = base.copy()
        cur_wl = [pivot]
        cur_ch = [u]
        gi = 0
        for p in range(k - 1):
            channel = u + 1 + p
            if channel >= k:
                channel -= k
            if not a[channel]:
                continue
            while gi < ng and (
                counts[gi] == 0 or highs[gi] < lows[gi] or highs[gi] < p
            ):
                gi += 1
            if gi < ng and lows[gi] <= p:
                counts[gi] -= 1
                cur_wl.append(entry_w[gi])
                cur_ch.append(channel)
        n = len(cur_wl)
        if n > best_n:  # first-best tie-break over the d breaks
            best_n = n
            best_wl = cur_wl
            best_ch = cur_ch
            if best_n >= perfect:
                break
    for i in range(best_n):
        row[best_ch[i]] = best_wl[i]


def bfa_rows(req: np.ndarray, avail: np.ndarray, e: int, f: int) -> np.ndarray:
    """Per-row Break-and-First-Available (circular); the batch BFA greedy."""
    m_rows, k = req.shape
    rem = req.tolist()
    avail_l = avail.tolist()
    out = [[-1] * k for _ in range(m_rows)]
    for m in range(m_rows):
        _bfa_row(rem[m], avail_l[m], e, f, out[m])
    return np.asarray(out, dtype=np.int64)


#: The scheduler row path keeps its existing list-based implementations
#: (first_available_fast / bfa_fast *are* this backend's row kernels).
fa_row = None
bfa_row = None
