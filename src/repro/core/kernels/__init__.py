"""Kernel backend registry: compiled, vectorized, and pure-Python sweeps.

The batch schedulers (:func:`repro.core.batch.batch_first_available`,
:func:`repro.core.batch_bfa.batch_break_first_available`) and the
scheduler row path (:func:`repro.core.first_available.
first_available_fast`, :func:`repro.core.break_first_available.bfa_fast`)
dispatch their inner sweeps through one process-wide *backend* selected
here:

========  ==================================================================
backend   implementation
========  ==================================================================
numba     ``@njit(cache=True)`` fused row sweeps (:mod:`._impl` compiled);
          also accelerates the single-row scheduler path.  Needs the
          ``[compiled]`` extra; auto-selected when importable.
numpy     The lock-step vectorized sweeps (:mod:`.numpy_backend`), with the
          :data:`SCALAR_ROWS` small-matrix cutover to the python backend.
          The default when numba is absent.
python    Plain list sweeps, zero NumPy dispatch (:mod:`.python_backend`).
          Fastest for tiny batches; the fixed reference point for the
          harness's backend-speedup ratio.
========  ==================================================================

Selection happens at import time from ``REPRO_KERNEL_BACKEND``: unset
means "best available" (numba, else numpy); an explicit name is honored or
rejected loudly — a misspelled or uninstallable backend raises
:class:`~repro.errors.InvalidParameterError` rather than silently running
slow.  Tests and benchmarks switch at runtime with :func:`set_backend` /
:func:`use_backend`.

All backends are bit-identical by contract — same grants, same tie-breaks,
byte-for-byte equal assign matrices — enforced by the equivalence suites
(``tests/test_kernels.py``, ``tests/test_batch*.py``).  Switching backends
is purely a speed knob, like the memo cache.
"""

from __future__ import annotations

import importlib
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.errors import InvalidParameterError

__all__ = [
    "SCALAR_ROWS",
    "ENV_VAR",
    "BACKEND_NAMES",
    "KernelBackend",
    "available_backends",
    "resolve_backend",
    "get_backend",
    "set_backend",
    "use_backend",
]

#: Environment variable consulted once at import time.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Valid backend names, in auto-selection preference order.
BACKEND_NAMES = ("numba", "numpy", "python")

#: Below this many rows the numpy backend hands the whole matrix to the
#: plain-Python sweep (NumPy per-call dispatch costs more than the greedy
#: pass on small matrices).  One module-level constant — read at call time,
#: so tests can override it — instead of the two drifting copies that used
#: to live in batch.py and batch_bfa.py.
SCALAR_ROWS = 128


@dataclass(frozen=True)
class KernelBackend:
    """One backend's entry points.

    ``fa_rows`` / ``bfa_rows`` take C-contiguous ``(M, k)`` ``int64``
    request and ``bool`` availability matrices plus ``(e, f)`` and return
    the ``(M, k)`` ``int64`` assign matrix.  ``fa_row`` / ``bfa_row`` are
    optional single-row accelerators for the scheduler path (``None`` on
    backends whose row-at-a-time best is the existing Python code):
    ``fa_row`` returns the ``(k,)`` assign row, ``bfa_row`` returns
    ``(wl, ch, n, reduced_graphs, pivots_skipped)`` with grant pairs in
    ``bfa_fast``'s emission order.
    """

    name: str
    fa_rows: Callable[[np.ndarray, np.ndarray, int, int], np.ndarray]
    bfa_rows: Callable[[np.ndarray, np.ndarray, int, int], np.ndarray]
    fa_row: Callable[[np.ndarray, np.ndarray, int, int], np.ndarray] | None
    bfa_row: (
        Callable[
            [np.ndarray, np.ndarray, int, int],
            tuple[np.ndarray, np.ndarray, int, int, int],
        ]
        | None
    )
    version: str | None


_loaded: dict[str, KernelBackend | None] = {}


def _load(name: str) -> KernelBackend | None:
    """Import one backend module; ``None`` when its dependency is absent."""
    if name in _loaded:
        return _loaded[name]
    try:
        module = importlib.import_module(f"repro.core.kernels.{name}_backend")
    except ImportError:
        _loaded[name] = None
        return None
    backend = KernelBackend(
        name=module.NAME,
        fa_rows=module.fa_rows,
        bfa_rows=module.bfa_rows,
        fa_row=getattr(module, "fa_row", None),
        bfa_row=getattr(module, "bfa_row", None),
        version=module.VERSION,
    )
    _loaded[name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Backend names importable on this interpreter (preference order)."""
    return tuple(name for name in BACKEND_NAMES if _load(name) is not None)


def resolve_backend(requested: str | None) -> KernelBackend:
    """Map a requested name (or ``None`` = best available) to a backend.

    ``None`` / empty tries numba and degrades gracefully to numpy.  An
    explicit name must exist *and* be importable — a typo or a request for
    numba on an interpreter without it raises
    :class:`~repro.errors.InvalidParameterError` with the valid choices.
    """
    if not requested:
        for name in ("numba", "numpy"):
            backend = _load(name)
            if backend is not None:
                return backend
        raise InvalidParameterError(
            "no kernel backend importable (numpy itself is missing?)"
        )  # pragma: no cover - numpy is a hard dependency
    name = requested.strip().lower()
    if name not in BACKEND_NAMES:
        raise InvalidParameterError(
            f"unknown kernel backend {requested!r} (from ${ENV_VAR} or "
            f"set_backend); valid names: {', '.join(BACKEND_NAMES)}"
        )
    backend = _load(name)
    if backend is None:
        raise InvalidParameterError(
            f"kernel backend {name!r} is not importable on this interpreter "
            f"(install the 'compiled' extra for numba); available: "
            f"{', '.join(available_backends())}"
        )
    return backend


#: The process-wide active backend, resolved once at import.
_active: KernelBackend = resolve_backend(os.environ.get(ENV_VAR))


def get_backend() -> KernelBackend:
    """The active backend (what every kernel call dispatches through)."""
    return _active


def set_backend(name: str | None) -> KernelBackend:
    """Switch the process-wide backend; returns the new one.

    Purely a speed knob — all backends are bit-identical — but note the
    schedule memo cache may still hold rows computed by the previous
    backend (harmless for the same reason).
    """
    global _active
    _active = resolve_backend(name)
    return _active


@contextmanager
def use_backend(name: str | None) -> Iterator[KernelBackend]:
    """Scoped :func:`set_backend` (tests, benchmark reference runs)."""
    previous = _active
    backend = set_backend(name)
    try:
        yield backend
    finally:
        set_backend(previous.name)
