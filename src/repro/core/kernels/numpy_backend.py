"""Vectorized NumPy kernel backend (the numba-less default).

Carries the lock-step vectorized sweeps that used to live inside
``repro/core/batch.py`` and ``repro/core/batch_bfa.py``: all ``M`` rows
advanced channel-by-channel with boolean-mask pointer updates, ``O(k)``
(FA) / ``O(dk)`` (BFA) NumPy passes of width ``M``.

Below the registry's ``SCALAR_ROWS`` cutover (read at call time, so tests
can override it) both kernels delegate to the list-based
:mod:`repro.core.kernels.python_backend` — NumPy's per-call dispatch costs
more than the whole greedy pass on small matrices.  Above it, the
vectorized sweeps here win and keep winning as ``M`` grows.

See :mod:`repro.core.batch_bfa` for the Lemma-2 closed form that makes the
BFA candidate sweep vectorizable at all.
"""

from __future__ import annotations

import numpy as np

import repro.core.kernels as _registry
from repro.core.kernels import python_backend

NAME = "numpy"
VERSION = np.__version__


def fa_rows(req: np.ndarray, avail: np.ndarray, e: int, f: int) -> np.ndarray:
    if req.shape[0] <= _registry.SCALAR_ROWS:
        return python_backend.fa_rows(req, avail, e, f)
    return _fa_rows_vec(req, avail, e, f)


def bfa_rows(req: np.ndarray, avail: np.ndarray, e: int, f: int) -> np.ndarray:
    if req.shape[0] <= _registry.SCALAR_ROWS:
        return python_backend.bfa_rows(req, avail, e, f)
    return _bfa_rows_vec(req, avail, e, f)


def _fa_rows_vec(
    req: np.ndarray, avail: np.ndarray, e: int, f: int
) -> np.ndarray:
    m_rows, k = req.shape
    remaining = req.copy()
    assign = np.full((m_rows, k), -1, dtype=np.int64)
    # Per-row wavelength pointer: smallest wavelength that may still serve a
    # future channel.  Identical role to the scalar pointer in
    # first_available_fast; each row's pointer only ever advances, so total
    # advancement work is O(M k) in vectorized chunks.
    p = np.zeros(m_rows, dtype=np.int64)
    rows = np.arange(m_rows)
    for b in range(k):
        lo = max(0, b - f)
        hi = min(k - 1, b + e)
        np.maximum(p, lo, out=p)
        # Advance pointers over exhausted wavelengths inside the window.
        while True:
            inside = p <= hi
            need = inside & (remaining[rows, np.minimum(p, k - 1)] == 0)
            if not need.any():
                break
            p[need] += 1
        grant = avail[:, b] & (p <= hi) & (remaining[rows, np.minimum(p, k - 1)] > 0)
        if grant.any():
            g_rows = rows[grant]
            g_wl = p[grant]
            remaining[g_rows, g_wl] -= 1
            assign[g_rows, b] = g_wl
    return assign


def _shift_gather(matrix: np.ndarray, start: np.ndarray) -> np.ndarray:
    """Row-wise circular gather: ``out[m, j] = matrix[m, (start[m]+j) % k]``."""
    m_rows, k = matrix.shape
    idx = (start[:, None] + np.arange(k)[None, :]) % k
    return np.take_along_axis(matrix, idx, axis=1)


def _candidate_sweep(
    counts_shifted: np.ndarray,
    avail_pos: np.ndarray,
    active: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    record: np.ndarray | None,
) -> np.ndarray:
    """One break offset's First Available sweep over all rows at once.

    ``counts_shifted`` is logically consumed (its post-state is
    unspecified); returns per-row grant counts.  When ``record`` is given
    (``(M, k-1)`` int array), the granted offset ``s`` is stored per
    position for assignment reconstruction.
    """
    m_rows, k = counts_shifted.shape
    rows = np.arange(m_rows)
    ptr = np.where(active, 0, k)  # inactive rows: pointer parked at the end
    granted = np.zeros(m_rows, dtype=np.int64)
    for p in range(k - 1):
        # Advance each row's pointer past exhausted or expired groups.
        while True:
            inside = ptr < k
            safe = np.minimum(ptr, k - 1)
            need = inside & (
                (counts_shifted[rows, safe] == 0) | (hi[safe] < p)
            )
            if not need.any():
                break
            ptr[need] += 1
        safe = np.minimum(ptr, k - 1)
        grant = (
            active
            & avail_pos[:, p]
            & (ptr < k)
            & (lo[safe] <= p)
        )
        if grant.any():
            g_rows = rows[grant]
            g_s = ptr[grant]
            counts_shifted[g_rows, g_s] -= 1
            granted[g_rows] += 1
            if record is not None:
                record[g_rows, p] = g_s
    return granted


def _bfa_rows_vec(
    req: np.ndarray, avail: np.ndarray, e: int, f: int
) -> np.ndarray:
    m_rows, k = req.shape
    d = e + f + 1
    remaining = req.copy()
    assign = np.full((m_rows, k), -1, dtype=np.int64)
    rows = np.arange(m_rows)

    # -- pivot selection (vectorized mirror of bfa_fast) --------------------
    # window_any[m, w]: some channel of λw's circular window is free.
    window_any = np.zeros((m_rows, k), dtype=bool)
    for t in range(-e, f + 1):
        window_any |= np.roll(avail, -t, axis=1)
    eligible = (remaining > 0) & window_any
    has_pivot = eligible.any(axis=1)
    pivot = np.where(has_pivot, eligible.argmax(axis=1), 0)
    # Wavelengths before the pivot carrying requests are unmatchable
    # (their whole window is occupied): zero them, as the scalar code does.
    before = np.arange(k)[None, :] < pivot[:, None]
    remaining[before & has_pivot[:, None]] = 0
    remaining[rows[has_pivot], pivot[has_pivot]] -= 1

    # Shared shifted views (independent of t).
    counts_shifted0 = _shift_gather(remaining, pivot)

    # -- try the d breaks, recording each candidate's grants ----------------
    s_axis = np.arange(k)
    best_size = np.full(m_rows, -1, dtype=np.int64)
    best_t = np.full(m_rows, -e - 1, dtype=np.int64)
    records: dict[int, np.ndarray | None] = {}
    for t in range(-e, f + 1):
        u = (pivot + t) % k
        active = has_pivot & avail[rows, u]
        if not active.any():
            continue
        lo = np.maximum(0, s_axis - t - e - 1)
        hi = np.minimum(s_axis - t + f - 1, k - 2)
        hi[0] = f - t - 1  # pivot's same-wavelength siblings
        lo[0] = 0
        avail_pos = _shift_gather(avail, (u + 1) % k)[:, : k - 1]
        counts = counts_shifted0.copy()
        record = np.full((m_rows, k - 1), -1, dtype=np.int64) if k > 1 else None
        granted = _candidate_sweep(counts, avail_pos, active, lo, hi, record)
        records[t] = record
        size = np.where(active, granted + 1, -1)  # +1: the breaking edge
        improved = active & (size > best_size)
        best_size[improved] = size[improved]
        best_t[improved] = t

    # -- commit each row's winning break -------------------------------------
    for t, record in records.items():
        winners = has_pivot & (best_t == t)
        if not winners.any():
            continue
        u = (pivot + t) % k
        w_rows = rows[winners]
        assign[w_rows, u[winners]] = pivot[winners]  # the breaking edge
        if record is not None:
            got = record[winners]  # (W, k-1) of granted offsets s or -1
            for j, m in enumerate(w_rows):
                ps = np.nonzero(got[j] >= 0)[0]
                if ps.size:
                    channels = (u[m] + 1 + ps) % k
                    wavelengths = (pivot[m] + got[j, ps]) % k
                    assign[m, channels] = wavelengths
    return assign


#: The scheduler row path keeps its existing list-based implementations
#: (a one-row NumPy sweep would be pure dispatch overhead).
fa_row = None
bfa_row = None
