"""Numba kernel backend: the ``@njit(cache=True)``-compiled FA/BFA sweeps.

A thin shim over :mod:`repro.core.kernels._impl`, where the kernels
actually live (written once in nopython style, jitted at import when numba
is present, interpreted otherwise so they stay testable everywhere).
Importing this module on an interpreter without numba raises
``ImportError`` — the registry treats that as "backend unavailable" and
falls back to :mod:`repro.core.kernels.numpy_backend`.

Unlike the fallback backends this one also provides *row* kernels
(``fa_row`` / ``bfa_row``): with compilation, one fused pass beats the
scalar Python loops of ``first_available_fast`` / ``bfa_fast`` even for a
single row, so the scheduler path (``schedule_output_fiber`` → per-output
``schedule()``) rides the compiled code too.

Compilation cost: the first call of each kernel signature JIT-compiles
(~seconds); ``cache=True`` persists the machine code in ``__pycache__`` so
subsequent processes skip it.  The benchmark harness warms the kernels
before timing (see docs/PERFORMANCE.md, "Compiled kernels").
"""

from __future__ import annotations

import numba
import numpy as np

from repro.core.kernels import _impl

if not _impl.NUMBA_AVAILABLE:  # pragma: no cover - defensive double-check
    raise ImportError("numba backend requested but numba failed to import")

NAME = "numba"
VERSION = numba.__version__


def fa_rows(req: np.ndarray, avail: np.ndarray, e: int, f: int) -> np.ndarray:
    return _impl.fa_rows_kernel(req, avail, int(e), int(f))


def bfa_rows(req: np.ndarray, avail: np.ndarray, e: int, f: int) -> np.ndarray:
    return _impl.bfa_rows_kernel(req, avail, int(e), int(f))


def fa_row(req_row: np.ndarray, avail_row: np.ndarray, e: int, f: int) -> np.ndarray:
    """One row of First Available: the ``(k,)`` assign row."""
    return _impl.fa_rows_kernel(
        req_row.reshape(1, -1), avail_row.reshape(1, -1), int(e), int(f)
    )[0]


def bfa_row(
    req_row: np.ndarray, avail_row: np.ndarray, e: int, f: int
) -> tuple[np.ndarray, np.ndarray, int, int, int]:
    """One row of BFA: ``(wl, ch, n, reduced_graphs, pivots_skipped)`` with
    pairs in bfa_fast's emission order."""
    return _impl.bfa_row_kernel(req_row, avail_row, int(e), int(f))


def warmup(k: int = 4) -> None:
    """Force JIT compilation of every kernel signature (bench/CI warm-up)."""
    req = np.ones((2, k), dtype=np.int64)
    avail = np.ones((2, k), dtype=np.bool_)
    fa_rows(req, avail, 1, 1)
    bfa_rows(req, avail, 1, 1)
    bfa_row(req[0], avail[0], 1, 1)
