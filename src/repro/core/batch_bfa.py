"""Batch Break-and-First-Available across many output fibers.

Companion to :mod:`repro.core.batch` for *circular* conversion.  The key
observation enabling the fused/vectorized backends: in the Lemma-2 shifted
frame (wavelength offsets ``s = (w - pivot) mod k``, channel positions
``p = (b - u - 1) mod k``), the reduced adjacency of the paper's
three-case analysis collapses to a single closed form that depends only on
``s`` and the break offset ``t`` — *not* on the row's pivot wavelength::

    s = 0:   [0, f - t - 1]
    s >= 1:  [max(0, s - t - e - 1),  min(s - t + f - 1, k - 2)]

(the prefix case ``1 <= s <= t + e`` and the suffix case ``s >= k + t - f``
are the clamped ends of the same line; both endpoints are non-decreasing in
``s``, which is exactly the Lemma-2 monotonicity).  Every row can therefore
share one interval table per ``t``, and the First Available sweep fuses
across rows just like :func:`~repro.core.batch.batch_first_available`.

Like its companion, this module is the validating public entry point; the
sweeps themselves live in the kernel backends (:mod:`repro.core.kernels`)
and are selected process-wide.  Results are bit-identical to running
:func:`~repro.core.break_first_available.bfa_fast` per row (tested),
including pivot selection and the first-best tie-break over the ``d``
break offsets, on every backend.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.errors import InvalidParameterError

__all__ = ["batch_break_first_available"]


def batch_break_first_available(
    request_matrix: np.ndarray,
    available: np.ndarray | None,
    e: int,
    f: int,
    *,
    check: bool = True,
) -> np.ndarray:
    """Break-and-First-Available over ``M`` output fibers at once (circular).

    Parameters and return value mirror
    :func:`~repro.core.batch.batch_first_available`:
    ``assign[m, b]`` is the wavelength granted channel ``b`` of output ``m``
    or ``-1``.  ``O(d k)`` work per row.  ``check=False`` skips input
    validation for pre-validated inner-loop callers.
    """
    req = np.asarray(request_matrix)
    if check:
        if req.ndim != 2:
            raise InvalidParameterError(
                f"request matrix must be 2-D (M, k), got shape {req.shape}"
            )
        if np.any(req < 0):
            raise InvalidParameterError("request counts must be nonnegative")
    m_rows, k = req.shape
    if available is None:
        avail = np.ones((m_rows, k), dtype=bool)
    else:
        avail = np.ascontiguousarray(available, dtype=bool)
        if check and avail.shape != (m_rows, k):
            raise InvalidParameterError(
                f"availability shape {avail.shape} != request shape {(m_rows, k)}"
            )
    if check:
        if e < 0 or f < 0:
            raise InvalidParameterError("conversion reaches must be nonnegative")
        if e + f + 1 > k:
            raise InvalidParameterError(
                f"conversion degree {e + f + 1} exceeds k={k}"
            )
    return kernels.get_backend().bfa_rows(
        np.ascontiguousarray(req, dtype=np.int64), avail, int(e), int(f)
    )
