"""Vectorized batch Break-and-First-Available across many output fibers.

Companion to :mod:`repro.core.batch` for *circular* conversion.  The key
observation enabling vectorization: in the Lemma-2 shifted frame (wavelength
offsets ``s = (w - pivot) mod k``, channel positions ``p = (b - u - 1) mod
k``), the reduced adjacency of the paper's three-case analysis collapses to
a single closed form that depends only on ``s`` and the break offset ``t`` —
*not* on the row's pivot wavelength::

    s = 0:   [0, f - t - 1]
    s >= 1:  [max(0, s - t - e - 1),  min(s - t + f - 1, k - 2)]

(the prefix case ``1 <= s <= t + e`` and the suffix case ``s >= k + t - f``
are the clamped ends of the same line; both endpoints are non-decreasing in
``s``, which is exactly the Lemma-2 monotonicity).  Every row can therefore
share one interval table per ``t`` and the First Available sweep vectorizes
across rows just like :func:`~repro.core.batch.batch_first_available`.

Results are bit-identical to running :func:`~repro.core.
break_first_available.bfa_fast` per row (tested), including pivot selection
and the first-best tie-break over the ``d`` break offsets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["batch_break_first_available"]

# Same small-matrix cutover as repro.core.batch: under this many rows the
# sweep runs as plain Python (bit-identical greedy, no NumPy dispatch cost).
_SCALAR_ROWS = 128


def _candidate_sweep_scalar(
    counts_shifted: np.ndarray,
    avail_pos: np.ndarray,
    active: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    record: np.ndarray | None,
) -> np.ndarray:
    """Row-at-a-time variant of :func:`_candidate_sweep` (same greedy)."""
    m_rows, k = counts_shifted.shape
    granted = np.zeros(m_rows, dtype=np.int64)
    lo_l = lo.tolist()
    hi_l = hi.tolist()
    counts_l = counts_shifted.tolist()
    avail_l = avail_pos.tolist()
    rec_l = None if record is None else record.tolist()
    for m in range(m_rows):
        if not active[m]:
            continue
        c = counts_l[m]
        a = avail_l[m]
        rec_row = None if rec_l is None else rec_l[m]
        ptr = 0
        g = 0
        for p in range(k - 1):
            while ptr < k and (c[ptr] == 0 or hi_l[ptr] < p):
                ptr += 1
            if a[p] and ptr < k and lo_l[ptr] <= p:
                c[ptr] -= 1
                g += 1
                if rec_row is not None:
                    rec_row[p] = ptr
        granted[m] = g
    if rec_l is not None:
        record[...] = rec_l
    return granted


def _shift_gather(matrix: np.ndarray, start: np.ndarray) -> np.ndarray:
    """Row-wise circular gather: ``out[m, j] = matrix[m, (start[m]+j) % k]``."""
    m_rows, k = matrix.shape
    idx = (start[:, None] + np.arange(k)[None, :]) % k
    return np.take_along_axis(matrix, idx, axis=1)


def _candidate_sweep(
    counts_shifted: np.ndarray,
    avail_pos: np.ndarray,
    active: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    record: np.ndarray | None,
) -> np.ndarray:
    """One break offset's First Available sweep over all rows at once.

    ``counts_shifted`` is logically consumed (its post-state is
    unspecified); returns per-row grant counts.  When ``record`` is given
    (``(M, k-1)`` int array), the granted offset ``s`` is stored per
    position for assignment reconstruction.
    """
    m_rows, k = counts_shifted.shape
    if m_rows <= _SCALAR_ROWS:
        return _candidate_sweep_scalar(
            counts_shifted, avail_pos, active, lo, hi, record
        )
    rows = np.arange(m_rows)
    ptr = np.where(active, 0, k)  # inactive rows: pointer parked at the end
    granted = np.zeros(m_rows, dtype=np.int64)
    for p in range(k - 1):
        # Advance each row's pointer past exhausted or expired groups.
        while True:
            inside = ptr < k
            safe = np.minimum(ptr, k - 1)
            need = inside & (
                (counts_shifted[rows, safe] == 0) | (hi[safe] < p)
            )
            if not need.any():
                break
            ptr[need] += 1
        safe = np.minimum(ptr, k - 1)
        grant = (
            active
            & avail_pos[:, p]
            & (ptr < k)
            & (lo[safe] <= p)
        )
        if grant.any():
            g_rows = rows[grant]
            g_s = ptr[grant]
            counts_shifted[g_rows, g_s] -= 1
            granted[g_rows] += 1
            if record is not None:
                record[g_rows, p] = g_s
    return granted


def batch_break_first_available(
    request_matrix: np.ndarray,
    available: np.ndarray | None,
    e: int,
    f: int,
    *,
    check: bool = True,
) -> np.ndarray:
    """Break-and-First-Available over ``M`` output fibers at once (circular).

    Parameters and return value mirror
    :func:`~repro.core.batch.batch_first_available`:
    ``assign[m, b]`` is the wavelength granted channel ``b`` of output ``m``
    or ``-1``.  ``O(d k)`` NumPy passes of width ``M``.  ``check=False``
    skips input validation for pre-validated inner-loop callers.
    """
    req = np.asarray(request_matrix)
    if check:
        if req.ndim != 2:
            raise InvalidParameterError(
                f"request matrix must be 2-D (M, k), got shape {req.shape}"
            )
        if np.any(req < 0):
            raise InvalidParameterError("request counts must be nonnegative")
    m_rows, k = req.shape
    if available is None:
        avail = np.ones((m_rows, k), dtype=bool)
    else:
        avail = np.asarray(available, dtype=bool)
        if check and avail.shape != (m_rows, k):
            raise InvalidParameterError(
                f"availability shape {avail.shape} != request shape {(m_rows, k)}"
            )
    d = e + f + 1
    if check:
        if e < 0 or f < 0:
            raise InvalidParameterError("conversion reaches must be nonnegative")
        if d > k:
            raise InvalidParameterError(f"conversion degree {d} exceeds k={k}")

    remaining = req.astype(np.int64).copy()
    assign = np.full((m_rows, k), -1, dtype=np.int64)
    rows = np.arange(m_rows)

    # -- pivot selection (vectorized mirror of bfa_fast) --------------------
    # window_any[m, w]: some channel of λw's circular window is free.
    window_any = np.zeros((m_rows, k), dtype=bool)
    for t in range(-e, f + 1):
        window_any |= np.roll(avail, -t, axis=1)
    eligible = (remaining > 0) & window_any
    has_pivot = eligible.any(axis=1)
    pivot = np.where(has_pivot, eligible.argmax(axis=1), 0)
    # Wavelengths before the pivot carrying requests are unmatchable
    # (their whole window is occupied): zero them, as the scalar code does.
    before = np.arange(k)[None, :] < pivot[:, None]
    remaining[before & has_pivot[:, None]] = 0
    remaining[rows[has_pivot], pivot[has_pivot]] -= 1

    # Shared shifted views (independent of t).
    counts_shifted0 = _shift_gather(remaining, pivot)

    # -- try the d breaks, recording each candidate's grants ----------------
    s_axis = np.arange(k)
    best_size = np.full(m_rows, -1, dtype=np.int64)
    best_t = np.full(m_rows, -e - 1, dtype=np.int64)
    records: dict[int, np.ndarray | None] = {}
    for t in range(-e, f + 1):
        u = (pivot + t) % k
        active = has_pivot & avail[rows, u]
        if not active.any():
            continue
        lo = np.maximum(0, s_axis - t - e - 1)
        hi = np.minimum(s_axis - t + f - 1, k - 2)
        hi[0] = f - t - 1  # pivot's same-wavelength siblings
        lo[0] = 0
        avail_pos = _shift_gather(avail, (u + 1) % k)[:, : k - 1]
        counts = counts_shifted0.copy()
        record = np.full((m_rows, k - 1), -1, dtype=np.int64) if k > 1 else None
        granted = _candidate_sweep(counts, avail_pos, active, lo, hi, record)
        records[t] = record
        size = np.where(active, granted + 1, -1)  # +1: the breaking edge
        improved = active & (size > best_size)
        best_size[improved] = size[improved]
        best_t[improved] = t

    # -- commit each row's winning break -------------------------------------
    for t, record in records.items():
        winners = has_pivot & (best_t == t)
        if not winners.any():
            continue
        u = (pivot + t) % k
        w_rows = rows[winners]
        assign[w_rows, u[winners]] = pivot[winners]  # the breaking edge
        if record is not None:
            got = record[winners]  # (W, k-1) of granted offsets s or -1
            for j, m in enumerate(w_rows):
                ps = np.nonzero(got[j] >= 0)[0]
                if ps.size:
                    channels = (u[m] + 1 + ps) % k
                    wavelengths = (pivot[m] + got[j, ps]) % k
                    assign[m, channels] = wavelengths
    return assign
