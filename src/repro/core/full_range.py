"""Trivial scheduler for full range wavelength conversion (paper Section I).

With full range converters all requests are indistinguishable in the
wavelength domain: "if no more than k connection requests arrived at this
output fiber, grant all; if more than k arrived, arbitrarily pick k out of
them".  With ``c`` available channels the same holds with ``c`` in place of
``k``.  Requests are picked in ascending wavelength order and assigned to
ascending available channels — any bijection works.
"""

from __future__ import annotations

from repro.core.base import Scheduler, make_result
from repro.errors import InvalidParameterError
from repro.graphs.request_graph import RequestGraph
from repro.types import Grant, ScheduleResult

__all__ = ["FullRangeScheduler"]


class FullRangeScheduler(Scheduler):
    """O(k) trivial scheduler, valid only under full range conversion."""

    name = "full-range"

    def _check_scheme(self, rg: RequestGraph) -> None:
        if not rg.scheme.is_full_range:
            raise InvalidParameterError(
                "FullRangeScheduler requires full range conversion "
                f"(degree == k); got {rg.scheme!r} with degree "
                f"{rg.scheme.degree} and k={rg.scheme.k}"
            )

    def schedule(self, rg: RequestGraph) -> ScheduleResult:
        self._check_scheme(rg)
        channels = [b for b in range(rg.k) if rg.available[b]]
        grants: list[Grant] = []
        ci = 0
        for w, count in enumerate(rg.request_vector):
            for _ in range(count):
                if ci >= len(channels):
                    break
                grants.append(Grant(wavelength=w, channel=channels[ci]))
                ci += 1
            if ci >= len(channels):
                break
        return make_result(rg, grants)
