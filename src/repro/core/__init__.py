"""The paper's primary contribution: fast distributed scheduling algorithms
for wavelength-convertible WDM optical interconnects."""

from repro.core.approx import BreakPolicy, SingleBreakScheduler, deficit_bound
from repro.core.batch import batch_first_available
from repro.core.batch_bfa import batch_break_first_available
from repro.core.base import Scheduler, make_result, validate_schedule
from repro.core.baseline import GloverScheduler, HopcroftKarpScheduler
from repro.core.break_first_available import (
    BreakFirstAvailableReferenceScheduler,
    BreakFirstAvailableScheduler,
    bfa_fast,
)
from repro.core.distributed import (
    DistributedScheduler,
    GrantedRequest,
    SlotRequest,
    SlotSchedule,
)
from repro.core.first_available import (
    FirstAvailableReferenceScheduler,
    FirstAvailableScheduler,
    first_available_fast,
)
from repro.core.full_range import FullRangeScheduler
from repro.core.memo import (
    ScheduleCache,
    configure_default_cache,
    get_default_cache,
    schedule_cache_key,
)
from repro.core.min_stress import MinStressScheduler, total_stress
from repro.core.priority import PrioritySchedule, PriorityScheduler
from repro.core.policies import (
    FixedPriorityPolicy,
    GrantPolicy,
    RandomPolicy,
    RoundRobinPolicy,
)

__all__ = [
    "Scheduler",
    "validate_schedule",
    "make_result",
    "FirstAvailableScheduler",
    "FirstAvailableReferenceScheduler",
    "first_available_fast",
    "BreakFirstAvailableScheduler",
    "BreakFirstAvailableReferenceScheduler",
    "bfa_fast",
    "SingleBreakScheduler",
    "BreakPolicy",
    "deficit_bound",
    "batch_first_available",
    "batch_break_first_available",
    "ScheduleCache",
    "schedule_cache_key",
    "get_default_cache",
    "configure_default_cache",
    "PriorityScheduler",
    "PrioritySchedule",
    "FullRangeScheduler",
    "HopcroftKarpScheduler",
    "GloverScheduler",
    "MinStressScheduler",
    "total_stress",
    "DistributedScheduler",
    "SlotRequest",
    "GrantedRequest",
    "SlotSchedule",
    "GrantPolicy",
    "FixedPriorityPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
]
