"""Deterministic, seeded fault plans for the interconnect.

The paper's structural result — per-output-fiber independence of the
scheduling sub-problems — is exactly what makes the system *fault-isolable*:
a failed component should degrade one fiber's throughput, never the whole
interconnect.  A :class:`FaultPlan` is the declarative description of which
components fail and when, in slot time, so that a faulted run is exactly
reproducible from one seed:

* :class:`ChannelOutage` — output channel ``(fiber, wavelength)`` goes dark
  for ``[start, start + duration)`` slots.  Dark channels flow into the
  ``(N, k)`` availability mask, so schedulers route around them exactly like
  Section-V occupied channels; connections already holding the channel are
  not preempted (non-disturb darkness).
* :class:`ConverterDegradation` — the wavelength converters of one *input*
  fiber lose reach: conversion degree ``d = e + f + 1`` collapses to
  ``d' = e' + f' + 1``, down to fixed-wavelength operation (``e' = f' = 0``,
  ``d' = 1``).  Requests from that input see correspondingly narrowed
  request-graph intervals.
* :class:`ShardCrash` — the service worker owning one output fiber dies at
  ``slot``.  Only the :mod:`repro.service` layer interprets crashes (the
  simulation engines model the optical datapath, which has no workers);
  see :mod:`repro.service.supervisor` for restart/checkpoint semantics.

Plans are immutable; :meth:`FaultPlan.random` draws a reproducible plan from
one seed, which is what the chaos harness (``tests/test_chaos.py``) runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.errors import InvalidParameterError
from repro.util.validation import (
    check_index,
    check_nonnegative_int,
    check_positive_int,
)

__all__ = [
    "ChannelOutage",
    "ConverterDegradation",
    "ShardCrash",
    "FaultPlan",
]


@dataclass(frozen=True, slots=True, order=True)
class ChannelOutage:
    """Output channel ``(fiber, wavelength)`` is dark for ``duration`` slots
    starting at ``start`` (half-open interval ``[start, start + duration)``)."""

    fiber: int
    wavelength: int
    start: int
    duration: int

    def active_at(self, slot: int) -> bool:
        return self.start <= slot < self.start + self.duration


@dataclass(frozen=True, slots=True, order=True)
class ConverterDegradation:
    """Input fiber ``input_fiber``'s converters lose reach for ``duration``
    slots from ``start``: effective reach becomes ``(min(e, scheme.e),
    min(f, scheme.f))``.  ``e = f = 0`` is fixed-wavelength operation."""

    input_fiber: int
    start: int
    duration: int
    e: int = 0
    f: int = 0

    def active_at(self, slot: int) -> bool:
        return self.start <= slot < self.start + self.duration


@dataclass(frozen=True, slots=True, order=True)
class ShardCrash:
    """The service shard owning output fiber ``fiber`` crashes at ``slot``,
    losing its in-memory channel state (a supervisor may restore it from a
    checkpoint; see :mod:`repro.service.supervisor`)."""

    fiber: int
    slot: int


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated collection of timed fault events.

    Build one explicitly from events, or draw a reproducible randomized plan
    with :meth:`random`.  The plan itself is pure data; a
    :class:`~repro.faults.injector.FaultInjector` answers the per-slot
    queries the engines and the service need.
    """

    outages: tuple[ChannelOutage, ...] = ()
    degradations: tuple[ConverterDegradation, ...] = ()
    crashes: tuple[ShardCrash, ...] = ()
    #: Free-form provenance (seed, generator parameters) for reports.
    meta: dict = field(default_factory=dict, compare=False)

    @property
    def n_events(self) -> int:
        return len(self.outages) + len(self.degradations) + len(self.crashes)

    @property
    def is_empty(self) -> bool:
        return self.n_events == 0

    @property
    def has_degradations(self) -> bool:
        return bool(self.degradations)

    @property
    def has_crashes(self) -> bool:
        return bool(self.crashes)

    def validate(self, n_fibers: int, k: int) -> "FaultPlan":
        """Raise :class:`InvalidParameterError` unless every event fits an
        ``n_fibers × k`` interconnect; returns the plan for chaining."""
        check_positive_int(n_fibers, "n_fibers")
        check_positive_int(k, "k")
        for ev in self.outages:
            check_index(ev.fiber, n_fibers, "outage fiber")
            check_index(ev.wavelength, k, "outage wavelength")
            check_nonnegative_int(ev.start, "outage start")
            check_positive_int(ev.duration, "outage duration")
        for ev in self.degradations:
            check_index(ev.input_fiber, n_fibers, "degradation input_fiber")
            check_nonnegative_int(ev.start, "degradation start")
            check_positive_int(ev.duration, "degradation duration")
            check_nonnegative_int(ev.e, "degradation e")
            check_nonnegative_int(ev.f, "degradation f")
        for ev in self.crashes:
            check_index(ev.fiber, n_fibers, "crash fiber")
            check_nonnegative_int(ev.slot, "crash slot")
        return self

    def horizon(self) -> int:
        """One past the last slot any event is active (0 for an empty plan)."""
        ends: list[int] = []
        ends.extend(ev.start + ev.duration for ev in self.outages)
        ends.extend(ev.start + ev.duration for ev in self.degradations)
        ends.extend(ev.slot + 1 for ev in self.crashes)
        return max(ends, default=0)

    def merge(self, other: "FaultPlan") -> "FaultPlan":
        """Union of two plans (events concatenated, sorted)."""
        return FaultPlan(
            outages=tuple(sorted(self.outages + other.outages)),
            degradations=tuple(sorted(self.degradations + other.degradations)),
            crashes=tuple(sorted(self.crashes + other.crashes)),
            meta={**self.meta, **other.meta},
        )

    @classmethod
    def from_events(
        cls,
        events: Iterable[ChannelOutage | ConverterDegradation | ShardCrash],
    ) -> "FaultPlan":
        """Sort a mixed event iterable into a plan."""
        outages: list[ChannelOutage] = []
        degradations: list[ConverterDegradation] = []
        crashes: list[ShardCrash] = []
        for ev in events:
            if isinstance(ev, ChannelOutage):
                outages.append(ev)
            elif isinstance(ev, ConverterDegradation):
                degradations.append(ev)
            elif isinstance(ev, ShardCrash):
                crashes.append(ev)
            else:
                raise InvalidParameterError(f"unknown fault event {ev!r}")
        return cls(
            outages=tuple(sorted(outages)),
            degradations=tuple(sorted(degradations)),
            crashes=tuple(sorted(crashes)),
        )

    @classmethod
    def random(
        cls,
        seed: int,
        n_fibers: int,
        k: int,
        horizon: int,
        *,
        n_outages: int = 4,
        n_degradations: int = 1,
        n_crashes: int = 1,
        max_outage_slots: int = 20,
        max_degradation_slots: int = 30,
    ) -> "FaultPlan":
        """Draw a randomized-but-reproducible plan from one seed.

        Every event starts in ``[0, horizon)``; outage/degradation lengths
        are uniform in ``[1, max_*_slots]``.  Degraded reach ``(e', f')`` is
        uniform over the sub-degrees down to fixed-wavelength ``d' = 1``.
        The draw order is fixed, so one ``(seed, shape)`` pair always yields
        the same plan — the chaos harness depends on this.
        """
        check_positive_int(n_fibers, "n_fibers")
        check_positive_int(k, "k")
        check_positive_int(horizon, "horizon")
        rng = np.random.default_rng(seed)
        outages = tuple(
            sorted(
                ChannelOutage(
                    fiber=int(rng.integers(n_fibers)),
                    wavelength=int(rng.integers(k)),
                    start=int(rng.integers(horizon)),
                    duration=int(rng.integers(1, max_outage_slots + 1)),
                )
                for _ in range(check_nonnegative_int(n_outages, "n_outages"))
            )
        )
        degradations = tuple(
            sorted(
                ConverterDegradation(
                    input_fiber=int(rng.integers(n_fibers)),
                    start=int(rng.integers(horizon)),
                    duration=int(rng.integers(1, max_degradation_slots + 1)),
                    e=int(rng.integers(0, 2)),
                    f=int(rng.integers(0, 2)),
                )
                for _ in range(
                    check_nonnegative_int(n_degradations, "n_degradations")
                )
            )
        )
        crashes = tuple(
            sorted(
                ShardCrash(
                    fiber=int(rng.integers(n_fibers)),
                    slot=int(rng.integers(horizon)),
                )
                for _ in range(check_nonnegative_int(n_crashes, "n_crashes"))
            )
        )
        return cls(
            outages=outages,
            degradations=degradations,
            crashes=crashes,
            meta={"seed": seed, "horizon": horizon},
        )
