"""Crash points: sever a journal append mid-record, or die at a named
step of a multi-phase operation.

The durability layer's torn-write tolerance claim — a crash during a
journal write costs at most the record being written — needs a way to
*produce* torn writes deterministically.  :class:`TornWriter` wraps any
journal backend (duck-typed: ``append``/``flush``/``load``/``rewrite``/
``close``) and, on a configured append, writes only a prefix of the record
before raising :class:`~repro.errors.JournalCrashError`, simulating the
process dying with the write half-issued.

:class:`CrashPoints` generalizes the idea to *named* points: a multi-phase
operation (live shard migration is the canonical user — see
:mod:`repro.service.resharding`) calls :meth:`CrashPoints.reached` at each
phase boundary, and a test arms exactly the phases it wants to die at.
An armed point fires **once** (it disarms itself), so re-driving the
interrupted operation runs to completion — which is precisely the
recovery contract the kill-at-every-phase tests assert.

Both helpers deliberately avoid importing :mod:`repro.service` (the
service imports :mod:`repro.faults`, not the other way around), so they
can live with the rest of the fault model.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import (
    CrashPointError,
    InvalidParameterError,
    JournalCrashError,
)
from repro.util.validation import check_nonnegative_int

__all__ = ["TornWriter", "CrashPoints"]


class CrashPoints:
    """Named crash points for multi-phase operations.

    ``arm`` — point names to die at (each fires once, then disarms, so a
    retry of the killed operation proceeds past it).  The instrumented
    code calls :meth:`reached` at every phase boundary; unarmed points
    just record the visit in :attr:`visited` (order preserved, repeats
    kept), which lets tests assert an operation's phase trace without
    killing anything.
    """

    def __init__(self, arm: Iterable[str] = ()) -> None:
        self._armed = set(arm)
        #: Every point name passed to :meth:`reached`, in call order.
        self.visited: list[str] = []
        #: Points that actually fired (armed at visit time).
        self.fired: list[str] = []

    def reached(self, name: str) -> None:
        """Record the visit; die here if ``name`` is armed (one-shot)."""
        self.visited.append(name)
        if name in self._armed:
            self._armed.discard(name)
            self.fired.append(name)
            raise CrashPointError(f"simulated crash at {name!r}")

    def armed(self, name: str) -> bool:
        return name in self._armed


class TornWriter:
    """A journal backend that dies partway through one append.

    ``crash_at_append`` — 0-based index of the append to sever.
    ``keep_bytes`` — how many bytes of that record reach the backend
    before the "power loss" (0 = nothing; clamped to the record length).
    Appends after the crash raise again: a dead process stays dead until
    the test builds a fresh backend over the surviving bytes.
    """

    def __init__(
        self, inner, crash_at_append: int, keep_bytes: int = 0
    ) -> None:
        check_nonnegative_int(crash_at_append, "crash_at_append")
        check_nonnegative_int(keep_bytes, "keep_bytes")
        self.inner = inner
        self.crash_at_append = crash_at_append
        self.keep_bytes = keep_bytes
        self._appends = 0
        self.crashed = False

    def append(self, data: bytes) -> None:
        if self.crashed or self._appends >= self.crash_at_append:
            self.crashed = True
            torn = data[: min(self.keep_bytes, len(data))]
            if torn:
                self.inner.append(torn)
                self.inner.flush()
            raise JournalCrashError(
                f"simulated power loss: {len(torn)} of {len(data)} bytes "
                f"of append #{self._appends} reached the journal"
            )
        self._appends += 1
        self.inner.append(data)

    def flush(self) -> None:
        self.inner.flush()

    def load(self) -> bytes:
        return self.inner.load()

    def rewrite(self, data: bytes) -> None:
        if self.crashed:
            raise JournalCrashError("backend crashed; cannot rewrite")
        self.inner.rewrite(data)

    def close(self) -> None:
        self.inner.close()
