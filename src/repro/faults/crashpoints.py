"""Crash points: sever a journal append mid-record.

The durability layer's torn-write tolerance claim — a crash during a
journal write costs at most the record being written — needs a way to
*produce* torn writes deterministically.  :class:`TornWriter` wraps any
journal backend (duck-typed: ``append``/``flush``/``load``/``rewrite``/
``close``) and, on a configured append, writes only a prefix of the record
before raising :class:`~repro.errors.JournalCrashError`, simulating the
process dying with the write half-issued.

The wrapper deliberately avoids importing :mod:`repro.service` (the
service imports :mod:`repro.faults`, not the other way around), so it can
live with the rest of the fault model.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError, JournalCrashError
from repro.util.validation import check_nonnegative_int

__all__ = ["TornWriter"]


class TornWriter:
    """A journal backend that dies partway through one append.

    ``crash_at_append`` — 0-based index of the append to sever.
    ``keep_bytes`` — how many bytes of that record reach the backend
    before the "power loss" (0 = nothing; clamped to the record length).
    Appends after the crash raise again: a dead process stays dead until
    the test builds a fresh backend over the surviving bytes.
    """

    def __init__(
        self, inner, crash_at_append: int, keep_bytes: int = 0
    ) -> None:
        check_nonnegative_int(crash_at_append, "crash_at_append")
        check_nonnegative_int(keep_bytes, "keep_bytes")
        self.inner = inner
        self.crash_at_append = crash_at_append
        self.keep_bytes = keep_bytes
        self._appends = 0
        self.crashed = False

    def append(self, data: bytes) -> None:
        if self.crashed or self._appends >= self.crash_at_append:
            self.crashed = True
            torn = data[: min(self.keep_bytes, len(data))]
            if torn:
                self.inner.append(torn)
                self.inner.flush()
            raise JournalCrashError(
                f"simulated power loss: {len(torn)} of {len(data)} bytes "
                f"of append #{self._appends} reached the journal"
            )
        self._appends += 1
        self.inner.append(data)

    def flush(self) -> None:
        self.inner.flush()

    def load(self) -> bytes:
        return self.inner.load()

    def rewrite(self, data: bytes) -> None:
        if self.crashed:
            raise JournalCrashError("backend crashed; cannot rewrite")
        self.inner.rewrite(data)

    def close(self) -> None:
        self.inner.close()
