"""Deterministic, seeded *wire* fault plans for the TCP service stack.

:mod:`repro.faults.plan` models faults in the optical datapath (dark
channels, degraded converters, dead shards).  This module models the other
failure domain a distributed scheduler lives in: the network between its
clients and the front door.  A :class:`NetFaultPlan` declares, in slot
time, which wire faults a :class:`repro.net.chaos.ChaosProxy` injects into
the byte stream between a :class:`~repro.net.client.NetClient` and a
:class:`~repro.net.server.NetServer`:

* :class:`LatencySpike` — every relayed frame is delayed while the event
  is active (``[start, start + duration)`` slots), with a deterministic
  jitter spread.
* :class:`WriteStall` — one frame is dribbled out a few bytes at a time
  over ``seconds`` (a slow-loris writer); the peer's read loop must ride
  it out or its liveness machinery must trip, never hang forever.
* :class:`ConnReset` — the connection is torn down mid-frame: half a
  frame is written, then the transport aborts.  The reader must surface
  "closed mid-frame" and the resilient client must reconnect/redeliver.
* :class:`CorruptByte` — one payload byte of one frame is XOR-flipped.
  The strict :class:`~repro.util.framing.FrameDecoder` must kill the
  connection loudly (CRC mismatch); a wrong grant must never be
  delivered.
* :class:`DuplicateFrame` — the next SUBMIT frame is delivered twice,
  byte-identical.  The server's exactly-once dedup must absorb it.
* :class:`Partition` — from the trigger slot the link is severed and new
  connections are refused for ``seconds`` of wall time (slot time stops
  flowing during a full partition, so the healing edge must be wall
  clock).

One-shot events (everything but :class:`LatencySpike`) fire at the first
relayed frame at-or-after their slot, in the event's direction
(``"s2c"`` server→client or ``"c2s"`` client→server).  Plans are
immutable; :meth:`NetFaultPlan.random` draws a reproducible plan from one
seed — the chaos drill (``tests/test_net_chaos.py``) depends on one
``(seed, shape)`` pair always yielding the same plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.errors import InvalidParameterError
from repro.util.validation import check_nonnegative_int, check_positive_int

__all__ = [
    "LatencySpike",
    "WriteStall",
    "ConnReset",
    "CorruptByte",
    "DuplicateFrame",
    "Partition",
    "NetFaultPlan",
]

_DIRECTIONS = ("c2s", "s2c")


def _check_direction(direction: str, what: str) -> None:
    if direction not in _DIRECTIONS:
        raise InvalidParameterError(
            f"{what} direction must be one of {_DIRECTIONS}, got {direction!r}"
        )


def _check_seconds(seconds: float, what: str) -> None:
    if not seconds > 0:
        raise InvalidParameterError(f"{what} must be > 0, got {seconds}")


@dataclass(frozen=True, slots=True, order=True)
class LatencySpike:
    """Every frame relayed during ``[start, start + duration)`` slots is
    held for ``delay`` seconds plus a deterministic jitter in
    ``[0, jitter]`` (spread by frame index, not a clock)."""

    start: int
    duration: int
    delay: float = 0.01
    jitter: float = 0.0

    def active_at(self, slot: int) -> bool:
        return self.start <= slot < self.start + self.duration


@dataclass(frozen=True, slots=True, order=True)
class WriteStall:
    """The first ``direction`` frame at-or-after ``slot`` is written a few
    bytes at a time over ``seconds`` (slow-loris)."""

    slot: int
    seconds: float = 0.2
    direction: str = "s2c"


@dataclass(frozen=True, slots=True, order=True)
class ConnReset:
    """The connection is aborted halfway through the first ``direction``
    frame at-or-after ``slot``."""

    slot: int
    direction: str = "s2c"


@dataclass(frozen=True, slots=True, order=True)
class CorruptByte:
    """One payload byte (index ``offset`` modulo the payload length) of
    the first ``direction`` frame at-or-after ``slot`` is XOR-flipped with
    ``mask`` — a CRC-detectable single-byte corruption."""

    slot: int
    offset: int = 0
    mask: int = 0xFF
    direction: str = "s2c"


@dataclass(frozen=True, slots=True, order=True)
class DuplicateFrame:
    """The first client→server SUBMIT/SUBMIT2 frame at-or-after ``slot``
    is relayed twice, byte-identical (exactly-once dedup drill)."""

    slot: int


@dataclass(frozen=True, slots=True, order=True)
class Partition:
    """From the first activity at-or-after ``slot``, the link is severed
    and reconnects are refused for ``seconds`` of wall time."""

    slot: int
    seconds: float = 0.5


_ONE_SHOT = (WriteStall, ConnReset, CorruptByte, DuplicateFrame, Partition)


@dataclass(frozen=True)
class NetFaultPlan:
    """An immutable, validated collection of timed wire-fault events.

    Build one explicitly, or draw a reproducible randomized plan with
    :meth:`random`.  The plan is pure data; a
    :class:`repro.net.chaos.ChaosProxy` executes it against a live
    connection.
    """

    latencies: tuple[LatencySpike, ...] = ()
    stalls: tuple[WriteStall, ...] = ()
    resets: tuple[ConnReset, ...] = ()
    corruptions: tuple[CorruptByte, ...] = ()
    duplicates: tuple[DuplicateFrame, ...] = ()
    partitions: tuple[Partition, ...] = ()
    #: Free-form provenance (seed, generator parameters) for reports.
    meta: dict = field(default_factory=dict, compare=False)

    @property
    def n_events(self) -> int:
        return (
            len(self.latencies)
            + len(self.stalls)
            + len(self.resets)
            + len(self.corruptions)
            + len(self.duplicates)
            + len(self.partitions)
        )

    @property
    def is_empty(self) -> bool:
        return self.n_events == 0

    def validate(self) -> "NetFaultPlan":
        """Raise :class:`InvalidParameterError` on any ill-formed event;
        returns the plan for chaining."""
        for ev in self.latencies:
            check_nonnegative_int(ev.start, "latency start")
            check_positive_int(ev.duration, "latency duration")
            if ev.delay < 0 or ev.jitter < 0:
                raise InvalidParameterError(
                    f"latency delay/jitter must be >= 0, got {ev}"
                )
        for ev in self.stalls:
            check_nonnegative_int(ev.slot, "stall slot")
            _check_seconds(ev.seconds, "stall seconds")
            _check_direction(ev.direction, "stall")
        for ev in self.resets:
            check_nonnegative_int(ev.slot, "reset slot")
            _check_direction(ev.direction, "reset")
        for ev in self.corruptions:
            check_nonnegative_int(ev.slot, "corruption slot")
            check_nonnegative_int(ev.offset, "corruption offset")
            _check_direction(ev.direction, "corruption")
            if not 1 <= ev.mask <= 0xFF:
                raise InvalidParameterError(
                    f"corruption mask must be in [1, 255], got {ev.mask}"
                )
        for ev in self.duplicates:
            check_nonnegative_int(ev.slot, "duplicate slot")
        for ev in self.partitions:
            check_nonnegative_int(ev.slot, "partition slot")
            _check_seconds(ev.seconds, "partition seconds")
        return self

    def horizon(self) -> int:
        """One past the last trigger slot (0 for an empty plan)."""
        ends: list[int] = []
        ends.extend(ev.start + ev.duration for ev in self.latencies)
        for group in (
            self.stalls, self.resets, self.corruptions,
            self.duplicates, self.partitions,
        ):
            ends.extend(ev.slot + 1 for ev in group)
        return max(ends, default=0)

    def merge(self, other: "NetFaultPlan") -> "NetFaultPlan":
        """Union of two plans (events concatenated, sorted)."""
        return NetFaultPlan(
            latencies=tuple(sorted(self.latencies + other.latencies)),
            stalls=tuple(sorted(self.stalls + other.stalls)),
            resets=tuple(sorted(self.resets + other.resets)),
            corruptions=tuple(sorted(self.corruptions + other.corruptions)),
            duplicates=tuple(sorted(self.duplicates + other.duplicates)),
            partitions=tuple(sorted(self.partitions + other.partitions)),
            meta={**self.meta, **other.meta},
        )

    @classmethod
    def from_events(cls, events: Iterable) -> "NetFaultPlan":
        """Sort a mixed event iterable into a plan."""
        buckets: dict[type, list] = {
            LatencySpike: [], WriteStall: [], ConnReset: [],
            CorruptByte: [], DuplicateFrame: [], Partition: [],
        }
        for ev in events:
            bucket = buckets.get(type(ev))
            if bucket is None:
                raise InvalidParameterError(f"unknown net fault event {ev!r}")
            bucket.append(ev)
        return cls(
            latencies=tuple(sorted(buckets[LatencySpike])),
            stalls=tuple(sorted(buckets[WriteStall])),
            resets=tuple(sorted(buckets[ConnReset])),
            corruptions=tuple(sorted(buckets[CorruptByte])),
            duplicates=tuple(sorted(buckets[DuplicateFrame])),
            partitions=tuple(sorted(buckets[Partition])),
        )

    @classmethod
    def random(
        cls,
        seed: int,
        horizon: int,
        *,
        n_latencies: int = 1,
        n_stalls: int = 1,
        n_resets: int = 2,
        n_corruptions: int = 1,
        n_duplicates: int = 2,
        n_partitions: int = 1,
        max_latency_slots: int = 8,
        max_stall_seconds: float = 0.2,
        max_partition_seconds: float = 0.4,
    ) -> "NetFaultPlan":
        """Draw a randomized-but-reproducible plan from one seed.

        Every trigger slot lands in ``[0, horizon)``; wall-clock
        durations are uniform in ``(0, max_*_seconds]``.  The draw order
        is fixed, so one ``(seed, shape)`` pair always yields the same
        plan — the net chaos drill depends on this.
        """
        check_positive_int(horizon, "horizon")
        rng = np.random.default_rng(seed)
        directions = np.array(_DIRECTIONS)
        latencies = tuple(
            sorted(
                LatencySpike(
                    start=int(rng.integers(horizon)),
                    duration=int(rng.integers(1, max_latency_slots + 1)),
                    delay=float(rng.uniform(0.001, 0.01)),
                    jitter=float(rng.uniform(0.0, 0.005)),
                )
                for _ in range(check_nonnegative_int(n_latencies, "n_latencies"))
            )
        )
        stalls = tuple(
            sorted(
                WriteStall(
                    slot=int(rng.integers(horizon)),
                    seconds=float(rng.uniform(0.01, max_stall_seconds)),
                    direction=str(rng.choice(directions)),
                )
                for _ in range(check_nonnegative_int(n_stalls, "n_stalls"))
            )
        )
        resets = tuple(
            sorted(
                ConnReset(
                    slot=int(rng.integers(horizon)),
                    direction=str(rng.choice(directions)),
                )
                for _ in range(check_nonnegative_int(n_resets, "n_resets"))
            )
        )
        corruptions = tuple(
            sorted(
                CorruptByte(
                    slot=int(rng.integers(horizon)),
                    offset=int(rng.integers(0, 64)),
                    mask=int(rng.integers(1, 256)),
                    direction=str(rng.choice(directions)),
                )
                for _ in range(
                    check_nonnegative_int(n_corruptions, "n_corruptions")
                )
            )
        )
        duplicates = tuple(
            sorted(
                DuplicateFrame(slot=int(rng.integers(horizon)))
                for _ in range(
                    check_nonnegative_int(n_duplicates, "n_duplicates")
                )
            )
        )
        partitions = tuple(
            sorted(
                Partition(
                    slot=int(rng.integers(horizon)),
                    seconds=float(rng.uniform(0.05, max_partition_seconds)),
                )
                for _ in range(
                    check_nonnegative_int(n_partitions, "n_partitions")
                )
            )
        )
        return cls(
            latencies=latencies,
            stalls=stalls,
            resets=resets,
            corruptions=corruptions,
            duplicates=duplicates,
            partitions=partitions,
            meta={"seed": seed, "horizon": horizon},
        ).validate()
