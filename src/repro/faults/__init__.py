"""repro.faults — deterministic fault injection and graceful degradation.

The paper's per-output-fiber independence makes the interconnect naturally
fault-isolable; this package supplies the fault *model* that the rest of the
repo degrades against:

* :mod:`~repro.faults.plan` — :class:`FaultPlan` and its timed events
  (:class:`ChannelOutage`, :class:`ConverterDegradation`,
  :class:`ShardCrash`), including a seeded randomized generator.
* :mod:`~repro.faults.injector` — :class:`FaultInjector`, the per-slot
  query object consumed by both simulation engines (``faults=`` parameter)
  and the scheduling service.
* :mod:`~repro.faults.net` — :class:`NetFaultPlan` and its timed wire
  faults (latency spikes, write stalls, mid-frame resets, byte
  corruption, duplicate delivery, partitions), executed by
  :class:`repro.net.chaos.ChaosProxy` against the TCP stack.

See ``docs/ROBUSTNESS.md`` for the full fault model and the chaos-harness
usage, and ``tests/test_chaos.py`` for the seeded end-to-end drill.
"""

from repro.faults.crashpoints import CrashPoints, TornWriter
from repro.faults.injector import FaultInjector, as_injector
from repro.faults.net import (
    ConnReset,
    CorruptByte,
    DuplicateFrame,
    LatencySpike,
    NetFaultPlan,
    Partition,
    WriteStall,
)
from repro.faults.plan import (
    ChannelOutage,
    ConverterDegradation,
    FaultPlan,
    ShardCrash,
)

__all__ = [
    "ChannelOutage",
    "ConnReset",
    "ConverterDegradation",
    "CorruptByte",
    "CrashPoints",
    "DuplicateFrame",
    "FaultInjector",
    "FaultPlan",
    "LatencySpike",
    "NetFaultPlan",
    "Partition",
    "ShardCrash",
    "TornWriter",
    "WriteStall",
    "as_injector",
]
