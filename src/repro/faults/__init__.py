"""repro.faults — deterministic fault injection and graceful degradation.

The paper's per-output-fiber independence makes the interconnect naturally
fault-isolable; this package supplies the fault *model* that the rest of the
repo degrades against:

* :mod:`~repro.faults.plan` — :class:`FaultPlan` and its timed events
  (:class:`ChannelOutage`, :class:`ConverterDegradation`,
  :class:`ShardCrash`), including a seeded randomized generator.
* :mod:`~repro.faults.injector` — :class:`FaultInjector`, the per-slot
  query object consumed by both simulation engines (``faults=`` parameter)
  and the scheduling service.

See ``docs/ROBUSTNESS.md`` for the full fault model and the chaos-harness
usage, and ``tests/test_chaos.py`` for the seeded end-to-end drill.
"""

from repro.faults.crashpoints import CrashPoints, TornWriter
from repro.faults.injector import FaultInjector, as_injector
from repro.faults.plan import (
    ChannelOutage,
    ConverterDegradation,
    FaultPlan,
    ShardCrash,
)

__all__ = [
    "ChannelOutage",
    "ConverterDegradation",
    "CrashPoints",
    "FaultInjector",
    "FaultPlan",
    "ShardCrash",
    "TornWriter",
    "as_injector",
]
