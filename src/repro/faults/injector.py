"""Per-slot fault-state queries over a :class:`~repro.faults.plan.FaultPlan`.

The :class:`FaultInjector` is the runtime face of a plan: engines and the
service ask it, once per slot,

* which output channels are dark (:meth:`dark_mask` — an ``(N, k)`` boolean
  array that ANDs straight into the availability mask both engines and the
  service shards already maintain),
* which input fibers are degraded and to what reach
  (:meth:`degradations_at` — fed into the request-graph narrowing in
  :func:`repro.core.distributed.schedule_output_fiber`),
* which shards crash this slot (:meth:`crashes_at` — service layer only),
* which events *begin* this slot (:meth:`starting_at` — telemetry).

Queries are pure functions of ``slot`` (no internal clock), so the slotted
simulator, the fast engine, and the service — each with its own slot counter
— can share one injector and see identical fault state.  The per-slot cost
is ``O(events)``, negligible next to the scheduling work.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.faults.plan import (
    ChannelOutage,
    ConverterDegradation,
    FaultPlan,
    ShardCrash,
)

__all__ = ["FaultInjector", "as_injector"]


class FaultInjector:
    """Answers per-slot fault queries for an ``n_fibers × k`` interconnect."""

    def __init__(self, plan: FaultPlan, n_fibers: int, k: int) -> None:
        self.plan = plan.validate(n_fibers, k)
        self.n_fibers = n_fibers
        self.k = k
        # The mask for a slot is asked for by every layer (engine commit
        # checks, shard rows, telemetry); memoize the last slot computed.
        self._mask_slot: int | None = None
        self._mask: np.ndarray | None = None

    # -- channel outages ----------------------------------------------------

    @property
    def has_outages(self) -> bool:
        return bool(self.plan.outages)

    @property
    def has_degradations(self) -> bool:
        return self.plan.has_degradations

    @property
    def has_crashes(self) -> bool:
        return self.plan.has_crashes

    def dark_mask(self, slot: int) -> np.ndarray:
        """``(N, k)`` boolean array; ``True`` marks a dark output channel.

        The returned array is cached per slot and must be treated as
        read-only by callers.
        """
        if slot == self._mask_slot:
            assert self._mask is not None
            return self._mask
        mask = np.zeros((self.n_fibers, self.k), dtype=bool)
        for ev in self.plan.outages:
            if ev.active_at(slot):
                mask[ev.fiber, ev.wavelength] = True
        self._mask_slot = slot
        self._mask = mask
        return mask

    def n_dark(self, slot: int) -> int:
        """Number of dark output channels at ``slot``."""
        return int(self.dark_mask(slot).sum())

    # -- converter degradation ----------------------------------------------

    def degradations_at(self, slot: int) -> dict[int, tuple[int, int]]:
        """``{input_fiber: (e', f')}`` for fibers degraded at ``slot``.

        Overlapping degradations of one fiber compose by intersection
        (element-wise ``min`` of the reaches) — a doubly-degraded converter
        is no better than its worst fault.
        """
        out: dict[int, tuple[int, int]] = {}
        for ev in self.plan.degradations:
            if ev.active_at(slot):
                prev = out.get(ev.input_fiber)
                if prev is None:
                    out[ev.input_fiber] = (ev.e, ev.f)
                else:
                    out[ev.input_fiber] = (
                        min(prev[0], ev.e),
                        min(prev[1], ev.f),
                    )
        return out

    # -- shard crashes ------------------------------------------------------

    def crashes_at(self, slot: int) -> tuple[ShardCrash, ...]:
        """The crash events scheduled for exactly ``slot``."""
        return tuple(ev for ev in self.plan.crashes if ev.slot == slot)

    # -- telemetry ----------------------------------------------------------

    def starting_at(
        self, slot: int
    ) -> tuple[ChannelOutage | ConverterDegradation | ShardCrash, ...]:
        """Events whose effect begins at exactly ``slot`` (event counters)."""
        started: list = [
            ev for ev in self.plan.outages if ev.start == slot
        ]
        started.extend(
            ev for ev in self.plan.degradations if ev.start == slot
        )
        started.extend(ev for ev in self.plan.crashes if ev.slot == slot)
        return tuple(started)

    def __repr__(self) -> str:
        return (
            f"FaultInjector(n_fibers={self.n_fibers}, k={self.k}, "
            f"outages={len(self.plan.outages)}, "
            f"degradations={len(self.plan.degradations)}, "
            f"crashes={len(self.plan.crashes)})"
        )


def as_injector(
    faults: "FaultInjector | FaultPlan | None", n_fibers: int, k: int
) -> FaultInjector | None:
    """Coerce a constructor's ``faults=`` argument to an injector.

    Accepts ``None`` (no faults), a plan (wrapped), or a ready injector
    (checked against the interconnect shape so one injector can be shared by
    an engine and a service only when they agree on dimensions).
    """
    if faults is None:
        return None
    if isinstance(faults, FaultPlan):
        return FaultInjector(faults, n_fibers, k)
    if isinstance(faults, FaultInjector):
        if faults.n_fibers != n_fibers or faults.k != k:
            raise InvalidParameterError(
                f"fault injector is {faults.n_fibers}×{faults.k}, "
                f"interconnect is {n_fibers}×{k}"
            )
        return faults
    raise InvalidParameterError(
        f"faults must be a FaultPlan or FaultInjector, got {faults!r}"
    )
