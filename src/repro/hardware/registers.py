"""Bit-level registers of the hardware scheduler (paper Section II-B).

"The left side vertices of the request graph can be implemented by an
``Nk × 1`` binary vector (an ``Nk``-bit register), with element
``(i-1)k + j`` being 1 meaning ``λ_j`` on the i-th input fiber is destined
for this output fiber" — :class:`RequestRegister` is that register, with the
per-wavelength OR-reduction and priority encoding the First Available step
needs, each modeled as a single-cycle combinational primitive.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import HardwareModelError, InvalidParameterError
from repro.util.validation import check_index, check_positive_int

__all__ = ["BitVector", "RequestRegister"]


class BitVector:
    """A fixed-width bit register backed by a Python int.

    Mutators return ``None``; combinational queries (:meth:`first_set`,
    :meth:`popcount`, masking) model single-cycle datapath primitives
    (priority encoders, adders, AND planes).
    """

    __slots__ = ("_width", "_bits")

    def __init__(self, width: int, bits: int = 0) -> None:
        self._width = check_positive_int(width, "width")
        if bits < 0 or bits >> self._width:
            raise InvalidParameterError(
                f"bits value {bits:#x} does not fit in {self._width} bits"
            )
        self._bits = bits

    @classmethod
    def from_bools(cls, flags: Iterable[bool]) -> "BitVector":
        """Build from an iterable of booleans (index 0 = LSB)."""
        flags = list(flags)
        bits = 0
        for i, flag in enumerate(flags):
            if flag:
                bits |= 1 << i
        return cls(max(1, len(flags)), bits)

    @property
    def width(self) -> int:
        """Register width in bits."""
        return self._width

    @property
    def bits(self) -> int:
        """Raw register value."""
        return self._bits

    def get(self, i: int) -> bool:
        """Read bit ``i``."""
        check_index(i, self._width, "i")
        return bool((self._bits >> i) & 1)

    def set(self, i: int, value: bool = True) -> None:
        """Write bit ``i``."""
        check_index(i, self._width, "i")
        if value:
            self._bits |= 1 << i
        else:
            self._bits &= ~(1 << i)

    def clear(self, i: int) -> None:
        """Clear bit ``i``."""
        self.set(i, False)

    def popcount(self) -> int:
        """Number of set bits (combinational adder tree)."""
        return self._bits.bit_count()

    def first_set(self, lo: int = 0, hi: int | None = None) -> int | None:
        """Lowest set bit index in ``[lo, hi]`` (priority encoder), if any."""
        hi = self._width - 1 if hi is None else hi
        if lo < 0:
            lo = 0
        if hi >= self._width:
            hi = self._width - 1
        if hi < lo:
            return None
        span = hi - lo + 1
        window = (self._bits >> lo) & ((1 << span) - 1)
        if window == 0:
            return None
        return lo + (window & -window).bit_length() - 1

    def masked(self, mask: int) -> "BitVector":
        """AND with a raw mask (combinational)."""
        return BitVector(self._width, self._bits & mask & ((1 << self._width) - 1))

    def any(self) -> bool:
        """Whether any bit is set."""
        return self._bits != 0

    def __iter__(self) -> Iterator[bool]:
        for i in range(self._width):
            yield bool((self._bits >> i) & 1)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._width == other._width and self._bits == other._bits

    def __hash__(self) -> int:
        return hash((self._width, self._bits))

    def __repr__(self) -> str:
        return f"BitVector({self._width}, {self._bits:#x})"


class RequestRegister:
    """The ``Nk``-bit per-output request register (paper Section II-B).

    Bit ``i * k + j`` set means "λ_j on input fiber ``i`` requests this
    output fiber".  The register is loaded at the start of each slot and
    bits are cleared as grants are issued.
    """

    def __init__(self, n_fibers: int, k: int) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        self.k = check_positive_int(k, "k")
        self._reg = BitVector(self.n_fibers * self.k)

    @classmethod
    def from_requests(
        cls, n_fibers: int, k: int, requests: Iterable[tuple[int, int]]
    ) -> "RequestRegister":
        """Load from ``(input_fiber, wavelength)`` pairs."""
        reg = cls(n_fibers, k)
        for fiber, w in requests:
            reg.load(fiber, w)
        return reg

    def _bit(self, fiber: int, w: int) -> int:
        check_index(fiber, self.n_fibers, "fiber")
        check_index(w, self.k, "w")
        return fiber * self.k + w

    def load(self, fiber: int, w: int) -> None:
        """Set the request bit for input channel ``(fiber, λ_w)``."""
        bit = self._bit(fiber, w)
        if self._reg.get(bit):
            raise HardwareModelError(
                f"input channel (fiber {fiber}, λ{w}) requested twice in one slot"
            )
        self._reg.set(bit)

    def clear(self, fiber: int, w: int) -> None:
        """Clear the request bit (the request was granted)."""
        bit = self._bit(fiber, w)
        if not self._reg.get(bit):
            raise HardwareModelError(
                f"granting input channel (fiber {fiber}, λ{w}) with no request"
            )
        self._reg.clear(bit)

    def has_request(self, fiber: int, w: int) -> bool:
        """Whether input channel ``(fiber, λ_w)`` holds a pending request."""
        return self._reg.get(self._bit(fiber, w))

    def any_on_wavelength(self, w: int) -> bool:
        """OR-reduction across fibers for ``λ_w`` (combinational)."""
        check_index(w, self.k, "w")
        return any(
            self._reg.get(fiber * self.k + w) for fiber in range(self.n_fibers)
        )

    def wavelength_summary(self) -> BitVector:
        """``k``-bit vector: bit ``w`` set iff some fiber requests ``λ_w``.

        In hardware this is ``N``-way OR per wavelength, evaluated
        continuously; here it is recomputed on demand.
        """
        return BitVector.from_bools(
            [self.any_on_wavelength(w) for w in range(self.k)]
        )

    def count_on_wavelength(self, w: int) -> int:
        """Pending requests on ``λ_w`` across all fibers."""
        check_index(w, self.k, "w")
        return sum(
            self._reg.get(fiber * self.k + w) for fiber in range(self.n_fibers)
        )

    def fibers_on_wavelength(self, w: int) -> list[int]:
        """Fibers with a pending request on ``λ_w``, ascending."""
        check_index(w, self.k, "w")
        return [
            fiber
            for fiber in range(self.n_fibers)
            if self._reg.get(fiber * self.k + w)
        ]

    def first_fiber_on_wavelength(
        self, w: int, start: int = 0
    ) -> int | None:
        """Priority-encoded requesting fiber for ``λ_w``, searching
        circularly from ``start`` (round-robin support)."""
        check_index(w, self.k, "w")
        check_index(start, self.n_fibers, "start")
        for off in range(self.n_fibers):
            fiber = (start + off) % self.n_fibers
            if self._reg.get(fiber * self.k + w):
                return fiber
        return None

    def pending(self) -> int:
        """Total pending requests."""
        return self._reg.popcount()

    def snapshot(self) -> BitVector:
        """Copy of the raw register."""
        return BitVector(self._reg.width, self._reg.bits)

    def __repr__(self) -> str:
        return (
            f"RequestRegister(n_fibers={self.n_fibers}, k={self.k}, "
            f"pending={self.pending()})"
        )
