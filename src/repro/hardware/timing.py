"""Cycle accounting and real-time estimates for the hardware schedulers.

The paper motivates its complexity bounds with slot timing: "the decision has
to be made in real-time within a time slot, which is in the order of μs".
:func:`estimate_time_us` converts a cycle count into microseconds at a given
clock rate so the experiments can check which configurations fit a slot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError

__all__ = ["CycleReport", "estimate_time_us"]

#: A conservative early-2000s ASIC clock (the paper's era), in MHz.
DEFAULT_CLOCK_MHZ = 200.0


def estimate_time_us(cycles: int, clock_mhz: float = DEFAULT_CLOCK_MHZ) -> float:
    """Wall-clock time of ``cycles`` at ``clock_mhz``, in microseconds."""
    if cycles < 0:
        raise InvalidParameterError(f"cycles must be >= 0, got {cycles}")
    if clock_mhz <= 0:
        raise InvalidParameterError(f"clock_mhz must be > 0, got {clock_mhz}")
    return cycles / clock_mhz


@dataclass(frozen=True, slots=True)
class CycleReport:
    """Cycle-count summary of one hardware scheduling run."""

    algorithm: str
    k: int
    d: int
    cycles: int
    hardware_units: int = 1
    clock_mhz: float = DEFAULT_CLOCK_MHZ

    @property
    def time_us(self) -> float:
        """Scheduling latency in microseconds."""
        return estimate_time_us(self.cycles, self.clock_mhz)

    def fits_slot(self, slot_us: float) -> bool:
        """Whether the decision completes within a ``slot_us``-long slot."""
        if slot_us <= 0:
            raise InvalidParameterError(f"slot_us must be > 0, got {slot_us}")
        return self.time_us <= slot_us
