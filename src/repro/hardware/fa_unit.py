"""First Available hardware unit: one output channel per clock cycle.

Models the paper's Section-III hardware sketch: "we need only to find the
first input wavelength that has at least one packet and can be converted to
the current output wavelength … all this can be implemented in hardware and
the execution time of each step would be a constant."  Each :meth:`step` is
one clock cycle: a window mask, an AND plane, a priority encoder over the
``k``-bit wavelength summary, a fiber-select encoder (fixed-priority or the
round-robin pointer the paper recommends for fairness), and one register-bit
clear.  A full schedule takes exactly ``k`` cycles — independent of both the
interconnect size ``N`` and the conversion degree ``d``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

from repro.errors import HardwareModelError, InvalidParameterError
from repro.hardware.registers import RequestRegister
from repro.util.validation import check_nonnegative_int

__all__ = ["HardwareGrant", "FirstAvailableUnit"]

FiberSelect = Literal["fixed", "round-robin"]


@dataclass(frozen=True, slots=True)
class HardwareGrant:
    """A grant issued by a hardware unit: which input channel got which
    output channel, and on which clock cycle."""

    input_fiber: int
    wavelength: int
    channel: int
    cycle: int


@dataclass
class _UnitState:
    cycle: int = 0
    grants: list[HardwareGrant] = field(default_factory=list)


class FirstAvailableUnit:
    """``O(k)``-cycle First Available scheduler unit (non-circular windows).

    Parameters
    ----------
    k, e, f:
        Band size and conversion reach (non-circular clipped windows).
    fiber_select:
        How simultaneous same-wavelength requesters are arbitrated:
        ``"fixed"`` (lowest fiber index) or ``"round-robin"`` (per-wavelength
        rotating pointer, the paper's fairness recommendation).
    """

    def __init__(
        self, k: int, e: int, f: int, fiber_select: FiberSelect = "fixed"
    ) -> None:
        self.k = k
        self.e = check_nonnegative_int(e, "e")
        self.f = check_nonnegative_int(f, "f")
        if e + f + 1 > k:
            raise InvalidParameterError(
                f"conversion degree {e + f + 1} exceeds k={k}"
            )
        if fiber_select not in ("fixed", "round-robin"):
            raise InvalidParameterError(
                f"fiber_select must be 'fixed' or 'round-robin', got {fiber_select!r}"
            )
        self.fiber_select = fiber_select
        self._rr_pointers: dict[int, int] = {}

    def _select_fiber(self, register: RequestRegister, w: int) -> int:
        if self.fiber_select == "fixed":
            fiber = register.first_fiber_on_wavelength(w, 0)
        else:
            start = self._rr_pointers.get(w, 0) % register.n_fibers
            fiber = register.first_fiber_on_wavelength(w, start)
        if fiber is None:
            raise HardwareModelError(
                f"wavelength summary said λ{w} pending but no fiber bit set"
            )
        if self.fiber_select == "round-robin":
            self._rr_pointers[w] = (fiber + 1) % register.n_fibers
        return fiber

    def run(
        self,
        register: RequestRegister,
        available: Sequence[bool] | None = None,
    ) -> tuple[list[HardwareGrant], int]:
        """Run the full ``k``-cycle schedule for one output fiber.

        ``register`` holds the slot's requests (bits are cleared as grants
        are issued, as in the real datapath).  Returns the grants and the
        cycle count, which is always exactly ``k``.
        """
        if register.k != self.k:
            raise InvalidParameterError(
                f"register is {register.k}-wavelength, unit is {self.k}"
            )
        if available is None:
            available = [True] * self.k
        if len(available) != self.k:
            raise InvalidParameterError(
                f"availability mask length {len(available)} != k={self.k}"
            )
        state = _UnitState()
        for b in range(self.k):
            self.step(register, b, bool(available[b]), state)
        return state.grants, state.cycle

    def step(
        self,
        register: RequestRegister,
        channel: int,
        channel_available: bool,
        state: _UnitState,
    ) -> HardwareGrant | None:
        """One clock cycle: try to match output ``channel``.

        Combinational path: wavelength summary → window mask
        ``[channel - f, channel + e]`` → priority encoder → fiber select →
        register clear.
        """
        state.cycle += 1
        if not channel_available:
            return None
        summary = register.wavelength_summary()
        w = summary.first_set(channel - self.f, channel + self.e)
        if w is None:
            return None
        fiber = self._select_fiber(register, w)
        register.clear(fiber, w)
        grant = HardwareGrant(
            input_fiber=fiber, wavelength=w, channel=channel, cycle=state.cycle
        )
        state.grants.append(grant)
        return grant
