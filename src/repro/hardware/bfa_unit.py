"""Break-and-First-Available hardware units (paper Section IV-B).

Two variants, matching the paper's cost discussion:

* :class:`BreakFirstAvailableUnit` — one First Available datapath reused for
  all ``d`` breaks serially: ``1 + d·(k-1) + ceil(log2 d)`` cycles
  (``O(dk)``).
* :class:`ParallelBFAUnit` — ``d`` First Available datapaths in parallel,
  one per break, plus a compare tree picking the largest matching:
  ``1 + (k-1) + ceil(log2 d)`` cycles (``O(k)``) at ``d×`` the hardware cost
  ("we can also implement this algorithm in parallel and time complexity
  could be reduced to O(k), but we then need d units of hardware").

Both commit the winning matching to the request register and are
bit-for-bit equivalent to the software ``bfa_fast`` (tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.break_first_available import _Group, _reduced_groups
from repro.errors import HardwareModelError, InvalidParameterError
from repro.hardware.fa_unit import FiberSelect, HardwareGrant
from repro.hardware.registers import RequestRegister
from repro.util.validation import check_nonnegative_int

__all__ = ["BreakFirstAvailableUnit", "ParallelBFAUnit"]


@dataclass(frozen=True, slots=True)
class _Candidate:
    """Result of one break's First Available pass."""

    t: int
    u: int
    grants: tuple[tuple[int, int], ...]  # (wavelength, channel) incl. pivot
    cycles: int


def _ceil_log2(n: int) -> int:
    return max(0, (n - 1).bit_length())


class _BFACommon:
    """Shared pivot selection, candidate pass, and commit logic."""

    def __init__(
        self, k: int, e: int, f: int, fiber_select: FiberSelect = "fixed"
    ) -> None:
        self.k = k
        self.e = check_nonnegative_int(e, "e")
        self.f = check_nonnegative_int(f, "f")
        if e + f + 1 > k:
            raise InvalidParameterError(
                f"conversion degree {e + f + 1} exceeds k={k}"
            )
        if fiber_select not in ("fixed", "round-robin"):
            raise InvalidParameterError(
                f"fiber_select must be 'fixed' or 'round-robin', got {fiber_select!r}"
            )
        self.fiber_select = fiber_select
        self._rr_pointers: dict[int, int] = {}

    # -- pivot selection (1 setup cycle) -----------------------------------

    def _find_pivot(
        self, counts: list[int], available: Sequence[bool]
    ) -> tuple[int, list[tuple[int, int]]]:
        """Mirror of the software pivot rule: first wavelength carrying a
        request with at least one free adjacent channel; unmatchable
        wavelengths are masked out."""
        k, e, f = self.k, self.e, self.f
        for w in range(k):
            if counts[w] == 0:
                continue
            breaks = [
                (t, (w + t) % k)
                for t in range(-e, f + 1)
                if available[(w + t) % k]
            ]
            if breaks:
                return w, breaks
            counts[w] = 0
        return -1, []

    # -- one break's First Available pass ((k-1) cycles) --------------------

    def _candidate_pass(
        self,
        counts: Sequence[int],
        available: Sequence[bool],
        pivot_w: int,
        t: int,
        u: int,
    ) -> _Candidate:
        """Run First Available over the reduced instance of break ``(t, u)``.

        One cycle per shifted channel position, exactly like the FA unit;
        the interval decode per wavelength group is combinational (wired
        offset logic derived from ``(t, e, f)``).
        """
        k = self.k
        groups: list[_Group] = _reduced_groups(
            counts, k, self.e, self.f, pivot_w, t
        )
        remaining = [g.count for g in groups]
        grants: list[tuple[int, int]] = [(pivot_w, u)]
        gi = 0
        cycles = 0
        for p in range(k - 1):  # one clock per shifted position
            cycles += 1
            channel = (u + 1 + p) % k
            if not available[channel]:
                continue
            while gi < len(groups):
                g = groups[gi]
                if remaining[gi] == 0 or g.hi < g.lo or g.hi < p:
                    gi += 1
                    continue
                break
            if gi < len(groups) and groups[gi].lo <= p:
                remaining[gi] -= 1
                grants.append((groups[gi].wavelength, channel))
        return _Candidate(t=t, u=u, grants=tuple(grants), cycles=cycles)

    # -- commit -------------------------------------------------------------

    def _select_fiber(self, register: RequestRegister, w: int) -> int:
        if self.fiber_select == "fixed":
            fiber = register.first_fiber_on_wavelength(w, 0)
        else:
            start = self._rr_pointers.get(w, 0) % register.n_fibers
            fiber = register.first_fiber_on_wavelength(w, start)
        if fiber is None:
            raise HardwareModelError(
                f"committing a grant on λ{w} with no pending request"
            )
        if self.fiber_select == "round-robin":
            self._rr_pointers[w] = (fiber + 1) % register.n_fibers
        return fiber

    def _commit(
        self,
        register: RequestRegister,
        winner: _Candidate,
        cycle_base: int,
    ) -> list[HardwareGrant]:
        out: list[HardwareGrant] = []
        for i, (w, channel) in enumerate(winner.grants):
            fiber = self._select_fiber(register, w)
            register.clear(fiber, w)
            out.append(
                HardwareGrant(
                    input_fiber=fiber,
                    wavelength=w,
                    channel=channel,
                    cycle=cycle_base + i,
                )
            )
        return out

    def _run(
        self,
        register: RequestRegister,
        available: Sequence[bool] | None,
        parallel: bool,
    ) -> tuple[list[HardwareGrant], int]:
        if register.k != self.k:
            raise InvalidParameterError(
                f"register is {register.k}-wavelength, unit is {self.k}"
            )
        if available is None:
            available = [True] * self.k
        if len(available) != self.k:
            raise InvalidParameterError(
                f"availability mask length {len(available)} != k={self.k}"
            )
        counts = [register.count_on_wavelength(w) for w in range(self.k)]
        cycles = 1  # setup: pivot priority-encode + break decode
        pivot_w, breaks = self._find_pivot(counts, available)
        if pivot_w < 0:
            return [], cycles
        counts[pivot_w] -= 1

        candidates = [
            self._candidate_pass(counts, available, pivot_w, t, u)
            for t, u in breaks
        ]
        if parallel:
            cycles += max(c.cycles for c in candidates)
        else:
            cycles += sum(c.cycles for c in candidates)
        cycles += _ceil_log2(len(candidates))  # compare tree

        winner = max(candidates, key=lambda c: len(c.grants))
        # Software tie-break: the first break (in t order) that reached the
        # maximum wins, matching bfa_fast's strict-improvement rule.
        for c in candidates:
            if len(c.grants) == len(winner.grants):
                winner = c
                break
        grants = self._commit(register, winner, cycles)
        return grants, cycles


class BreakFirstAvailableUnit(_BFACommon):
    """Serial BFA unit: the ``d`` breaks share one FA datapath —
    ``1 + d(k-1) + ceil(log2 d)`` cycles."""

    def run(
        self,
        register: RequestRegister,
        available: Sequence[bool] | None = None,
    ) -> tuple[list[HardwareGrant], int]:
        """Schedule one output fiber; returns grants and cycle count."""
        return self._run(register, available, parallel=False)


class ParallelBFAUnit(_BFACommon):
    """Parallel BFA unit: ``d`` FA datapaths, ``1 + (k-1) + ceil(log2 d)``
    cycles, ``d×`` hardware cost."""

    def run(
        self,
        register: RequestRegister,
        available: Sequence[bool] | None = None,
    ) -> tuple[list[HardwareGrant], int]:
        """Schedule one output fiber; returns grants and cycle count."""
        return self._run(register, available, parallel=True)

    @property
    def n_units(self) -> int:
        """Number of parallel FA datapaths required (``d``)."""
        return self.e + self.f + 1
