"""Register-transfer-level models of the paper's hardware schedulers.

The paper argues its algorithms suit hardware: the request graph lives in an
``Nk``-bit register, each First Available step is one constant-time clock
cycle (priority encoders over ``k``-bit masks), and Break-and-First-Available
runs either serially (``O(dk)`` cycles) or on ``d`` parallel units (``O(k)``
cycles).  These models make the cycle counts explicit and are cross-validated
bit-for-bit against the software schedulers."""

from repro.hardware.bfa_unit import BreakFirstAvailableUnit, ParallelBFAUnit
from repro.hardware.fa_unit import FirstAvailableUnit
from repro.hardware.registers import BitVector, RequestRegister
from repro.hardware.timing import CycleReport, estimate_time_us

__all__ = [
    "BitVector",
    "RequestRegister",
    "FirstAvailableUnit",
    "BreakFirstAvailableUnit",
    "ParallelBFAUnit",
    "CycleReport",
    "estimate_time_us",
]
