"""Plain-text table rendering for the experiment harness.

The reproduction harness prints its results as aligned monospace tables (the
same rows/series a paper table or figure would report).  No third-party
formatting dependency is used.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table"]


def _render_cell(value: object, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = ".4g",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table.

    Floats are formatted with ``float_fmt``; booleans render as ``yes``/``no``.
    Returns the table as a single string (no trailing newline).
    """
    header_cells = [str(h) for h in headers]
    body = [[_render_cell(c, float_fmt) for c in row] for row in rows]
    for r, row in enumerate(body):
        if len(row) != len(header_cells):
            raise ValueError(
                f"row {r} has {len(row)} cells, expected {len(header_cells)}"
            )
    widths = [len(h) for h in header_cells]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(header_cells))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in body)
    return "\n".join(lines)
