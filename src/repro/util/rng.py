"""Seeded random-number-generator helpers.

Every stochastic component of the library (traffic models, random grant
policies, randomized experiment sweeps) takes a :class:`numpy.random.Generator`
so that simulations are exactly reproducible from a single integer seed.
The helpers here centralize construction and independent-stream spawning
(via :class:`numpy.random.SeedSequence`), mirroring the per-output-fiber
decomposition of the distributed schedulers: each output fiber's scheduler
can own an independent stream.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive_int

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    ``seed`` may be an integer seed, an existing generator (returned as-is so
    call sites can be composed without reseeding), or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so streams do not
    overlap and the whole family is reproducible from ``seed``.
    """
    check_positive_int(n, "n")
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]
