"""Circular ("mod-k") interval arithmetic.

The paper represents adjacency sets of wavelengths as intervals of integers
``[x, y]`` whose members are taken modulo ``k``::

    interval [x, y] represents numbers {x mod k, (x+1) mod k, ..., y mod k}

The endpoints ``x <= y`` live on the *unwrapped* integer line; only the
members wrap.  An interval with ``y < x`` is empty.  This module implements
that notation exactly, plus the canonical signed-residue helper used by the
crossing-edge tests of Definition 1, where differences of wavelength indexes
must be interpreted as small signed offsets rather than raw ``mod k``
residues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import InvalidParameterError

__all__ = [
    "CircularInterval",
    "mod_range",
    "canonical_signed_residue",
    "circular_distance",
]


@dataclass(frozen=True, slots=True)
class CircularInterval:
    """The paper's ``[start, end]`` interval of integers taken mod ``k``.

    ``start`` and ``end`` are unwrapped integers with the convention that the
    interval is empty when ``end < start``.  The interval length is capped at
    ``k``: an interval spanning ``k`` or more unwrapped integers contains
    every residue exactly once.

    Examples
    --------
    >>> iv = CircularInterval(-1, 1, k=6)
    >>> list(iv)
    [5, 0, 1]
    >>> 5 in iv and 0 in iv and 2 not in iv
    True
    """

    start: int
    end: int
    k: int

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise InvalidParameterError(f"modulus k must be positive, got {self.k}")

    @property
    def empty(self) -> bool:
        """Whether the interval contains no residues."""
        return self.end < self.start

    def __len__(self) -> int:
        if self.empty:
            return 0
        return min(self.end - self.start + 1, self.k)

    def __iter__(self) -> Iterator[int]:
        for offset in range(len(self)):
            yield (self.start + offset) % self.k

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, int):
            return False
        if self.empty:
            return False
        if len(self) == self.k:
            return 0 <= value % self.k < self.k
        return (value - self.start) % self.k <= (self.end - self.start)

    def members(self) -> tuple[int, ...]:
        """All residues in the interval, in interval order."""
        return tuple(self)

    def intersects(self, other: "CircularInterval") -> bool:
        """Whether the two intervals share at least one residue."""
        if self.k != other.k:
            raise InvalidParameterError(
                f"cannot intersect intervals with different moduli {self.k} != {other.k}"
            )
        mine = set(self)
        return any(x in mine for x in other)


def mod_range(start: int, end: int, k: int) -> tuple[int, ...]:
    """Members of the paper-notation interval ``[start, end]`` mod ``k``.

    Convenience wrapper equal to ``CircularInterval(start, end, k).members()``.
    """
    return CircularInterval(start, end, k).members()


def canonical_signed_residue(delta: int, k: int, lo: int, hi: int) -> int | None:
    """Map ``delta`` to its unique representative mod ``k`` inside ``[lo, hi]``.

    Definition 1 of the paper tests wavelength differences for membership in
    small signed windows such as ``[t - f, -1]`` or ``[1, t + e]``.  Because
    wavelength indexes live mod ``k``, the raw difference must first be
    brought into the window's frame.  Returns the representative, or ``None``
    if no representative of ``delta`` lies in ``[lo, hi]``.

    Raises :class:`InvalidParameterError` if the window is wider than ``k``
    (the representative would not be unique).
    """
    if hi - lo + 1 > k:
        raise InvalidParameterError(
            f"window [{lo}, {hi}] spans more than k={k} integers; residue not unique"
        )
    if hi < lo:
        return None
    # Smallest representative >= lo:
    candidate = lo + (delta - lo) % k
    return candidate if candidate <= hi else None


def circular_distance(a: int, b: int, k: int) -> int:
    """Shortest circular distance between residues ``a`` and ``b`` mod ``k``."""
    if k <= 0:
        raise InvalidParameterError(f"modulus k must be positive, got {k}")
    d = (a - b) % k
    return min(d, k - d)
