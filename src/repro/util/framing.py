"""Length + CRC32 frame codec shared by the journal and the wire protocol.

One frame is::

    +----------------------+----------------------+---------------------+
    | payload length (u32) | CRC32(payload) (u32) | payload             |
    +----------------------+----------------------+---------------------+

all big-endian (:data:`FRAME_HEADER`).  This is exactly the record
envelope the write-ahead journal has used since PR 5
(:mod:`repro.service.journal`) — extracted here so the network protocol
(:mod:`repro.net.protocol`) shares *one* codec and one test suite with
the journal instead of growing a divergent copy.

Two decode disciplines live on top of the same bytes, because the two
consumers fail differently:

* :func:`decode_frames` — the **tolerant walk** (journal recovery):
  decode every valid frame from the buffer's start and stop at the first
  short, oversized, or CRC-failing frame.  A torn tail (power loss
  mid-write) costs at most the frame being written, never the prefix, and
  decoding *never raises* on bad input.
* :class:`FrameDecoder` — the **strict stream decoder** (TCP): feed
  arbitrary byte chunks, get complete payloads out.  Corruption on a
  network stream is unrecoverable (the reader can never resynchronize),
  so a CRC mismatch or an absurd length header raises a typed
  :class:`~repro.errors.FramingError` instead of silently truncating —
  the connection must die loudly, not hang.
"""

from __future__ import annotations

import struct
import zlib

from repro.errors import FramingError, InvalidParameterError

__all__ = [
    "FRAME_HEADER",
    "FRAME_HEADER_SIZE",
    "MAX_PAYLOAD",
    "encode_frame",
    "decode_frames",
    "FrameDecoder",
]

#: Frame envelope: payload length (u32), CRC32 of the payload (u32).
FRAME_HEADER = struct.Struct("!II")
FRAME_HEADER_SIZE = FRAME_HEADER.size

#: Default strict-mode payload bound.  Generous for both consumers (journal
#: records and protocol messages are tens to thousands of bytes), small
#: enough that a corrupt length header cannot make a reader buffer
#: gigabytes while "waiting for the rest of the frame".
MAX_PAYLOAD = 1 << 20


def encode_frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in the length + CRC32 envelope."""
    if len(payload) > 0xFFFFFFFF:
        raise InvalidParameterError(
            f"frame payload of {len(payload)} bytes overflows the u32 length"
        )
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_frames(
    buf: bytes | bytearray | memoryview,
    *,
    min_payload: int = 0,
    max_payload: int | None = None,
) -> tuple[list[bytes], int, bool]:
    """Tolerantly decode every valid frame from ``buf``'s start.

    Returns ``(payloads, consumed_bytes, torn)``: ``torn`` is True when
    trailing bytes remain that do not form a complete, CRC-valid frame —
    the signature of a write severed by a crash.  Never raises on bad
    input; a corrupt frame simply ends the valid prefix.

    ``min_payload``/``max_payload`` bound plausible payload sizes for the
    caller's record type; an out-of-bounds length header is treated as
    corruption (torn), exactly like a CRC failure.
    """
    payloads: list[bytes] = []
    off, n = 0, len(buf)
    while True:
        if off == n:
            return payloads, off, False
        if n - off < FRAME_HEADER_SIZE:
            return payloads, off, True
        length, crc = FRAME_HEADER.unpack_from(buf, off)
        if (
            length < min_payload
            or (max_payload is not None and length > max_payload)
            or length > n - off - FRAME_HEADER_SIZE
        ):
            return payloads, off, True
        payload = bytes(buf[off + FRAME_HEADER_SIZE : off + FRAME_HEADER_SIZE + length])
        if zlib.crc32(payload) != crc:
            return payloads, off, True
        payloads.append(payload)
        off += FRAME_HEADER_SIZE + length


class FrameDecoder:
    """Incremental strict decoder for a framed byte *stream*.

    Feed chunks as they arrive (``feed``); complete payloads come out in
    order.  Unlike :func:`decode_frames`, corruption is fatal: a CRC
    mismatch or a length header beyond ``max_payload`` raises
    :class:`~repro.errors.FramingError`, and the decoder refuses further
    input — on a TCP stream there is no way to find the next frame
    boundary after corruption, so the only safe move is to kill the
    connection.  :meth:`at_boundary` distinguishes a clean EOF (peer
    closed between frames) from a truncated one (mid-frame).
    """

    def __init__(self, *, max_payload: int = MAX_PAYLOAD) -> None:
        if max_payload <= 0:
            raise InvalidParameterError(
                f"max_payload must be > 0, got {max_payload}"
            )
        self.max_payload = max_payload
        self._buf = bytearray()
        self._dead = False

    @property
    def at_boundary(self) -> bool:
        """True when no partial frame is buffered (clean-EOF point)."""
        return not self._buf

    @property
    def buffered(self) -> int:
        """Bytes currently buffered (partial frame, if any)."""
        return len(self._buf)

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb ``data``; return every payload completed by it.

        Raises :class:`~repro.errors.FramingError` on corruption; after
        that every further call raises too (the stream is unusable).
        """
        if self._dead:
            raise FramingError("frame stream already failed; reconnect")
        self._buf += data
        payloads: list[bytes] = []
        while len(self._buf) >= FRAME_HEADER_SIZE:
            length, crc = FRAME_HEADER.unpack_from(self._buf)
            if length > self.max_payload:
                self._dead = True
                raise FramingError(
                    f"frame length {length} exceeds the {self.max_payload}-"
                    "byte bound (corrupt stream or hostile peer)"
                )
            end = FRAME_HEADER_SIZE + length
            if len(self._buf) < end:
                break
            payload = bytes(self._buf[FRAME_HEADER_SIZE:end])
            if zlib.crc32(payload) != crc:
                self._dead = True
                raise FramingError(
                    "frame CRC mismatch (corrupt stream); closing"
                )
            del self._buf[:end]
            payloads.append(payload)
        return payloads
