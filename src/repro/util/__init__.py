"""Shared low-level utilities: circular-interval arithmetic, argument
validation, seeded RNG helpers and plain-text table rendering."""

from repro.util.intervals import (
    CircularInterval,
    canonical_signed_residue,
    circular_distance,
    mod_range,
)
from repro.util.rng import make_rng, spawn_rngs
from repro.util.tables import format_table
from repro.util.validation import (
    check_index,
    check_nonnegative_int,
    check_positive_int,
    check_probability,
)

__all__ = [
    "CircularInterval",
    "canonical_signed_residue",
    "circular_distance",
    "mod_range",
    "make_rng",
    "spawn_rngs",
    "format_table",
    "check_index",
    "check_nonnegative_int",
    "check_positive_int",
    "check_probability",
]
