"""Argument-validation helpers.

Validation failures raise :class:`repro.errors.InvalidParameterError` with a
message naming the offending parameter, so user errors surface at the public
API boundary rather than deep inside an algorithm.
"""

from __future__ import annotations

import numbers

from repro.errors import InvalidParameterError

__all__ = [
    "check_positive_int",
    "check_nonnegative_int",
    "check_index",
    "check_probability",
]


def _as_int(value: object, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise InvalidParameterError(f"{name} must be an integer, got {value!r}")
    return int(value)


def check_positive_int(value: object, name: str) -> int:
    """Validate that ``value`` is an integer >= 1 and return it as ``int``."""
    ivalue = _as_int(value, name)
    if ivalue < 1:
        raise InvalidParameterError(f"{name} must be >= 1, got {ivalue}")
    return ivalue


def check_nonnegative_int(value: object, name: str) -> int:
    """Validate that ``value`` is an integer >= 0 and return it as ``int``."""
    ivalue = _as_int(value, name)
    if ivalue < 0:
        raise InvalidParameterError(f"{name} must be >= 0, got {ivalue}")
    return ivalue


def check_index(value: object, bound: int, name: str) -> int:
    """Validate that ``value`` is an integer in ``[0, bound)`` and return it."""
    ivalue = _as_int(value, name)
    if not 0 <= ivalue < bound:
        raise InvalidParameterError(f"{name} must be in [0, {bound}), got {ivalue}")
    return ivalue


def check_probability(value: object, name: str) -> float:
    """Validate that ``value`` is a real number in ``[0, 1]`` and return it."""
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise InvalidParameterError(f"{name} must be a real number, got {value!r}")
    fvalue = float(value)
    if not 0.0 <= fvalue <= 1.0:
        raise InvalidParameterError(f"{name} must be in [0, 1], got {fvalue}")
    return fvalue
