"""The full ``N × N`` WDM interconnect datapath (paper Fig. 1).

:class:`WDMInterconnect` composes the component models: per-input-fiber
demultiplexers, the switching fabric, per-output-channel combiners and
wavelength converters, and per-output-fiber multiplexers.  Configuring it
from a :class:`~repro.core.distributed.SlotSchedule` and pushing the slot's
signals through proves *physically* — combiner by combiner — that the
schedule the algorithms produced is realizable: no interference, every
conversion within range, every output channel used at most once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.distributed import GrantedRequest, SlotSchedule
from repro.errors import HardwareModelError
from repro.graphs.conversion import ConversionScheme
from repro.interconnect.components import (
    Combiner,
    Demultiplexer,
    Multiplexer,
    OpticalSignal,
    WavelengthConverter,
)
from repro.interconnect.fabric import SwitchingFabric
from repro.util.validation import check_positive_int

__all__ = ["WDMInterconnect", "RoutedSignal"]


@dataclass(frozen=True, slots=True)
class RoutedSignal:
    """A signal that traversed the interconnect in one slot."""

    input_fiber: int
    input_wavelength: int
    output_fiber: int
    output_channel: int
    payload: object = None


class WDMInterconnect:
    """Datapath model of an ``N × N`` interconnect with ``k`` wavelengths.

    Parameters
    ----------
    n_fibers:
        Interconnect size ``N``.
    scheme:
        Wavelength-conversion scheme of the output-side converters.
    """

    def __init__(self, n_fibers: int, scheme: ConversionScheme) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        self.scheme = scheme
        k = scheme.k
        self.demultiplexers = [Demultiplexer(k) for _ in range(self.n_fibers)]
        self.fabric = SwitchingFabric(self.n_fibers, scheme)
        # One combiner + converter per output channel.  Each combiner has
        # N·d wired inputs (paper Fig. 1); the model presents them as one
        # port per (input fiber, conversion-range offset).
        n_combiner_ports = self.n_fibers * scheme.degree
        self.combiners = [
            [Combiner(n_combiner_ports) for _ in range(k)]
            for _ in range(self.n_fibers)
        ]
        self.converters = [
            [WavelengthConverter(scheme, b) for b in range(k)]
            for _ in range(self.n_fibers)
        ]
        self.multiplexers = [Multiplexer(k) for _ in range(self.n_fibers)]

    @property
    def k(self) -> int:
        """Wavelengths per fiber."""
        return self.scheme.k

    @property
    def n_input_channels(self) -> int:
        """Total input wavelength channels, ``N · k``."""
        return self.n_fibers * self.k

    # -- configuration -----------------------------------------------------

    def configure(self, granted: Sequence[GrantedRequest]) -> None:
        """Close the fabric crosspoints for the slot's granted requests.

        Any conflict (double-driven channel, out-of-range conversion) raises
        :class:`HardwareModelError` and leaves previously-closed crosspoints
        in place for inspection.
        """
        self.fabric.clear()
        for g in granted:
            self.fabric.connect(
                g.request.input_fiber,
                g.request.wavelength,
                g.request.output_fiber,
                g.channel,
            )

    def configure_schedule(self, schedule: SlotSchedule) -> None:
        """Configure from a :class:`SlotSchedule` (convenience)."""
        self.configure(schedule.granted)

    # -- signal propagation --------------------------------------------------

    def propagate(
        self, input_signals: Sequence[Sequence[OpticalSignal]]
    ) -> list[RoutedSignal]:
        """Push one slot's signals through the configured datapath.

        ``input_signals[i]`` lists the signals entering input fiber ``i``.
        Every stage's physical constraint is checked; signals whose input
        channel has no closed crosspoint are dropped (their request was
        rejected — no buffers exist).  Returns the signals that reached an
        output fiber.
        """
        if len(input_signals) != self.n_fibers:
            raise HardwareModelError(
                f"expected signals for {self.n_fibers} input fibers, got "
                f"{len(input_signals)}"
            )
        # Stage 1: demultiplex each input fiber.
        channelized: list[list[OpticalSignal | None]] = [
            self.demultiplexers[i].demultiplex(signals)
            for i, signals in enumerate(input_signals)
        ]
        # Stage 2+3: fabric routes each input channel to its combiner; build
        # the per-combiner input port lists.
        d = self.scheme.degree
        ports: dict[tuple[int, int], list[OpticalSignal | None]] = {
            (o, b): [None] * (self.n_fibers * d)
            for o in range(self.n_fibers)
            for b in range(self.k)
        }
        for i in range(self.n_fibers):
            for w in range(self.k):
                signal = channelized[i][w]
                if signal is None:
                    continue
                route = self.fabric.output_of(i, w)
                if route is None:
                    continue  # rejected request: signal dropped (no buffers)
                o, b = route
                # The combiner port index encodes (input fiber, offset of b
                # within λw's conversion range).
                adjacency = self.scheme.adjacency(w)
                offset = adjacency.index(b)
                port = i * d + offset
                if ports[(o, b)][port] is not None:
                    raise HardwareModelError(
                        f"fabric drove combiner port {(o, b, port)} twice"
                    )
                ports[(o, b)][port] = signal
        # Stage 4: combine + convert per output channel.
        routed: list[RoutedSignal] = []
        for o in range(self.n_fibers):
            converted: list[OpticalSignal | None] = []
            for b in range(self.k):
                combined = self.combiners[o][b].combine(ports[(o, b)])
                converted.append(self.converters[o][b].convert(combined))
            # Stage 5: multiplex onto the output fiber.
            for s in self.multiplexers[o].multiplex(converted):
                routed.append(
                    RoutedSignal(
                        input_fiber=s.source[0],
                        input_wavelength=s.source[1],
                        output_fiber=o,
                        output_channel=s.wavelength,
                        payload=s.payload,
                    )
                )
        return routed

    def route_schedule(self, schedule: SlotSchedule) -> list[RoutedSignal]:
        """Configure from ``schedule`` and propagate the granted requests'
        signals end to end; returns the routed signals.

        This is the physical-feasibility check used by the test suite and
        the ``HW`` experiment: it raises :class:`HardwareModelError` if the
        schedule could not actually be realized by the Fig. 1 datapath.
        """
        self.configure_schedule(schedule)
        per_fiber: list[list[OpticalSignal]] = [[] for _ in range(self.n_fibers)]
        for g in schedule.granted:
            per_fiber[g.request.input_fiber].append(
                OpticalSignal(
                    wavelength=g.request.wavelength,
                    source=(g.request.input_fiber, g.request.wavelength),
                    payload=g,
                )
            )
        routed = self.propagate(per_fiber)
        if len(routed) != len(schedule.granted):
            raise HardwareModelError(
                f"{len(schedule.granted)} grants but {len(routed)} signals "
                "reached the outputs"
            )
        return routed
