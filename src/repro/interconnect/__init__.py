"""Datapath model of the paper's Fig. 1 interconnect: demultiplexers, a
switching fabric, per-channel optical combiners, wavelength converters and
multiplexers, with physical-feasibility checking of configured schedules."""

from repro.interconnect.components import (
    Combiner,
    Demultiplexer,
    Multiplexer,
    OpticalSignal,
    WavelengthConverter,
)
from repro.interconnect.fabric import CrosspointState, SwitchingFabric
from repro.interconnect.interconnect import RoutedSignal, WDMInterconnect

__all__ = [
    "OpticalSignal",
    "Demultiplexer",
    "Combiner",
    "WavelengthConverter",
    "Multiplexer",
    "SwitchingFabric",
    "CrosspointState",
    "WDMInterconnect",
    "RoutedSignal",
]
