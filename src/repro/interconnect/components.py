"""Optical components of the Fig. 1 datapath.

Each component models the physical constraint the paper's architecture
relies on:

* a :class:`Demultiplexer` separates the ``k`` wavelength channels of an
  input fiber — a fiber carries at most one signal per wavelength;
* a :class:`Combiner` merges the ``N·d`` fabric outputs that can reach one
  output channel — but "only one of them may carry signal at a time";
* a :class:`WavelengthConverter` retunes the combined signal to the channel's
  wavelength — only within its limited conversion range;
* a :class:`Multiplexer` merges the ``k`` converted channels onto the output
  fiber — again at most one signal per wavelength.

Violating any of these raises :class:`~repro.errors.HardwareModelError`; the
:class:`~repro.interconnect.interconnect.WDMInterconnect` uses them to prove
that a schedule is physically realizable, independent of the scheduler's own
validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import HardwareModelError
from repro.graphs.conversion import ConversionScheme
from repro.util.validation import check_index, check_positive_int

__all__ = [
    "OpticalSignal",
    "Demultiplexer",
    "Combiner",
    "WavelengthConverter",
    "Multiplexer",
]


@dataclass(frozen=True, slots=True)
class OpticalSignal:
    """An information-bearing optical signal inside the interconnect.

    ``wavelength`` is the signal's *current* wavelength (it changes when a
    converter retunes it); ``source`` identifies the originating input
    channel ``(input_fiber, input_wavelength)`` so invariants can be traced
    back to requests; ``payload`` is an opaque tag (e.g. a packet id).
    """

    wavelength: int
    source: tuple[int, int]
    payload: object = None

    def retuned(self, wavelength: int) -> "OpticalSignal":
        """The same signal on a different wavelength."""
        return OpticalSignal(wavelength, self.source, self.payload)


class Demultiplexer:
    """Separates an input fiber's WDM signal into ``k`` channels."""

    def __init__(self, k: int) -> None:
        self.k = check_positive_int(k, "k")

    def demultiplex(
        self, signals: Iterable[OpticalSignal]
    ) -> list[OpticalSignal | None]:
        """Split ``signals`` by wavelength into a length-``k`` channel list.

        Raises :class:`HardwareModelError` if two signals share a wavelength
        (a fiber cannot carry two signals on one channel) or a signal's
        wavelength is out of band.
        """
        channels: list[OpticalSignal | None] = [None] * self.k
        for s in signals:
            if not 0 <= s.wavelength < self.k:
                raise HardwareModelError(
                    f"signal from {s.source} on out-of-band wavelength "
                    f"{s.wavelength} (k={self.k})"
                )
            if channels[s.wavelength] is not None:
                raise HardwareModelError(
                    f"two signals on λ{s.wavelength} of one input fiber: "
                    f"{channels[s.wavelength].source} and {s.source}"
                )
            channels[s.wavelength] = s
        return channels


class Combiner:
    """The ``Nd``-input optical combiner in front of one output channel.

    "There are Nd inputs to a combiner, but only one of them may carry
    signal at a time" — two active inputs would interfere destructively.
    """

    def __init__(self, n_inputs: int) -> None:
        self.n_inputs = check_positive_int(n_inputs, "n_inputs")

    def combine(
        self, inputs: Sequence[OpticalSignal | None]
    ) -> OpticalSignal | None:
        """Pass through the single active input (or nothing).

        Raises :class:`HardwareModelError` on more than one active input or
        on a port-count mismatch.
        """
        if len(inputs) != self.n_inputs:
            raise HardwareModelError(
                f"combiner has {self.n_inputs} ports, got {len(inputs)} inputs"
            )
        active = [s for s in inputs if s is not None]
        if len(active) > 1:
            sources = [s.source for s in active]
            raise HardwareModelError(
                f"optical interference: {len(active)} simultaneous signals at "
                f"one combiner (sources {sources})"
            )
        return active[0] if active else None


class WavelengthConverter:
    """A limited range wavelength converter fixed at one output channel.

    The converter at output channel ``target`` accepts any signal whose
    current wavelength can be converted to ``target`` under the scheme, and
    emits it on ``target``.
    """

    def __init__(self, scheme: ConversionScheme, target: int) -> None:
        self.scheme = scheme
        self.target = check_index(target, scheme.k, "target")

    def convert(self, signal: OpticalSignal | None) -> OpticalSignal | None:
        """Retune ``signal`` to the target wavelength.

        Raises :class:`HardwareModelError` if the signal's wavelength is
        outside the converter's conversion range.
        """
        if signal is None:
            return None
        if not self.scheme.can_convert(signal.wavelength, self.target):
            raise HardwareModelError(
                f"converter at λ{self.target} cannot accept λ{signal.wavelength} "
                f"(conversion range of λ{signal.wavelength} is "
                f"{self.scheme.adjacency(signal.wavelength)})"
            )
        return signal.retuned(self.target)


class Multiplexer:
    """Merges ``k`` converted channels onto one output fiber."""

    def __init__(self, k: int) -> None:
        self.k = check_positive_int(k, "k")

    def multiplex(
        self, channels: Sequence[OpticalSignal | None]
    ) -> list[OpticalSignal]:
        """Combine per-channel signals into the fiber's signal list.

        Each channel's signal must sit on that channel's wavelength (the
        converters guarantee this when the datapath is wired correctly).
        """
        if len(channels) != self.k:
            raise HardwareModelError(
                f"multiplexer has {self.k} ports, got {len(channels)} channels"
            )
        out: list[OpticalSignal] = []
        for b, s in enumerate(channels):
            if s is None:
                continue
            if s.wavelength != b:
                raise HardwareModelError(
                    f"channel {b} carries a signal on λ{s.wavelength}; "
                    "converter misconfigured"
                )
            out.append(s)
        return out

