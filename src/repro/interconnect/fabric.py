"""The switching fabric of the Fig. 1 interconnect.

The fabric connects the ``Nk`` demultiplexed input channels to the output
combiners.  Physically, input channel ``(i, w)`` has a crosspoint only to the
combiners of channels in ``λ_w``'s conversion range on each output fiber —
``N·d`` crosspoints per input channel.  The fabric state is the set of closed
crosspoints; closing one outside the wired range, or closing two crosspoints
into one combiner port pattern that would interfere, is a hardware error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import HardwareModelError
from repro.graphs.conversion import ConversionScheme
from repro.util.validation import check_index, check_positive_int

__all__ = ["CrosspointState", "SwitchingFabric"]


@dataclass(frozen=True, slots=True, order=True)
class CrosspointState:
    """A closed crosspoint: input channel → output channel.

    ``input_fiber``/``input_wavelength`` name the fabric input;
    ``output_fiber``/``output_channel`` name the combiner it feeds.
    """

    input_fiber: int
    input_wavelength: int
    output_fiber: int
    output_channel: int


class SwitchingFabric:
    """Crosspoint state of an ``N × N`` interconnect's fabric.

    Invariants enforced on :meth:`connect`:

    * the crosspoint must exist (conversion-range wiring);
    * an input channel drives at most one output channel (a demultiplexed
      signal cannot be split);
    * an output channel is driven by at most one input channel (one active
      combiner input — the paper's interference constraint).
    """

    def __init__(self, n_fibers: int, scheme: ConversionScheme) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        self.scheme = scheme
        self._by_input: dict[tuple[int, int], CrosspointState] = {}
        self._by_output: dict[tuple[int, int], CrosspointState] = {}

    @property
    def k(self) -> int:
        """Wavelengths per fiber."""
        return self.scheme.k

    @property
    def n_closed(self) -> int:
        """Number of closed crosspoints."""
        return len(self._by_input)

    def crosspoints_per_input(self) -> int:
        """Wired crosspoints per input channel: ``N · d`` (paper Fig. 1)."""
        return self.n_fibers * self.scheme.degree

    def connect(
        self,
        input_fiber: int,
        input_wavelength: int,
        output_fiber: int,
        output_channel: int,
    ) -> CrosspointState:
        """Close the crosspoint; returns its state record."""
        check_index(input_fiber, self.n_fibers, "input_fiber")
        check_index(output_fiber, self.n_fibers, "output_fiber")
        check_index(input_wavelength, self.k, "input_wavelength")
        check_index(output_channel, self.k, "output_channel")
        if not self.scheme.can_convert(input_wavelength, output_channel):
            raise HardwareModelError(
                f"no crosspoint wired from λ{input_wavelength} to output "
                f"channel {output_channel}: outside conversion range "
                f"{self.scheme.adjacency(input_wavelength)}"
            )
        in_key = (input_fiber, input_wavelength)
        out_key = (output_fiber, output_channel)
        if in_key in self._by_input:
            raise HardwareModelError(
                f"input channel {in_key} already drives "
                f"{self._by_input[in_key]}"
            )
        if out_key in self._by_output:
            raise HardwareModelError(
                f"output channel {out_key} already driven by "
                f"{self._by_output[out_key]}"
            )
        state = CrosspointState(
            input_fiber, input_wavelength, output_fiber, output_channel
        )
        self._by_input[in_key] = state
        self._by_output[out_key] = state
        return state

    def disconnect_input(self, input_fiber: int, input_wavelength: int) -> None:
        """Open the crosspoint driven by the given input channel (no-op if
        none is closed)."""
        state = self._by_input.pop((input_fiber, input_wavelength), None)
        if state is not None:
            del self._by_output[(state.output_fiber, state.output_channel)]

    def output_of(
        self, input_fiber: int, input_wavelength: int
    ) -> tuple[int, int] | None:
        """The ``(output_fiber, output_channel)`` an input channel drives."""
        state = self._by_input.get((input_fiber, input_wavelength))
        if state is None:
            return None
        return (state.output_fiber, state.output_channel)

    def input_of(
        self, output_fiber: int, output_channel: int
    ) -> tuple[int, int] | None:
        """The ``(input_fiber, input_wavelength)`` driving an output channel."""
        state = self._by_output.get((output_fiber, output_channel))
        if state is None:
            return None
        return (state.input_fiber, state.input_wavelength)

    def clear(self) -> None:
        """Open every crosspoint (start of a new slot)."""
        self._by_input.clear()
        self._by_output.clear()

    def __iter__(self) -> Iterator[CrosspointState]:
        return iter(sorted(self._by_input.values()))

    def __repr__(self) -> str:
        return (
            f"SwitchingFabric(n_fibers={self.n_fibers}, scheme={self.scheme!r}, "
            f"n_closed={self.n_closed})"
        )
