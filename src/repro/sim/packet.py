"""Optical packets / bursts flowing through the simulator."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Packet"]


@dataclass(frozen=True, slots=True)
class Packet:
    """One optical packet (or burst) offered to the interconnect.

    Attributes
    ----------
    packet_id:
        Unique id within a simulation run.
    slot:
        Arrival slot.
    input_fiber, wavelength:
        The input channel the packet arrives on.
    output_fiber:
        Unicast destination fiber (the destination *channel* is the
        scheduler's choice).
    duration:
        Number of slots the connection holds if granted (1 = optical
        packet; >1 = burst / multi-slot connection, paper Section V).
    priority:
        QoS class, 0 = highest (strict-priority scheduling, the paper's
        stated future work).
    tenant:
        Traffic owner for multi-tenant fairness/accounting (0 = the
        default single tenant).
    """

    packet_id: int
    slot: int
    input_fiber: int
    wavelength: int
    output_fiber: int
    duration: int = 1
    priority: int = 0
    tenant: int = 0
