"""Synchronous time-slotted simulator for WDM optical interconnects.

Models the paper's operating scenario: an optical packet/burst switching
network where requests arrive at slot boundaries, there are no buffers
(losers are dropped), and connections may hold their channel for multiple
slots (paper Section V)."""

from repro.sim.asynchronous import AssignmentPolicy, AsyncResult, AsyncWavelengthRouter
from repro.sim.duration import (
    DeterministicDuration,
    DurationModel,
    GeometricDuration,
    UniformDuration,
)
from repro.sim.engine import SlottedSimulator
from repro.sim.fast import FastPacketSimulator
from repro.sim.metrics import MetricsCollector, jain_fairness_index
from repro.sim.packet import Packet
from repro.sim.results import SimulationResult
from repro.sim.traffic import (
    BernoulliTraffic,
    DestinationModel,
    HotspotDestinations,
    OnOffBurstyTraffic,
    TrafficModel,
    UniformDestinations,
)

__all__ = [
    "Packet",
    "AsyncWavelengthRouter",
    "AsyncResult",
    "AssignmentPolicy",
    "DurationModel",
    "DeterministicDuration",
    "GeometricDuration",
    "UniformDuration",
    "TrafficModel",
    "BernoulliTraffic",
    "OnOffBurstyTraffic",
    "DestinationModel",
    "UniformDestinations",
    "HotspotDestinations",
    "SlottedSimulator",
    "FastPacketSimulator",
    "SimulationResult",
    "MetricsCollector",
    "jain_fairness_index",
]
