"""Synthetic traffic models.

The paper assumes slotted arrivals but reports no trace; these generators
implement the standard models of its references — i.i.d. Bernoulli arrivals
per input channel with uniform or hotspot destinations ([7][8]) and bursty
on–off sources ([11]'s bursty regime) — which exercise the same contention
phenomenon the schedulers resolve (see DESIGN.md, Substitutions).
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.sim.duration import DeterministicDuration, DurationModel
from repro.sim.packet import Packet
from repro.util.validation import (
    check_index,
    check_nonnegative_int,
    check_positive_int,
    check_probability,
)

__all__ = [
    "DestinationModel",
    "UniformDestinations",
    "HotspotDestinations",
    "ArrivalBatch",
    "TrafficModel",
    "BernoulliTraffic",
    "OnOffBurstyTraffic",
    "TenantSpec",
    "MultiTenantOnOffTraffic",
]


# ---------------------------------------------------------------------------
# Destination models
# ---------------------------------------------------------------------------

class DestinationModel(ABC):
    """Chooses the unicast destination fiber of a new packet."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, input_fiber: int) -> int:
        """Draw a destination fiber for a packet from ``input_fiber``."""

    def sample_many(
        self, rng: np.random.Generator, input_fibers: np.ndarray
    ) -> np.ndarray:
        """Draw one destination per entry of ``input_fibers`` (vectorized).

        The default falls back to scalar :meth:`sample` calls; subclasses
        override with batch draws.  As with
        :meth:`~repro.sim.duration.DurationModel.sample_many`, callers pick
        one form and stick to it — the built-in traffic models consume only
        this batch form.
        """
        return np.fromiter(
            (self.sample(rng, int(i)) for i in input_fibers),
            dtype=np.int64,
            count=input_fibers.size,
        )


class UniformDestinations(DestinationModel):
    """Destinations uniform over all ``N`` output fibers."""

    def __init__(self, n_fibers: int) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")

    def sample(self, rng: np.random.Generator, input_fiber: int) -> int:
        return int(rng.integers(self.n_fibers))

    def sample_many(
        self, rng: np.random.Generator, input_fibers: np.ndarray
    ) -> np.ndarray:
        return rng.integers(
            self.n_fibers, size=input_fibers.size, dtype=np.int64
        )


class HotspotDestinations(DestinationModel):
    """A fraction of traffic targets one hot output fiber.

    With probability ``hot_fraction`` the destination is ``hot_fiber``;
    otherwise uniform over all fibers.  Models the server/gateway hotspot
    pattern that maximizes output contention.
    """

    def __init__(self, n_fibers: int, hot_fiber: int, hot_fraction: float) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        self.hot_fiber = check_index(hot_fiber, self.n_fibers, "hot_fiber")
        self.hot_fraction = check_probability(hot_fraction, "hot_fraction")

    def sample(self, rng: np.random.Generator, input_fiber: int) -> int:
        if rng.random() < self.hot_fraction:
            return self.hot_fiber
        return int(rng.integers(self.n_fibers))

    def sample_many(
        self, rng: np.random.Generator, input_fibers: np.ndarray
    ) -> np.ndarray:
        n = input_fibers.size
        hot = rng.random(n) < self.hot_fraction
        dests = rng.integers(self.n_fibers, size=n, dtype=np.int64)
        dests[hot] = self.hot_fiber
        return dests


# ---------------------------------------------------------------------------
# Traffic models
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class ArrivalBatch:
    """One slot's arrivals in parallel-array (structure-of-arrays) form.

    The array form is what the vectorized fast engine consumes directly —
    no per-packet Python objects.  :meth:`TrafficModel.arrivals` materializes
    :class:`~repro.sim.packet.Packet` objects from the *same* batch, so both
    forms see identical draws from the same seed (tested).
    """

    slot: int
    input_fiber: np.ndarray   #: ``(n,)`` int64 input fiber per arrival
    wavelength: np.ndarray    #: ``(n,)`` int64 input wavelength per arrival
    output_fiber: np.ndarray  #: ``(n,)`` int64 destination fiber per arrival
    duration: np.ndarray      #: ``(n,)`` int64 connection duration in slots
    priority: np.ndarray      #: ``(n,)`` int64 QoS class (0 = highest)
    tenant: np.ndarray = None  #: ``(n,)`` int64 tenant id (defaults to 0s)

    def __post_init__(self) -> None:
        if self.tenant is None:
            object.__setattr__(
                self, "tenant", np.zeros(self.input_fiber.size, dtype=np.int64)
            )

    @property
    def n(self) -> int:
        """Number of arrivals in the batch."""
        return self.input_fiber.size

    @classmethod
    def from_packets(cls, slot: int, packets: Sequence[Packet]) -> "ArrivalBatch":
        """Array form of an existing packet list (adapter for traffic models
        that only implement the Packet-list draw)."""
        return cls(
            slot=slot,
            input_fiber=np.fromiter(
                (p.input_fiber for p in packets), dtype=np.int64, count=len(packets)
            ),
            wavelength=np.fromiter(
                (p.wavelength for p in packets), dtype=np.int64, count=len(packets)
            ),
            output_fiber=np.fromiter(
                (p.output_fiber for p in packets), dtype=np.int64, count=len(packets)
            ),
            duration=np.fromiter(
                (p.duration for p in packets), dtype=np.int64, count=len(packets)
            ),
            priority=np.fromiter(
                (p.priority for p in packets), dtype=np.int64, count=len(packets)
            ),
            tenant=np.fromiter(
                (p.tenant for p in packets), dtype=np.int64, count=len(packets)
            ),
        )


class TrafficModel(ABC):
    """Generates the packets arriving in each slot.

    A traffic model owns no RNG: the engine passes its generator in, so a
    single simulation seed reproduces the whole run.

    Models expose two equivalent draw forms: :meth:`arrivals` (Packet list,
    consumed by the full :class:`~repro.sim.engine.SlottedSimulator`) and
    :meth:`arrivals_batch` (parallel arrays, consumed by the vectorized
    :class:`~repro.sim.fast.FastPacketSimulator`).  The built-in models draw
    the batch form first and derive the Packet list from it, so the two
    forms consume the generator identically — which is what makes the two
    engines bit-comparable on one seed.
    """

    n_fibers: int
    k: int

    @abstractmethod
    def arrivals(self, slot: int, rng: np.random.Generator) -> list[Packet]:
        """Packets arriving at slot ``slot``, at most one per input channel."""

    def arrivals_batch(
        self, slot: int, rng: np.random.Generator
    ) -> ArrivalBatch:
        """The slot's arrivals in array form (see :class:`ArrivalBatch`).

        Default adapter: draw :meth:`arrivals` and convert — correct for any
        model, with per-packet materialization cost.  The built-in models
        override this with a pure array draw and derive :meth:`arrivals`
        from it instead.
        """
        return ArrivalBatch.from_packets(slot, self.arrivals(slot, rng))

    def _materialize(
        self, batch: ArrivalBatch, ids: "itertools.count"
    ) -> list[Packet]:
        """Packet-list form of ``batch`` (shared by the built-in models)."""
        return [
            Packet(
                packet_id=next(ids),
                slot=batch.slot,
                input_fiber=int(i),
                wavelength=int(w),
                output_fiber=int(o),
                duration=int(d),
                priority=int(c),
                tenant=int(t),
            )
            for i, w, o, d, c, t in zip(
                batch.input_fiber,
                batch.wavelength,
                batch.output_fiber,
                batch.duration,
                batch.priority,
                batch.tenant,
            )
        ]

    @property
    @abstractmethod
    def offered_load(self) -> float:
        """Long-run offered load per input channel in Erlangs
        (arrival probability × mean duration)."""


class BernoulliTraffic(TrafficModel):
    """I.i.d. Bernoulli arrivals per input channel.

    Every slot, each of the ``N·k`` input channels independently carries a
    new packet with probability ``load``; destination and duration come from
    the supplied models.  This is the canonical uniform traffic of the
    input-queued-switch literature the paper cites.
    """

    def __init__(
        self,
        n_fibers: int,
        k: int,
        load: float,
        destinations: DestinationModel | None = None,
        durations: DurationModel | None = None,
        priority_weights: Sequence[float] | None = None,
    ) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        self.k = check_positive_int(k, "k")
        self.load = check_probability(load, "load")
        self.destinations = destinations or UniformDestinations(self.n_fibers)
        self.durations = durations or DeterministicDuration(1)
        if priority_weights is None:
            self._priority_p: np.ndarray | None = None
        else:
            weights = np.asarray(list(priority_weights), dtype=float)
            if weights.ndim != 1 or weights.size == 0 or np.any(weights < 0):
                raise InvalidParameterError(
                    "priority_weights must be a nonempty sequence of "
                    f"nonnegative weights, got {priority_weights!r}"
                )
            total = weights.sum()
            if total <= 0:
                raise InvalidParameterError("priority_weights sum to zero")
            self._priority_p = weights / total
        self._ids = itertools.count()

    def _sample_priorities(
        self, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        if self._priority_p is None:
            return np.zeros(n, dtype=np.int64)
        return rng.choice(
            self._priority_p.size, size=n, p=self._priority_p
        ).astype(np.int64)

    def arrivals_batch(
        self, slot: int, rng: np.random.Generator
    ) -> ArrivalBatch:
        # One vectorized Bernoulli draw for all N·k channels, then one batch
        # draw per per-packet attribute — no per-packet Python loop.
        hits = rng.random((self.n_fibers, self.k)) < self.load
        input_fibers, wavelengths = np.nonzero(hits)
        input_fibers = input_fibers.astype(np.int64, copy=False)
        wavelengths = wavelengths.astype(np.int64, copy=False)
        n = input_fibers.size
        return ArrivalBatch(
            slot=slot,
            input_fiber=input_fibers,
            wavelength=wavelengths,
            output_fiber=self.destinations.sample_many(rng, input_fibers),
            duration=self.durations.sample_many(rng, n),
            priority=self._sample_priorities(rng, n),
        )

    def arrivals(self, slot: int, rng: np.random.Generator) -> list[Packet]:
        return self._materialize(self.arrivals_batch(slot, rng), self._ids)

    @property
    def offered_load(self) -> float:
        return self.load * self.durations.mean


class OnOffBurstyTraffic(TrafficModel):
    """Two-state (on/off) Markov-modulated arrivals per input channel.

    While *on*, a channel emits one packet per slot, all to the same
    destination fiber (a burst); while *off* it is silent.  Mean burst
    length is ``burst_length`` slots and the long-run on-probability equals
    ``load``, so throughput curves are comparable with
    :class:`BernoulliTraffic` at the same load.
    """

    def __init__(
        self,
        n_fibers: int,
        k: int,
        load: float,
        burst_length: float,
        destinations: DestinationModel | None = None,
        durations: DurationModel | None = None,
    ) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        self.k = check_positive_int(k, "k")
        self.load = check_probability(load, "load")
        if burst_length < 1.0:
            raise InvalidParameterError(
                f"burst_length must be >= 1 slot, got {burst_length}"
            )
        self.burst_length = float(burst_length)
        self.destinations = destinations or UniformDestinations(self.n_fibers)
        self.durations = durations or DeterministicDuration(1)
        self._ids = itertools.count()
        # p(on -> off) fixes the mean burst length; p(off -> on) then fixes
        # the stationary on-probability at `load`.  Load 1.0 degenerates to
        # "always on" (bursts never end), keeping the stationary load exact.
        if self.load >= 1.0:
            self._p_end = 0.0
            self._p_start = 1.0
        else:
            self._p_end = 1.0 / self.burst_length
            self._p_start = min(
                1.0, self._p_end * self.load / (1.0 - self.load)
            )
        self._state: np.ndarray | None = None  # True = on
        self._dest: np.ndarray | None = None

    def _ensure_state(self, rng: np.random.Generator) -> None:
        if self._state is None:
            self._state = rng.random((self.n_fibers, self.k)) < self.load
            self._dest = rng.integers(
                self.n_fibers, size=(self.n_fibers, self.k)
            )

    def arrivals_batch(
        self, slot: int, rng: np.random.Generator
    ) -> ArrivalBatch:
        self._ensure_state(rng)
        assert self._state is not None and self._dest is not None
        # State transitions happen at slot boundaries.
        u = rng.random((self.n_fibers, self.k))
        starting = ~self._state & (u < self._p_start)
        ending = self._state & (u < self._p_end)
        # New bursts pick a fresh destination (one batch draw).
        s_fibers, s_wavelengths = np.nonzero(starting)
        if s_fibers.size:
            self._dest[s_fibers, s_wavelengths] = self.destinations.sample_many(
                rng, s_fibers.astype(np.int64, copy=False)
            )
        self._state = (self._state & ~ending) | starting
        input_fibers, wavelengths = np.nonzero(self._state)
        input_fibers = input_fibers.astype(np.int64, copy=False)
        wavelengths = wavelengths.astype(np.int64, copy=False)
        n = input_fibers.size
        return ArrivalBatch(
            slot=slot,
            input_fiber=input_fibers,
            wavelength=wavelengths,
            output_fiber=self._dest[input_fibers, wavelengths].astype(
                np.int64, copy=False
            ),
            duration=self.durations.sample_many(rng, n),
            priority=np.zeros(n, dtype=np.int64),
        )

    def arrivals(self, slot: int, rng: np.random.Generator) -> list[Packet]:
        return self._materialize(self.arrivals_batch(slot, rng), self._ids)

    @property
    def offered_load(self) -> float:
        return self.load * self.durations.mean

    def reset(self) -> None:
        """Forget the on/off state (start of a fresh run)."""
        self._state = None
        self._dest = None


# ---------------------------------------------------------------------------
# Multi-tenant traffic
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class TenantSpec:
    """One tenant's traffic contract.

    ``weight`` is its fair-share weight (consumed by
    :class:`~repro.core.policies.WeightedFairPolicy` and per-tenant
    admission, not by the traffic model itself — it rides along so one
    object describes the tenant end-to-end).  ``load`` is the tenant's
    long-run offered load per *owned* input channel in packets/slot;
    ``burst_length`` the mean ON-period length in slots; ``priority`` the
    QoS class its packets carry (0 = highest).
    """

    tenant: int
    weight: int = 1
    load: float = 0.5
    burst_length: float = 8.0
    priority: int = 0

    def __post_init__(self) -> None:
        check_nonnegative_int(self.tenant, "tenant")
        check_positive_int(self.weight, "weight")
        check_probability(self.load, "load")
        check_nonnegative_int(self.priority, "priority")
        if self.burst_length < 1.0:
            raise InvalidParameterError(
                f"burst_length must be >= 1 slot, got {self.burst_length}"
            )


class MultiTenantOnOffTraffic(TrafficModel):
    """Markov-modulated ON/OFF *tenants* with per-tenant backlogs.

    The ``N·k`` input channels are partitioned into contiguous blocks, one
    per tenant (channel ``c`` = input fiber ``c // k``, wavelength
    ``c % k``).  Each tenant is a two-state Markov source: while ON it
    generates ``Poisson(peak)`` packets per owned channel per slot into its
    **backlog**; while OFF it generates nothing.  Every slot, the backlog
    drains onto the tenant's idle channel block — at most one packet per
    channel per slot (the interconnect's physical constraint) — so bursts
    longer than the block persist as queued demand, exactly the
    sub-wavelength many-streams regime of the traffic-grooming literature.

    The ON/OFF chain is calibrated like :class:`OnOffBurstyTraffic`:
    ``p(ON → OFF) = 1/burst_length`` fixes the mean burst, and the
    stationary ON-probability is ``load/peak`` so the long-run generation
    rate per channel equals ``load``.  ``peak`` (default 1.0) is the
    packets-per-channel-per-slot rate *while ON* — the burstiness knob:
    with ``peak`` near 1 and ``load`` well below it, tenants alternate
    silence with channel-saturating bursts.

    Draw order is batch-first and state-independent (one transition draw,
    one generation draw, and one destination draw per slot, all
    fixed-size), so one seed reproduces the run bit-identically in both
    the Packet-list and array forms.

    Accounting surface for the per-tenant conservation drills:
    :attr:`generated` (total packets each tenant has generated) and
    :meth:`backlog` (packets generated but not yet emitted), satisfying
    ``generated == emitted + backlog`` per tenant at every slot boundary.
    """

    def __init__(
        self,
        n_fibers: int,
        k: int,
        tenants: Sequence[TenantSpec],
        destinations: DestinationModel | None = None,
        durations: DurationModel | None = None,
        peak: float = 1.0,
    ) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        self.k = check_positive_int(k, "k")
        if not tenants:
            raise InvalidParameterError("need at least one TenantSpec")
        ids = [t.tenant for t in tenants]
        if len(set(ids)) != len(ids):
            raise InvalidParameterError(f"duplicate tenant ids in {ids}")
        n_channels = self.n_fibers * self.k
        if len(tenants) > n_channels:
            raise InvalidParameterError(
                f"{len(tenants)} tenants need at least one of the "
                f"{n_channels} input channels each"
            )
        if peak <= 0.0:
            raise InvalidParameterError(f"peak must be > 0, got {peak}")
        self.tenants = tuple(tenants)
        self.peak = float(peak)
        for t in self.tenants:
            if t.load > self.peak:
                raise InvalidParameterError(
                    f"tenant {t.tenant} load {t.load} exceeds peak {self.peak}"
                )
        self.destinations = destinations or UniformDestinations(self.n_fibers)
        self.durations = durations or DeterministicDuration(1)
        self._ids = itertools.count()
        # Contiguous channel blocks, remainder spread over the first tenants.
        T = len(self.tenants)
        base, extra = divmod(n_channels, T)
        sizes = [base + (1 if i < extra else 0) for i in range(T)]
        starts = np.concatenate(([0], np.cumsum(sizes)[:-1])).astype(np.int64)
        self._block_start = starts
        self._block_size = np.asarray(sizes, dtype=np.int64)
        # Chain parameters per tenant (stationary ON-prob = load/peak).
        pi_on = np.array([t.load / self.peak for t in self.tenants])
        self._p_end = np.array(
            [0.0 if t.load >= self.peak else 1.0 / t.burst_length
             for t in self.tenants]
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            p_start = np.where(
                pi_on >= 1.0, 1.0, self._p_end * pi_on / (1.0 - pi_on)
            )
        self._p_start = np.minimum(1.0, np.nan_to_num(p_start, nan=1.0))
        self._pi_on = pi_on
        self._priority = np.asarray(
            [t.priority for t in self.tenants], dtype=np.int64
        )
        self._tenant_ids = np.asarray(ids, dtype=np.int64)
        self._on: np.ndarray | None = None
        self._backlog = np.zeros(T, dtype=np.int64)
        #: Total packets generated per tenant position (monotonic).
        self.generated = np.zeros(T, dtype=np.int64)

    # -- accounting -----------------------------------------------------------

    def backlog(self) -> dict[int, int]:
        """Current backlog per tenant id (generated but not yet emitted)."""
        return {
            int(t): int(b) for t, b in zip(self._tenant_ids, self._backlog)
        }

    def generated_totals(self) -> dict[int, int]:
        """Total packets generated per tenant id since the last reset."""
        return {
            int(t): int(g) for t, g in zip(self._tenant_ids, self.generated)
        }

    def channels_of(self, tenant: int) -> list[tuple[int, int]]:
        """The ``(input_fiber, wavelength)`` block owned by ``tenant``."""
        for i, tid in enumerate(self._tenant_ids):
            if int(tid) == tenant:
                start = int(self._block_start[i])
                size = int(self._block_size[i])
                return [
                    divmod(c, self.k) for c in range(start, start + size)
                ]
        raise InvalidParameterError(f"unknown tenant {tenant}")

    def _ensure_state(self, rng: np.random.Generator) -> None:
        if self._on is None:
            self._on = rng.random(len(self.tenants)) < self._pi_on

    # -- draws ----------------------------------------------------------------

    def arrivals_batch(
        self, slot: int, rng: np.random.Generator
    ) -> ArrivalBatch:
        self._ensure_state(rng)
        assert self._on is not None
        T = len(self.tenants)
        # 1) State transitions (one fixed-size draw).
        u = rng.random(T)
        starting = ~self._on & (u < self._p_start)
        ending = self._on & (u < self._p_end)
        self._on = (self._on & ~ending) | starting
        # 2) Generation into backlogs (fixed-size draw, masked by state so
        #    the stream advances identically whatever the states are).
        gen = rng.poisson(self.peak * self._block_size.astype(float), size=T)
        gen = np.where(self._on, gen, 0).astype(np.int64)
        self._backlog += gen
        self.generated += gen
        # 3) Drain: each tenant emits min(backlog, block) onto its block's
        #    first channels (deterministic placement — no draw).
        emit = np.minimum(self._backlog, self._block_size)
        self._backlog -= emit
        n = int(emit.sum())
        channels = np.concatenate(
            [
                np.arange(
                    self._block_start[i], self._block_start[i] + emit[i],
                    dtype=np.int64,
                )
                for i in range(T)
            ]
        ) if n else np.empty(0, dtype=np.int64)
        tenant = np.repeat(self._tenant_ids, emit)
        priority = np.repeat(self._priority, emit)
        input_fibers = channels // self.k
        wavelengths = channels % self.k
        # 4) Per-packet attribute draws (destination, duration).
        return ArrivalBatch(
            slot=slot,
            input_fiber=input_fibers,
            wavelength=wavelengths,
            output_fiber=self.destinations.sample_many(rng, input_fibers),
            duration=self.durations.sample_many(rng, n),
            priority=priority,
            tenant=tenant,
        )

    def arrivals(self, slot: int, rng: np.random.Generator) -> list[Packet]:
        return self._materialize(self.arrivals_batch(slot, rng), self._ids)

    @property
    def offered_load(self) -> float:
        """Mean offered load per input channel across all tenants."""
        total = float(
            sum(t.load * s for t, s in zip(self.tenants, self._block_size))
        )
        return total / float(self.n_fibers * self.k) * self.durations.mean

    def reset(self) -> None:
        """Forget chain state, backlogs, and generation totals."""
        self._on = None
        self._backlog[:] = 0
        self.generated[:] = 0
