"""Synthetic traffic models.

The paper assumes slotted arrivals but reports no trace; these generators
implement the standard models of its references — i.i.d. Bernoulli arrivals
per input channel with uniform or hotspot destinations ([7][8]) and bursty
on–off sources ([11]'s bursty regime) — which exercise the same contention
phenomenon the schedulers resolve (see DESIGN.md, Substitutions).
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.sim.duration import DeterministicDuration, DurationModel
from repro.sim.packet import Packet
from repro.util.validation import (
    check_index,
    check_positive_int,
    check_probability,
)

__all__ = [
    "DestinationModel",
    "UniformDestinations",
    "HotspotDestinations",
    "TrafficModel",
    "BernoulliTraffic",
    "OnOffBurstyTraffic",
]


# ---------------------------------------------------------------------------
# Destination models
# ---------------------------------------------------------------------------

class DestinationModel(ABC):
    """Chooses the unicast destination fiber of a new packet."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, input_fiber: int) -> int:
        """Draw a destination fiber for a packet from ``input_fiber``."""


class UniformDestinations(DestinationModel):
    """Destinations uniform over all ``N`` output fibers."""

    def __init__(self, n_fibers: int) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")

    def sample(self, rng: np.random.Generator, input_fiber: int) -> int:
        return int(rng.integers(self.n_fibers))


class HotspotDestinations(DestinationModel):
    """A fraction of traffic targets one hot output fiber.

    With probability ``hot_fraction`` the destination is ``hot_fiber``;
    otherwise uniform over all fibers.  Models the server/gateway hotspot
    pattern that maximizes output contention.
    """

    def __init__(self, n_fibers: int, hot_fiber: int, hot_fraction: float) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        self.hot_fiber = check_index(hot_fiber, self.n_fibers, "hot_fiber")
        self.hot_fraction = check_probability(hot_fraction, "hot_fraction")

    def sample(self, rng: np.random.Generator, input_fiber: int) -> int:
        if rng.random() < self.hot_fraction:
            return self.hot_fiber
        return int(rng.integers(self.n_fibers))


# ---------------------------------------------------------------------------
# Traffic models
# ---------------------------------------------------------------------------

class TrafficModel(ABC):
    """Generates the packets arriving in each slot.

    A traffic model owns no RNG: the engine passes its generator in, so a
    single simulation seed reproduces the whole run.
    """

    n_fibers: int
    k: int

    @abstractmethod
    def arrivals(self, slot: int, rng: np.random.Generator) -> list[Packet]:
        """Packets arriving at slot ``slot``, at most one per input channel."""

    @property
    @abstractmethod
    def offered_load(self) -> float:
        """Long-run offered load per input channel in Erlangs
        (arrival probability × mean duration)."""


class BernoulliTraffic(TrafficModel):
    """I.i.d. Bernoulli arrivals per input channel.

    Every slot, each of the ``N·k`` input channels independently carries a
    new packet with probability ``load``; destination and duration come from
    the supplied models.  This is the canonical uniform traffic of the
    input-queued-switch literature the paper cites.
    """

    def __init__(
        self,
        n_fibers: int,
        k: int,
        load: float,
        destinations: DestinationModel | None = None,
        durations: DurationModel | None = None,
        priority_weights: Sequence[float] | None = None,
    ) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        self.k = check_positive_int(k, "k")
        self.load = check_probability(load, "load")
        self.destinations = destinations or UniformDestinations(self.n_fibers)
        self.durations = durations or DeterministicDuration(1)
        if priority_weights is None:
            self._priority_p: np.ndarray | None = None
        else:
            weights = np.asarray(list(priority_weights), dtype=float)
            if weights.ndim != 1 or weights.size == 0 or np.any(weights < 0):
                raise InvalidParameterError(
                    "priority_weights must be a nonempty sequence of "
                    f"nonnegative weights, got {priority_weights!r}"
                )
            total = weights.sum()
            if total <= 0:
                raise InvalidParameterError("priority_weights sum to zero")
            self._priority_p = weights / total
        self._ids = itertools.count()

    def _sample_priority(self, rng: np.random.Generator) -> int:
        if self._priority_p is None:
            return 0
        return int(rng.choice(self._priority_p.size, p=self._priority_p))

    def arrivals(self, slot: int, rng: np.random.Generator) -> list[Packet]:
        # One vectorized Bernoulli draw for all N·k channels per slot.
        hits = rng.random((self.n_fibers, self.k)) < self.load
        packets: list[Packet] = []
        for i, w in zip(*np.nonzero(hits)):
            packets.append(
                Packet(
                    packet_id=next(self._ids),
                    slot=slot,
                    input_fiber=int(i),
                    wavelength=int(w),
                    output_fiber=self.destinations.sample(rng, int(i)),
                    duration=self.durations.sample(rng),
                    priority=self._sample_priority(rng),
                )
            )
        return packets

    @property
    def offered_load(self) -> float:
        return self.load * self.durations.mean


class OnOffBurstyTraffic(TrafficModel):
    """Two-state (on/off) Markov-modulated arrivals per input channel.

    While *on*, a channel emits one packet per slot, all to the same
    destination fiber (a burst); while *off* it is silent.  Mean burst
    length is ``burst_length`` slots and the long-run on-probability equals
    ``load``, so throughput curves are comparable with
    :class:`BernoulliTraffic` at the same load.
    """

    def __init__(
        self,
        n_fibers: int,
        k: int,
        load: float,
        burst_length: float,
        destinations: DestinationModel | None = None,
        durations: DurationModel | None = None,
    ) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        self.k = check_positive_int(k, "k")
        self.load = check_probability(load, "load")
        if burst_length < 1.0:
            raise InvalidParameterError(
                f"burst_length must be >= 1 slot, got {burst_length}"
            )
        self.burst_length = float(burst_length)
        self.destinations = destinations or UniformDestinations(self.n_fibers)
        self.durations = durations or DeterministicDuration(1)
        self._ids = itertools.count()
        # p(on -> off) fixes the mean burst length; p(off -> on) then fixes
        # the stationary on-probability at `load`.  Load 1.0 degenerates to
        # "always on" (bursts never end), keeping the stationary load exact.
        if self.load >= 1.0:
            self._p_end = 0.0
            self._p_start = 1.0
        else:
            self._p_end = 1.0 / self.burst_length
            self._p_start = min(
                1.0, self._p_end * self.load / (1.0 - self.load)
            )
        self._state: np.ndarray | None = None  # True = on
        self._dest: np.ndarray | None = None

    def _ensure_state(self, rng: np.random.Generator) -> None:
        if self._state is None:
            self._state = rng.random((self.n_fibers, self.k)) < self.load
            self._dest = rng.integers(
                self.n_fibers, size=(self.n_fibers, self.k)
            )

    def arrivals(self, slot: int, rng: np.random.Generator) -> list[Packet]:
        self._ensure_state(rng)
        assert self._state is not None and self._dest is not None
        # State transitions happen at slot boundaries.
        u = rng.random((self.n_fibers, self.k))
        starting = ~self._state & (u < self._p_start)
        ending = self._state & (u < self._p_end)
        # New bursts pick a fresh destination.
        for i, w in zip(*np.nonzero(starting)):
            self._dest[i, w] = self.destinations.sample(rng, int(i))
        self._state = (self._state & ~ending) | starting
        packets: list[Packet] = []
        for i, w in zip(*np.nonzero(self._state)):
            packets.append(
                Packet(
                    packet_id=next(self._ids),
                    slot=slot,
                    input_fiber=int(i),
                    wavelength=int(w),
                    output_fiber=int(self._dest[i, w]),
                    duration=self.durations.sample(rng),
                )
            )
        return packets

    @property
    def offered_load(self) -> float:
        return self.load * self.durations.mean

    def reset(self) -> None:
        """Forget the on/off state (start of a fresh run)."""
        self._state = None
        self._dest = None
