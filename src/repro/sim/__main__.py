"""CLI for ad-hoc interconnect simulations.

Usage::

    python -m repro.sim --fibers 8 --wavelengths 16 --degree 3 --load 0.9
    python -m repro.sim --degree full --traffic bursty --burst-length 8
    python -m repro.sim --mean-duration 4 --disturb --seeds 5
"""

from __future__ import annotations

import argparse

from repro.core.base import Scheduler
from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.full_range import FullRangeScheduler
from repro.experiments.replication import replicate
from repro.graphs.conversion import CircularConversion, FullRangeConversion
from repro.sim.duration import DeterministicDuration, GeometricDuration
from repro.sim.engine import SlottedSimulator
from repro.sim.traffic import BernoulliTraffic, OnOffBurstyTraffic
from repro.util.tables import format_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim",
        description="Slotted simulation of a wavelength-convertible WDM "
        "optical interconnect (Zhang & Yang, IPDPS 2003).",
    )
    parser.add_argument("--fibers", type=int, default=8, help="interconnect size N")
    parser.add_argument(
        "--wavelengths", type=int, default=16, help="wavelengths per fiber k"
    )
    parser.add_argument(
        "--degree",
        default="3",
        help="conversion degree d (odd integer) or 'full'",
    )
    parser.add_argument("--load", type=float, default=0.8, help="offered load")
    parser.add_argument(
        "--traffic", choices=("bernoulli", "bursty"), default="bernoulli"
    )
    parser.add_argument(
        "--burst-length", type=float, default=5.0, help="mean burst slots (bursty)"
    )
    parser.add_argument(
        "--mean-duration",
        type=float,
        default=1.0,
        help="mean connection duration in slots (geometric; 1 = single-slot)",
    )
    parser.add_argument(
        "--disturb",
        action="store_true",
        help="allow reassigning ongoing connections (Section V)",
    )
    parser.add_argument("--slots", type=int, default=500)
    parser.add_argument("--warmup", type=int, default=50)
    parser.add_argument(
        "--seeds", type=int, default=1, help="replications (adds CIs when > 1)"
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use the vectorized fast path (plain Bernoulli duration-1 "
        "traffic only; wavelength-level statistics)",
    )
    return parser


def _make_run(args: argparse.Namespace):
    k = args.wavelengths
    if args.degree == "full":
        scheme = FullRangeConversion(k)
        scheduler: Scheduler = FullRangeScheduler()
    else:
        d = int(args.degree)
        e = (d - 1) // 2
        scheme = CircularConversion(k, e, d - 1 - e)
        scheduler = BreakFirstAvailableScheduler()
    durations = (
        DeterministicDuration(1)
        if args.mean_duration == 1.0
        else GeometricDuration(args.mean_duration)
    )

    def run(seed: int):
        if args.traffic == "bernoulli":
            traffic = BernoulliTraffic(
                args.fibers, k, args.load, durations=durations
            )
        else:
            traffic = OnOffBurstyTraffic(
                args.fibers, k, args.load, args.burst_length, durations=durations
            )
        if args.fast:
            from repro.errors import SimulationError
            from repro.sim.fast import FastPacketSimulator

            if args.disturb or args.traffic != "bernoulli" or args.mean_duration != 1.0:
                raise SimulationError(
                    "--fast supports plain Bernoulli duration-1 traffic "
                    "without --disturb"
                )
            fast = FastPacketSimulator(
                args.fibers, scheme, traffic, seed=seed, vectorized_arrivals=True
            )
            return fast.run(args.slots, warmup=args.warmup)
        sim = SlottedSimulator(
            args.fibers,
            scheme,
            scheduler,
            traffic,
            disturb=args.disturb,
            seed=seed,
        )
        return sim.run(args.slots, warmup=args.warmup)

    return run


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    run = _make_run(args)
    metric_names = (
        "loss_probability",
        "acceptance_ratio",
        "utilization",
        "normalized_throughput",
        "source_block_probability",
        "input_fairness",
    )
    if args.seeds == 1:
        summary = run(0).summary()
        rows = [(name, summary[name]) for name in metric_names]
        print(format_table(["metric", "value"], rows, float_fmt=".4f"))
    else:
        report = replicate(run, seeds=args.seeds)
        print(
            format_table(
                ["metric", "mean", "ci lo", "ci hi"],
                report.rows(metric_names),
                title=f"{args.seeds} replications, 95% CI",
                float_fmt=".4f",
            )
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
