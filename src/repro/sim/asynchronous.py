"""Asynchronous (wavelength-routing) operation — the paper's contrast case.

Section I: in asynchronous WDM wavelength-routing networks "the packet
arrivals at the optical interconnect were assumed to be asynchronous, thus
eliminates the need for a scheduling algorithm since the requests have a
natural order and are assumed to be served according to the 'first come
first served' rule" (refs [11], [13], [14]).  This module implements that
regime as an event-driven simulation so the synchronous schedulers can be
put in context:

* connection requests arrive to each output fiber as a Poisson process and
  hold an exponentially-distributed time (the classic teletraffic model of
  the cited analyses; sources are infinite, i.e. arrivals are not throttled
  by input-channel occupancy);
* an arriving request on wavelength ``w`` is admitted iff some channel in
  ``w``'s conversion range is free on its destination fiber, chosen by a
  configurable assignment policy (first-fit / last-fit / random); otherwise
  it is blocked and lost (no queueing — a loss system).

With full range conversion each output fiber is exactly an ``M/M/k/k``
queue, so the measured blocking probability must match the Erlang-B
formula — an end-to-end validation (the ``ASYNC`` experiment checks it).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.errors import InvalidParameterError, SimulationError
from repro.graphs.conversion import ConversionScheme
from repro.util.rng import make_rng
from repro.util.validation import check_positive_int

__all__ = ["AsyncResult", "AsyncWavelengthRouter", "AssignmentPolicy"]

AssignmentPolicy = Literal["first-fit", "last-fit", "random"]

_POLICIES: tuple[str, ...] = ("first-fit", "last-fit", "random")


@dataclass(frozen=True)
class AsyncResult:
    """Outcome of an asynchronous simulation run."""

    offered: int
    blocked: int
    carried_time: float      # Σ holding times of admitted connections
    sim_time: float
    n_fibers: int
    k: int

    @property
    def blocking_probability(self) -> float:
        """Fraction of requests blocked (per-request loss)."""
        return self.blocked / self.offered if self.offered else 0.0

    @property
    def utilization(self) -> float:
        """Mean fraction of output channels busy over the run."""
        capacity = self.n_fibers * self.k * self.sim_time
        return self.carried_time / capacity if capacity else 0.0

    @property
    def carried_erlangs_per_fiber(self) -> float:
        """Mean simultaneously-held channels per output fiber."""
        if self.sim_time == 0:
            return 0.0
        return self.carried_time / self.sim_time / self.n_fibers


class AsyncWavelengthRouter:
    """Event-driven FCFS admission for an ``N × N`` interconnect.

    Parameters
    ----------
    n_fibers, scheme:
        Interconnect dimensions and conversion capability.
    arrival_rate:
        Poisson arrival rate of requests *per output fiber* (requests per
        unit time); each request's wavelength is uniform over the band.
    holding_time:
        Mean of the exponential connection-holding time.
    policy:
        Which free in-range channel an admitted request takes.
    seed:
        RNG seed (arrivals, wavelengths, holding times, random fit).
    """

    def __init__(
        self,
        n_fibers: int,
        scheme: ConversionScheme,
        arrival_rate: float,
        holding_time: float = 1.0,
        policy: AssignmentPolicy = "first-fit",
        seed: int | None = None,
    ) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        self.scheme = scheme
        if arrival_rate <= 0:
            raise InvalidParameterError(
                f"arrival_rate must be > 0, got {arrival_rate}"
            )
        if holding_time <= 0:
            raise InvalidParameterError(
                f"holding_time must be > 0, got {holding_time}"
            )
        if policy not in _POLICIES:
            raise InvalidParameterError(
                f"unknown assignment policy {policy!r}; choose from {_POLICIES}"
            )
        self.arrival_rate = float(arrival_rate)
        self.holding_time = float(holding_time)
        self.policy = policy
        self._rng = make_rng(seed)

    @property
    def offered_erlangs_per_fiber(self) -> float:
        """Offered traffic per output fiber in Erlangs."""
        return self.arrival_rate * self.holding_time

    def _choose_channel(self, free_in_range: list[int]) -> int:
        if self.policy == "first-fit":
            return free_in_range[0]
        if self.policy == "last-fit":
            return free_in_range[-1]
        return int(self._rng.choice(np.asarray(free_in_range)))

    def run(self, sim_time: float, warmup: float = 0.0) -> AsyncResult:
        """Simulate for ``warmup + sim_time`` time units; statistics cover
        the final ``sim_time``."""
        if sim_time <= 0:
            raise InvalidParameterError(f"sim_time must be > 0, got {sim_time}")
        if warmup < 0:
            raise InvalidParameterError(f"warmup must be >= 0, got {warmup}")
        rng = self._rng
        k = self.scheme.k
        end = warmup + sim_time
        busy = np.zeros((self.n_fibers, k), dtype=bool)
        # Event heap: (time, tiebreak, kind, fiber, channel).
        counter = itertools.count()
        events: list[tuple[float, int, str, int, int]] = []
        # Superpose the N per-fiber Poisson streams into one of rate N·λ.
        total_rate = self.arrival_rate * self.n_fibers
        t = float(rng.exponential(1.0 / total_rate))
        heapq.heappush(events, (t, next(counter), "arrival", -1, -1))

        offered = blocked = 0
        carried_time = 0.0
        while events:
            t, _, kind, fiber, channel = heapq.heappop(events)
            if t >= end:
                break
            if kind == "departure":
                if not busy[fiber, channel]:
                    raise SimulationError(
                        f"departure from idle channel ({fiber}, {channel})"
                    )
                busy[fiber, channel] = False
                continue
            # Arrival: draw its attributes, then schedule the next arrival.
            heapq.heappush(
                events,
                (
                    t + float(rng.exponential(1.0 / total_rate)),
                    next(counter),
                    "arrival",
                    -1,
                    -1,
                ),
            )
            out = int(rng.integers(self.n_fibers))
            w = int(rng.integers(k))
            hold = float(rng.exponential(self.holding_time))
            if t >= warmup:
                offered += 1
            free = [b for b in self.scheme.adjacency(w) if not busy[out, b]]
            if not free:
                if t >= warmup:
                    blocked += 1
                continue
            b = self._choose_channel(free)
            busy[out, b] = True
            if t >= warmup:
                # Count only holding time inside the measurement window.
                carried_time += min(t + hold, end) - t
            heapq.heappush(
                events, (t + hold, next(counter), "departure", out, b)
            )
        return AsyncResult(
            offered=offered,
            blocked=blocked,
            carried_time=carried_time,
            sim_time=sim_time,
            n_fibers=self.n_fibers,
            k=k,
        )
