"""Connection-duration models (paper Section V: "connections hold for
different number of time slots")."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import InvalidParameterError
from repro.util.validation import check_positive_int

__all__ = [
    "DurationModel",
    "DeterministicDuration",
    "GeometricDuration",
    "UniformDuration",
]


class DurationModel(ABC):
    """Samples a connection duration in slots (always >= 1)."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> int:
        """Draw one duration."""

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` durations as an ``int64`` array (vectorized batch draw).

        The default falls back to ``n`` scalar :meth:`sample` calls;
        subclasses override with one vectorized draw.  Both the scalar and
        the vectorized form draw from the same stream, but a model's two
        forms need not consume the generator identically — callers pick one
        form and stick to it (:meth:`TrafficModel.arrivals` and the fast
        engine both consume the batch form, which is what keeps the engines
        on identical streams).
        """
        return np.fromiter(
            (self.sample(rng) for _ in range(n)), dtype=np.int64, count=n
        )

    @property
    @abstractmethod
    def mean(self) -> float:
        """Expected duration in slots (used to normalize offered load)."""


class DeterministicDuration(DurationModel):
    """Every connection holds exactly ``slots`` slots (slots=1 is the
    standard one-packet-per-slot assumption)."""

    def __init__(self, slots: int = 1) -> None:
        self.slots = check_positive_int(slots, "slots")

    def sample(self, rng: np.random.Generator) -> int:
        return self.slots

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.slots, dtype=np.int64)

    @property
    def mean(self) -> float:
        return float(self.slots)

    def __repr__(self) -> str:
        return f"DeterministicDuration({self.slots})"


class GeometricDuration(DurationModel):
    """Geometric durations with the given mean (memoryless bursts).

    ``P(duration = n) = (1 - 1/mean)^(n-1) / mean`` for ``n >= 1``.
    """

    def __init__(self, mean: float) -> None:
        if mean < 1.0:
            raise InvalidParameterError(f"mean duration must be >= 1, got {mean}")
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator) -> int:
        if self._mean == 1.0:
            return 1
        return int(rng.geometric(1.0 / self._mean))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self._mean == 1.0:
            return np.ones(n, dtype=np.int64)
        return rng.geometric(1.0 / self._mean, size=n).astype(np.int64)

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"GeometricDuration(mean={self._mean})"


class UniformDuration(DurationModel):
    """Durations uniform on the integers ``[lo, hi]``."""

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = check_positive_int(lo, "lo")
        self.hi = check_positive_int(hi, "hi")
        if hi < lo:
            raise InvalidParameterError(f"hi={hi} must be >= lo={lo}")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.lo, self.hi + 1))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.integers(self.lo, self.hi + 1, size=n, dtype=np.int64)

    @property
    def mean(self) -> float:
        return (self.lo + self.hi) / 2.0

    def __repr__(self) -> str:
        return f"UniformDuration({self.lo}, {self.hi})"
