"""Connection-duration models (paper Section V: "connections hold for
different number of time slots")."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import InvalidParameterError
from repro.util.validation import check_positive_int

__all__ = [
    "DurationModel",
    "DeterministicDuration",
    "GeometricDuration",
    "UniformDuration",
]


class DurationModel(ABC):
    """Samples a connection duration in slots (always >= 1)."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> int:
        """Draw one duration."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Expected duration in slots (used to normalize offered load)."""


class DeterministicDuration(DurationModel):
    """Every connection holds exactly ``slots`` slots (slots=1 is the
    standard one-packet-per-slot assumption)."""

    def __init__(self, slots: int = 1) -> None:
        self.slots = check_positive_int(slots, "slots")

    def sample(self, rng: np.random.Generator) -> int:
        return self.slots

    @property
    def mean(self) -> float:
        return float(self.slots)

    def __repr__(self) -> str:
        return f"DeterministicDuration({self.slots})"


class GeometricDuration(DurationModel):
    """Geometric durations with the given mean (memoryless bursts).

    ``P(duration = n) = (1 - 1/mean)^(n-1) / mean`` for ``n >= 1``.
    """

    def __init__(self, mean: float) -> None:
        if mean < 1.0:
            raise InvalidParameterError(f"mean duration must be >= 1, got {mean}")
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator) -> int:
        if self._mean == 1.0:
            return 1
        return int(rng.geometric(1.0 / self._mean))

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"GeometricDuration(mean={self._mean})"


class UniformDuration(DurationModel):
    """Durations uniform on the integers ``[lo, hi]``."""

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = check_positive_int(lo, "lo")
        self.hi = check_positive_int(hi, "hi")
        if hi < lo:
            raise InvalidParameterError(f"hi={hi} must be >= lo={lo}")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.lo, self.hi + 1))

    @property
    def mean(self) -> float:
        return (self.lo + self.hi) / 2.0

    def __repr__(self) -> str:
        return f"UniformDuration({self.lo}, {self.hi})"
