"""The synchronous slotted simulation engine.

Per slot, the engine

1. collects the traffic model's arrivals, dropping any whose input channel is
   still busy with an earlier multi-slot connection (blocked at source —
   the input laser cannot transmit two signals);
2. presents the survivors to the per-output distributed schedulers, with the
   availability mask reflecting output channels held by ongoing connections
   (paper Section V, optical-burst "non-disturb" mode) — or, in *disturb*
   mode, reschedules the ongoing connections first on a clean band and then
   fits the new requests around them;
3. commits grants: the output channel and input channel stay busy for the
   connection's duration; rejected packets are lost (no buffers);
4. records metrics and advances the clock.

All randomness flows from one seed through spawned, independent streams
(traffic vs. grant policy), so runs are exactly reproducible.
"""

from __future__ import annotations

import json
from typing import Mapping

import numpy as np

from repro.core.base import Scheduler
from repro.core.distributed import DistributedScheduler, SlotRequest
from repro.core.policies import GrantPolicy, RandomPolicy
from repro.errors import InvalidParameterError, SimulationError
from repro.faults import FaultInjector, FaultPlan, as_injector
from repro.graphs.conversion import ConversionScheme
from repro.sim.metrics import MetricsCollector
from repro.sim.packet import Packet
from repro.sim.results import SimulationResult
from repro.sim.traffic import TrafficModel
from repro.util.rng import spawn_rngs
from repro.util.validation import check_nonnegative_int, check_positive_int

__all__ = ["SlottedSimulator"]


class SlottedSimulator:
    """Simulates an ``N × N`` interconnect over synchronous time slots.

    Parameters
    ----------
    n_fibers, scheme:
        Interconnect dimensions.
    scheduler:
        Per-output contention-resolution algorithm.
    traffic:
        Arrival process (must agree on ``n_fibers`` and ``k``).
    policy:
        Grant policy among same-wavelength contenders; defaults to seeded
        random selection (the paper's fairness recommendation).
    disturb:
        Section-V mode for multi-slot connections.  ``False`` (optical burst
        switching): ongoing connections keep their channel; new requests see
        a reduced availability mask.  ``True``: ongoing connections may be
        reassigned — they are rescheduled first each slot (never dropped;
        requires an optimal scheduler), then new requests fill the rest.
    seed:
        Master seed; spawns independent traffic and policy streams.
    faults:
        Optional :class:`~repro.faults.FaultPlan` (or a shared
        :class:`~repro.faults.FaultInjector`).  Channel outages darken
        output channels — new grants route around them exactly like
        Section-V occupied channels, while in-flight connections complete.
        Converter degradations narrow the affected inputs' request-graph
        windows.  Shard-crash events are a service-layer concept and are
        ignored by the engines.  Incompatible with ``disturb=True`` (the
        rescheduling invariant assumes a stable band).
    """

    def __init__(
        self,
        n_fibers: int,
        scheme: ConversionScheme,
        scheduler: Scheduler,
        traffic: TrafficModel,
        policy: GrantPolicy | None = None,
        disturb: bool = False,
        seed: int | None = None,
        parallel: bool = False,
        faults: "FaultInjector | FaultPlan | None" = None,
    ) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        self.scheme = scheme
        if traffic.n_fibers != self.n_fibers or traffic.k != scheme.k:
            raise SimulationError(
                f"traffic model is {traffic.n_fibers}×{traffic.k}, "
                f"interconnect is {self.n_fibers}×{scheme.k}"
            )
        self.traffic = traffic
        self.disturb = bool(disturb)
        self._faults = as_injector(faults, self.n_fibers, scheme.k)
        if self.disturb and self._faults is not None:
            raise InvalidParameterError(
                "disturb=True cannot be combined with fault injection: "
                "rescheduling ongoing connections assumes every channel may "
                "be reused, which dark channels violate"
            )
        traffic_rng, policy_rng = spawn_rngs(seed, 2)
        self._traffic_rng = traffic_rng
        if policy is None:
            policy = RandomPolicy(policy_rng)
        self.scheduler = scheduler
        self.distributed = DistributedScheduler(
            self.n_fibers, scheme, scheduler, policy, parallel=parallel
        )
        # Remaining busy slots per output channel / input channel.
        self._out_busy = np.zeros((self.n_fibers, scheme.k), dtype=np.int64)
        self._in_busy = np.zeros((self.n_fibers, scheme.k), dtype=np.int64)
        # Ongoing connections for disturb mode: (in_fiber, w, out_fiber) ->
        # remaining slots *after* the current one.
        self._ongoing: dict[tuple[int, int, int], int] = {}
        self._slot = 0

    @property
    def k(self) -> int:
        """Wavelengths per fiber."""
        return self.scheme.k

    # -- state export / import ----------------------------------------------

    def export_state(self) -> dict:
        """JSON-encodable snapshot of the full simulator state.

        Captures everything :meth:`step` reads or writes — the slot
        counter, both busy matrices, the ongoing-connection table, the
        traffic RNG, and the grant policy's state — so a simulator built
        with the same constructor arguments and fed this via
        :meth:`import_state` continues *bit-identically* (the simulator
        half of the durability story; the service half lives in
        :mod:`repro.service.durability`).
        """
        return {
            "slot": self._slot,
            "out_busy": self._out_busy.tolist(),
            "in_busy": self._in_busy.tolist(),
            "ongoing": [
                [list(key), left] for key, left in sorted(self._ongoing.items())
            ],
            "traffic_rng": json.loads(
                json.dumps(self._traffic_rng.bit_generator.state)
            ),
            "policy": self.distributed.policy.export_state(),
        }

    def import_state(self, state: Mapping) -> None:
        """Install a state exported by a same-shaped simulator."""
        out_busy = np.asarray(state["out_busy"], dtype=np.int64)
        in_busy = np.asarray(state["in_busy"], dtype=np.int64)
        shape = (self.n_fibers, self.k)
        if out_busy.shape != shape or in_busy.shape != shape:
            raise InvalidParameterError(
                f"state busy matrices are {out_busy.shape}/{in_busy.shape}, "
                f"this simulator is {shape}"
            )
        self._slot = int(state["slot"])
        self._out_busy = out_busy
        self._in_busy = in_busy
        self._ongoing = {
            (int(i), int(w), int(o)): int(left)
            for (i, w, o), left in state["ongoing"]
        }
        self._traffic_rng.bit_generator.state = state["traffic_rng"]
        self.distributed.policy.restore_state(state["policy"])

    # -- one slot -----------------------------------------------------------

    def _availability(self) -> np.ndarray:
        """Free-channel mask, one ``(N, k)`` boolean array for the slot.

        Shared form with the fast path: row ``o`` is output ``o``'s mask,
        handed to :meth:`DistributedScheduler.schedule_slot` without any
        per-output Python list rebuild.
        """
        return self._out_busy == 0

    def _reschedule_ongoing(self) -> np.ndarray:
        """Disturb mode: re-place every ongoing connection on a clean band;
        returns the availability left for new requests."""
        requests = [
            SlotRequest(i, w, o, duration=1)
            for (i, w, o) in sorted(self._ongoing)
        ]
        self._out_busy[:, :] = 0
        for (i, w, _o), left in self._ongoing.items():
            # Input channels stay busy regardless of output re-placement.
            self._in_busy[i, w] = left + 1
        if not requests:
            return self._availability()
        schedule = self.distributed.schedule_slot(requests)
        if schedule.n_rejected:
            raise SimulationError(
                "disturb-mode rescheduling dropped an ongoing connection; "
                "use an optimal scheduler (FA/BFA/Hopcroft-Karp) with disturb=True"
            )
        for g in schedule.granted:
            key = (g.request.input_fiber, g.request.wavelength, g.request.output_fiber)
            left = self._ongoing[key]
            self._out_busy[g.request.output_fiber, g.channel] = left + 1
        return self._availability()

    def step(self) -> Mapping[str, int]:
        """Advance one slot; returns the slot's raw counters."""
        slot = self._slot
        arrivals = self.traffic.arrivals(slot, self._traffic_rng)

        # Arrivals whose input channel is mid-connection are lost at source.
        submitted_packets: list[Packet] = []
        blocked = 0
        seen: set[tuple[int, int]] = set()
        for p in arrivals:
            key = (p.input_fiber, p.wavelength)
            if key in seen:
                raise SimulationError(
                    f"traffic model emitted two packets on input channel {key} "
                    f"in slot {slot}"
                )
            seen.add(key)
            if self._in_busy[p.input_fiber, p.wavelength] > 0:
                blocked += 1
            else:
                submitted_packets.append(p)

        if self.disturb:
            availability = self._reschedule_ongoing()
        else:
            availability = self._availability()
        dark = None
        degradations = None
        if self._faults is not None:
            dark = self._faults.dark_mask(slot)
            if dark.any():
                # A dark channel is indistinguishable from an occupied one to
                # the schedulers — grants route around it (graceful
                # degradation); connections already on it complete.
                availability = availability & ~dark
            degradations = self._faults.degradations_at(slot) or None

        requests = [
            SlotRequest(
                p.input_fiber,
                p.wavelength,
                p.output_fiber,
                p.duration,
                p.priority,
                p.tenant,
            )
            for p in submitted_packets
        ]
        by_key = {
            (p.input_fiber, p.wavelength): p for p in submitted_packets
        }
        if degradations:
            schedule = self.distributed.schedule_slot(
                requests, availability, degradations=degradations
            )
        else:
            # Keep the historical two-argument call shape so wrappers that
            # instrument schedule_slot (equivalence tests) keep working.
            schedule = self.distributed.schedule_slot(requests, availability)

        granted_inputs: list[int] = []
        granted_durations: list[int] = []
        granted_priorities: list[int] = []
        granted_tenants: list[int] = []
        for g in schedule.granted:
            r = g.request
            if self._out_busy[r.output_fiber, g.channel] > 0:
                raise SimulationError(
                    f"scheduler assigned occupied channel ({r.output_fiber}, "
                    f"{g.channel}) in slot {slot}"
                )
            if dark is not None and dark[r.output_fiber, g.channel]:
                raise SimulationError(
                    f"scheduler assigned dark channel ({r.output_fiber}, "
                    f"{g.channel}) in slot {slot}"
                )
            self._out_busy[r.output_fiber, g.channel] = r.duration
            self._in_busy[r.input_fiber, r.wavelength] = r.duration
            if r.duration > 1:
                self._ongoing[(r.input_fiber, r.wavelength, r.output_fiber)] = (
                    r.duration - 1
                )
            packet = by_key[(r.input_fiber, r.wavelength)]
            granted_inputs.append(packet.input_fiber)
            granted_durations.append(packet.duration)
            granted_priorities.append(packet.priority)
            granted_tenants.append(packet.tenant)

        counters = {
            "slot": slot,
            "offered": len(arrivals),
            "blocked_source": blocked,
            "submitted": len(submitted_packets),
            "granted": len(granted_inputs),
            "busy_channels": int(np.count_nonzero(self._out_busy)),
            "dark_channels": int(dark.sum()) if dark is not None else 0,
            "granted_inputs": granted_inputs,
            "granted_priorities": granted_priorities,
            "granted_durations": granted_durations,
            "granted_tenants": granted_tenants,
            "submitted_inputs": [p.input_fiber for p in submitted_packets],
            "submitted_priorities": [p.priority for p in submitted_packets],
            "submitted_tenants": [p.tenant for p in submitted_packets],
        }

        # End of slot: connections age by one.
        np.maximum(self._out_busy - 1, 0, out=self._out_busy)
        np.maximum(self._in_busy - 1, 0, out=self._in_busy)
        for key in list(self._ongoing):
            left = self._ongoing[key] - 1
            if left <= 0:
                del self._ongoing[key]
            else:
                self._ongoing[key] = left
        self._slot += 1
        return counters

    # -- full runs ----------------------------------------------------------

    def run(self, n_slots: int, warmup: int = 0) -> SimulationResult:
        """Run ``warmup + n_slots`` slots; metrics cover the last ``n_slots``."""
        check_positive_int(n_slots, "n_slots")
        check_nonnegative_int(warmup, "warmup")
        metrics = MetricsCollector(self.n_fibers, self.k)
        for _ in range(warmup):
            self.step()
        for _ in range(n_slots):
            c = self.step()
            metrics.record_slot(
                offered=c["offered"],
                blocked_source=c["blocked_source"],
                submitted=c["submitted"],
                granted_inputs=c["granted_inputs"],
                granted_priorities=c["granted_priorities"],
                granted_durations=c["granted_durations"],
                submitted_inputs=c["submitted_inputs"],
                submitted_priorities=c["submitted_priorities"],
                busy_channels=c["busy_channels"],
            )
        config = {
            "n_fibers": self.n_fibers,
            "k": self.k,
            "scheme": repr(self.scheme),
            "scheduler": self.scheduler.name,
            "traffic": type(self.traffic).__name__,
            "offered_load": self.traffic.offered_load,
            "disturb": self.disturb,
            "fault_events": (
                self._faults.plan.n_events if self._faults is not None else 0
            ),
        }
        return SimulationResult(config=config, metrics=metrics, warmup_slots=warmup)
