"""Vectorized fast-path simulator for single-slot packet studies.

Parameter sweeps like ``PERF-D`` only need wavelength-level loss statistics,
and for single-slot packets those are *policy-independent*: which input
fiber wins a wavelength's channel does not change how many requests are
granted.  That makes the whole slot reducible to one batch scheduling call:
build the ``(N, k)`` request matrix of all output fibers and run
:func:`~repro.core.batch_bfa.batch_break_first_available` (or the FA batch
kernel for non-circular schemes) once per slot.

The fast path consumes the *same* traffic stream as
:class:`~repro.sim.engine.SlottedSimulator`, so for duration-1 traffic its
per-slot grant counts are exactly equal to the full engine's (tested), at a
fraction of the cost.  Multi-slot durations, disturb mode, per-fiber
fairness and per-class QoS need the full engine.
"""

from __future__ import annotations

import numpy as np

from repro.core.batch import batch_first_available
from repro.core.batch_bfa import batch_break_first_available
from repro.errors import SimulationError
from repro.graphs.conversion import (
    CircularConversion,
    ConversionScheme,
    NonCircularConversion,
)
from repro.sim.metrics import MetricsCollector
from repro.sim.results import SimulationResult
from repro.sim.traffic import TrafficModel
from repro.util.rng import spawn_rngs
from repro.util.validation import check_nonnegative_int, check_positive_int

__all__ = ["FastPacketSimulator"]


class FastPacketSimulator:
    """Batch-vectorized slotted simulation (single-slot packets only).

    Parameters mirror :class:`~repro.sim.engine.SlottedSimulator` minus the
    scheduler (the optimal batch kernel for the scheme is implied) and the
    policy (irrelevant to wavelength-level statistics).
    """

    def __init__(
        self,
        n_fibers: int,
        scheme: ConversionScheme,
        traffic: TrafficModel,
        seed: int | None = None,
        vectorized_arrivals: bool = False,
    ) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        if not isinstance(scheme, (CircularConversion, NonCircularConversion)):
            raise SimulationError(
                f"unsupported scheme for the fast path: {scheme!r}"
            )
        self.scheme = scheme
        if traffic.n_fibers != self.n_fibers or traffic.k != scheme.k:
            raise SimulationError(
                f"traffic model is {traffic.n_fibers}×{traffic.k}, "
                f"interconnect is {self.n_fibers}×{scheme.k}"
            )
        self.traffic = traffic
        self.vectorized_arrivals = bool(vectorized_arrivals)
        if self.vectorized_arrivals:
            # The vectorized generator reimplements plain uniform Bernoulli
            # traffic without per-packet objects; anything fancier must go
            # through the traffic model's own arrivals().
            from repro.sim.duration import DeterministicDuration
            from repro.sim.traffic import BernoulliTraffic, UniformDestinations

            if not (
                isinstance(traffic, BernoulliTraffic)
                and isinstance(traffic.destinations, UniformDestinations)
                and isinstance(traffic.durations, DeterministicDuration)
                and traffic.durations.slots == 1
                and traffic._priority_p is None
            ):
                raise SimulationError(
                    "vectorized_arrivals requires plain BernoulliTraffic "
                    "(uniform destinations, duration 1, single class)"
                )
        # Mirror SlottedSimulator's stream layout (traffic first) so both
        # engines see identical arrivals from the same seed (in the
        # non-vectorized mode; the vectorized generator draws the same
        # distribution from a different stream order).
        traffic_rng, _policy_rng = spawn_rngs(seed, 2)
        self._traffic_rng = traffic_rng
        self._slot = 0

    @property
    def k(self) -> int:
        """Wavelengths per fiber."""
        return self.scheme.k

    def _schedule_matrix(self, req: np.ndarray) -> np.ndarray:
        if isinstance(self.scheme, NonCircularConversion):
            return batch_first_available(
                req, None, self.scheme.e, self.scheme.f
            )
        return batch_break_first_available(
            req, None, self.scheme.e, self.scheme.f
        )

    def _request_matrix(self) -> tuple[np.ndarray, int]:
        """One slot's ``(N, k)`` per-output request counts and arrival total."""
        req = np.zeros((self.n_fibers, self.k), dtype=np.int64)
        if self.vectorized_arrivals:
            rng = self._traffic_rng
            hits = rng.random((self.n_fibers, self.k)) < self.traffic.load  # type: ignore[attr-defined]
            _fibers, wavelengths = np.nonzero(hits)
            n = wavelengths.size
            if n:
                dests = rng.integers(self.n_fibers, size=n)
                np.add.at(req, (dests, wavelengths), 1)
            return req, n
        arrivals = self.traffic.arrivals(self._slot, self._traffic_rng)
        for p in arrivals:
            if p.duration != 1:
                raise SimulationError(
                    "FastPacketSimulator supports duration-1 packets only; "
                    "use SlottedSimulator for multi-slot connections"
                )
            req[p.output_fiber, p.wavelength] += 1
        return req, len(arrivals)

    def step(self) -> dict[str, object]:
        """One slot: arrivals → request matrix → one batch schedule."""
        req, n_arrivals = self._request_matrix()
        self._slot += 1
        assign = self._schedule_matrix(req)
        granted = int((assign >= 0).sum())
        return {
            "offered": n_arrivals,
            "submitted": n_arrivals,
            "granted": granted,
            "busy_channels": granted,
        }

    def run(self, n_slots: int, warmup: int = 0) -> SimulationResult:
        """Run ``warmup + n_slots`` slots; metrics cover the last ``n_slots``.

        Per-input-fiber grant attribution is policy-dependent and therefore
        not tracked here; fairness metrics read as neutral.
        """
        check_positive_int(n_slots, "n_slots")
        check_nonnegative_int(warmup, "warmup")
        metrics = MetricsCollector(self.n_fibers, self.k)
        for _ in range(warmup):
            self.step()
        for _ in range(n_slots):
            c = self.step()
            # Input-fiber attribution is policy-dependent; leave the
            # fairness accounting empty (reads as neutral 1.0).
            metrics.record_slot(
                offered=c["offered"],
                blocked_source=0,
                submitted=c["submitted"],
                granted_inputs=[0] * c["granted"],
                granted_durations=[1] * c["granted"],
                submitted_inputs=[],
                busy_channels=c["busy_channels"],
            )
        config = {
            "n_fibers": self.n_fibers,
            "k": self.k,
            "scheme": repr(self.scheme),
            "scheduler": "batch-fast-path",
            "traffic": type(self.traffic).__name__,
            "offered_load": self.traffic.offered_load,
            "disturb": False,
        }
        return SimulationResult(config=config, metrics=metrics, warmup_slots=warmup)
