"""Vectorized fast-path simulator for packet *and* multi-slot burst studies.

Parameter sweeps like ``PERF-D`` and the Section-V burst sweeps don't need
per-packet Python objects: the paper's structural insight — per-slot
scheduling decomposes into ``N`` independent per-output sub-problems — makes
the whole slot one batch kernel call
(:func:`~repro.core.batch.batch_first_available` /
:func:`~repro.core.batch_bfa.batch_break_first_available`) over the ``(N,
k)`` request matrix.

Two regimes share that kernel:

* **Single-slot traffic** (all durations 1): wavelength-level grant counts
  are *policy-independent*, so the slot reduces to one kernel call with an
  all-free mask and no grant distribution at all.  Per-slot grant counts are
  exactly equal to the full engine's (tested); per-input attribution is
  skipped (fairness reads as neutral).
* **Multi-slot traffic** (paper Section V, non-disturb): the simulator
  carries ``(N, k)`` residual-occupancy matrices across slots — output
  channels and input channels held by ongoing connections — decrements them
  vectorized, and feeds the free-channel mask into the kernels as
  ``available``.  Which requester wins a wavelength's channels now matters
  (the winner's duration drives future occupancy), so grants are distributed
  through the same policy protocol as
  :func:`~repro.core.distributed.distribute_grants`, consuming the policy
  RNG identically.  The result is *bit-identical* to
  :class:`~repro.sim.engine.SlottedSimulator` with the scheme's optimal
  scheduler on the same seed — full metric equality, attribution included
  (tested slot by slot).

Both regimes consume :meth:`~repro.sim.traffic.TrafficModel.arrivals_batch`
— the same draws the full engine materializes into packets — so the two
engines see identical traffic from one seed.  Disturb mode and QoS priority
classes still need the full engine.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.core.batch import batch_first_available
from repro.core.batch_bfa import batch_break_first_available
from repro.core.memo import ScheduleCache, resolve_cache
from repro.core.policies import GrantPolicy, RandomPolicy
from repro.errors import SimulationError
from repro.faults import FaultInjector, FaultPlan, as_injector
from repro.graphs.conversion import (
    CircularConversion,
    ConversionScheme,
    NonCircularConversion,
)
from repro.sim.duration import DeterministicDuration
from repro.sim.metrics import MetricsCollector
from repro.sim.results import SimulationResult
from repro.sim.traffic import ArrivalBatch, TrafficModel
from repro.util.rng import spawn_rngs
from repro.util.validation import check_nonnegative_int, check_positive_int

__all__ = ["FastPacketSimulator"]


class FastPacketSimulator:
    """Batch-vectorized slotted simulation (single- and multi-slot traffic).

    Parameters mirror :class:`~repro.sim.engine.SlottedSimulator` minus the
    scheduler (the optimal batch kernel for the scheme is implied) and minus
    disturb mode.  ``policy`` is only consulted for multi-slot traffic,
    where it defaults to the same seeded :class:`~repro.core.policies.
    RandomPolicy` the full engine would use — which is what makes the two
    engines bit-identical on one seed.

    ``vectorized_arrivals`` is a legacy flag: both modes now consume the
    traffic model's array-form draw, so it only retains its strictness —
    requiring plain uniform duration-1 Bernoulli traffic.

    ``cache`` memoizes per-output assignment rows (``True`` = the shared
    default :class:`~repro.core.memo.ScheduleCache`, ``None``/``False`` =
    off, or a private instance).  Purely a speed knob: results are
    bit-identical either way.

    ``faults`` accepts a :class:`~repro.faults.FaultPlan` (or shared
    injector) of *channel outages only*: dark channels enter the kernels'
    availability mask, so a pure-outage plan keeps the fast engine
    bit-identical to the full engine.  Converter degradation is per-input
    and cannot be expressed in the one-scheme batch kernels — plans carrying
    it are rejected here (use :class:`~repro.sim.engine.SlottedSimulator`);
    shard-crash events are service-layer-only and ignored.
    """

    def __init__(
        self,
        n_fibers: int,
        scheme: ConversionScheme,
        traffic: TrafficModel,
        seed: int | None = None,
        vectorized_arrivals: bool = False,
        policy: GrantPolicy | None = None,
        cache: ScheduleCache | bool | None = True,
        faults: "FaultInjector | FaultPlan | None" = None,
    ) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        if not isinstance(scheme, (CircularConversion, NonCircularConversion)):
            raise SimulationError(
                f"unsupported scheme for the fast path: {scheme!r}"
            )
        self.scheme = scheme
        if traffic.n_fibers != self.n_fibers or traffic.k != scheme.k:
            raise SimulationError(
                f"traffic model is {traffic.n_fibers}×{traffic.k}, "
                f"interconnect is {self.n_fibers}×{scheme.k}"
            )
        self.traffic = traffic
        self._faults = as_injector(faults, self.n_fibers, scheme.k)
        if self._faults is not None and self._faults.has_degradations:
            raise SimulationError(
                "the fast path's batch kernels schedule one conversion "
                "scheme for all inputs and cannot express per-input "
                "converter degradation; use SlottedSimulator for plans "
                "with ConverterDegradation events"
            )
        self.vectorized_arrivals = bool(vectorized_arrivals)
        if self.vectorized_arrivals:
            from repro.sim.traffic import BernoulliTraffic, UniformDestinations

            if not (
                isinstance(traffic, BernoulliTraffic)
                and isinstance(traffic.destinations, UniformDestinations)
                and isinstance(traffic.durations, DeterministicDuration)
                and traffic.durations.slots == 1
                and traffic._priority_p is None
            ):
                raise SimulationError(
                    "vectorized_arrivals requires plain BernoulliTraffic "
                    "(uniform destinations, duration 1, single class)"
                )
        # Mirror SlottedSimulator's stream layout (traffic, then policy) so
        # both engines see identical arrivals AND identical policy draws
        # from the same seed.
        traffic_rng, policy_rng = spawn_rngs(seed, 2)
        self._traffic_rng = traffic_rng
        self.policy: GrantPolicy = (
            policy if policy is not None else RandomPolicy(policy_rng)
        )
        # Residual occupancy carried across slots (multi-slot regime):
        # remaining busy slots per output channel / input channel.
        self._out_busy = np.zeros((self.n_fibers, scheme.k), dtype=np.int64)
        self._in_busy = np.zeros((self.n_fibers, scheme.k), dtype=np.int64)
        # Single-slot regime iff the duration model provably always draws 1;
        # traffic models without a known duration model get the (equally
        # correct, slightly slower) stateful path.
        durations = getattr(traffic, "durations", None)
        self._single_slot = (
            isinstance(durations, DeterministicDuration) and durations.slots == 1
        )
        # Per-output sub-problem memoization: an output row's assignment is a
        # pure function of (scheme, request row, availability row), and slot
        # traffic revisits a small working set of such rows.  ``True`` shares
        # the process-wide default cache with the schedulers; the tag keeps
        # kernel rows and ScheduleResult entries from ever colliding.
        self._row_cache = resolve_cache(cache)
        self._cache_tag = (
            "batch-fa" if isinstance(scheme, NonCircularConversion)
            else "batch-bfa",
            scheme.k,
            scheme.e,
            scheme.f,
        )
        self._slot = 0

    @property
    def k(self) -> int:
        """Wavelengths per fiber."""
        return self.scheme.k

    def _schedule_matrix(
        self, req: np.ndarray, avail: np.ndarray | None
    ) -> np.ndarray:
        if isinstance(self.scheme, NonCircularConversion):
            return batch_first_available(
                req, avail, self.scheme.e, self.scheme.f, check=False
            )
        return batch_break_first_available(
            req, avail, self.scheme.e, self.scheme.f, check=False
        )

    def _validate_row(
        self,
        row: np.ndarray,
        req_row: np.ndarray,
        avail_row: np.ndarray | None,
    ) -> None:
        """Trust boundary for the batch kernels (mirrors
        :func:`~repro.core.base.validate_schedule` on the row encoding).

        Rejects grants to unavailable channels, grants outside the scheme's
        conversion window, and per-wavelength overgrants.  Runs once per
        cache miss, so the steady-state cost is near zero.
        """
        k = self.k
        e, f = self.scheme.e, self.scheme.f
        circular = isinstance(self.scheme, CircularConversion)
        counts: dict[int, int] = {}
        for b, w in enumerate(row.tolist()):
            if w < 0:
                continue
            if avail_row is not None and not avail_row[b]:
                raise SimulationError(
                    f"batch kernel granted unavailable channel {b} "
                    f"(wavelength {w})"
                )
            if circular:
                off = (b - w) % k
                adjacent = off <= f or off >= k - e
            else:
                adjacent = -e <= b - w <= f
            if not adjacent:
                raise SimulationError(
                    f"batch kernel granted channel {b} outside wavelength "
                    f"{w}'s conversion window"
                )
            counts[w] = counts.get(w, 0) + 1
        for w, c in counts.items():
            if c > int(req_row[w]):
                raise SimulationError(
                    f"batch kernel granted {c} channels for wavelength {w} "
                    f"with only {int(req_row[w])} requests"
                )

    @staticmethod
    def _parse_row(row: np.ndarray) -> tuple[dict[int, list[int]], int]:
        """``(granted channels keyed by wavelength, grant count)`` of a
        kernel assignment row — the only two things consumers ever read."""
        channels_by_w: dict[int, list[int]] = {}
        count = 0
        for b, w in enumerate(row.tolist()):
            if w >= 0:
                channels_by_w.setdefault(w, []).append(b)
                count += 1
        return channels_by_w, count

    def _assign_rows(
        self, req: np.ndarray, avail: np.ndarray | None
    ) -> dict[int, tuple[dict[int, list[int]], int]]:
        """Parsed assignment per output that has requests, memoized per row.

        Outputs without requests grant nothing and are omitted.  Cached
        values are read-only by convention — every consumer only reads them.
        """
        active = np.nonzero(req.any(axis=1))[0]
        if self._row_cache is None:
            sub = self._schedule_matrix(
                req[active], None if avail is None else avail[active]
            )
            out: dict[int, tuple[dict[int, list[int]], int]] = {}
            for j, o in enumerate(active):
                o = int(o)
                self._validate_row(
                    sub[j], req[o], None if avail is None else avail[o]
                )
                out[o] = self._parse_row(sub[j])
            return out

        rows_out: dict[int, tuple[dict[int, list[int]], int]] = {}
        misses: list[tuple[int, tuple]] = []
        for o in active:
            o = int(o)
            key = (
                self._cache_tag,
                req[o].tobytes(),
                b"" if avail is None else avail[o].tobytes(),
            )
            value = self._row_cache.get(key)
            if value is None:
                misses.append((o, key))
            else:
                rows_out[o] = value
        if misses:
            idx = np.fromiter((o for o, _ in misses), dtype=np.int64)
            sub = self._schedule_matrix(
                req[idx], None if avail is None else avail[idx]
            )
            for (o, key), row in zip(misses, sub):
                self._validate_row(
                    row, req[o], None if avail is None else avail[o]
                )
                value = self._parse_row(row)
                self._row_cache.put(key, value)
                rows_out[o] = value
        return rows_out

    # -- single-slot regime (stateless slots) -------------------------------

    def _step_single_slot(
        self, batch: ArrivalBatch, dark: np.ndarray | None
    ) -> dict[str, object]:
        req = np.zeros((self.n_fibers, self.k), dtype=np.int64)
        if batch.n:
            np.add.at(req, (batch.output_fiber, batch.wavelength), 1)
        rows = self._assign_rows(req, None if dark is None else ~dark)
        granted = sum(count for _, count in rows.values())
        return {
            "offered": batch.n,
            "blocked_source": 0,
            "submitted": batch.n,
            "granted": granted,
            "busy_channels": granted,
            # Attribution is policy-dependent and skipped in this regime.
            "granted_inputs": None,
            "granted_durations": None,
            "submitted_inputs": None,
        }

    # -- multi-slot regime (residual occupancy carried across slots) --------

    def _step_multislot(
        self, batch: ArrivalBatch, dark: np.ndarray | None
    ) -> dict[str, object]:
        n = batch.n
        in_f, wl = batch.input_fiber, batch.wavelength
        if n:
            if batch.priority.any():
                raise SimulationError(
                    "the fast path schedules a single QoS class; use "
                    "SlottedSimulator for strict-priority traffic"
                )
            if np.unique(in_f * self.k + wl).size != n:
                raise SimulationError(
                    "traffic model emitted two packets on one input channel "
                    f"in slot {self._slot}"
                )

        # Arrivals whose input channel is mid-connection are lost at source.
        free_in = self._in_busy[in_f, wl] == 0
        blocked = int(n - np.count_nonzero(free_in))
        if blocked:
            in_s = in_f[free_in]
            wl_s = wl[free_in]
            out_s = batch.output_fiber[free_in]
            dur_s = batch.duration[free_in]
        else:
            in_s, wl_s = in_f, wl
            out_s, dur_s = batch.output_fiber, batch.duration

        req = np.zeros((self.n_fibers, self.k), dtype=np.int64)
        if in_s.size:
            np.add.at(req, (out_s, wl_s), 1)
        avail = self._out_busy == 0
        if dark is not None:
            # Dark channels behave exactly like Section-V occupied channels:
            # the kernels route new grants around them, in-flight
            # connections complete — same rule as the full engine, which is
            # what keeps pure-outage plans bit-identical across engines.
            avail &= ~dark
        assign_rows = self._assign_rows(req, avail)

        # Group the submitted requests by (output, wavelength) — plain-Python
        # lists, cheap next to the per-output scheduling they replace.  The
        # protocol below consumes the grant policy exactly like
        # distribute_grants, so the two engines' policy streams stay aligned.
        in_l = in_s.tolist()
        wl_l = wl_s.tolist()
        out_l = out_s.tolist()
        dur_l = dur_s.tolist()
        by_output: dict[int, dict[int, dict[int, int]]] = {}
        for i, o in enumerate(out_l):
            by_output.setdefault(o, {}).setdefault(wl_l[i], {})[
                in_l[i]
            ] = dur_l[i]

        # RandomPolicy provably consumes no RNG (and keeps no state) when
        # every contender wins, so those select() calls can be elided without
        # perturbing the shared policy stream.  Only for the exact class —
        # subclasses and other policies get the full protocol.
        uncontended_skip = type(self.policy) is RandomPolicy
        granted_inputs: list[int] = []
        granted_durations: list[int] = []
        g_out: list[int] = []
        g_ch: list[int] = []
        g_wl: list[int] = []
        for o in sorted(by_output):
            channels_by_w = assign_rows[o][0]
            for w in sorted(by_output[o]):
                by_fiber = by_output[o][w]
                channels = channels_by_w.get(w, ())
                fibers = sorted(by_fiber)
                if uncontended_skip and len(channels) >= len(fibers):
                    pairs = zip(fibers, channels)
                else:
                    winners = self.policy.select(o, w, fibers, len(channels))
                    pairs = zip(sorted(set(winners)), channels)
                for fiber, channel in pairs:
                    g_out.append(o)
                    g_ch.append(channel)
                    g_wl.append(w)
                    granted_inputs.append(fiber)
                    granted_durations.append(by_fiber[fiber])

        # Commit all grants at once; nothing reads occupancy mid-loop.  The
        # duplicate/occupied checks are the same last-line defense the full
        # engine applies before mutating its busy matrices.
        if granted_inputs:
            committed: set[tuple[int, int]] = set()
            for o, ch in zip(g_out, g_ch):
                if (o, ch) in committed:
                    raise SimulationError(
                        f"two grants committed to output channel ({o}, {ch}) "
                        f"in slot {self._slot - 1}"
                    )
                committed.add((o, ch))
                if self._out_busy[o, ch] > 0:
                    raise SimulationError(
                        f"grant committed to occupied channel ({o}, {ch}) "
                        f"in slot {self._slot - 1}"
                    )
                if dark is not None and dark[o, ch]:
                    raise SimulationError(
                        f"grant committed to dark channel ({o}, {ch}) "
                        f"in slot {self._slot - 1}"
                    )
            self._out_busy[g_out, g_ch] = granted_durations
            self._in_busy[granted_inputs, g_wl] = granted_durations
        busy = int(np.count_nonzero(self._out_busy))
        # End of slot: connections age by one.
        np.maximum(self._out_busy - 1, 0, out=self._out_busy)
        np.maximum(self._in_busy - 1, 0, out=self._in_busy)
        return {
            "offered": n,
            "blocked_source": blocked,
            "submitted": len(in_l),
            "granted": len(granted_inputs),
            "busy_channels": busy,
            "granted_inputs": granted_inputs,
            "granted_durations": granted_durations,
            "submitted_inputs": in_l,
        }

    # -- one slot ------------------------------------------------------------

    def step(self) -> dict[str, object]:
        """One slot: array arrivals → request matrix → one batch schedule."""
        slot = self._slot
        batch = self.traffic.arrivals_batch(slot, self._traffic_rng)
        self._slot += 1
        dark = None
        if self._faults is not None:
            mask = self._faults.dark_mask(slot)
            if mask.any():
                dark = mask
        if self._single_slot:
            return self._step_single_slot(batch, dark)
        return self._step_multislot(batch, dark)

    # -- full runs -----------------------------------------------------------

    def run(self, n_slots: int, warmup: int = 0) -> SimulationResult:
        """Run ``warmup + n_slots`` slots; metrics cover the last ``n_slots``.

        In the single-slot regime, per-input-fiber grant attribution is
        policy-dependent and not tracked (fairness reads as neutral 1.0); in
        the multi-slot regime attribution is exact.
        """
        check_positive_int(n_slots, "n_slots")
        check_nonnegative_int(warmup, "warmup")
        metrics = MetricsCollector(self.n_fibers, self.k)
        for _ in range(warmup):
            self.step()
        for _ in range(n_slots):
            c = self.step()
            if c["granted_inputs"] is None:
                granted = int(c["granted"])  # type: ignore[arg-type]
                metrics.record_slot(
                    offered=c["offered"],
                    blocked_source=0,
                    submitted=c["submitted"],
                    granted_inputs=[0] * granted,
                    granted_durations=[1] * granted,
                    submitted_inputs=[],
                    busy_channels=c["busy_channels"],
                )
            else:
                # Single class by construction (nonzero priorities raise),
                # so class-0 accounting matches the full engine exactly.
                metrics.record_slot(
                    offered=c["offered"],
                    blocked_source=c["blocked_source"],
                    submitted=c["submitted"],
                    granted_inputs=c["granted_inputs"],
                    granted_durations=c["granted_durations"],
                    submitted_inputs=c["submitted_inputs"],
                    busy_channels=c["busy_channels"],
                    granted_priorities=[0] * len(c["granted_inputs"]),
                    submitted_priorities=[0] * len(c["submitted_inputs"]),
                )
        config = {
            "n_fibers": self.n_fibers,
            "k": self.k,
            "scheme": repr(self.scheme),
            "scheduler": "batch-fast-path",
            "kernel_backend": kernels.get_backend().name,
            "traffic": type(self.traffic).__name__,
            "offered_load": self.traffic.offered_load,
            "disturb": False,
            "fault_events": (
                self._faults.plan.n_events if self._faults is not None else 0
            ),
        }
        return SimulationResult(config=config, metrics=metrics, warmup_slots=warmup)
