"""Simulation result containers and statistical helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np
from scipy import stats

from repro.errors import InvalidParameterError
from repro.sim.metrics import MetricsCollector

__all__ = ["SimulationResult", "mean_confidence_interval"]


def mean_confidence_interval(
    samples: np.ndarray, confidence: float = 0.95
) -> tuple[float, float, float]:
    """``(mean, lo, hi)`` Student-t confidence interval of the sample mean.

    Degenerate inputs (fewer than two samples, zero variance) collapse the
    interval onto the mean.
    """
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise InvalidParameterError("cannot build an interval from no samples")
    mean = float(arr.mean())
    if arr.size < 2:
        return mean, mean, mean
    sem = float(stats.sem(arr))
    if sem == 0.0:
        return mean, mean, mean
    half = float(sem * stats.t.ppf((1.0 + confidence) / 2.0, arr.size - 1))
    return mean, mean - half, mean + half


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one :class:`~repro.sim.engine.SlottedSimulator` run."""

    config: Mapping[str, object]
    metrics: MetricsCollector
    warmup_slots: int = 0
    extra: Mapping[str, object] = field(default_factory=dict)

    @property
    def n_slots(self) -> int:
        """Measured slots (after warm-up)."""
        return self.metrics.n_slots

    def summary(self) -> dict[str, float]:
        """Scalar metric summary, suitable for a results table row."""
        m = self.metrics
        return {
            "slots": float(m.n_slots),
            "offered": float(m.offered),
            "submitted": float(m.submitted),
            "granted": float(m.granted),
            "rejected": float(m.rejected),
            "blocked_source": float(m.blocked_source),
            "acceptance_ratio": m.acceptance_ratio,
            "loss_probability": m.loss_probability,
            "source_block_probability": m.source_block_probability,
            "utilization": m.utilization,
            "normalized_throughput": m.normalized_throughput,
            "input_fairness": m.input_fairness,
            "mean_granted_duration": m.mean_granted_duration,
        }

    def acceptance_interval(
        self, confidence: float = 0.95
    ) -> tuple[float, float, float]:
        """Per-slot acceptance-ratio confidence interval.

        Slots with no submissions are excluded (their ratio is undefined).
        """
        submitted = self.metrics.submitted_series().astype(float)
        granted = self.metrics.granted_series().astype(float)
        mask = submitted > 0
        if not np.any(mask):
            return 1.0, 1.0, 1.0
        return mean_confidence_interval(granted[mask] / submitted[mask], confidence)
