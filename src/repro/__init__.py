"""repro — reproduction of Zhang & Yang (IPDPS 2003), *Distributed Scheduling
Algorithms for Wavelength Convertible WDM Optical Interconnects*.

Quickstart
----------
>>> from repro import CircularConversion, RequestGraph, BreakFirstAvailableScheduler
>>> scheme = CircularConversion(k=6, e=1, f=1)           # d = 3, Fig. 2(a)
>>> rg = RequestGraph(scheme, [2, 1, 0, 1, 1, 2])        # Fig. 3(a)
>>> result = BreakFirstAvailableScheduler().schedule(rg)
>>> result.n_granted                                     # Fig. 4: all 6 channels used
6

Package map
-----------
``repro.core``
    The paper's scheduling algorithms (First Available, Break-and-First-
    Available, single-break approximation, full-range trivial scheduler,
    Hopcroft–Karp / Glover baselines, the distributed per-output facade).
``repro.graphs``
    Conversion graphs, request graphs, matchings, convex-bipartite machinery,
    crossing edges and graph breaking.
``repro.interconnect``
    Datapath model of the Fig. 1 interconnect (demux/fabric/combiner/
    converter/mux) with physical-feasibility checking.
``repro.hardware``
    Register-level models of the schedulers with cycle accounting.
``repro.sim``
    Synchronous slotted simulator: traffic models, multi-slot connections,
    metrics.
``repro.analysis``
    Theorem-3 bounds, matching certificates, instance generators.
``repro.experiments``
    One entry per paper figure/table/claim; ``python -m repro.experiments``.
``repro.service``
    Online scheduling service: sharded asyncio server (one shard per output
    fiber), bounded queues with backpressure, clients/load generators, and
    built-in telemetry.
"""

from repro.core import (
    BreakFirstAvailableReferenceScheduler,
    BreakFirstAvailableScheduler,
    DistributedScheduler,
    FirstAvailableReferenceScheduler,
    FirstAvailableScheduler,
    FixedPriorityPolicy,
    FullRangeScheduler,
    GloverScheduler,
    GrantedRequest,
    HopcroftKarpScheduler,
    RandomPolicy,
    RoundRobinPolicy,
    Scheduler,
    SingleBreakScheduler,
    SlotRequest,
    SlotSchedule,
)
from repro.errors import ReproError
from repro.graphs import (
    BipartiteGraph,
    CircularConversion,
    ConversionScheme,
    FullRangeConversion,
    Matching,
    NonCircularConversion,
    RequestGraph,
    hopcroft_karp,
)
from repro.types import Grant, ScheduleResult

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "Grant",
    "ScheduleResult",
    "ConversionScheme",
    "CircularConversion",
    "NonCircularConversion",
    "FullRangeConversion",
    "RequestGraph",
    "BipartiteGraph",
    "Matching",
    "hopcroft_karp",
    "Scheduler",
    "FirstAvailableScheduler",
    "FirstAvailableReferenceScheduler",
    "BreakFirstAvailableScheduler",
    "BreakFirstAvailableReferenceScheduler",
    "SingleBreakScheduler",
    "FullRangeScheduler",
    "HopcroftKarpScheduler",
    "GloverScheduler",
    "DistributedScheduler",
    "SlotRequest",
    "GrantedRequest",
    "SlotSchedule",
    "FixedPriorityPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
]
