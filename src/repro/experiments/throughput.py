"""Throughput/loss vs offered load and conversion degree (``PERF-D``).

The paper's motivation (Section I, citing [11][13][14]): limited range
conversion with a very small degree achieves network performance close to
full range conversion.  This experiment regenerates that curve family on the
vectorized fast engine (grant counts identical to the slotted simulator,
tested): loss probability vs offered load for ``d ∈ {1, 3, 5, k}``, plus a
fixed-load sweep over ``d``.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, experiment
from repro.graphs.conversion import CircularConversion, FullRangeConversion
from repro.sim.fast import FastPacketSimulator
from repro.sim.traffic import BernoulliTraffic
from repro.util.tables import format_table

__all__ = ["throughput_vs_load"]


def _run_point(
    n_fibers: int,
    k: int,
    d: int,
    load: float,
    slots: int,
    seed: int,
) -> dict[str, float]:
    # The fast engine's batch BFA kernel is grant-count optimal for every
    # circular scheme (full range included), so this sweep yields the same
    # loss/throughput numbers the full engine would — only faster.
    if d >= k:
        scheme: CircularConversion = FullRangeConversion(k)
    else:
        e = (d - 1) // 2
        scheme = CircularConversion(k, e, d - 1 - e)
    traffic = BernoulliTraffic(n_fibers, k, load)
    sim = FastPacketSimulator(n_fibers, scheme, traffic, seed=seed)
    return sim.run(slots, warmup=max(10, slots // 10)).summary()


@experiment("PERF-D", "Loss vs load for conversion degrees d (paper Sec. I claim)")
def throughput_vs_load(
    n_fibers: int = 8,
    k: int = 16,
    slots: int = 400,
    seed: int = 707,
) -> ExperimentResult:
    """Simulated loss probability for d ∈ {1, 3, 5, k} across loads."""
    degrees = (1, 3, 5, k)
    loads = (0.5, 0.7, 0.8, 0.9, 1.0)
    loss: dict[tuple[int, float], float] = {}
    thru: dict[tuple[int, float], float] = {}
    for d in degrees:
        for load in loads:
            s = _run_point(n_fibers, k, d, load, slots, seed)
            loss[(d, load)] = s["loss_probability"]
            thru[(d, load)] = s["normalized_throughput"]

    rows = [
        tuple([f"d={d}" if d < k else f"d=k={k} (full)"]
              + [loss[(d, load)] for load in loads])
        for d in degrees
    ]
    table1 = format_table(
        ["degree"] + [f"load {load}" for load in loads],
        rows,
        title=f"Loss probability vs offered load (N={n_fibers}, k={k})",
        float_fmt=".4f",
    )
    rows2 = [
        tuple([f"d={d}" if d < k else f"d=k={k} (full)"]
              + [thru[(d, load)] for load in loads])
        for d in degrees
    ]
    table2 = format_table(
        ["degree"] + [f"load {load}" for load in loads],
        rows2,
        title="Normalized carried throughput vs offered load",
        float_fmt=".4f",
    )

    # Shape checks (who wins, by roughly what factor):
    checks = {
        "loss decreases with degree at full load": loss[(1, 1.0)]
        > loss[(3, 1.0)] >= loss[(k, 1.0)],
        "d=3 already recovers most of full range (gap < 40% of d=1's gap)": (
            loss[(3, 1.0)] - loss[(k, 1.0)]
        ) < 0.4 * max(1e-12, loss[(1, 1.0)] - loss[(k, 1.0)]),
        "d=5 within 1.5 loss points of full range at load 0.9": (
            loss[(5, 0.9)] - loss[(k, 0.9)]
        ) < 0.015,
        "throughput ordering matches loss ordering": thru[(1, 1.0)]
        < thru[(3, 1.0)] <= thru[(k, 1.0)] + 1e-9,
    }
    notes = (
        "Paper claim (via refs [11][13][14]): limited conversion with very "
        "small d performs close to full conversion.",
    )
    return ExperimentResult(
        "PERF-D", "Loss vs load across conversion degrees", (table1, table2),
        checks, notes,
    )
