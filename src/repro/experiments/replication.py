"""Multi-seed replication of simulation experiments.

Single simulation runs carry Monte-Carlo noise; the replication harness
re-runs a configuration over independent seeds and reports the mean and a
Student-t confidence interval for each summary metric, so EXPERIMENTS.md can
state paper-vs-measured with error bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.sim.results import SimulationResult, mean_confidence_interval
from repro.util.validation import check_positive_int

__all__ = ["ReplicatedMetric", "ReplicationReport", "replicate"]


@dataclass(frozen=True)
class ReplicatedMetric:
    """Mean and confidence interval of one metric across seeds."""

    name: str
    mean: float
    lo: float
    hi: float
    n_seeds: int

    @property
    def half_width(self) -> float:
        """Half-width of the confidence interval."""
        return (self.hi - self.lo) / 2.0


@dataclass(frozen=True)
class ReplicationReport:
    """All replicated metrics of one configuration."""

    metrics: Mapping[str, ReplicatedMetric]
    results: tuple[SimulationResult, ...]

    def __getitem__(self, name: str) -> ReplicatedMetric:
        return self.metrics[name]

    def rows(self, names: Sequence[str]) -> list[tuple[str, float, float, float]]:
        """Table rows ``(name, mean, lo, hi)`` for the given metrics."""
        return [
            (n, self.metrics[n].mean, self.metrics[n].lo, self.metrics[n].hi)
            for n in names
        ]


def replicate(
    run: Callable[[int], SimulationResult],
    seeds: Sequence[int] | int = 5,
    confidence: float = 0.95,
) -> ReplicationReport:
    """Run ``run(seed)`` per seed and aggregate the summary metrics.

    ``seeds`` may be an explicit sequence or a count (seeds ``0..n-1``).
    """
    if isinstance(seeds, int):
        check_positive_int(seeds, "seeds")
        seeds = list(range(seeds))
    results = [run(int(seed)) for seed in seeds]
    if not results:
        raise ValueError("at least one seed required")
    names = results[0].summary().keys()
    metrics: dict[str, ReplicatedMetric] = {}
    for name in names:
        samples = np.array([r.summary()[name] for r in results], dtype=float)
        mean, lo, hi = mean_confidence_interval(samples, confidence)
        metrics[name] = ReplicatedMetric(
            name=name, mean=mean, lo=lo, hi=hi, n_seeds=len(results)
        )
    return ReplicationReport(metrics=metrics, results=tuple(results))
