"""Grant-policy fairness experiment (paper Section III remark, refs [7][8]).

"If there are more than one packets on this input wavelength, to ensure
fairness, a random selecting or a round-robin scheduling procedure should be
adopted."  This experiment quantifies that: under a persistent hotspot, the
Jain fairness index across input fibers for fixed-priority vs random vs
round-robin grant policies.
"""

from __future__ import annotations

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.policies import FixedPriorityPolicy, RandomPolicy, RoundRobinPolicy
from repro.experiments.registry import ExperimentResult, experiment
from repro.graphs.conversion import CircularConversion
from repro.sim.engine import SlottedSimulator
from repro.sim.traffic import BernoulliTraffic, HotspotDestinations
from repro.util.tables import format_table

__all__ = ["fairness"]


@experiment("FAIR", "Grant-policy fairness under hotspot traffic (Sec. III)")
def fairness(
    n_fibers: int = 8,
    k: int = 8,
    slots: int = 500,
    seed: int = 909,
) -> ExperimentResult:
    """Jain index across input fibers for the three grant policies."""
    scheme = CircularConversion(k, 1, 1)
    results = {}
    for name, policy in (
        ("fixed-priority", FixedPriorityPolicy()),
        ("random", RandomPolicy(seed)),
        ("round-robin", RoundRobinPolicy()),
    ):
        traffic = BernoulliTraffic(
            n_fibers,
            k,
            load=0.9,
            destinations=HotspotDestinations(n_fibers, hot_fiber=0, hot_fraction=0.7),
        )
        sim = SlottedSimulator(
            n_fibers,
            scheme,
            BreakFirstAvailableScheduler(),
            traffic,
            policy=policy,
            seed=seed,
        )
        res = sim.run(slots, warmup=50)
        results[name] = res.summary()

    rows = [
        (
            name,
            s["input_fairness"],
            s["loss_probability"],
            s["acceptance_ratio"],
        )
        for name, s in results.items()
    ]
    table = format_table(
        ["grant policy", "Jain fairness", "loss prob", "acceptance"],
        rows,
        title=f"Hotspot traffic (70% to fiber 0), N={n_fibers}, k={k}, d=3, load 0.9",
        float_fmt=".4f",
    )
    checks = {
        "round-robin fairer than fixed priority": results["round-robin"][
            "input_fairness"
        ]
        > results["fixed-priority"]["input_fairness"],
        "random fairer than fixed priority": results["random"]["input_fairness"]
        > results["fixed-priority"]["input_fairness"],
        "policies do not change total throughput (within 2%)": abs(
            results["round-robin"]["acceptance_ratio"]
            - results["fixed-priority"]["acceptance_ratio"]
        )
        < 0.02,
    }
    return ExperimentResult(
        "FAIR", "Grant-policy fairness", (table,), checks
    )
