"""Run experiments and render a combined report."""

from __future__ import annotations

from typing import Iterable, TextIO

from repro.experiments.registry import (
    ExperimentResult,
    all_experiments,
    run_experiment,
)

__all__ = ["run_all", "render_report"]


def run_all(
    experiment_ids: Iterable[str] | None = None,
) -> list[ExperimentResult]:
    """Run the given experiments (default: every registered one), in order."""
    ids = list(experiment_ids) if experiment_ids else [
        eid for eid, _title in all_experiments()
    ]
    return [run_experiment(eid) for eid in ids]


def render_report(results: Iterable[ExperimentResult], out: TextIO) -> bool:
    """Write each experiment's report block; returns overall pass/fail."""
    results = list(results)
    all_ok = True
    for res in results:
        out.write(res.render())
        out.write("\n\n")
        all_ok &= res.passed
    passed = sum(1 for r in results if r.passed)
    out.write(
        f"{passed}/{len(results)} experiments passed all checks\n"
    )
    return all_ok
