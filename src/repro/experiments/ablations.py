"""Ablation experiments on design choices (``ABLATE``).

Two implementation-level questions the paper leaves open are measured:

* **Which maximum matching?**  FA/BFA, Glover and Hopcroft–Karp all return
  *maximum* matchings, but different ones.  The conversion offset a grant
  uses (``channel − wavelength``, canonical in ``[-e, f]``) is a proxy for
  converter stress: wider retuning costs more optical signal-to-noise
  margin.  The ablation compares mean |offset| across solvers.
* **Break early-exit.**  ``bfa_fast`` stops trying breaks once a candidate
  grants everything grantable.  The ablation measures how many of the ``d``
  reduced graphs are actually solved per call, across loads — the saving
  the early exit buys over Table 3's literal "do for all right side
  vertices adjacent to a_i".
"""

from __future__ import annotations

import numpy as np

from repro.analysis.instances import random_circular_instance
from repro.core.baseline import HopcroftKarpScheduler
from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.min_stress import MinStressScheduler
from repro.experiments.registry import ExperimentResult, experiment
from repro.types import ScheduleResult
from repro.util.intervals import canonical_signed_residue
from repro.util.rng import make_rng
from repro.util.tables import format_table

__all__ = ["ablations"]


def _mean_abs_offset(rg, result: ScheduleResult) -> float:
    scheme = rg.scheme
    offsets = []
    for g in result.grants:
        t = canonical_signed_residue(
            g.channel - g.wavelength, scheme.k, -scheme.e, scheme.f
        )
        assert t is not None  # validated schedules are always in range
        offsets.append(abs(t))
    return float(np.mean(offsets)) if offsets else 0.0


@experiment("ABLATE", "Design-choice ablations: matching choice & early exit")
def ablations(trials: int = 120, seed: int = 5555) -> ExperimentResult:
    """Measure conversion-offset usage per solver and break early-exit."""
    rng = make_rng(seed)
    k, e, f = 16, 2, 2
    d = e + f + 1
    bfa = BreakFirstAvailableScheduler()
    hk = HopcroftKarpScheduler()

    min_stress = MinStressScheduler()
    rows_offset = []
    rows_exit = []
    checks: dict[str, bool] = {}
    for load in (0.5, 0.9):
        instances = [
            random_circular_instance(k, e, f, load=load, rng=rng)
            for _ in range(trials)
        ]
        bfa_results = [bfa.schedule(rg) for rg in instances]
        hk_results = [hk.schedule(rg) for rg in instances]
        ms_results = [min_stress.schedule(rg) for rg in instances]
        bfa_off = float(
            np.mean([_mean_abs_offset(rg, r) for rg, r in zip(instances, bfa_results)])
        )
        hk_off = float(
            np.mean([_mean_abs_offset(rg, r) for rg, r in zip(instances, hk_results)])
        )
        ms_off = float(
            np.mean([_mean_abs_offset(rg, r) for rg, r in zip(instances, ms_results)])
        )
        rows_offset.append((load, bfa_off, hk_off, ms_off, e))
        checks[f"offsets within converter reach (load {load})"] = (
            bfa_off <= max(e, f) and hk_off <= max(e, f)
        )
        checks[f"min-stress is maximum and uses the least retuning (load {load})"] = (
            all(
                m.n_granted == h.n_granted
                for m, h in zip(ms_results, hk_results)
            )
            and ms_off <= min(bfa_off, hk_off) + 1e-12
        )
        tried = [r.stats["reduced_graphs"] for r in bfa_results]
        rows_exit.append(
            (load, d, float(np.mean(tried)), int(np.max(tried)))
        )
        checks[f"early exit never exceeds d breaks (load {load})"] = (
            max(tried) <= d
        )
    # At light load a perfect matching is usually found early; the mean
    # number of breaks tried should then be well below d.
    checks["early exit saves work at light load"] = rows_exit[0][2] < d

    table1 = format_table(
        ["load", "BFA mean |offset|", "Hopcroft-Karp mean |offset|",
         "min-stress mean |offset|", "max reach e=f"],
        rows_offset,
        title=f"Conversion-offset usage among maximum matchings (k={k}, d={d})",
        float_fmt=".3f",
    )
    table2 = format_table(
        ["load", "d (max breaks)", "mean breaks tried", "max breaks tried"],
        rows_exit,
        title="BFA early exit: reduced graphs actually solved per call",
        float_fmt=".3f",
    )
    notes = (
        "All solvers return maximum matchings; they differ only in which "
        "one, and hence in converter stress and work per call.",
    )
    return ExperimentResult(
        "ABLATE", "Design-choice ablations", (table1, table2), checks, notes
    )
