"""Experiment harness: one entry per paper figure, table and quantitative
claim (see DESIGN.md for the index).  Run everything with
``python -m repro.experiments`` or a single experiment with
``python -m repro.experiments FIG3 APPROX``."""

from repro.experiments.registry import (
    ExperimentResult,
    all_experiments,
    get_experiment,
    run_experiment,
)

# Importing the modules registers their experiments.
from repro.experiments import (  # noqa: F401  (import for side effect)
    ablations,
    approx_gap,
    asynchronous,
    example_intro,
    extensions,
    fairness,
    figures,
    hardware,
    multislot,
    qos,
    scaling,
    size_sweep,
    tables_algos,
    throughput,
    traffic_studies,
)

__all__ = [
    "ExperimentResult",
    "all_experiments",
    "get_experiment",
    "run_experiment",
]
