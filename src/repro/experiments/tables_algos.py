"""Validation of the paper's three algorithms (Tables 1–3, Theorems 1–2).

The paper's tables are pseudocode, so the reproduced artifact is the
algorithms' *optimality*: on randomized sweeps over ``(k, d, load)``, each
algorithm's matching cardinality must equal the Hopcroft–Karp optimum on the
same request graph — with and without occupied channels (Section V).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.instances import (
    random_circular_instance,
    random_noncircular_instance,
)
from repro.core.baseline import GloverScheduler, HopcroftKarpScheduler
from repro.core.break_first_available import (
    BreakFirstAvailableReferenceScheduler,
    BreakFirstAvailableScheduler,
)
from repro.core.first_available import (
    FirstAvailableReferenceScheduler,
    FirstAvailableScheduler,
)
from repro.experiments.registry import ExperimentResult, experiment
from repro.graphs.convex import ConvexInstance
from repro.graphs.hopcroft_karp import hopcroft_karp
from repro.util.rng import make_rng
from repro.util.tables import format_table

__all__ = ["tab1", "tab2", "tab3"]

_SWEEP = (
    # (k, e, f, load, occupied_fraction)
    (4, 1, 1, 0.5, 0.0),
    (8, 1, 1, 0.8, 0.0),
    (8, 2, 2, 0.8, 0.0),
    (16, 1, 1, 1.0, 0.0),
    (16, 2, 2, 0.9, 0.2),
    (32, 3, 3, 0.8, 0.0),
    (32, 1, 2, 1.0, 0.3),  # asymmetric e != f
    (64, 2, 1, 0.7, 0.1),
)


@experiment("TAB1", "Glover's algorithm on convex bipartite graphs (paper Table 1)")
def tab1(trials: int = 60, seed: int = 20030422) -> ExperimentResult:
    """Random convex instances (interval form): Glover == Hopcroft–Karp."""
    rng = make_rng(seed)
    rows = []
    all_ok = True
    for n_left, n_right in ((5, 5), (12, 8), (30, 20), (60, 40)):
        mismatches = 0
        sizes = []
        for _ in range(trials):
            intervals = []
            for _a in range(n_left):
                lo = int(rng.integers(n_right))
                hi = min(n_right - 1, lo + int(rng.integers(1, max(2, n_right // 3))))
                intervals.append((lo, hi))
            inst = ConvexInstance(tuple(intervals), n_right)
            got = len(inst.solve())
            opt = len(hopcroft_karp(inst.to_graph()))
            sizes.append(got)
            if got != opt:
                mismatches += 1
        ok = mismatches == 0
        all_ok &= ok
        rows.append((n_left, n_right, trials, float(np.mean(sizes)), mismatches))
    table = format_table(
        ["n_left", "n_right", "trials", "mean |M|", "non-optimal"],
        rows,
        title="Glover (Table 1) vs Hopcroft-Karp on random convex instances",
    )
    return ExperimentResult(
        "TAB1",
        "Glover's algorithm (Table 1)",
        (table,),
        {"Glover optimal on every convex instance": all_ok},
    )


def _sweep_against_optimum(make_instance, schedulers, trials, seed):
    rng = make_rng(seed)
    hk = HopcroftKarpScheduler()
    rows = []
    all_ok = True
    for k, e, f, load, occ in _SWEEP:
        if e + f + 1 > k:
            continue
        mismatches = {s.name: 0 for s in schedulers}
        mean_opt = []
        for _ in range(trials):
            rg = make_instance(k, e, f, load=load, occupied_fraction=occ, rng=rng)
            opt = hk.schedule(rg).n_granted
            mean_opt.append(opt)
            for s in schedulers:
                if s.schedule(rg).n_granted != opt:
                    mismatches[s.name] += 1
        ok = all(v == 0 for v in mismatches.values())
        all_ok &= ok
        rows.append(
            (k, e + f + 1, load, occ, trials, float(np.mean(mean_opt)), ok)
        )
    return rows, all_ok


@experiment("TAB2", "First Available Algorithm, non-circular (paper Table 2, Thm 1)")
def tab2(trials: int = 40, seed: int = 101) -> ExperimentResult:
    """FA (fast + reference) and Glover always match the optimum on
    non-circular request graphs, across k, d, load and occupied channels."""
    schedulers = [
        FirstAvailableScheduler(),
        FirstAvailableReferenceScheduler(),
        GloverScheduler(),
    ]
    rows, all_ok = _sweep_against_optimum(
        random_noncircular_instance, schedulers, trials, seed
    )
    table = format_table(
        ["k", "d", "load", "occupied", "trials", "mean optimum", "all optimal"],
        rows,
        title="First Available vs Hopcroft-Karp (non-circular conversion)",
    )
    return ExperimentResult(
        "TAB2",
        "First Available (Table 2, Theorem 1)",
        (table,),
        {"FA optimal on every instance (Theorem 1)": all_ok},
    )


@experiment("TAB3", "Break and First Available, circular (paper Table 3, Thm 2)")
def tab3(trials: int = 40, seed: int = 202) -> ExperimentResult:
    """BFA (fast + reference) always matches the optimum on circular request
    graphs, across k, d, load and occupied channels."""
    schedulers = [
        BreakFirstAvailableScheduler(),
        BreakFirstAvailableReferenceScheduler(),
    ]
    rows, all_ok = _sweep_against_optimum(
        random_circular_instance, schedulers, trials, seed
    )
    table = format_table(
        ["k", "d", "load", "occupied", "trials", "mean optimum", "all optimal"],
        rows,
        title="Break and First Available vs Hopcroft-Karp (circular conversion)",
    )
    return ExperimentResult(
        "TAB3",
        "Break and First Available (Table 3, Theorem 2)",
        (table,),
        {"BFA optimal on every instance (Theorem 2)": all_ok},
    )
