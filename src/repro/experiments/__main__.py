"""CLI for the reproduction experiments.

Usage::

    python -m repro.experiments              # run everything
    python -m repro.experiments FIG3 APPROX  # run selected experiments
    python -m repro.experiments --list       # list experiment ids
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import all_experiments
from repro.experiments.report import render_report, run_all


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the figures, tables and claims of Zhang & Yang "
        "(IPDPS 2003).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the report to FILE (e.g. for EXPERIMENTS.md records)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for eid, title in all_experiments():
            print(f"{eid:10s} {title}")
        return 0

    results = run_all(args.experiments or None)
    ok = render_report(results, sys.stdout)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            render_report(results, fh)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
