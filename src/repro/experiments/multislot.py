"""Multi-slot connections / optical burst switching (paper Section V).

Two reproduced behaviours:

* scheduling around *occupied* output channels (non-disturb / burst
  switching) still yields maximum matchings on the reduced request graph
  (validated against Hopcroft–Karp with availability masks);
* simulated loss with multi-slot connections, disturb vs non-disturb:
  allowing reassignment of ongoing connections recovers throughput.
"""

from __future__ import annotations

from repro.analysis.instances import random_circular_instance
from repro.core.baseline import HopcroftKarpScheduler
from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.experiments.registry import ExperimentResult, experiment
from repro.graphs.conversion import CircularConversion
from repro.sim.duration import GeometricDuration
from repro.sim.engine import SlottedSimulator
from repro.sim.traffic import BernoulliTraffic
from repro.util.rng import make_rng
from repro.util.tables import format_table

__all__ = ["multislot"]


@experiment("MULTI", "Occupied channels & multi-slot connections (paper Sec. V)")
def multislot(
    trials: int = 120,
    slots: int = 300,
    seed: int = 808,
) -> ExperimentResult:
    """Section-V extension: occupied-channel optimality + disturb-mode gain."""
    rng = make_rng(seed)
    hk = HopcroftKarpScheduler()
    bfa = BreakFirstAvailableScheduler()

    # Part 1: occupied channels never break optimality.
    mismatches = 0
    for _ in range(trials):
        rg = random_circular_instance(
            16, 1, 1, load=0.9, occupied_fraction=0.4, rng=rng
        )
        if bfa.schedule(rg).n_granted != hk.schedule(rg).n_granted:
            mismatches += 1

    # Part 2: simulated multi-slot traffic, disturb vs non-disturb.
    n_fibers, k = 6, 12
    scheme = CircularConversion(k, 1, 1)
    rows = []
    gains = []
    for mean_dur in (2.0, 4.0, 8.0):
        losses = {}
        for disturb in (False, True):
            traffic = BernoulliTraffic(
                n_fibers, k, load=0.35, durations=GeometricDuration(mean_dur)
            )
            sim = SlottedSimulator(
                n_fibers, scheme, bfa, traffic, disturb=disturb, seed=seed
            )
            losses[disturb] = sim.run(slots, warmup=50).metrics.loss_probability
        gains.append(losses[False] - losses[True])
        rows.append((mean_dur, losses[False], losses[True], losses[False] - losses[True]))
    table = format_table(
        ["mean duration", "loss (burst/non-disturb)", "loss (disturb)", "gain"],
        rows,
        title=f"Multi-slot connections, N={n_fibers}, k={k}, d=3, load 0.35",
        float_fmt=".4f",
    )
    checks = {
        "BFA optimal with occupied channels (Sec. V)": mismatches == 0,
        "disturb mode never loses to burst mode": all(g >= -0.005 for g in gains),
        "disturb mode helps for long connections": gains[-1] > 0.0,
    }
    return ExperimentResult(
        "MULTI", "Section-V extensions", (table,), checks
    )
