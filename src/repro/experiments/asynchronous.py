"""Asynchronous wavelength-routing experiment (``ASYNC``).

Reproduces the operating regime the paper contrasts itself against
(Section I, refs [11][13][14]): FCFS admission under Poisson arrivals with
exponential holding times.  Checks:

* at full range conversion the measured blocking equals the Erlang-B
  formula (the output fiber is an M/M/k/k queue) — an exact end-to-end
  validation of the event-driven engine;
* blocking falls monotonically with the conversion degree, with small ``d``
  close to full range — the same story as the synchronous ``PERF-D``;
* first-fit assignment does not trail random assignment (wavelength-routing
  folklore, measured here).
"""

from __future__ import annotations

from repro.analysis.analytical import erlang_b
from repro.experiments.registry import ExperimentResult, experiment
from repro.graphs.conversion import CircularConversion, FullRangeConversion
from repro.sim.asynchronous import AsyncWavelengthRouter
from repro.util.tables import format_table

__all__ = ["async_wavelength_routing"]


@experiment("ASYNC", "Asynchronous FCFS wavelength routing (Sec. I contrast)")
def async_wavelength_routing(
    n_fibers: int = 4,
    k: int = 12,
    erlangs: float = 9.0,
    sim_time: float = 4000.0,
    seed: int = 4444,
) -> ExperimentResult:
    """Blocking probability vs conversion degree under FCFS admission."""
    arrival_rate = erlangs  # holding time 1.0 → offered erlangs per fiber
    rows = []
    blocking: dict[object, float] = {}
    for d in (1, 3, 5, k):
        scheme = (
            FullRangeConversion(k)
            if d >= k
            else CircularConversion(k, (d - 1) // 2, d // 2)
        )
        router = AsyncWavelengthRouter(
            n_fibers, scheme, arrival_rate, policy="first-fit", seed=seed
        )
        res = router.run(sim_time, warmup=sim_time / 10)
        blocking[d] = res.blocking_probability
        rows.append(
            (
                f"d=k={k} (full)" if d >= k else f"d={d}",
                res.blocking_probability,
                res.utilization,
                res.carried_erlangs_per_fiber,
            )
        )
    analytic = erlang_b(erlangs, k)

    # Assignment-policy comparison at d=3.
    policy_rows = []
    policy_blocking = {}
    for policy in ("first-fit", "last-fit", "random"):
        router = AsyncWavelengthRouter(
            n_fibers,
            CircularConversion(k, 1, 1),
            arrival_rate,
            policy=policy,
            seed=seed,
        )
        res = router.run(sim_time, warmup=sim_time / 10)
        policy_blocking[policy] = res.blocking_probability
        policy_rows.append((policy, res.blocking_probability, res.utilization))

    table1 = format_table(
        ["degree", "blocking prob", "utilization", "carried erlangs/fiber"],
        rows,
        title=(
            f"Asynchronous FCFS, N={n_fibers}, k={k}, offered {erlangs} "
            f"erlangs/fiber (Erlang-B at full range: {analytic:.4f})"
        ),
        float_fmt=".4f",
    )
    table2 = format_table(
        ["assignment policy", "blocking prob", "utilization"],
        policy_rows,
        title="Channel-assignment policies at d=3",
        float_fmt=".4f",
    )
    checks = {
        "full-range blocking matches Erlang B": abs(blocking[k] - analytic)
        < 0.01,
        "blocking decreases with conversion degree": blocking[1]
        > blocking[3] >= blocking[k],
        "d=5 recovers most of the no-conversion gap (> 60%)": (
            blocking[5] - blocking[k]
        )
        < 0.4 * (blocking[1] - blocking[k]),
        "first-fit no worse than random (within noise)": policy_blocking[
            "first-fit"
        ]
        <= policy_blocking["random"] + 0.01,
    }
    notes = (
        "Paper Sec. I: asynchronous arrivals need no scheduling algorithm — "
        "FCFS admission suffices; this is the regime of refs [11][13][14].",
    )
    return ExperimentResult(
        "ASYNC", "Asynchronous wavelength routing", (table1, table2), checks, notes
    )
