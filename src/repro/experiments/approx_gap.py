"""Approximation-quality experiment (paper Theorem 3, Corollary 1).

Measures the matching deficit of the single-break approximation against the
optimum, over random circular instances, for every break-position policy.
Paper values under test: deficit ≤ ``max(δ-1, d-δ)`` always; the shortest
edge gives deficit ≤ ``(d-1)/2`` — at most 1 for d = 3 and at most 2 for
d = 5.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import corollary1_bound
from repro.analysis.instances import random_circular_instance
from repro.core.approx import SingleBreakScheduler
from repro.core.baseline import HopcroftKarpScheduler
from repro.experiments.registry import ExperimentResult, experiment
from repro.util.rng import make_rng
from repro.util.tables import format_table

__all__ = ["approx_gap"]


@experiment("APPROX", "Single-break approximation deficit (Thm 3 / Cor 1)")
def approx_gap(trials: int = 150, seed: int = 303) -> ExperimentResult:
    """Sweep d ∈ {3, 5, 7} × policies; report max/mean deficit vs bounds."""
    rng = make_rng(seed)
    hk = HopcroftKarpScheduler()
    rows = []
    checks: dict[str, bool] = {}
    for k, e, f in ((12, 1, 1), (16, 2, 2), (24, 3, 3)):
        d = e + f + 1
        instances = [
            random_circular_instance(k, e, f, load=1.0, rng=rng)
            for _ in range(trials)
        ]
        optima = [hk.schedule(rg).n_granted for rg in instances]
        for policy in ("shortest", "minus-end", "plus-end"):
            sched = SingleBreakScheduler(policy)
            gaps = []
            bound_ok = True
            for rg, opt in zip(instances, optima):
                res = sched.schedule(rg)
                gap = opt - res.n_granted
                gaps.append(gap)
                if gap > res.stats["deficit_bound"]:
                    bound_ok = False
            worst = int(np.max(gaps))
            rows.append(
                (k, d, policy, trials, worst, float(np.mean(gaps)), bound_ok)
            )
            checks[f"Theorem-3 bound holds (k={k}, d={d}, {policy})"] = bound_ok
            if policy == "shortest":
                checks[
                    f"shortest-edge deficit <= Corollary-1 bound {corollary1_bound(d)} (d={d})"
                ] = worst <= corollary1_bound(d)
    table = format_table(
        ["k", "d", "break policy", "trials", "max deficit", "mean deficit", "≤ Thm-3 bound"],
        rows,
        title="Single-break approximation vs maximum matching (load 1.0)",
    )

    # Tightness: the adversarial family meets Corollary 1's bound exactly,
    # so the paper's analysis is not improvable.
    from repro.analysis.adversarial import tight_single_break_instance

    tight_rows = []
    for a in (1, 2, 3):
        rg = tight_single_break_instance(a)
        d = rg.scheme.degree
        opt = hk.schedule(rg).n_granted
        got = SingleBreakScheduler("shortest").schedule(rg).n_granted
        tight_rows.append((rg.k, d, opt, got, opt - got, corollary1_bound(d)))
        checks[f"Corollary-1 bound is tight at d={d}"] = (
            opt - got == corollary1_bound(d)
        )
    table2 = format_table(
        ["k", "d", "optimum", "single-break", "deficit", "Cor-1 bound"],
        tight_rows,
        title="Adversarial family: the bound is achieved exactly",
    )
    notes = (
        "Paper: shortest-edge deficit ≤ (d-1)/2, i.e. ≤1 for d=3 and ≤2 for d=5.",
        "The adversarial instances show the bound cannot be tightened.",
    )
    return ExperimentResult(
        "APPROX", "Approximation deficit (Sec. IV-C)", (table, table2), checks, notes
    )
