"""Complexity-claim experiments (paper Sections III–IV conclusions).

Three claims are measured with wall-clock timings on identical instances:

* ``CPLX-K`` — fast FA grows linearly in ``k``; fast BFA linearly in ``d·k``.
* ``CPLX-N`` — per-output scheduling cost is flat in the interconnect size
  ``N`` (only the request counts, not the graph, depend on ``N``), while the
  global Hopcroft–Karp baseline on the whole-interconnect request graph
  grows superlinearly.
* ``CPLX-HK`` — on one output's request graph, FA/BFA vs Hopcroft–Karp.
"""

from __future__ import annotations

import time

from repro.analysis.instances import (
    random_circular_instance,
    random_noncircular_instance,
    random_request_vector,
)
from repro.core.baseline import HopcroftKarpScheduler
from repro.core.break_first_available import bfa_fast
from repro.core.first_available import first_available_fast
from repro.experiments.registry import ExperimentResult, experiment
from repro.graphs.conversion import CircularConversion
from repro.graphs.request_graph import RequestGraph
from repro.util.rng import make_rng
from repro.util.tables import format_table

__all__ = ["scaling_k", "scaling_n"]


def _time_call(fn, *args, repeats: int = 5) -> float:
    """Best-of-``repeats`` wall time in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


@experiment("CPLX-K", "Runtime scaling in k and d (O(k) FA, O(dk) BFA)")
def scaling_k(seed: int = 404, repeats: int = 5) -> ExperimentResult:
    """Time fast FA over k and fast BFA over (k, d); check near-linear
    growth (doubling k should well under-quadruple the time)."""
    rng = make_rng(seed)
    rows = []
    fa_times = {}
    for k in (256, 512, 1024, 2048, 4096):
        vec = random_request_vector(k, 16, 0.9, rng)
        avail = [True] * k
        t = _time_call(first_available_fast, vec, avail, 2, 2, repeats=repeats)
        fa_times[k] = t
        rows.append(("FA", k, 5, t * 1e6))
    bfa_times = {}
    for k, d in ((256, 3), (512, 3), (1024, 3), (1024, 5), (1024, 9), (1024, 17)):
        e = (d - 1) // 2
        f = d - 1 - e
        vec = random_request_vector(k, 16, 0.9, rng)
        avail = [True] * k
        t = _time_call(bfa_fast, vec, avail, e, f, repeats=repeats)
        bfa_times[(k, d)] = t
        rows.append(("BFA", k, d, t * 1e6))
    table = format_table(
        ["algorithm", "k", "d", "time (µs)"],
        rows,
        title="Fast scheduler runtime vs k and d",
    )
    # Linearity checks with generous slack (Python constant factors wobble).
    checks = {
        "FA: 8x k costs < 24x time": fa_times[2048] < 24 * fa_times[256],
        "BFA: 4x k costs < 12x time (d=3)": bfa_times[(1024, 3)]
        < 12 * bfa_times[(256, 3)],
        "BFA: ~5.7x d costs < 17x time (k=1024)": bfa_times[(1024, 17)]
        < 17 * bfa_times[(1024, 3)],
    }
    return ExperimentResult(
        "CPLX-K", "Runtime scaling in k and d", (table,), checks
    )


@experiment("CPLX-N", "Independence of interconnect size N (distributed claim)")
def scaling_n(seed: int = 505, repeats: int = 3) -> ExperimentResult:
    """Per-output BFA time stays flat as N grows (request vectors saturate),
    while global Hopcroft–Karp over all N·k requests grows superlinearly."""
    rng = make_rng(seed)
    k, e, f = 32, 1, 1
    scheme = CircularConversion(k, e, f)
    hk = HopcroftKarpScheduler()
    rows = []
    per_output_times = {}
    global_times = {}
    for n_fibers in (4, 16, 64, 256):
        # One output fiber's view: request counts grow with N only until
        # they saturate around `load`, so per-output work is flat.
        vec = random_request_vector(k, n_fibers, 0.9, rng)
        avail = [True] * k
        t = _time_call(bfa_fast, vec, avail, e, f, repeats=repeats)
        per_output_times[n_fibers] = t
        # The centralized baseline must expand all requests of all outputs.
        total_requests = 0
        t_global = 0.0
        for _o in range(n_fibers):
            vec_o = random_request_vector(k, n_fibers, 0.9, rng)
            rg = RequestGraph(scheme, vec_o)
            total_requests += rg.n_requests
            t0 = time.perf_counter()
            hk.schedule(rg)
            t_global += time.perf_counter() - t0
        global_times[n_fibers] = t_global
        rows.append(
            (n_fibers, total_requests, t * 1e6, t_global * 1e3)
        )
    table = format_table(
        ["N", "total requests", "per-output BFA (µs)", "global HK, all outputs (ms)"],
        rows,
        title="Distributed O(dk) per output vs centralized baseline, k=32, d=3",
    )
    checks = {
        "per-output time flat in N (64x N costs < 4x time)": per_output_times[256]
        < 4 * per_output_times[4],
        "global baseline grows with N (64x N costs > 16x time)": global_times[256]
        > 16 * global_times[4],
    }
    notes = (
        "The paper's point: scheduling is per-output and O(dk) regardless of N; "
        "a global matching pass costs at least linear in N·k.",
    )
    return ExperimentResult(
        "CPLX-N", "Independence of N", (table,), checks, notes
    )


@experiment("CPLX-HK", "FA/BFA vs the Hopcroft-Karp baseline [1]")
def versus_hopcroft(seed: int = 606, repeats: int = 3) -> ExperimentResult:
    """Wall-clock of the O(k)/O(dk) algorithms vs Hopcroft–Karp on identical
    request graphs (per output fiber)."""
    rng = make_rng(seed)
    hk = HopcroftKarpScheduler()
    rows = []
    speedups = []
    for k, e, f, n_fibers in ((16, 1, 1, 16), (64, 1, 1, 32), (256, 2, 2, 32)):
        rg_c = random_circular_instance(k, e, f, n_fibers=n_fibers, load=1.0, rng=rng)
        rg_n = random_noncircular_instance(k, e, f, n_fibers=n_fibers, load=1.0, rng=rng)
        t_fa = _time_call(
            first_available_fast, rg_n.request_vector, rg_n.available, e, f,
            repeats=repeats,
        )
        t_bfa = _time_call(
            bfa_fast, rg_c.request_vector, rg_c.available, e, f, repeats=repeats
        )
        t_hk_c = _time_call(hk.schedule, rg_c, repeats=repeats)
        t_hk_n = _time_call(hk.schedule, rg_n, repeats=repeats)
        speedups.append(t_hk_c / t_bfa)
        rows.append(
            (
                k,
                e + f + 1,
                rg_c.n_requests,
                t_fa * 1e6,
                t_bfa * 1e6,
                t_hk_n * 1e6,
                t_hk_c * 1e6,
                t_hk_c / t_bfa,
            )
        )
    table = format_table(
        ["k", "d", "requests", "FA (µs)", "BFA (µs)", "HK non-circ (µs)",
         "HK circ (µs)", "BFA speedup"],
        rows,
        title="Distributed algorithms vs general maximum matching (load 1.0)",
    )
    checks = {
        "BFA beats Hopcroft-Karp on every size": all(s > 1.0 for s in speedups),
    }
    return ExperimentResult(
        "CPLX-HK", "Versus the Hopcroft-Karp baseline", (table,), checks
    )
