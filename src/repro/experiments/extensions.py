"""Extension experiments beyond the paper's explicit artifacts.

* ``QOS`` — the paper's stated future work: strict-priority scheduling.
* ``ANALYT`` — exact analytical loss models at the two bracketing degrees
  (d = 1 and d = k) validating the whole simulation pipeline.
* ``BATCH`` — vectorized batch scheduling across output fibers
  (the software analogue of per-output hardware parallelism).
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.analytical import (
    full_range_loss_probability,
    loss_bounds,
    no_conversion_loss_probability,
)
from repro.core.batch import batch_first_available
from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.first_available import first_available_fast
from repro.core.full_range import FullRangeScheduler
from repro.core.priority import PriorityScheduler
from repro.experiments.registry import ExperimentResult, experiment
from repro.graphs.conversion import CircularConversion, FullRangeConversion
from repro.sim.engine import SlottedSimulator
from repro.sim.traffic import BernoulliTraffic
from repro.util.rng import make_rng
from repro.util.tables import format_table

__all__ = ["qos_priorities", "analytical_validation", "batch_vectorization"]


@experiment("QOS", "Strict-priority scheduling (the paper's future work)")
def qos_priorities(trials: int = 200, seed: int = 1111) -> ExperimentResult:
    """Two priority classes on one output fiber: high-class loss must be
    unaffected by low-class load; per-class schedules stay maximal."""
    scheme = CircularConversion(16, 1, 1)
    prio = PriorityScheduler(BreakFirstAvailableScheduler())
    rows = []
    checks: dict[str, bool] = {}
    high_only_loss = None
    # The high-priority workload must be the *same* across low-load settings
    # for the independence check to be meaningful: regenerate it from a
    # fixed stream, with a separate stream for the low class.
    for low_load in (0.0, 0.4, 0.8):
        high_rng = make_rng(seed)
        low_rng = make_rng(seed + 1)
        high_dropped = low_dropped = high_total = low_total = 0
        for _ in range(trials):
            high = high_rng.binomial(16, 0.5 / 16, size=16)
            low = low_rng.binomial(16, low_load / 16 + 1e-12, size=16)
            sched = prio.schedule(scheme, [high.tolist(), low.tolist()])
            high_total += int(high.sum())
            low_total += int(low.sum())
            high_dropped += sched.per_class[0].n_rejected
            low_dropped += sched.per_class[1].n_rejected
        high_loss = high_dropped / high_total if high_total else 0.0
        low_loss = low_dropped / low_total if low_total else 0.0
        if low_load == 0.0:
            high_only_loss = high_loss
        rows.append((low_load, high_loss, low_loss))
    assert high_only_loss is not None
    checks["high-priority loss independent of low-priority load"] = all(
        abs(r[1] - high_only_loss) < 1e-12 for r in rows
    )
    checks["low-priority class bears the contention"] = rows[-1][2] > rows[-1][1]
    table = format_table(
        ["low-class load", "high-class loss", "low-class loss"],
        rows,
        title="Strict two-class priority, k=16, d=3, high-class load 0.5",
        float_fmt=".4f",
    )

    # End-to-end: the same behaviour through the full simulator stack
    # (traffic classes → distributed layering → per-class metrics).
    from repro.sim.engine import SlottedSimulator
    from repro.sim.traffic import BernoulliTraffic

    sim = SlottedSimulator(
        4,
        scheme,
        BreakFirstAvailableScheduler(),
        BernoulliTraffic(4, 16, load=0.95, priority_weights=[0.3, 0.7]),
        seed=seed,
    )
    sim_loss = sim.run(250, warmup=30).metrics.loss_by_class()
    table2 = format_table(
        ["QoS class", "simulated loss"],
        sorted(sim_loss.items()),
        title="Simulated 4×4 switch, k=16, d=3, load 0.95, classes 30%/70%",
        float_fmt=".4f",
    )
    checks["simulated high class loses far less than low class"] = (
        sim_loss[0] < 0.2 * max(sim_loss[1], 1e-9)
    )

    notes = (
        "Paper conclusion: 'Interesting future work may include incorporating "
        "different QoS requirements, such as different priorities'.",
    )
    return ExperimentResult(
        "QOS", "Priority scheduling", (table, table2), checks, notes
    )


@experiment("ANALYT", "Analytical loss models vs simulation (exact at d=1, d=k)")
def analytical_validation(
    n_fibers: int = 8, k: int = 12, slots: int = 600, seed: int = 2222
) -> ExperimentResult:
    """Simulated loss must match the exact closed forms at the bracketing
    degrees and stay inside the bracket in between."""
    rows = []
    checks: dict[str, bool] = {}
    for load in (0.6, 0.9):
        analytic_full = full_range_loss_probability(n_fibers, k, load)
        analytic_none = no_conversion_loss_probability(n_fibers, load)

        sim_full = SlottedSimulator(
            n_fibers,
            FullRangeConversion(k),
            FullRangeScheduler(),
            BernoulliTraffic(n_fibers, k, load),
            seed=seed,
        ).run(slots, warmup=30).metrics.loss_probability
        sim_none = SlottedSimulator(
            n_fibers,
            CircularConversion(k, 0, 0),
            BreakFirstAvailableScheduler(),
            BernoulliTraffic(n_fibers, k, load),
            seed=seed,
        ).run(slots, warmup=30).metrics.loss_probability
        sim_d3 = SlottedSimulator(
            n_fibers,
            CircularConversion(k, 1, 1),
            BreakFirstAvailableScheduler(),
            BernoulliTraffic(n_fibers, k, load),
            seed=seed,
        ).run(slots, warmup=30).metrics.loss_probability

        lo, hi = loss_bounds(n_fibers, k, load)
        rows.append((load, "d=1", analytic_none, sim_none))
        rows.append((load, "d=3", float("nan"), sim_d3))
        rows.append((load, f"d=k={k}", analytic_full, sim_full))
        checks[f"simulated d=k matches closed form (load {load})"] = (
            abs(sim_full - analytic_full) < 0.02
        )
        checks[f"simulated d=1 matches closed form (load {load})"] = (
            abs(sim_none - analytic_none) < 0.02
        )
        checks[f"simulated d=3 inside the analytic bracket (load {load})"] = (
            lo - 0.01 <= sim_d3 <= hi + 0.01
        )
    table = format_table(
        ["load", "degree", "analytical loss", "simulated loss"],
        rows,
        title=f"Analytical vs simulated loss, N={n_fibers}, k={k}",
        float_fmt=".4f",
    )
    return ExperimentResult(
        "ANALYT", "Analytical validation", (table,), checks
    )


@experiment("BATCH", "Vectorized batch scheduling across output fibers")
def batch_vectorization(
    n_outputs: int = 256, k: int = 64, seed: int = 3333
) -> ExperimentResult:
    """NumPy-vectorized FA over M outputs equals the per-output scalar pass
    and is faster for large M (the software analogue of the paper's
    per-output hardware parallelism)."""
    rng = make_rng(seed)
    req = rng.binomial(16, 0.9 / 16, size=(n_outputs, k))
    avail = rng.random((n_outputs, k)) > 0.1
    e = f = 2

    t0 = time.perf_counter()
    assign = batch_first_available(req, avail, e, f)
    t_batch = time.perf_counter() - t0

    t0 = time.perf_counter()
    scalar_sizes = []
    for m in range(n_outputs):
        grants = first_available_fast(
            req[m].tolist(), avail[m].tolist(), e, f
        )
        scalar_sizes.append(len(grants))
    t_scalar = time.perf_counter() - t0

    batch_sizes = (assign >= 0).sum(axis=1)
    identical = bool(np.array_equal(batch_sizes, np.asarray(scalar_sizes)))
    speedup = t_scalar / t_batch

    # Circular counterpart: batch BFA vs per-row bfa_fast at larger M (the
    # heavier sweep needs more rows to amortize; crossover is ~M=256).
    from repro.core.batch_bfa import batch_break_first_available
    from repro.core.break_first_available import bfa_fast

    m_bfa = max(n_outputs, 1024)
    req_c = rng.binomial(16, 0.9 / 16, size=(m_bfa, k))
    avail_c = rng.random((m_bfa, k)) > 0.1
    t0 = time.perf_counter()
    assign_c = batch_break_first_available(req_c, avail_c, e, f)
    t_batch_c = time.perf_counter() - t0
    t0 = time.perf_counter()
    scalar_c = []
    for m in range(m_bfa):
        grants, _ = bfa_fast(req_c[m].tolist(), avail_c[m].tolist(), e, f)
        scalar_c.append(len(grants))
    t_scalar_c = time.perf_counter() - t0
    identical_c = bool(
        np.array_equal((assign_c >= 0).sum(axis=1), np.asarray(scalar_c))
    )
    speedup_c = t_scalar_c / t_batch_c

    table = format_table(
        ["algorithm", "outputs", "k", "scalar (ms)", "vectorized (ms)",
         "speedup", "identical"],
        [
            ("FA", n_outputs, k, t_scalar * 1e3, t_batch * 1e3, speedup, identical),
            ("BFA", m_bfa, k, t_scalar_c * 1e3, t_batch_c * 1e3, speedup_c,
             identical_c),
        ],
        title="Batch scheduling across output fibers (load 0.9, 10% occupied)",
    )
    # Only the correctness checks gate the experiment: wall-clock speedups
    # depend on the machine (BLAS/NumPy build, core count, load) and a
    # speedup < 1 is a perf observation, not a reproduction failure.  The
    # measured ratios are recorded as notes instead.
    checks = {
        "vectorized FA grants identical to scalar": identical,
        "vectorized BFA grants identical to scalar": identical_c,
    }
    notes = (
        f"[non-gating] vectorized FA speedup at M={n_outputs}: "
        f"{speedup:.2f}x (>1 expected on typical machines)",
        f"[non-gating] vectorized BFA speedup at M={m_bfa}: "
        f"{speedup_c:.2f}x (machine-dependent; crossover is near M=1024)",
    )
    return ExperimentResult(
        "BATCH", "Vectorized batch scheduling", (table,), checks, notes
    )
