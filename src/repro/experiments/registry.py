"""Experiment registry.

Every reproduction experiment is a named callable returning an
:class:`ExperimentResult`: rendered tables (the rows/series the paper artifact
reports), a set of named pass/fail checks, and free-form notes recording
paper-vs-measured.  The registry powers the CLI and the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from repro.errors import InvalidParameterError

__all__ = [
    "ExperimentResult",
    "experiment",
    "all_experiments",
    "get_experiment",
    "run_experiment",
]


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one reproduction experiment."""

    experiment_id: str
    title: str
    tables: tuple[str, ...]
    checks: Mapping[str, bool] = field(default_factory=dict)
    notes: tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        """Whether every named check held."""
        return all(self.checks.values())

    def render(self) -> str:
        """Human-readable report block."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for table in self.tables:
            lines.append(table)
            lines.append("")
        if self.checks:
            lines.append("checks:")
            for name, ok in self.checks.items():
                lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


ExperimentFn = Callable[..., ExperimentResult]

_REGISTRY: dict[str, tuple[str, ExperimentFn]] = {}


def experiment(experiment_id: str, title: str) -> Callable[[ExperimentFn], ExperimentFn]:
    """Register ``fn`` as the reproduction of paper artifact ``experiment_id``."""

    def decorator(fn: ExperimentFn) -> ExperimentFn:
        if experiment_id in _REGISTRY:
            raise InvalidParameterError(
                f"experiment {experiment_id!r} registered twice"
            )
        _REGISTRY[experiment_id] = (title, fn)
        return fn

    return decorator


def all_experiments() -> Iterator[tuple[str, str]]:
    """Yield ``(experiment_id, title)`` pairs in registration order."""
    for experiment_id, (title, _fn) in _REGISTRY.items():
        yield experiment_id, title


def get_experiment(experiment_id: str) -> ExperimentFn:
    """The callable registered under ``experiment_id``."""
    try:
        return _REGISTRY[experiment_id][1]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise InvalidParameterError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run_experiment(experiment_id: str, **kwargs: object) -> ExperimentResult:
    """Run one experiment by id."""
    return get_experiment(experiment_id)(**kwargs)
