"""Additional performance studies (``PERF-TYPE``, ``PERF-BURST``).

* ``PERF-TYPE`` — the paper analyzes *two* conversion types but never
  compares their performance.  At equal nominal degree the circular scheme
  strictly dominates: the non-circular scheme's band-edge wavelengths lose
  reach (degree < d at the edges), so its loss is at least the circular
  scheme's.  Measured here with both optimal schedulers.
* ``PERF-BURST`` — loss vs burst length for small vs full conversion
  degrees under on–off traffic.  Bursts synchronize contention on a
  wavelength, which limited conversion is worst at absorbing.
"""

from __future__ import annotations

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.first_available import FirstAvailableScheduler
from repro.core.full_range import FullRangeScheduler
from repro.experiments.registry import ExperimentResult, experiment
from repro.graphs.conversion import (
    CircularConversion,
    FullRangeConversion,
    NonCircularConversion,
)
from repro.sim.engine import SlottedSimulator
from repro.sim.traffic import BernoulliTraffic, OnOffBurstyTraffic
from repro.util.tables import format_table

__all__ = ["conversion_type_comparison", "burstiness_study"]


@experiment("PERF-TYPE", "Circular vs non-circular conversion at equal degree")
def conversion_type_comparison(
    n_fibers: int = 6,
    k: int = 12,
    slots: int = 400,
    seed: int = 6666,
) -> ExperimentResult:
    """Loss of the two Section-II conversion types, same nominal degree."""
    rows = []
    checks: dict[str, bool] = {}
    for d, load in ((3, 0.9), (3, 1.0), (5, 0.9)):
        e = (d - 1) // 2
        f = d - 1 - e
        loss = {}
        for label, scheme, scheduler in (
            ("circular", CircularConversion(k, e, f), BreakFirstAvailableScheduler()),
            (
                "non-circular",
                NonCircularConversion(k, e, f),
                FirstAvailableScheduler(),
            ),
        ):
            sim = SlottedSimulator(
                n_fibers,
                scheme,
                scheduler,
                BernoulliTraffic(n_fibers, k, load),
                seed=seed,
            )
            loss[label] = sim.run(slots, warmup=slots // 10).metrics.loss_probability
        rows.append((d, load, loss["circular"], loss["non-circular"]))
        checks[f"circular no worse than non-circular (d={d}, load={load})"] = (
            loss["circular"] <= loss["non-circular"] + 0.005
        )
    table = format_table(
        ["d", "load", "loss (circular)", "loss (non-circular)"],
        rows,
        title=f"Conversion-type comparison, N={n_fibers}, k={k}",
        float_fmt=".4f",
    )
    notes = (
        "Non-circular band-edge wavelengths have reduced reach "
        "(adjacency clipped at λ0/λk-1), so circular wrap-around can only help.",
    )
    return ExperimentResult(
        "PERF-TYPE", "Conversion-type comparison", (table,), checks, notes
    )


@experiment("PERF-BURST", "Burstiness sensitivity vs conversion degree")
def burstiness_study(
    n_fibers: int = 6,
    k: int = 12,
    slots: int = 400,
    load: float = 0.7,
    seed: int = 7777,
) -> ExperimentResult:
    """Loss vs mean burst length for d = 3 and full range."""
    rows = []
    loss: dict[tuple[object, float], float] = {}
    burst_lengths = (1.0, 4.0, 16.0)
    for d in (3, k):
        if d >= k:
            scheme, scheduler = FullRangeConversion(k), FullRangeScheduler()
        else:
            scheme = CircularConversion(k, 1, 1)
            scheduler = BreakFirstAvailableScheduler()
        for burst in burst_lengths:
            traffic = OnOffBurstyTraffic(n_fibers, k, load, burst_length=burst)
            sim = SlottedSimulator(
                n_fibers, scheme, scheduler, traffic, seed=seed
            )
            loss[(d, burst)] = sim.run(
                slots, warmup=slots // 5
            ).metrics.loss_probability
    for burst in burst_lengths:
        rows.append((burst, loss[(3, burst)], loss[(k, burst)]))
    checks = {
        "burstiness increases loss (d=3)": loss[(3, 16.0)] > loss[(3, 1.0)],
        "burstiness increases loss (full range)": loss[(k, 16.0)]
        >= loss[(k, 1.0)] - 0.005,
        "limited conversion suffers at least as much from bursts": (
            loss[(3, 16.0)] - loss[(3, 1.0)]
        )
        >= (loss[(k, 16.0)] - loss[(k, 1.0)]) - 0.01,
    }
    table = format_table(
        ["mean burst length", "loss (d=3)", f"loss (d=k={k})"],
        rows,
        title=f"On-off bursty traffic, N={n_fibers}, k={k}, load {load}",
        float_fmt=".4f",
    )
    notes = (
        "A burst pins one wavelength at one destination for many slots; "
        "contention then concentrates inside a d-wide channel window.",
    )
    return ExperimentResult(
        "PERF-BURST", "Burstiness sensitivity", (table,), checks, notes
    )
